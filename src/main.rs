//! `usher` — command-line front door to the whole pipeline.
//!
//! ```text
//! usher run <file.tc>                 run a TinyC program natively
//! usher check <file.tc>               analyze + run under guided instrumentation
//! usher analyze <file.tc>             static analysis report (no execution)
//! usher ir <file.tc>                  dump the O0+IM IR
//! usher dis <file.tc>                 dump parseable IR text (.uir)
//! usher vfg <file.tc>                 dump the value-flow graph as DOT
//! ```
//!
//! Inputs ending in `.uir` are parsed as IR text instead of TinyC.
//!
//! Options: `--config msan|tl|tlat|opt1|usher|msan-bit|usher-bit` (default `usher`),
//! `--opt O0|O1|O2` (default `O0`, meaning O0+IM), `--seed <n>` for the
//! deterministic `input()` stream.

use std::process::ExitCode;

use usher::core::{run_config, Config};
use usher::frontend::compile_with;
use usher::ir::OptLevel;
use usher::runtime::{run, RunOptions};
use usher::vfg::{analyze_module, VfgMode};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match dispatch(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("usher: {msg}");
            eprintln!();
            eprintln!("usage: usher <run|check|analyze|ir|dis|vfg> <file.tc|file.uir> [--config CFG] [--opt LVL] [--seed N]");
            ExitCode::from(2)
        }
    }
}

fn dispatch(args: &[String]) -> Result<ExitCode, String> {
    let mut cmd = None;
    let mut file = None;
    let mut config = Config::USHER;
    let mut level = OptLevel::O0Im;
    let mut seed = 0x5eedu64;

    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--config" => {
                let v = it.next().ok_or("--config needs a value")?;
                config = match v.as_str() {
                    "msan" => Config::MSAN,
                    "tl" => Config::USHER_TL,
                    "tlat" => Config::USHER_TL_AT,
                    "opt1" => Config::USHER_OPT1,
                    "usher" => Config::USHER,
                    "msan-bit" => Config::MSAN_BIT,
                    "usher-bit" => Config::USHER_BIT,
                    other => return Err(format!("unknown config {other}")),
                };
            }
            "--opt" => {
                let v = it.next().ok_or("--opt needs a value")?;
                level = match v.as_str() {
                    "O0" | "O0+IM" => OptLevel::O0Im,
                    "O1" => OptLevel::O1,
                    "O2" => OptLevel::O2,
                    other => return Err(format!("unknown opt level {other}")),
                };
            }
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                seed = v.parse().map_err(|_| format!("bad seed {v}"))?;
            }
            _ if cmd.is_none() => cmd = Some(a.clone()),
            _ if file.is_none() => file = Some(a.clone()),
            other => return Err(format!("unexpected argument {other}")),
        }
    }

    let cmd = cmd.ok_or("missing command")?;
    let file = file.ok_or("missing input file")?;
    let source =
        std::fs::read_to_string(&file).map_err(|e| format!("cannot read {file}: {e}"))?;
    let module = if file.ends_with(".uir") {
        usher::ir::parse_text(&source).map_err(|e| e.to_string())?
    } else {
        compile_with(&source, level).map_err(|e| e.to_string())?
    };
    let opts = RunOptions { input_seed: seed, ..Default::default() };

    match cmd.as_str() {
        "run" => {
            let r = run(&module, None, &opts);
            for v in &r.trace {
                println!("{v}");
            }
            if let Some(t) = r.trap {
                eprintln!("trap: {t:?}");
                return Ok(ExitCode::from(3));
            }
            if !r.ground_truth.is_empty() {
                eprintln!(
                    "note: {} use(s) of undefined values occurred (run `usher check` to detect them)",
                    r.ground_truth.len()
                );
            }
            Ok(ExitCode::from(r.exit.unwrap_or(0).rem_euclid(256) as u8))
        }
        "check" => {
            let out = run_config(&module, config);
            let r = run(&module, Some(&out.plan), &opts);
            for v in &r.trace {
                println!("{v}");
            }
            for ev in &r.detected {
                eprintln!(
                    "warning: use of an undefined value at {} in function {} ({:?})",
                    ev.site,
                    module.funcs[ev.site.func].name,
                    ev.kind
                );
                if let Some(origin) = ev.origin {
                    eprintln!(
                        "    note: value originated at {} in function {}",
                        origin,
                        module.funcs[origin.func].name
                    );
                }
            }
            eprintln!(
                "[{}] {} propagation(s), {} check(s) planned; slowdown {:.0}% vs native",
                out.plan.name,
                out.plan.stats.propagations,
                out.plan.stats.checks,
                r.counters.slowdown_pct()
            );
            if let Some(t) = r.trap {
                eprintln!("trap: {t:?}");
                return Ok(ExitCode::from(3));
            }
            Ok(if r.detected.is_empty() { ExitCode::SUCCESS } else { ExitCode::from(1) })
        }
        "analyze" => {
            let out = run_config(&module, config);
            println!("configuration : {}", out.plan.name);
            println!("analysis time : {:.3}s", out.analysis_seconds);
            if let Some(vfg) = &out.vfg {
                println!("VFG nodes     : {}", vfg.len());
                println!("checks        : {}", vfg.checks.len());
                let s = vfg.stats;
                println!(
                    "stores        : {} strong / {} semi-strong / {} weak-singleton / {} multi",
                    s.strong_stores, s.semi_strong_stores, s.weak_singleton_stores, s.multi_target_stores
                );
            }
            if let Some(gamma) = &out.gamma {
                println!("bot nodes     : {}", gamma.bot_count());
            }
            println!("plan          : {} ops, {} propagations, {} checks",
                out.plan.stats.ops, out.plan.stats.propagations, out.plan.stats.checks);
            if out.opt2_redirected > 0 {
                println!("opt2          : {} node(s) redirected to T", out.opt2_redirected);
            }
            Ok(ExitCode::SUCCESS)
        }
        "ir" => {
            print!("{}", usher::ir::print_module(&module));
            Ok(ExitCode::SUCCESS)
        }
        "dis" => {
            print!("{}", usher::ir::write_text(&module));
            Ok(ExitCode::SUCCESS)
        }
        "vfg" => {
            let (_pa, _ms, vfg) = analyze_module(&module, VfgMode::Full);
            print!("{}", vfg.to_dot(&module));
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown command {other}")),
    }
}
