//! `usher` — command-line front door to the whole pipeline.
//!
//! ```text
//! usher run <file.tc>                 run a TinyC program natively
//! usher check <file.tc>               analyze + run under guided instrumentation
//! usher analyze <file.tc>             static analysis report (no execution)
//! usher ir <file.tc>                  dump the O0+IM IR
//! usher dis <file.tc>                 dump parseable IR text (.uir)
//! usher vfg <file.tc>                 dump the value-flow graph as DOT
//! usher gen [--seed N] [...]          generate a synthetic TinyC workload
//! usher fuzz [--smoke] [...]          differential fuzzing campaign
//! usher serve [--socket P] [...]      persistent incremental analysis service
//! usher serve-bench [--quick] [...]   multi-client serve latency benchmark
//! ```
//!
//! Inputs ending in `.uir` are parsed as IR text instead of TinyC.
//!
//! Options: `--config msan|tl|tlat|opt1|usher|msan-bit|usher-bit` (default `usher`),
//! `--opt O0|O1|O2` (default `O0`, meaning O0+IM), `--seed <n>` for the
//! deterministic `input()` stream, `--threads <n>` for the pipeline's
//! worker pool, `--no-cache` to disable artifact caching, `--report`
//! to print per-stage JSON telemetry on stderr, and `--demand` to
//! resolve definedness with the demand-driven query engine (implies
//! Opt II off; the analyze report gains a `demand` counter block).
//!
//! Degradation knobs (see DESIGN.md §10): `--budget-steps <n>` caps the
//! analysis step budget, `--deadline-ms <n>` adds a wall-clock deadline,
//! `--strict` turns sound degradations into errors, and
//! `--inject-panic <stage>` panics inside the named stage's containment
//! region (testing hook).
//!
//! `usher fuzz` runs a deterministic differential campaign: generated
//! programs (and their mutants) executed natively, under the MSan
//! baseline plan and under every guided preset, with results classified
//! against the ground truth. `--smoke` is the fixed CI gate; `--seeds`,
//! `--start`, `--mutants`, `--frontend`, `--fault none|fuel|cache-evict|
//! trap-force|drop-checks|cache-corrupt|budget-exhaust|strategy-diverge|
//! demand-diverge|serve-chaos`, `--threads`,
//! `--no-minimize`, `--report FILE`
//! (JSONL telemetry) and `--out DIR` (minimized reproducers) shape ad-hoc
//! campaigns. Exit code 1 means the campaign found at least one mismatch.
//!
//! `usher serve` keeps one analysis engine resident and speaks a
//! JSON-lines protocol (`analyze`/`edit`/`query`/`query-use`/`stats`/
//! `close`/`shutdown`) over stdin and an optional Unix socket (`--socket`),
//! multiplexing up to `--max-clients` connections. Artifacts are cached
//! in memory and, with `--store-dir`, in an on-disk content-addressed
//! store capped at `--store-cap-bytes`. `usher serve-bench` replays a
//! deterministic multi-client edit/analyze trace and reports p50/p99
//! latency plus the incremental-vs-cold speedup; `--quick` is the CI
//! regression gate and `--out FILE` writes the JSON report
//! (see BENCH_serve.json and DESIGN.md §11).
//!
//! All analysis routes through [`usher::driver::Pipeline`].

use std::process::ExitCode;

use usher::core::Config;
use usher::driver::{Pipeline, PipelineOptions, PipelineRun, SourceInput};
use usher::ir::OptLevel;
use usher::runtime::{run, RunOptions};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match dispatch(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("usher: {msg}");
            eprintln!();
            eprintln!("usage: usher <run|check|analyze|ir|dis|vfg> <file.tc|file.uir> [--config CFG] [--opt LVL] [--seed N] [--threads N] [--pointer-strategy S] [--no-cache] [--report] [--demand] [--budget-steps N] [--deadline-ms N] [--strict] [--inject-panic STAGE]");
            eprintln!("       usher gen [--seed N] [--helpers N] [--stmts N]");
            eprintln!("       usher fuzz [--smoke] [--seeds N] [--start N] [--mutants N] [--frontend] [--fault MODE] [--threads N] [--no-minimize] [--report FILE] [--out DIR]");
            eprintln!("       usher serve [--socket PATH] [--store-dir DIR] [--store-cap-bytes N] [--max-clients N] [--threads N] [--pointer-strategy S] [--no-cache] [--wal PATH] [--no-wal] [--max-queue N] [--drain-timeout-ms N]");
            eprintln!("       usher serve-bench [--quick] [--clients N] [--edits N] [--out FILE]");
            ExitCode::from(2)
        }
    }
}

fn dispatch(args: &[String]) -> Result<ExitCode, String> {
    if args.first().map(String::as_str) == Some("fuzz") {
        return fuzz_command(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("gen") {
        return gen_command(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("serve") {
        return serve_command(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("serve-bench") {
        return serve_bench_command(&args[1..]);
    }
    let mut cmd = None;
    let mut file = None;
    let mut config = Config::USHER;
    let mut level = OptLevel::O0Im;
    let mut seed = 0x5eedu64;
    let mut threads = None;
    let mut pointer_strategy = None;
    let mut use_cache = true;
    let mut report = false;
    let mut budget_steps = None;
    let mut deadline_ms = None;
    let mut strict = false;
    let mut inject_panic = None;
    let mut demand = false;

    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--config" => {
                let v = it.next().ok_or("--config needs a value")?;
                config = match v.as_str() {
                    "msan" => Config::MSAN,
                    "tl" => Config::USHER_TL,
                    "tlat" => Config::USHER_TL_AT,
                    "opt1" => Config::USHER_OPT1,
                    "usher" => Config::USHER,
                    "msan-bit" => Config::MSAN_BIT,
                    "usher-bit" => Config::USHER_BIT,
                    other => return Err(format!("unknown config {other}")),
                };
            }
            "--opt" => {
                let v = it.next().ok_or("--opt needs a value")?;
                level = match v.as_str() {
                    "O0" | "O0+IM" => OptLevel::O0Im,
                    "O1" => OptLevel::O1,
                    "O2" => OptLevel::O2,
                    other => return Err(format!("unknown opt level {other}")),
                };
            }
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                seed = v.parse().map_err(|_| format!("bad seed {v}"))?;
            }
            "--threads" => {
                let v = it.next().ok_or("--threads needs a value")?;
                let n: usize = v.parse().map_err(|_| format!("bad thread count {v}"))?;
                if n == 0 {
                    return Err("--threads must be at least 1".into());
                }
                threads = Some(n);
            }
            "--pointer-strategy" => {
                let v = it.next().ok_or("--pointer-strategy needs a value")?;
                pointer_strategy = Some(
                    usher::PointerStrategy::parse(v)
                        .ok_or_else(|| format!("unknown pointer strategy {v} (expected reference|andersen|prefilter|prefilter-wave)"))?,
                );
            }
            "--no-cache" => use_cache = false,
            "--report" => report = true,
            "--budget-steps" => {
                let v = it.next().ok_or("--budget-steps needs a value")?;
                budget_steps = Some(v.parse::<u64>().map_err(|_| format!("bad budget {v}"))?);
            }
            "--deadline-ms" => {
                let v = it.next().ok_or("--deadline-ms needs a value")?;
                deadline_ms = Some(v.parse::<u64>().map_err(|_| format!("bad deadline {v}"))?);
            }
            "--strict" => strict = true,
            "--demand" => demand = true,
            "--inject-panic" => {
                let v = it.next().ok_or("--inject-panic needs a stage name")?;
                inject_panic = Some(v.clone());
            }
            _ if cmd.is_none() => cmd = Some(a.clone()),
            _ if file.is_none() => file = Some(a.clone()),
            other => return Err(format!("unexpected argument {other}")),
        }
    }

    let cmd = cmd.ok_or("missing command")?;
    let file = file.ok_or("missing input file")?;
    let text = std::fs::read_to_string(&file).map_err(|e| format!("cannot read {file}: {e}"))?;
    let source = if file.ends_with(".uir") {
        SourceInput::IrText(text)
    } else {
        SourceInput::TinyC(text)
    };

    let mut pipe = Pipeline::new();
    if let Some(n) = threads {
        pipe = pipe.with_threads(n);
    }
    if !use_cache {
        pipe = pipe.without_cache();
    }
    let mut options = PipelineOptions::from_config(config)
        .at_level(level)
        .with_budget_steps(budget_steps)
        .with_deadline_ms(deadline_ms)
        .strict(strict)
        .with_inject_panic(inject_panic);
    if let Some(st) = pointer_strategy {
        options = options.with_pointer_strategy(st);
    }
    if demand {
        options = options.with_demand(true);
    }
    let analyze = |opts: PipelineOptions| -> Result<PipelineRun, String> {
        let pr = pipe
            .run(&file, source.clone(), opts)
            .map_err(|e| e.to_string())?;
        if report {
            eprintln!("{}", pr.report.to_json_line());
        }
        Ok(pr)
    };
    let opts = RunOptions {
        input_seed: seed,
        ..Default::default()
    };

    match cmd.as_str() {
        "run" => {
            let module = pipe.compile(&source, &options).map_err(|e| e.to_string())?;
            let r = run(&module, None, &opts);
            for v in &r.trace {
                println!("{v}");
            }
            if let Some(t) = r.trap {
                eprintln!("trap: {t:?}");
                return Ok(ExitCode::from(3));
            }
            if !r.ground_truth.is_empty() {
                eprintln!(
                    "note: {} use(s) of undefined values occurred (run `usher check` to detect them)",
                    r.ground_truth.len()
                );
            }
            Ok(ExitCode::from(r.exit.unwrap_or(0).rem_euclid(256) as u8))
        }
        "check" => {
            let pr = analyze(options)?;
            let r = run(&pr.module, Some(&pr.plan), &opts);
            for v in &r.trace {
                println!("{v}");
            }
            for ev in &r.detected {
                eprintln!(
                    "warning: use of an undefined value at {} in function {} ({:?})",
                    ev.site, pr.module.funcs[ev.site.func].name, ev.kind
                );
                if let Some(origin) = ev.origin {
                    eprintln!(
                        "    note: value originated at {} in function {}",
                        origin, pr.module.funcs[origin.func].name
                    );
                }
            }
            eprintln!(
                "[{}] {} propagation(s), {} check(s) planned; slowdown {:.0}% vs native",
                pr.plan.name,
                pr.plan.stats.propagations,
                pr.plan.stats.checks,
                r.counters.slowdown_pct()
            );
            if let Some(t) = r.trap {
                eprintln!("trap: {t:?}");
                return Ok(ExitCode::from(3));
            }
            Ok(if r.detected.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            })
        }
        "analyze" => {
            let pr = analyze(options)?;
            println!("configuration : {}", pr.plan.name);
            println!("analysis time : {:.3}s", pr.report.total_seconds);
            if let Some(vfg) = &pr.vfg {
                println!("VFG nodes     : {}", vfg.len());
                println!("checks        : {}", vfg.checks.len());
                let s = vfg.stats;
                println!(
                    "stores        : {} strong / {} semi-strong / {} weak-singleton / {} multi",
                    s.strong_stores,
                    s.semi_strong_stores,
                    s.weak_singleton_stores,
                    s.multi_target_stores
                );
            }
            if let Some(gamma) = &pr.gamma {
                println!("bot nodes     : {}", gamma.bot_count());
            }
            println!(
                "plan          : {} ops, {} propagations, {} checks",
                pr.plan.stats.ops, pr.plan.stats.propagations, pr.plan.stats.checks
            );
            if pr.opt2_redirected > 0 {
                println!(
                    "opt2          : {} node(s) redirected to T",
                    pr.opt2_redirected
                );
            }
            if let Some(ds) = &pr.report.demand {
                println!(
                    "demand        : {} queries, {} memo hits, {} nodes visited, {} refinements, {} exhausted",
                    ds.queries,
                    ds.memo_hits,
                    ds.nodes_visited,
                    ds.refinements,
                    ds.exhausted_queries
                );
            }
            Ok(ExitCode::SUCCESS)
        }
        "ir" => {
            let module = pipe.compile(&source, &options).map_err(|e| e.to_string())?;
            print!("{}", usher::ir::print_module(&module));
            Ok(ExitCode::SUCCESS)
        }
        "dis" => {
            let module = pipe.compile(&source, &options).map_err(|e| e.to_string())?;
            print!("{}", usher::ir::write_text(&module));
            Ok(ExitCode::SUCCESS)
        }
        "vfg" => {
            let pr = analyze(options)?;
            let vfg = pr
                .vfg
                .as_ref()
                .ok_or("the msan config builds no VFG; pick a guided one")?;
            print!("{}", vfg.to_dot(&pr.module));
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown command {other}")),
    }
}

/// `usher gen`: print a deterministic synthetic TinyC workload to
/// stdout — the same generator the fuzz and bench ladders use, exposed
/// so shell harnesses (e.g. the CI degradation gate) can materialize a
/// program of a chosen size without a checked-in fixture.
fn gen_command(args: &[String]) -> Result<ExitCode, String> {
    use usher::workloads::{generate, ladder_config};

    let mut seed = 1u64;
    let mut helpers = 6usize;
    let mut stmts = 40usize;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                seed = v.parse().map_err(|_| format!("bad seed {v}"))?;
            }
            "--helpers" => {
                let v = it.next().ok_or("--helpers needs a value")?;
                helpers = v.parse().map_err(|_| format!("bad helper count {v}"))?;
            }
            "--stmts" => {
                let v = it.next().ok_or("--stmts needs a value")?;
                stmts = v.parse().map_err(|_| format!("bad statement count {v}"))?;
            }
            other => return Err(format!("unexpected gen argument {other}")),
        }
    }
    print!("{}", generate(seed, ladder_config(helpers, stmts)));
    Ok(ExitCode::SUCCESS)
}

/// `usher serve`: run the persistent incremental analysis service until
/// stdin closes or a client sends `{"op":"shutdown"}`.
fn serve_command(args: &[String]) -> Result<ExitCode, String> {
    use usher::serve::{run_server, ServerConfig};

    let mut cfg = ServerConfig::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--socket" => {
                let v = it.next().ok_or("--socket needs a path")?;
                cfg.socket = Some(v.into());
            }
            "--store-dir" => {
                let v = it.next().ok_or("--store-dir needs a directory")?;
                cfg.store_dir = Some(v.into());
            }
            "--store-cap-bytes" => {
                let v = it.next().ok_or("--store-cap-bytes needs a value")?;
                cfg.store_cap_bytes = v.parse().map_err(|_| format!("bad byte cap {v}"))?;
            }
            "--max-clients" => {
                let v = it.next().ok_or("--max-clients needs a value")?;
                let n: usize = v.parse().map_err(|_| format!("bad client count {v}"))?;
                if n == 0 {
                    return Err("--max-clients must be at least 1".into());
                }
                cfg.max_clients = n;
            }
            "--threads" => {
                let v = it.next().ok_or("--threads needs a value")?;
                let n: usize = v.parse().map_err(|_| format!("bad thread count {v}"))?;
                if n == 0 {
                    return Err("--threads must be at least 1".into());
                }
                cfg.threads = n;
            }
            "--pointer-strategy" => {
                let v = it.next().ok_or("--pointer-strategy needs a value")?;
                cfg.pointer_strategy = usher::PointerStrategy::parse(v)
                    .ok_or_else(|| format!("unknown pointer strategy {v} (expected reference|andersen|prefilter|prefilter-wave)"))?;
            }
            "--no-cache" => cfg.use_cache = false,
            "--wal" => {
                let v = it.next().ok_or("--wal needs a path")?;
                cfg.wal_path = Some(v.into());
            }
            "--no-wal" => cfg.wal_enabled = false,
            "--max-queue" => {
                let v = it.next().ok_or("--max-queue needs a value")?;
                cfg.max_queue = v.parse().map_err(|_| format!("bad queue depth {v}"))?;
            }
            "--drain-timeout-ms" => {
                let v = it.next().ok_or("--drain-timeout-ms needs a value")?;
                cfg.drain_timeout_ms = v.parse().map_err(|_| format!("bad drain timeout {v}"))?;
            }
            other => return Err(format!("unexpected serve argument {other}")),
        }
    }
    run_server(&cfg)?;
    Ok(ExitCode::SUCCESS)
}

/// `usher serve-bench`: deterministic multi-client latency benchmark
/// over the serve protocol. Exit code 1 means a `--quick` regression
/// gate tripped.
fn serve_bench_command(args: &[String]) -> Result<ExitCode, String> {
    use usher::serve::{run_bench, BenchOptions};

    let mut opts = BenchOptions::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => opts.quick = true,
            "--clients" => {
                let v = it.next().ok_or("--clients needs a value")?;
                let n: usize = v.parse().map_err(|_| format!("bad client count {v}"))?;
                if n == 0 {
                    return Err("--clients must be at least 1".into());
                }
                opts.clients = n;
            }
            "--edits" => {
                let v = it.next().ok_or("--edits needs a value")?;
                opts.edits_per_client = v.parse().map_err(|_| format!("bad edit count {v}"))?;
            }
            "--out" => {
                let v = it.next().ok_or("--out needs a path")?;
                opts.out = Some(v.into());
            }
            other => return Err(format!("unexpected serve-bench argument {other}")),
        }
    }
    match run_bench(&opts) {
        Ok(s) => {
            println!("{}", s.json);
            Ok(ExitCode::SUCCESS)
        }
        Err(e) if e.starts_with("regression:") => {
            eprintln!("serve-bench {e}");
            Ok(ExitCode::from(1))
        }
        Err(e) => Err(e),
    }
}

fn fuzz_command(args: &[String]) -> Result<ExitCode, String> {
    use usher::fuzz::{run_campaign, CampaignConfig, FaultInjection};

    let mut cfg = CampaignConfig::default();
    let mut smoke = false;
    let mut report_path: Option<String> = None;
    let mut out_dir: Option<String> = None;

    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => {
                smoke = true;
                cfg = CampaignConfig::smoke();
            }
            "--seeds" => {
                let v = it.next().ok_or("--seeds needs a value")?;
                cfg.seeds = v.parse().map_err(|_| format!("bad seed count {v}"))?;
            }
            "--start" => {
                let v = it.next().ok_or("--start needs a value")?;
                cfg.start = v.parse().map_err(|_| format!("bad start seed {v}"))?;
            }
            "--mutants" => {
                let v = it.next().ok_or("--mutants needs a value")?;
                cfg.mutants = v.parse().map_err(|_| format!("bad mutant count {v}"))?;
            }
            "--frontend" => cfg.frontend = true,
            "--fault" => {
                let v = it.next().ok_or("--fault needs a value")?;
                cfg.fault = FaultInjection::parse(v).ok_or_else(|| {
                    format!("unknown fault mode {v} (none|fuel|cache-evict|trap-force|drop-checks|cache-corrupt|budget-exhaust|strategy-diverge|demand-diverge|serve-chaos)")
                })?;
            }
            "--threads" => {
                let v = it.next().ok_or("--threads needs a value")?;
                let n: usize = v.parse().map_err(|_| format!("bad thread count {v}"))?;
                if n == 0 {
                    return Err("--threads must be at least 1".into());
                }
                cfg.threads = n;
            }
            "--no-minimize" => cfg.minimize = false,
            "--report" => report_path = Some(it.next().ok_or("--report needs a path")?.clone()),
            "--out" => out_dir = Some(it.next().ok_or("--out needs a directory")?.clone()),
            other => return Err(format!("unexpected fuzz argument {other}")),
        }
    }

    let mut report_file = match &report_path {
        Some(p) => Some(std::fs::File::create(p).map_err(|e| format!("cannot create {p}: {e}"))?),
        None => None,
    };
    let mut emit = |line: String| {
        use std::io::Write as _;
        match &mut report_file {
            Some(f) => {
                let _ = writeln!(f, "{line}");
            }
            None => eprintln!("{line}"),
        }
    };

    let out = run_campaign(&cfg, &mut emit);
    for f in &out.failures {
        eprintln!(
            "FAILURE seed {} mutant {} ({}): {}",
            f.seed, f.mutant, f.op, f.mismatch
        );
        if let (Some(dir), Some(min)) = (&out_dir, &f.minimized) {
            std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {dir}: {e}"))?;
            let path = format!(
                "{dir}/{}-s{}-m{}.tc",
                f.mismatch.kind.name(),
                f.seed,
                f.mutant
            );
            std::fs::write(&path, format!("{min}\n"))
                .map_err(|e| format!("cannot write {path}: {e}"))?;
            eprintln!("    minimized reproducer written to {path}");
        }
    }
    eprintln!(
        "fuzz{}: {} program(s), {} compile error(s), {} fuel-exhausted, {} mismatch(es) in {:.1}s",
        if smoke { " --smoke" } else { "" },
        out.stats.programs,
        out.stats.compile_errors,
        out.stats.fuel_exhausted,
        out.stats.mismatches,
        out.stats.seconds
    );
    Ok(if out.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    })
}
