//! # usher
//!
//! Facade crate of the Usher reproduction (Ye, Sui & Xue, *Accelerating
//! Dynamic Detection of Uses of Undefined Values with Static Value-Flow
//! Analysis*, CGO 2014): re-exports the whole pipeline under one roof.
//!
//! ```
//! // Compile TinyC under the paper's O0+IM configuration.
//! let module = usher::frontend::compile_o0im(
//!     "def main() -> int { int x = 1; return x; }",
//! ).unwrap();
//! assert!(module.is_runnable());
//! ```
//!
//! See the `examples/` directory for end-to-end walkthroughs:
//! `quickstart`, `detect_uninit`, `compare_configs`, `vfg_explorer`.

#![warn(missing_docs)]

pub use usher_core as core;
pub use usher_driver as driver;
pub use usher_frontend as frontend;
pub use usher_fuzz as fuzz;
pub use usher_ir as ir;
pub use usher_pointer as pointer;
pub use usher_runtime as runtime;
pub use usher_serve as serve;
pub use usher_vfg as vfg;
pub use usher_workloads as workloads;

pub use usher_pointer::PointerStrategy;
