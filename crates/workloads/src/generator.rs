//! A seeded random TinyC program generator for property-based testing.
//!
//! Generated programs are memory-safe by construction (all derefs go to
//! live locals, globals or constant-size heap blocks with in-bounds
//! constant indices; all loops are bounded counters), terminate, and are
//! deterministic — so every generated program can be executed natively,
//! under full instrumentation, and under every Usher configuration, and
//! the detector outputs compared. Locals are *sometimes deliberately left
//! uninitialized* and conditionally assigned, which is the whole point:
//! the corpus exercises real flows of undefined values.

use std::fmt::Write as _;

/// A tiny deterministic RNG (xorshift64*), so the generator does not pull
/// in `rand` for reproducibility-critical paths.
#[derive(Clone, Debug)]
pub struct Rng(u64);

impl Rng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Rng {
        Rng(seed | 1)
    }

    /// Next raw value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// Uniform value in `0..n`.
    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n.max(1) as u64) as usize
    }

    /// Coin flip with probability `pct`%.
    pub fn pct(&mut self, pct: usize) -> bool {
        self.below(100) < pct
    }
}

/// Shape parameters for generated programs.
#[derive(Clone, Copy, Debug)]
pub struct GenConfig {
    /// Number of helper functions (besides `main`).
    pub helpers: usize,
    /// Maximum statements per block.
    pub max_stmts: usize,
    /// Probability (%) that a local is left uninitialized at declaration.
    pub uninit_pct: usize,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            helpers: 3,
            max_stmts: 7,
            uninit_pct: 35,
        }
    }
}

struct GenCtx {
    rng: Rng,
    cfg: GenConfig,
    /// Int-typed variables in scope.
    ints: Vec<String>,
    /// Pointer variables in scope, with the cell count of their target.
    ptrs: Vec<(String, usize)>,
    /// Live loop counters: readable but never assignment targets, so
    /// every generated loop terminates.
    counters: Vec<String>,
    next_var: usize,
    depth: usize,
}

impl GenCtx {
    fn fresh(&mut self, prefix: &str) -> String {
        self.next_var += 1;
        format!("{prefix}{}", self.next_var)
    }

    fn int_expr(&mut self, budget: usize) -> String {
        if budget == 0 || self.ints.is_empty() || self.rng.pct(30) {
            return format!("{}", self.rng.below(100));
        }
        match self.rng.below(6) {
            0 => self.ints[self.rng.below(self.ints.len())].clone(),
            1 => {
                let a = self.int_expr(budget - 1);
                let b = self.int_expr(budget - 1);
                let op = ["+", "-", "*", "&", "|", "^"][self.rng.below(6)];
                format!("({a} {op} {b})")
            }
            2 => {
                let a = self.int_expr(budget - 1);
                let b = self.int_expr(budget - 1);
                let op = ["<", "<=", ">", ">=", "==", "!="][self.rng.below(6)];
                format!("({a} {op} {b})")
            }
            3 if !self.ptrs.is_empty() => {
                // In-bounds read through a pointer.
                let (p, cells) = self.ptrs[self.rng.below(self.ptrs.len())].clone();
                let i = self.rng.below(cells);
                format!("*({p} + {i})")
            }
            4 => {
                let a = self.int_expr(budget - 1);
                // Division by a guaranteed nonzero constant.
                format!("({a} / {})", self.rng.below(9) + 1)
            }
            _ => "input()".to_string(),
        }
    }

    fn stmts(&mut self, out: &mut String, indent: usize) {
        let n = 1 + self.rng.below(self.cfg.max_stmts);
        for _ in 0..n {
            self.stmt(out, indent);
        }
    }

    fn pad(indent: usize) -> String {
        "    ".repeat(indent)
    }

    fn stmt(&mut self, out: &mut String, indent: usize) {
        let pad = Self::pad(indent);
        let choice = self.rng.below(11);
        match choice {
            // New int local, possibly uninitialized.
            0 | 1 => {
                let v = self.fresh("v");
                let uninit = self.rng.pct(self.cfg.uninit_pct);
                if uninit {
                    let _ = writeln!(out, "{pad}int {v};");
                    // Maybe conditionally assign it.
                    if self.rng.pct(60) {
                        let c = self.int_expr(1);
                        let e = self.int_expr(1);
                        let _ = writeln!(out, "{pad}if ({c}) {{ {v} = {e}; }}");
                    }
                } else {
                    let e = self.int_expr(2);
                    let _ = writeln!(out, "{pad}int {v} = {e};");
                }
                self.ints.push(v);
            }
            // Heap block (constant size), fully or partially initialized.
            2 => {
                let p = self.fresh("p");
                let cells = 2 + self.rng.below(6);
                let zero = self.rng.pct(40);
                let f = if zero { "calloc" } else { "malloc" };
                let _ = writeln!(out, "{pad}int *{p};");
                let _ = writeln!(out, "{pad}{p} = {f}({cells});");
                if !zero && self.rng.pct(70) {
                    // Initialize a prefix of the block.
                    let init = self.rng.below(cells + 1);
                    for i in 0..init {
                        let e = self.int_expr(1);
                        let _ = writeln!(out, "{pad}*({p} + {i}) = {e};");
                    }
                }
                self.ptrs.push((p, cells));
            }
            // Assignment to an existing variable (never a loop counter).
            3 | 4 => {
                let assignable: Vec<String> = self
                    .ints
                    .iter()
                    .filter(|v| !self.counters.contains(v))
                    .cloned()
                    .collect();
                if let Some(v) = pick(&mut self.rng, &assignable) {
                    let e = self.int_expr(2);
                    let _ = writeln!(out, "{pad}{v} = {e};");
                }
            }
            // Store through a pointer.
            5 => {
                if !self.ptrs.is_empty() {
                    let (p, cells) = self.ptrs[self.rng.below(self.ptrs.len())].clone();
                    let i = self.rng.below(cells);
                    let e = self.int_expr(2);
                    let _ = writeln!(out, "{pad}*({p} + {i}) = {e};");
                }
            }
            // If / if-else.
            6 | 7 if self.depth < 3 => {
                let c = self.int_expr(2);
                let _ = writeln!(out, "{pad}if ({c}) {{");
                self.nest(out, indent + 1);
                if self.rng.pct(50) {
                    let _ = writeln!(out, "{pad}}} else {{");
                    self.nest(out, indent + 1);
                }
                let _ = writeln!(out, "{pad}}}");
            }
            // Bounded loop.
            8 if self.depth < 2 => {
                let i = self.fresh("i");
                let bound = 2 + self.rng.below(6);
                let _ = writeln!(
                    out,
                    "{pad}for (int {i} = 0; {i} < {bound}; {i} = {i} + 1) {{"
                );
                self.ints.push(i.clone());
                self.counters.push(i.clone());
                self.nest(out, indent + 1);
                let _ = writeln!(out, "{pad}}}");
                self.ints.retain(|v| v != &i);
                self.counters.retain(|v| v != &i);
            }
            // Allocation-dominated store through a fresh single-cell
            // block — the paper's Figure 6 semi-strong-update pattern.
            // The allocation dominates the store, the target is a unique
            // single-cell abstract location, so the store may bypass the
            // incoming (undefined) memory version.
            9 => {
                let p = self.fresh("q");
                let e = self.int_expr(1);
                if self.depth < 2 && self.rng.pct(50) {
                    // Loop-carried variant: a fresh block per iteration.
                    let i = self.fresh("i");
                    let bound = 2 + self.rng.below(4);
                    let _ = writeln!(
                        out,
                        "{pad}for (int {i} = 0; {i} < {bound}; {i} = {i} + 1) {{"
                    );
                    let _ = writeln!(out, "{pad}    int *{p};");
                    let _ = writeln!(out, "{pad}    {p} = malloc(1);");
                    let _ = writeln!(out, "{pad}    *{p} = {e} + {i};");
                    let _ = writeln!(out, "{pad}    print(*{p});");
                    let _ = writeln!(out, "{pad}}}");
                } else {
                    let _ = writeln!(out, "{pad}int *{p};");
                    let _ = writeln!(out, "{pad}{p} = malloc(1);");
                    let _ = writeln!(out, "{pad}*{p} = {e};");
                    self.ptrs.push((p, 1));
                }
            }
            // Print something (keeps values observable).
            _ => {
                let e = self.int_expr(1);
                let _ = writeln!(out, "{pad}print({e});");
            }
        }
    }

    fn nest(&mut self, out: &mut String, indent: usize) {
        self.depth += 1;
        let ints_mark = self.ints.len();
        let ptrs_mark = self.ptrs.len();
        self.stmts(out, indent);
        self.ints.truncate(ints_mark);
        self.ptrs.truncate(ptrs_mark);
        self.depth -= 1;
    }
}

fn pick(rng: &mut Rng, pool: &[String]) -> Option<String> {
    if pool.is_empty() {
        None
    } else {
        Some(pool[rng.below(pool.len())].clone())
    }
}

/// Generates one memory-safe, terminating TinyC program from a seed.
pub fn generate(seed: u64, cfg: GenConfig) -> String {
    let mut ctx = GenCtx {
        rng: Rng::new(seed),
        cfg,
        ints: Vec::new(),
        ptrs: Vec::new(),
        counters: Vec::new(),
        next_var: 0,
        depth: 0,
    };
    let mut out = String::new();
    let _ = writeln!(out, "// generated from seed {seed}");
    let _ = writeln!(out, "int shared;");

    // Helper functions taking and returning ints.
    let mut helper_names = Vec::new();
    for h in 0..ctx.cfg.helpers {
        let name = format!("helper{h}");
        let _ = writeln!(out, "def {name}(int a, int b) -> int {{");
        ctx.ints = vec!["a".into(), "b".into()];
        ctx.ptrs.clear();
        ctx.stmts(&mut out, 1);
        let ret = ctx.int_expr(2);
        let _ = writeln!(out, "    return {ret};");
        let _ = writeln!(out, "}}");
        helper_names.push(name);
    }

    let _ = writeln!(out, "def main() -> int {{");
    ctx.ints = vec![];
    ctx.ptrs.clear();
    ctx.stmts(&mut out, 1);
    // Calls into helpers so interprocedural flow is exercised. Some
    // arguments are fresh, possibly-uninitialized locals, so undefined
    // values actually cross call boundaries (the flows the resolver's
    // calling contexts exist to distinguish).
    for name in &helper_names {
        let a = if ctx.rng.pct(40) {
            let u = ctx.fresh("u");
            let _ = writeln!(out, "    int {u};");
            if ctx.rng.pct(50) {
                let c = ctx.int_expr(1);
                let e = ctx.int_expr(1);
                let _ = writeln!(out, "    if ({c}) {{ {u} = {e}; }}");
            }
            u
        } else {
            ctx.int_expr(1)
        };
        let b = ctx.int_expr(1);
        let v = ctx.fresh("r");
        let _ = writeln!(out, "    int {v} = {name}({a}, {b});");
        ctx.ints.push(v);
    }
    ctx.stmts(&mut out, 1);
    let ret = ctx.int_expr(2);
    let _ = writeln!(out, "    shared = {ret};");
    let _ = writeln!(out, "    print(shared);");
    let _ = writeln!(out, "    return 0;");
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = generate(42, GenConfig::default());
        let b = generate(42, GenConfig::default());
        assert_eq!(a, b);
        let c = generate(43, GenConfig::default());
        assert_ne!(a, c);
    }

    #[test]
    fn generated_programs_have_main_and_helpers() {
        let src = generate(7, GenConfig::default());
        assert!(src.contains("def main()"));
        assert!(src.contains("def helper0"));
    }

    #[test]
    fn rng_below_is_in_range() {
        let mut r = Rng::new(1);
        for _ in 0..1000 {
            assert!(r.below(10) < 10);
        }
    }
}
