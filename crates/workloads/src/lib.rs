//! # usher-workloads
//!
//! The benchmark suite of the reproduction: 15 synthetic TinyC programs
//! modelled after the SPEC CPU2000 C benchmarks the paper evaluates on,
//! plus a seeded random-program generator for property-based testing.
//!
//! ```
//! use usher_workloads::{all_workloads, Scale};
//!
//! let suite = all_workloads(Scale::TEST);
//! assert_eq!(suite.len(), 15);
//! let gzip = &suite[0];
//! assert_eq!(gzip.name, "164.gzip");
//! let module = gzip.compile_o0im().unwrap();
//! assert!(module.is_runnable());
//! ```

#![warn(missing_docs)]

pub mod generator;
pub mod programs;

pub use generator::{generate, GenConfig, Rng};

/// The generator seed ladder used by the benchmark harness and the
/// representation-equivalence suites: `(seed, helpers, max_stmts)`,
/// ordered smallest to largest. Keeping it here means the bench binary,
/// the CI smoke run and the property tests all measure/check the exact
/// same programs.
pub const SEED_LADDER: [(u64, usize, usize); 7] = [
    (11, 8, 8),
    (23, 16, 10),
    (37, 32, 12),
    (53, 64, 12),
    (71, 96, 14),
    (97, 128, 14),
    (131, 160, 14),
];

/// Instantiates one seed-ladder rung's generator configuration with the
/// ladder's standard 35% uninitialized-declaration rate.
pub fn ladder_config(helpers: usize, max_stmts: usize) -> GenConfig {
    GenConfig {
        helpers,
        max_stmts,
        uninit_pct: 35,
    }
}

use usher_frontend::CompileError;
use usher_ir::{Module, OptLevel};

/// Workload size. `@N@` in the templates becomes `n`; derived holes
/// (`@R@`, `@NNZ@` for the CSR kernel) scale with it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Scale {
    /// Primary scale constant.
    pub n: usize,
}

impl Scale {
    /// Small inputs for unit/integration tests.
    pub const TEST: Scale = Scale { n: 96 };
    /// Reference inputs for the benchmark harness.
    pub const REF: Scale = Scale { n: 1536 };
}

/// One benchmark program.
#[derive(Clone, Debug)]
pub struct Workload {
    /// SPEC-style name (e.g. `181.mcf`).
    pub name: &'static str,
    /// One-line description of the modelled behaviour.
    pub description: &'static str,
    /// Instantiated TinyC source.
    pub source: String,
}

impl Workload {
    /// Compiles under `O0+IM` (the paper's default configuration).
    ///
    /// # Errors
    ///
    /// Propagates front-end errors (the suite is tested to be error-free).
    pub fn compile_o0im(&self) -> Result<Module, CompileError> {
        usher_frontend::compile_o0im(&self.source)
    }

    /// Compiles under an explicit optimization level (Section 4.6).
    ///
    /// # Errors
    ///
    /// Propagates front-end errors.
    pub fn compile_with(&self, level: OptLevel) -> Result<Module, CompileError> {
        usher_frontend::compile_with(&self.source, level)
    }
}

/// Instantiates the whole suite at a scale.
pub fn all_workloads(scale: Scale) -> Vec<Workload> {
    programs::PROGRAMS
        .iter()
        .map(|(name, description, template)| Workload {
            name,
            description,
            source: instantiate(template, scale),
        })
        .collect()
}

/// Finds one workload by (suffix of its) name.
pub fn workload(name: &str, scale: Scale) -> Option<Workload> {
    all_workloads(scale)
        .into_iter()
        .find(|w| w.name == name || w.name.ends_with(name))
}

fn instantiate(template: &str, scale: Scale) -> String {
    let n = scale.n.max(64);
    let rows = n / 4 + 1;
    let nnz = (rows - 1) * 4;
    template
        .replace("@N@", &n.to_string())
        .replace("@R@", &rows.to_string())
        .replace("@NNZ@", &nnz.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_fifteen_compile_at_test_scale() {
        for w in all_workloads(Scale::TEST) {
            let m = w.compile_o0im();
            assert!(m.is_ok(), "{} failed to compile: {:?}", w.name, m.err());
            assert!(m.unwrap().is_runnable(), "{} has no main", w.name);
        }
    }

    #[test]
    fn all_fifteen_compile_at_ref_scale() {
        for w in all_workloads(Scale::REF) {
            assert!(w.compile_o0im().is_ok(), "{}", w.name);
        }
    }

    #[test]
    fn workload_lookup_by_suffix() {
        assert!(workload("mcf", Scale::TEST).is_some());
        assert!(workload("181.mcf", Scale::TEST).is_some());
        assert!(workload("nonexistent", Scale::TEST).is_none());
    }

    #[test]
    fn scales_change_the_source() {
        let a = workload("gzip", Scale::TEST).unwrap();
        let b = workload("gzip", Scale::REF).unwrap();
        assert_ne!(a.source, b.source);
    }

    #[test]
    fn generated_programs_compile() {
        for seed in 0..40u64 {
            let src = generate(seed, GenConfig::default());
            let r = usher_frontend::compile_o0im(&src);
            assert!(r.is_ok(), "seed {seed}: {:?}\n{src}", r.err());
        }
    }

    #[test]
    fn suite_compiles_at_o1_and_o2() {
        for w in all_workloads(Scale::TEST) {
            assert!(w.compile_with(OptLevel::O1).is_ok(), "{} at O1", w.name);
            assert!(w.compile_with(OptLevel::O2).is_ok(), "{} at O2", w.name);
        }
    }
}
