//! The 15 synthetic SPEC CPU2000 C workloads, written in TinyC.
//!
//! Each program mirrors the dominant computational pattern of its
//! namesake (hash-chain compression for gzip, pointer-chasing network
//! flow for mcf, a recursive-descent parser for parser, ...), prints a
//! checksum so semantic preservation is observable, and is parameterized
//! by a scale constant `@N@` substituted at build time.
//!
//! `197.parser` deliberately contains one genuine interprocedural use of
//! an undefined value, mirroring the real bug the paper's tools found in
//! that benchmark's `ppmatch()`.

/// (name, description, TinyC source template with `@N@` scale holes).
pub const PROGRAMS: [(&str, &str, &str); 15] = [
    (
        "164.gzip",
        "LZ77-style hash-chain compressor over a synthetic buffer",
        GZIP,
    ),
    (
        "175.vpr",
        "FPGA placement: grid of cells, cost-driven swaps",
        VPR,
    ),
    (
        "176.gcc",
        "compiler-ish: expression trees, constant folding, fnptr pass pipeline",
        GCC,
    ),
    (
        "177.mesa",
        "3D pipeline: fixed-point vertex transform and lighting",
        MESA,
    ),
    (
        "179.art",
        "neural-network image matcher over weight matrices",
        ART,
    ),
    (
        "181.mcf",
        "network simplex: pointer-chasing over arcs and nodes",
        MCF,
    ),
    (
        "183.equake",
        "sparse matrix-vector product (CSR) earthquake kernel",
        EQUAKE,
    ),
    (
        "186.crafty",
        "bitboard chess kernel: shifts, masks, popcounts",
        CRAFTY,
    ),
    (
        "188.ammp",
        "molecular dynamics: force accumulation over an atom list",
        AMMP,
    ),
    (
        "197.parser",
        "recursive-descent parser with heap AST (contains one real bug)",
        PARSER,
    ),
    (
        "253.perlbmk",
        "bytecode interpreter: dispatch loop, operand stack, hash table",
        PERLBMK,
    ),
    (
        "254.gap",
        "computer algebra: arena allocator and list workspace",
        GAP,
    ),
    (
        "255.vortex",
        "object database: record store/load traffic",
        VORTEX,
    ),
    (
        "256.bzip2",
        "block-sorting compressor: counting sort and MTF",
        BZIP2,
    ),
    (
        "300.twolf",
        "standard-cell placement by simulated annealing",
        TWOLF,
    ),
];

const GZIP: &str = r#"
// 164.gzip analogue: hash-chain LZ77 over a malloc'd window. The window
// and link buffers are heap blocks initialized by loops — defined at run
// time, but statically unprovable (array weak updates cannot kill the
// allocation's F), the typical residual MSan/Usher both must track.
int hash_head[64];
int bytes_in;
int bytes_out;

def fill_window(int *window, int *prev_link, int n) {
    int seed = 11;
    for (int i = 0; i < n; i = i + 1) {
        seed = (seed * 61 + 17) % 251;
        window[i] = seed;
        prev_link[i] = 0;
    }
}

def hash3(int a, int b, int c) -> int {
    return ((a * 31 + b) * 31 + c) % 64;
}

def longest_match(int *window, int pos, int cand, int n) -> int {
    int len = 0;
    while (pos + len < n && len < 32) {
        if (window[cand + len] != window[pos + len]) { break; }
        len = len + 1;
    }
    return len;
}

def deflate(int *window, int *prev_link, int n) -> int {
    int emitted = 0;
    int pos = 0;
    while (pos + 3 < n) {
        int h = hash3(window[pos], window[pos + 1], window[pos + 2]);
        int cand = hash_head[h];
        int best = 0;
        if (cand > 0 && cand < pos) {
            best = longest_match(window, pos, cand, n);
        }
        prev_link[pos] = cand;
        hash_head[h] = pos;
        if (best >= 3) {
            emitted = emitted + 2;
            pos = pos + best;
        } else {
            emitted = emitted + 1;
            pos = pos + 1;
        }
    }
    return emitted;
}

def main() -> int {
    int n = @N@;
    int *window;
    int *prev_link;
    window = malloc(n);
    prev_link = malloc(n);
    fill_window(window, prev_link, n);
    bytes_in = n;
    int out = deflate(window, prev_link, n);
    bytes_out = out;
    int check = 0;
    for (int i = 0; i < n; i = i + 1) {
        check = (check + window[i] * prev_link[i]) % 65521;
    }
    print(out);
    print(check + bytes_in - bytes_out);
    return 0;
}
"#;

const VPR: &str = r#"
// 175.vpr analogue: cells on a grid, greedy cost-improving swaps.
struct Cell { int x; int y; int kind; };
int grid[@N@];

def cost_of(struct Cell *cells, int ncells) -> int {
    int total = 0;
    for (int i = 1; i < ncells; i = i + 1) {
        int dx = (cells + i)->x - (cells + i - 1)->x;
        int dy = (cells + i)->y - (cells + i - 1)->y;
        if (dx < 0) { dx = 0 - dx; }
        if (dy < 0) { dy = 0 - dy; }
        total = total + dx + dy;
    }
    return total;
}

def try_swap(struct Cell *cells, int a, int b) -> int {
    int tx = (cells + a)->x;
    int ty = (cells + a)->y;
    (cells + a)->x = (cells + b)->x;
    (cells + a)->y = (cells + b)->y;
    (cells + b)->x = tx;
    (cells + b)->y = ty;
    return 1;
}

def main() -> int {
    int side = 16;
    int ncells = @N@ / 4 + 8;
    struct Cell *cells;
    cells = malloc(ncells);
    int seed = 7;
    for (int i = 0; i < ncells; i = i + 1) {
        seed = (seed * 137 + 29) % 4093;
        (cells + i)->x = seed % side;
        (cells + i)->y = (seed / side) % side;
        (cells + i)->kind = seed % 3;
        grid[i % @N@] = i;
    }
    int best = cost_of(cells, ncells);
    for (int pass = 0; pass < 12; pass = pass + 1) {
        for (int i = 0; i + 1 < ncells; i = i + 2) {
            try_swap(cells, i, i + 1);
            int c = cost_of(cells, ncells);
            if (c > best) {
                try_swap(cells, i, i + 1);
            } else {
                best = c;
            }
        }
    }
    print(best);
    print(grid[3]);
    return 0;
}
"#;

const GCC: &str = r#"
// 176.gcc analogue: build expression trees on the heap, fold constants,
// run a small pass pipeline through function pointers.
struct Expr { int op; int val; int aux; struct Expr *lhs; struct Expr *rhs; };

struct Expr *pool;
int pool_top;

def pool_get() -> struct Expr* {
    struct Expr *e = pool + pool_top;
    pool_top = pool_top + 1;
    if (pool_top >= @N@) { pool_top = 0; }
    return e;
}

def mk_leaf(int v) -> struct Expr* {
    struct Expr *e = pool_get();
    e->op = 0;
    e->val = v;
    e->lhs = 0;
    e->rhs = 0;
    return e;
}

def mk_node(int op, struct Expr *l, struct Expr *r) -> struct Expr* {
    struct Expr *e = pool_get();
    e->op = op;
    e->val = 0;
    e->aux = op * 16;
    e->lhs = l;
    e->rhs = r;
    return e;
}

def eval_expr(struct Expr *e) -> int {
    if (e->op == 0) { return e->val; }
    int a = eval_expr(e->lhs);
    int b = eval_expr(e->rhs);
    if (e->op == 1) { return a + b; }
    if (e->op == 2) { return a - b; }
    return a * b;
}

def fold(struct Expr *e) -> int {
    if (e->op == 0) { return 0; }
    int folded = fold(e->lhs) + fold(e->rhs);
    if (e->lhs->op == 0 && e->rhs->op == 0) {
        e->val = eval_expr(e);
        e->op = 0;
        folded = folded + 1;
    }
    return folded;
}

def count_nodes(struct Expr *e) -> int {
    if (e->op == 0) { return 1; }
    // aux is only initialized on interior nodes; leaves never set it, so
    // this branch condition is statically Bot (dynamically fine).
    int extra = 0;
    if (e->aux % 2 == 1) { extra = 1; }
    return 1 + extra + count_nodes(e->lhs) + count_nodes(e->rhs);
}

def build(int depth, int seed) -> struct Expr* {
    if (depth <= 0) { return mk_leaf(seed % 9 + 1); }
    struct Expr *l = build(depth - 1, seed * 3 + 1);
    struct Expr *r = build(depth - 1, seed * 5 + 2);
    return mk_node(seed % 3 + 1, l, r);
}

def run_pass(fn(struct Expr*) -> int pass, struct Expr *e) -> int {
    return pass(e);
}

def main() -> int {
    pool = malloc(@N@);
    pool_top = 0;
    int rounds = @N@ / 64 + 2;
    int check = 0;
    for (int r = 0; r < rounds; r = r + 1) {
        struct Expr *tree = build(5, r + 3);
        check = check + run_pass(eval_expr, tree);
        check = check + run_pass(fold, tree);
        check = check + run_pass(count_nodes, tree);
        check = check % 999983;
    }
    print(check);
    return 0;
}
"#;

const MESA: &str = r#"
// 177.mesa analogue: fixed-point vertex transform + diffuse lighting.
struct Vtx { int x; int y; int z; int lit; };
int mat[16];
int frames_done;

def set_identity() {
    for (int i = 0; i < 16; i = i + 1) { mat[i] = 0; }
    mat[0] = 256; mat[5] = 256; mat[10] = 256; mat[15] = 256;
}

def rotate_a_bit(int angle) {
    // crude integer cos/sin via table-free approximations
    int c = 256 - (angle * angle) / 128;
    int s = angle * 2;
    mat[0] = c; mat[1] = 0 - s;
    mat[4] = s; mat[5] = c;
}

def transform(struct Vtx *v) {
    int nx = (mat[0] * v->x + mat[1] * v->y + mat[2] * v->z) / 256;
    int ny = (mat[4] * v->x + mat[5] * v->y + mat[6] * v->z) / 256;
    int nz = (mat[8] * v->x + mat[9] * v->y + mat[10] * v->z) / 256;
    v->x = nx; v->y = ny; v->z = nz;
}

def light(struct Vtx *v, int lx, int ly, int lz) {
    int dot = v->x * lx + v->y * ly + v->z * lz;
    if (dot < 0) { dot = 0; }
    v->lit = dot / 64;
}

def main() -> int {
    int nverts = @N@;
    struct Vtx *verts;
    verts = malloc(nverts);
    int seed = 5;
    for (int i = 0; i < nverts; i = i + 1) {
        seed = (seed * 73 + 11) % 509;
        (verts + i)->x = seed - 250;
        (verts + i)->y = (seed * 3) % 101 - 50;
        (verts + i)->z = (seed * 7) % 67 - 33;
        (verts + i)->lit = 0;
    }
    set_identity();
    int check = 0;
    for (int frame = 0; frame < 8; frame = frame + 1) {
        frames_done = frame + 1;
        rotate_a_bit(frame * 3);
        for (int i = 0; i < nverts; i = i + 1) {
            transform(verts + i);
            light(verts + i, 10, 7, 3);
            check = (check + (verts + i)->lit) % 1000003;
        }
    }
    print(check + frames_done);
    return 0;
}
"#;

const ART: &str = r#"
// 179.art analogue: adaptive resonance matching of scaled-int vectors
// over heap-allocated weight matrices.
int *input_vec;
int *f1_weights;
int *f2_weights;

def prime_weights(int n) {
    for (int i = 0; i < n; i = i + 1) {
        f1_weights[i] = (i * 37 + 11) % 97;
        f2_weights[i] = (i * 53 + 7) % 89;
    }
}

def present(int n, int offset) -> int {
    for (int j = 0; j < 64; j = j + 1) {
        input_vec[j] = ((j + offset) * 29) % 83;
    }
    int winner = 0;
    int best = 0 - 1000000;
    for (int i = 0; i + 64 <= n; i = i + 64) {
        int act = 0;
        for (int j = 0; j < 64; j = j + 1) {
            act = act + f1_weights[i + j] * input_vec[j];
        }
        if (act > best) { best = act; winner = i; }
    }
    // resonance: adapt the winner's weights
    for (int j = 0; j < 64; j = j + 1) {
        int w = f2_weights[winner + j];
        f2_weights[winner + j] = (w * 3 + input_vec[j]) / 4;
    }
    return winner;
}

def main() -> int {
    int n = @N@;
    input_vec = malloc(64);
    f1_weights = malloc(n);
    f2_weights = malloc(n);
    prime_weights(n);
    int check = 0;
    for (int img = 0; img < 24; img = img + 1) {
        check = (check + present(n, img * 13)) % 65521;
    }
    for (int i = 0; i < n; i = i + 1) {
        check = (check + f2_weights[i]) % 65521;
    }
    print(check);
    return 0;
}
"#;

const MCF: &str = r#"
// 181.mcf analogue: min-cost-flow-ish pointer chasing over arcs/nodes.
struct NodeM { int potential; int flow; struct NodeM *parent; };
struct Arc { int cost; int cap; int flow; struct NodeM *tail; struct NodeM *head; };

def relax(struct Arc *arcs, int narcs) -> int {
    int improved = 0;
    for (int i = 0; i < narcs; i = i + 1) {
        struct Arc *a = arcs + i;
        int red = a->cost + a->tail->potential - a->head->potential;
        if (red < 0 && a->cap > a->flow) {
            a->head->potential = a->tail->potential + a->cost;
            a->head->parent = a->tail;
            a->flow = a->flow + 1;
            improved = improved + 1;
        }
    }
    return improved;
}

def main() -> int {
    int nnodes = @N@ / 4 + 16;
    int narcs = nnodes * 3;
    struct NodeM *nodes;
    struct Arc *arcs;
    nodes = calloc(nnodes);
    arcs = calloc(narcs);
    int seed = 13;
    for (int i = 0; i < narcs; i = i + 1) {
        seed = (seed * 97 + 41) % 8191;
        (arcs + i)->cost = seed % 100 - 50;
        (arcs + i)->cap = seed % 17 + 1;
        (arcs + i)->tail = nodes + (seed % nnodes);
        (arcs + i)->head = nodes + ((seed * 7 + 3) % nnodes);
    }
    int total = 0;
    for (int round = 0; round < 20; round = round + 1) {
        int got = relax(arcs, narcs);
        total = total + got;
        if (got == 0) { break; }
    }
    int check = 0;
    for (int i = 0; i < nnodes; i = i + 1) {
        check = (check + (nodes + i)->potential) % 1000033;
    }
    print(total);
    print(check);
    return 0;
}
"#;

const EQUAKE: &str = r#"
// 183.equake analogue: CSR sparse matrix-vector products.
int row_start[@R@];
int *col_idx;
int *values;
int *xvec;
int *yvec;

def build_matrix(int rows, int per_row) {
    int nz = 0;
    int seed = 3;
    for (int r = 0; r < rows; r = r + 1) {
        row_start[r] = nz;
        for (int k = 0; k < per_row; k = k + 1) {
            seed = (seed * 193 + 71) % 16381;
            col_idx[nz] = seed % rows;
            values[nz] = seed % 19 - 9;
            nz = nz + 1;
        }
    }
    row_start[rows] = nz;
}

def spmv(int rows) {
    for (int r = 0; r < rows; r = r + 1) {
        int acc = 0;
        for (int k = row_start[r]; k < row_start[r + 1]; k = k + 1) {
            acc = acc + values[k] * xvec[col_idx[k]];
        }
        yvec[r] = acc;
    }
}

def main() -> int {
    int rows = @R@ - 1;
    int per_row = 4;
    col_idx = malloc(@NNZ@);
    values = malloc(@NNZ@);
    xvec = malloc(rows);
    yvec = malloc(rows);
    build_matrix(rows, per_row);
    for (int r = 0; r < rows; r = r + 1) { xvec[r] = r % 13 + 1; }
    int check = 0;
    for (int ts = 0; ts < 10; ts = ts + 1) {
        spmv(rows);
        for (int r = 0; r < rows; r = r + 1) {
            xvec[r] = (yvec[r] / 2 + xvec[r]) % 4099;
        }
        check = (check + xvec[ts % rows]) % 999961;
    }
    print(check);
    return 0;
}
"#;

const CRAFTY: &str = r#"
// 186.crafty analogue: bitboard move generation arithmetic.
def popcount(int b) -> int {
    int c = 0;
    while (b != 0) {
        b = b & (b - 1);
        c = c + 1;
    }
    return c;
}

def knight_attacks(int sq) -> int {
    int bb = 1 << sq;
    int mask = 1152921504606846975;   // lower 60 bits
    int l1 = (bb >> 1) & mask;
    int r1 = (bb << 1) & mask;
    int h1 = l1 | r1;
    return ((h1 << 16) | (h1 >> 16) | (h1 << 8) | (h1 >> 8)) & mask;
}

int *attack_tab;

def init_tables() {
    for (int sq = 0; sq < 60; sq = sq + 1) {
        attack_tab[sq] = knight_attacks(sq);
    }
}

def evaluate(int own, int other) -> int {
    int score = popcount(own) * 100 - popcount(other) * 100;
    int mobility = 0;
    for (int sq = 0; sq < 60; sq = sq + 1) {
        if ((own >> sq) & 1) {
            mobility = mobility + popcount(attack_tab[sq] & ~own);
        }
    }
    return score + mobility * 4;
}

def search(int own, int other, int depth) -> int {
    if (depth == 0) { return evaluate(own, other); }
    int best = 0 - 1000000;
    for (int mv = 0; mv < 6; mv = mv + 1) {
        int bit = 1 << ((own * 7 + mv * 13) % 60);
        int next_own = own ^ bit;
        int v = 0 - search(other, next_own, depth - 1);
        if (v > best) { best = v; }
    }
    return best;
}

def main() -> int {
    attack_tab = malloc(60);
    init_tables();
    int check = 0;
    int rounds = @N@ / 128 + 2;
    for (int g = 0; g < rounds; g = g + 1) {
        int own = (g * 2654435761) % 1073741789;
        int other = (g * 40503 + 9973) % 1073741789;
        check = (check + search(own, other, 3)) % 1000003;
    }
    print(check);
    return 0;
}
"#;

const AMMP: &str = r#"
// 188.ammp analogue: MD force accumulation over a linked atom list.
struct Atom {
    int x; int y; int z;
    int fx; int fy; int fz;
    struct Atom *next;
};

def add_forces(struct Atom *a, struct Atom *b) {
    int dx = a->x - b->x;
    int dy = a->y - b->y;
    int dz = a->z - b->z;
    int d2 = dx * dx + dy * dy + dz * dz + 1;
    int f = 1000 / d2;
    a->fx = a->fx + f * dx; a->fy = a->fy + f * dy; a->fz = a->fz + f * dz;
    b->fx = b->fx - f * dx; b->fy = b->fy - f * dy; b->fz = b->fz - f * dz;
}

def integrate(struct Atom *head) -> int {
    int energy = 0;
    struct Atom *a = head;
    while (a != 0) {
        a->x = a->x + a->fx / 256;
        a->y = a->y + a->fy / 256;
        a->z = a->z + a->fz / 256;
        if (a->x > 400) { a->x = a->x % 400; }
        if (a->y > 400) { a->y = a->y % 400; }
        energy = energy + (a->fx * a->fx + a->fy * a->fy) / 4096;
        a->fx = 0; a->fy = 0; a->fz = 0;
        a = a->next;
    }
    return energy;
}

def main() -> int {
    int natoms = @N@ / 8 + 12;
    struct Atom *head = 0;
    int seed = 17;
    for (int i = 0; i < natoms; i = i + 1) {
        struct Atom *a;
        a = malloc(1);
        seed = (seed * 211 + 31) % 2039;
        a->x = seed % 200; a->y = (seed * 3) % 200; a->z = (seed * 7) % 200;
        a->next = head;
        head = a;
    }
    // Force fields are zeroed by a separate pass over the list, like
    // ammp's init: defined at run time, weak-update Bot statically.
    struct Atom *z = head;
    while (z != 0) {
        z->fx = 0; z->fy = 0; z->fz = 0;
        z = z->next;
    }
    int check = 0;
    for (int step = 0; step < 6; step = step + 1) {
        struct Atom *a = head;
        while (a != 0) {
            struct Atom *b = a->next;
            int budget = 4;
            while (b != 0 && budget > 0) {
                add_forces(a, b);
                b = b->next;
                budget = budget - 1;
            }
            a = a->next;
        }
        check = (check + integrate(head)) % 1000003;
    }
    print(check);
    return 0;
}
"#;

const PARSER: &str = r#"
// 197.parser analogue: tokenizer + recursive-descent expression parser
// building a heap AST. Contains ONE genuine use of an undefined value in
// pp_match (mirroring the ppmatch() bug the paper reports).
struct Tok { int kind; int val; };
struct Ast { int kind; int val; struct Ast *l; struct Ast *r; };
int *token_buf;
int ntokens;
int cursor;

def emit_tokens(int n) {
    // kinds: 0 num, 1 plus, 2 times, 3 lparen, 4 rparen
    int seed = 23;
    int depth = 0;
    int i = 0;
    while (i < n - 2) {
        seed = (seed * 167 + 13) % 1021;
        int pick = seed % 8;
        if (pick < 3) {
            token_buf[i] = (seed % 90) * 8;      // number, kind 0
            i = i + 1;
            if (i < n - 2) {
                token_buf[i] = (seed % 2) * 8 + 1 + (1 - seed % 2); // + or *
                i = i + 1;
            }
        } else {
            token_buf[i] = (seed % 50) * 8;
            i = i + 1;
        }
        depth = depth + 0;
    }
    token_buf[i] = 77 * 8;
    ntokens = i + 1;
    cursor = 0;
}

def peek_kind() -> int {
    if (cursor >= ntokens) { return 9; }
    return token_buf[cursor] % 8;
}

def next_val() -> int {
    int v = token_buf[cursor] / 8;
    cursor = cursor + 1;
    return v;
}

struct Ast *ast_pool;
int ast_top;

def ast_get() -> struct Ast* {
    struct Ast *a = ast_pool + ast_top;
    ast_top = ast_top + 1;
    if (ast_top >= @N@) { ast_top = 0; }
    return a;
}

def leaf(int v) -> struct Ast* {
    struct Ast *a = ast_get();
    a->kind = 0; a->val = v; a->l = 0; a->r = 0;
    return a;
}

def parse_factor() -> struct Ast* {
    return leaf(next_val());
}

def parse_term() -> struct Ast* {
    struct Ast *l = parse_factor();
    while (peek_kind() == 2) {
        cursor = cursor + 1;
        struct Ast *r = parse_factor();
        struct Ast *n = ast_get();
        n->kind = 2; n->val = 0; n->l = l; n->r = r;
        l = n;
    }
    return l;
}

def parse_expr() -> struct Ast* {
    struct Ast *l = parse_term();
    while (peek_kind() == 1) {
        cursor = cursor + 1;
        struct Ast *r = parse_term();
        struct Ast *n = ast_get();
        n->kind = 1; n->val = 0; n->l = l; n->r = r;
        l = n;
    }
    return l;
}

def eval_ast(struct Ast *a) -> int {
    if (a->kind == 0) { return a->val; }
    int x = eval_ast(a->l);
    int y = eval_ast(a->r);
    if (a->kind == 1) { return (x + y) % 65521; }
    return (x * y) % 65521;
}

// The genuine bug: `matched` is only assigned when a candidate is found,
// but it is branched on unconditionally afterwards (as in ppmatch).
def pp_match(int target) -> int {
    int matched;
    for (int i = 0; i < ntokens; i = i + 1) {
        if (token_buf[i] / 8 == target) {
            matched = i;
            break;
        }
    }
    if (matched > 0) { return 1; }
    return 0;
}

def main() -> int {
    token_buf = malloc(@N@);
    ast_pool = malloc(@N@);
    ast_top = 0;
    emit_tokens(@N@);
    int check = 0;
    int parses = 0;
    while (cursor < ntokens - 1 && parses < 200) {
        struct Ast *e = parse_expr();
        check = (check + eval_ast(e)) % 65521;
        parses = parses + 1;
        if (peek_kind() != 0) { cursor = cursor + 1; }
    }
    check = check + pp_match(3001);
    print(parses);
    print(check);
    return 0;
}
"#;

const PERLBMK: &str = r#"
// 253.perlbmk analogue: a tiny bytecode VM with an operand stack and a
// string-less hash table keyed by ints.
int *code;
int *stack_mem;
int *hash_keys;
int *hash_vals;

def hash_put(int k, int v) {
    int h = (k * 2654435761) % 128;
    if (h < 0) { h = 0 - h; }
    int probe = 0;
    while (probe < 128) {
        int slot = (h + probe) % 128;
        if (hash_keys[slot] == 0 || hash_keys[slot] == k) {
            hash_keys[slot] = k;
            hash_vals[slot] = v;
            return;
        }
        probe = probe + 1;
    }
}

def hash_get(int k) -> int {
    int h = (k * 2654435761) % 128;
    if (h < 0) { h = 0 - h; }
    int probe = 0;
    while (probe < 128) {
        int slot = (h + probe) % 128;
        if (hash_keys[slot] == k) { return hash_vals[slot]; }
        if (hash_keys[slot] == 0) { return 0; }
        probe = probe + 1;
    }
    return 0;
}

def assemble(int n) {
    int seed = 41;
    for (int i = 0; i < n; i = i + 1) {
        seed = (seed * 131 + 7) % 16369;
        code[i] = seed % 6 * 256 + seed % 97;
    }
}

def execute(int n) -> int {
    int sp = 0;
    int acc = 0;
    int pc = 0;
    while (pc < n) {
        int op = code[pc] / 256;
        int arg = code[pc] % 256;
        if (op == 0) {            // push
            if (sp < 255) { stack_mem[sp] = arg; sp = sp + 1; }
        } else { if (op == 1) {   // add
            if (sp >= 2) { stack_mem[sp - 2] = stack_mem[sp - 2] + stack_mem[sp - 1]; sp = sp - 1; }
        } else { if (op == 2) {   // mul
            if (sp >= 2) { stack_mem[sp - 2] = (stack_mem[sp - 2] * stack_mem[sp - 1]) % 9973; sp = sp - 1; }
        } else { if (op == 3) {   // store to hash
            if (sp >= 1) { hash_put(arg + 1, stack_mem[sp - 1]); sp = sp - 1; }
        } else { if (op == 4) {   // load from hash
            if (sp < 255) { stack_mem[sp] = hash_get(arg + 1); sp = sp + 1; }
        } else {                  // acc
            if (sp >= 1) { acc = (acc + stack_mem[sp - 1]) % 65521; sp = sp - 1; }
        } } } } }
        pc = pc + 1;
    }
    return acc * 31 + sp;
}

def main() -> int {
    int n = @N@;
    code = malloc(n);
    stack_mem = malloc(256);
    hash_keys = malloc(128);
    hash_vals = malloc(128);
    for (int i = 0; i < 128; i = i + 1) { hash_keys[i] = 0; hash_vals[i] = 0; }
    assemble(n);
    int check = 0;
    for (int round = 0; round < 6; round = round + 1) {
        check = (check + execute(n)) % 999979;
    }
    print(check);
    return 0;
}
"#;

const GAP: &str = r#"
// 254.gap analogue: bump arena with list cells; many uninitialized
// allocations and few strong-update opportunities.
int *arena;
int arena_top;

def arena_alloc(int cells) -> int {
    int at = arena_top;
    arena_top = arena_top + cells;
    if (arena_top >= @N@) { arena_top = 0; at = 0; }
    return at;
}

def cons(int head, int tail_idx) -> int {
    int c = arena_alloc(2);
    arena[c] = head;
    arena[c + 1] = tail_idx;
    return c;
}

def list_sum(int idx, int fuel) -> int {
    int s = 0;
    while (idx != 0 - 1 && fuel > 0) {
        s = (s + arena[idx]) % 65521;
        idx = arena[idx + 1];
        fuel = fuel - 1;
    }
    return s;
}

def reverse_list(int idx, int fuel) -> int {
    int acc = 0 - 1;
    while (idx != 0 - 1 && fuel > 0) {
        acc = cons(arena[idx], acc);
        idx = arena[idx + 1];
        fuel = fuel - 1;
    }
    return acc;
}

def main() -> int {
    arena = malloc(@N@);
    arena_top = 1;
    int check = 0;
    for (int round = 0; round < 16; round = round + 1) {
        int lst = 0 - 1;
        for (int i = 0; i < 60; i = i + 1) {
            lst = cons((i * 7 + round) % 127, lst);
        }
        int rev = reverse_list(lst, 100);
        check = (check + list_sum(lst, 100) + list_sum(rev, 100)) % 999959;
    }
    print(check);
    print(arena_top);
    return 0;
}
"#;

const VORTEX: &str = r#"
// 255.vortex analogue: an object store with fixed-size records; heavy
// load/store traffic through a portal table.
struct Rec { int id; int a; int b; int c; };
struct Rec *portal[64];

def db_insert(struct Rec *heap_area, int slot, int id, int seed) {
    struct Rec *r = heap_area + slot;
    r->id = id;
    r->a = seed % 1009;
    r->b = (seed * 3) % 1013;
    r->c = (seed * 7) % 1019;
    portal[id % 64] = r;
}

def db_lookup(int id) -> struct Rec* {
    struct Rec *r = portal[id % 64];
    if (r != 0) {
        if (r->id == id) { return r; }
    }
    return 0;
}

def db_update(int id, int delta) -> int {
    struct Rec *r = db_lookup(id);
    if (r == 0) { return 0; }
    r->a = r->a + delta;
    r->b = r->b ^ delta;
    r->c = r->c + r->a % 7;
    return 1;
}

def main() -> int {
    int nrecs = @N@ / 4 + 32;
    struct Rec *heap_area;
    heap_area = malloc(nrecs);
    int seed = 97;
    for (int i = 0; i < nrecs; i = i + 1) {
        seed = (seed * 229 + 19) % 32749;
        db_insert(heap_area, i, i, seed);
    }
    int hits = 0;
    int check = 0;
    for (int q = 0; q < nrecs * 4; q = q + 1) {
        int id = (q * 13 + 5) % (nrecs * 2);
        hits = hits + db_update(id, q % 11);
        struct Rec *r = db_lookup(id);
        if (r != 0) { check = (check + r->a + r->b) % 999961; }
    }
    print(hits);
    print(check);
    return 0;
}
"#;

const BZIP2: &str = r#"
// 256.bzip2 analogue: counting sort + move-to-front over a block.
int *block;
int freq[256];
int *sorted;
int mtf[256];
int blocks_done;
int crc_acc;

def generate(int n) {
    int seed = 29;
    for (int i = 0; i < n; i = i + 1) {
        seed = (seed * 179 + 23) % 6151;
        block[i] = seed % 256;
    }
}

def counting_sort(int n) {
    for (int v = 0; v < 256; v = v + 1) { freq[v] = 0; }
    for (int i = 0; i < n; i = i + 1) { freq[block[i]] = freq[block[i]] + 1; }
    int out = 0;
    for (int v = 0; v < 256; v = v + 1) {
        for (int k = 0; k < freq[v]; k = k + 1) {
            sorted[out] = v;
            out = out + 1;
        }
    }
}

def mtf_encode(int n) -> int {
    for (int v = 0; v < 256; v = v + 1) { mtf[v] = v; }
    int check = 0;
    for (int i = 0; i < n; i = i + 1) {
        int sym = block[i];
        int pos = 0;
        while (mtf[pos] != sym) { pos = pos + 1; }
        check = (check + pos) % 65521;
        while (pos > 0) {
            mtf[pos] = mtf[pos - 1];
            pos = pos - 1;
        }
        mtf[0] = sym;
    }
    return check;
}

def main() -> int {
    int n = @N@;
    block = malloc(n);
    sorted = malloc(n);
    generate(n);
    counting_sort(n);
    blocks_done = 1;
    int check = mtf_encode(n);
    crc_acc = (crc_acc * 31 + check) % 999979;
    check = (check + sorted[n / 2] * 256 + sorted[n / 3]) % 999979;
    print(check + crc_acc % 7 + blocks_done);
    return 0;
}
"#;

const TWOLF: &str = r#"
// 300.twolf analogue: simulated annealing over standard cells with a
// net-cost model and pseudo-random accept/reject.
struct Std { int x; int y; int width; };
int *netlist;

def wirelen(struct Std *cells, int ncells) -> int {
    int total = 0;
    for (int i = 0; i + 1 < ncells; i = i + 1) {
        int peer = netlist[i % @N@] % ncells;
        int dx = (cells + i)->x - (cells + peer)->x;
        int dy = (cells + i)->y - (cells + peer)->y;
        if (dx < 0) { dx = 0 - dx; }
        if (dy < 0) { dy = 0 - dy; }
        total = total + dx + dy + (cells + i)->width / 8;
    }
    return total;
}

def anneal(struct Std *cells, int ncells, int temp0) -> int {
    int rng = 71;
    int cost = wirelen(cells, ncells);
    for (int temp = temp0; temp > 0; temp = temp - 1) {
        for (int t = 0; t < ncells / 2; t = t + 1) {
            rng = (rng * 1103515245 + 12345) % 2147483647;
            if (rng < 0) { rng = 0 - rng; }
            int i = rng % ncells;
            int j = (rng / 7) % ncells;
            int ox = (cells + i)->x;
            (cells + i)->x = (cells + j)->x;
            (cells + j)->x = ox;
            int nc = wirelen(cells, ncells);
            int accept = 0;
            if (nc <= cost) { accept = 1; }
            if (rng % 100 < temp * 3) { accept = 1; }
            if (accept) {
                cost = nc;
            } else {
                ox = (cells + i)->x;
                (cells + i)->x = (cells + j)->x;
                (cells + j)->x = ox;
            }
        }
    }
    return cost;
}

def main() -> int {
    int ncells = @N@ / 8 + 10;
    netlist = malloc(@N@);
    struct Std *cells;
    cells = malloc(ncells);
    int seed = 31;
    for (int i = 0; i < ncells; i = i + 1) {
        seed = (seed * 149 + 43) % 3067;
        (cells + i)->x = seed % 64;
        (cells + i)->y = (seed / 64) % 64;
        (cells + i)->width = seed % 16 + 4;
        netlist[i % @N@] = seed;
    }
    int final_cost = anneal(cells, ncells, 6);
    print(final_cost);
    return 0;
}
"#;
