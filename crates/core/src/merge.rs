//! Access-equivalence merging of VFG nodes.
//!
//! Section 4.1 of the paper notes that "access-equivalent VFG nodes are
//! merged by using the technique from [11]" (SPAS) to keep definedness
//! resolution affordable. We realize the same idea as a forward
//! bisimulation quotient: two nodes are *access-equivalent* when their
//! dependence structure is indistinguishable — same node sort and the same
//! multiset of `(dependency class, edge kind)` pairs, recursively. Since
//! `Gamma(v)` is fully determined by the dependence closure below `v`,
//! bisimilar nodes provably share their `Gamma` value, so resolution can
//! run on the (often much smaller) quotient graph and be projected back.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

use usher_vfg::{NodeKind, Vfg};

use crate::resolve::{resolve_graph, Gamma};

/// Statistics from a merged resolution.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MergeStats {
    /// Nodes in the original graph.
    pub nodes: usize,
    /// Equivalence classes (nodes of the quotient graph).
    pub classes: usize,
    /// Partition-refinement rounds until the fixpoint.
    pub rounds: usize,
}

/// Computes the access-equivalence partition of the VFG. Returns
/// `(class id per node, number of classes, rounds)`.
pub fn access_equivalence_classes(vfg: &Vfg) -> (Vec<u32>, usize, usize) {
    let n = vfg.nodes.len();
    // Initial partition: node sort. Roots and checks keep their identity
    // coarse (they are distinguished by their dependence structure too).
    let sort = |k: &NodeKind| -> u64 {
        match k {
            NodeKind::RootT => 0,
            NodeKind::RootF => 1,
            NodeKind::Tl(..) => 2,
            NodeKind::Mem(..) => 3,
            NodeKind::Check(..) => 4,
        }
    };
    let mut class: Vec<u64> = vfg.nodes.iter().map(sort).collect();

    let mut rounds = 0usize;
    loop {
        rounds += 1;
        let mut next: Vec<u64> = Vec::with_capacity(n);
        for v in 0..n {
            let mut sig: Vec<(u64, u64)> = vfg
                .deps
                .edges(v as u32)
                .map(|(d, kind)| {
                    let mut h = DefaultHasher::new();
                    kind.hash(&mut h);
                    (class[d as usize], h.finish())
                })
                .collect();
            sig.sort_unstable();
            sig.dedup();
            let mut h = DefaultHasher::new();
            class[v].hash(&mut h);
            sig.hash(&mut h);
            next.push(h.finish());
        }
        let before: std::collections::HashSet<u64> = class.iter().copied().collect();
        let after: std::collections::HashSet<u64> = next.iter().copied().collect();
        let stable = before.len() == after.len() && {
            // Also require the partition itself to be unchanged (same
            // grouping), not just the same cardinality.
            let mut map: HashMap<u64, u64> = HashMap::new();
            let mut consistent = true;
            for (old, new) in class.iter().zip(next.iter()) {
                match map.get(old) {
                    Some(v) if v != new => {
                        consistent = false;
                        break;
                    }
                    Some(_) => {}
                    None => {
                        map.insert(*old, *new);
                    }
                }
            }
            consistent
        };
        class = next;
        if stable || rounds > 64 {
            break;
        }
    }

    // Densify class ids.
    let mut dense: HashMap<u64, u32> = HashMap::new();
    let mut out = Vec::with_capacity(n);
    for c in &class {
        let next_id = dense.len() as u32;
        out.push(*dense.entry(*c).or_insert(next_id));
    }
    (out, dense.len(), rounds)
}

/// Resolves definedness on the access-equivalence quotient of the VFG and
/// projects the result back onto the original nodes. Produces exactly the
/// same `Gamma` as [`crate::resolve::resolve`], usually faster on large
/// graphs.
pub fn resolve_merged(vfg: &Vfg, k: usize) -> (Gamma, MergeStats) {
    let n = vfg.nodes.len();
    let (class, nclasses, rounds) = access_equivalence_classes(vfg);

    // Quotient flows-to adjacency.
    let mut users: Vec<Vec<(u32, usher_vfg::EdgeKind)>> = vec![Vec::new(); nclasses];
    for v in 0..n {
        let cv = class[v];
        for (u, kind) in vfg.users.edges(v as u32) {
            let cu = class[u as usize];
            if !users[cv as usize].contains(&(cu, kind)) {
                users[cv as usize].push((cu, kind));
            }
        }
    }
    let f_class = class[vfg.f_root as usize];
    let users = usher_vfg::Csr::from_adjacency(&users);
    let (bot_classes, rstats) = resolve_graph(&users, f_class, k);

    let bot: Vec<bool> = (0..n).map(|v| bot_classes[class[v] as usize]).collect();
    (
        Gamma::from_bot_with_stats(bot, k, rstats),
        MergeStats {
            nodes: n,
            classes: nclasses,
            rounds,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resolve::resolve;
    use usher_frontend::compile_o0im;
    use usher_vfg::{analyze_module, VfgMode};
    use usher_workloads::{all_workloads, generate, GenConfig, Scale};

    #[test]
    fn merged_resolution_matches_direct_on_corpus() {
        for seed in 0..30u64 {
            let src = generate(seed, GenConfig::default());
            let m = compile_o0im(&src).expect("generated programs compile");
            let (_pa, _ms, vfg) = analyze_module(&m, VfgMode::Full);
            let direct = resolve(&vfg, 1);
            let (merged, stats) = resolve_merged(&vfg, 1);
            for v in 0..vfg.len() as u32 {
                assert_eq!(
                    direct.is_bot(v),
                    merged.is_bot(v),
                    "seed {seed} node {v} ({:?}), stats {stats:?}",
                    vfg.nodes[v as usize]
                );
            }
        }
    }

    #[test]
    fn merged_resolution_matches_direct_on_workloads() {
        for w in all_workloads(Scale::TEST) {
            let m = w.compile_o0im().expect(w.name);
            let (_pa, _ms, vfg) = analyze_module(&m, VfgMode::Full);
            let direct = resolve(&vfg, 1);
            let (merged, _stats) = resolve_merged(&vfg, 1);
            for v in 0..vfg.len() as u32 {
                assert_eq!(direct.is_bot(v), merged.is_bot(v), "{} node {v}", w.name);
            }
        }
    }

    #[test]
    fn merging_actually_reduces_node_count() {
        let w = all_workloads(Scale::TEST).into_iter().next().unwrap();
        let m = w.compile_o0im().unwrap();
        let (_pa, _ms, vfg) = analyze_module(&m, VfgMode::Full);
        let (_gamma, stats) = resolve_merged(&vfg, 1);
        assert!(
            stats.classes < stats.nodes,
            "expected a nontrivial quotient: {stats:?}"
        );
    }

    #[test]
    fn identical_chains_land_in_one_class() {
        // Two copies of the same defined computation are access-equivalent.
        let m = compile_o0im(
            "def main() -> int {
                 int a = 1;
                 int b = 1;
                 int x = a + 2;
                 int y = b + 2;
                 return x + y;
             }",
        )
        .unwrap();
        let (_pa, _ms, vfg) = analyze_module(&m, VfgMode::Full);
        let (class, nclasses, _) = access_equivalence_classes(&vfg);
        assert!(nclasses < vfg.len(), "{nclasses} vs {}", vfg.len());
        let _ = class;
    }
}
