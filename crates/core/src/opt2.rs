//! Opt II — Redundant Check Elimination (Section 3.5.2, Algorithm 1).
//!
//! If an undefined value is guaranteed to be detected at a critical
//! statement `s`, its rippling effects on statements dominated by `s` are
//! suppressed: every flow from the must-flow-from closure of `s`'s checked
//! variable into a dominated definition `r` is redirected to `T` in a
//! *copy* of the VFG, and definedness is re-resolved there. Guided
//! instrumentation then runs on the **original** VFG with the new `Gamma`
//! (so all shadow values stay correctly initialized) — which is exactly
//! what [`crate::instrument::guided_plan`] does when handed this `Gamma`.

use std::collections::{HashMap, HashSet};

use usher_ir::{Cfg, DomTree, FuncId, Module, Operand, Site};
use usher_pointer::PointerAnalysis;
use usher_vfg::{MemSsa, NodeKind, Vfg};

use crate::mfc::mfc;
use crate::resolve::{resolve, Gamma};

/// The result of running Opt II.
#[derive(Clone, Debug)]
pub struct Opt2Result {
    /// `Gamma` resolved on the modified graph; feed this to
    /// [`crate::instrument::guided_plan`] over the *original* VFG.
    pub gamma: Gamma,
    /// Number of distinct redirected nodes (Table 1 column `R`).
    pub redirected: usize,
}

/// Runs Algorithm 1 and re-resolves definedness with context depth `k`.
pub fn redundant_check_elimination(
    m: &Module,
    pa: &PointerAnalysis,
    ms: &MemSsa,
    vfg: &Vfg,
    k: usize,
) -> Opt2Result {
    let mut g2 = vfg.clone();
    let mut redirected: HashSet<u32> = HashSet::new();

    // Dominator trees per function, computed lazily.
    let mut dts: HashMap<FuncId, DomTree> = HashMap::new();
    let dt_of = |f: FuncId| -> DomTree {
        let func = &m.funcs[f];
        let cfg = Cfg::compute(func);
        DomTree::compute(func, &cfg)
    };

    for check in &vfg.checks {
        let Operand::Var(x) = check.operand else {
            continue;
        };
        let Some(x_node) = vfg.tl(check.site.func, x) else {
            continue;
        };

        // x-bar: the MFC, extended with concrete locations read by loads
        // inside it (Algorithm 1, line 4).
        let closure = mfc(m, vfg, x_node, true);
        let mut ax: HashSet<u32> = closure.nodes.clone();
        let tl_members: Vec<u32> = closure.nodes.iter().copied().collect();
        for n in tl_members {
            let Some(site) = vfg.def_site[n as usize] else {
                continue;
            };
            let NodeKind::Tl(f, _) = vfg.nodes[n as usize] else {
                continue;
            };
            let Some(fs) = ms.funcs.get(&f) else { continue };
            let Some(mus) = fs.mus.get(&site) else {
                continue;
            };
            // Only loads carry mus at TL def sites.
            for mu in mus {
                if pa.is_concrete(mu.loc) {
                    if let Some(mn) = vfg.mem(f, mu.def) {
                        ax.insert(mn);
                    }
                }
            }
        }

        // R_x: nodes outside the closure that depend on it, whose defining
        // statement is dominated by the check.
        dts.entry(check.site.func)
            .or_insert_with(|| dt_of(check.site.func));
        for &t in &ax {
            let user_list: Vec<u32> = vfg.users[t as usize].iter().map(|(r, _)| *r).collect();
            for r in user_list {
                if ax.contains(&r) || r == check.node {
                    continue;
                }
                let Some(r_site) = vfg.def_site[r as usize] else {
                    continue;
                };
                if r_site.func != check.site.func {
                    continue;
                }
                let dt = &dts[&check.site.func];
                if dominates_site(dt, check.site, r_site) {
                    g2.remove_edge(r, t);
                    g2.add_edge(r, g2.t_root, usher_vfg::EdgeKind::Direct);
                    redirected.insert(r);
                }
            }
        }
    }

    let gamma = resolve(&g2, k);
    Opt2Result {
        gamma,
        redirected: redirected.len(),
    }
}

fn dominates_site(dt: &DomTree, a: Site, b: Site) -> bool {
    if a == b {
        return false;
    }
    if a.block == b.block {
        return a.idx < b.idx;
    }
    dt.dominates(a.block, b.block)
}
