//! Opt II — Redundant Check Elimination (Section 3.5.2, Algorithm 1).
//!
//! If an undefined value is guaranteed to be detected at a critical
//! statement `s`, its rippling effects on statements dominated by `s` are
//! suppressed: every flow from the must-flow-from closure of `s`'s checked
//! variable into a dominated definition `r` is redirected to `T`, and
//! definedness is re-resolved on the redirected graph. Guided
//! instrumentation then runs on the **original** VFG with the new `Gamma`
//! (so all shadow values stay correctly initialized) — which is exactly
//! what [`crate::instrument::guided_plan`] does when handed this `Gamma`.
//!
//! The VFG is immutable, so the redirection is not graph surgery: the
//! discovery loop collects the removed `(r, t)` dependence edges into a
//! set and resolution runs over the *shared* condensation with those
//! edges filtered out ([`crate::resolve::resolve_condensed`]). This is
//! exact: removals only split SCCs (the condensation's topological order
//! stays valid, the intra-SCC fixpoints simply converge faster), and the
//! `r -> T` replacement edges cannot affect reachability from `F`
//! because `T` has no dependencies and is therefore never marked. The
//! original clone-and-mutate implementation is frozen as
//! [`redundant_check_elimination_reference`] over [`RefVfg`].

use std::collections::{HashMap, HashSet};

use usher_ir::{Budget, Cfg, DomTree, FuncId, FxHashSet, Inst, Module, Operand, Site};
use usher_pointer::PointerAnalysis;
use usher_vfg::{Csr, MemSsa, NodeKind, RefVfg, Vfg};

use crate::mfc::mfc;
use crate::resolve::{resolve_condensed_budgeted, resolve_graph, Gamma};

/// The result of running Opt II.
#[derive(Clone, Debug)]
pub struct Opt2Result {
    /// `Gamma` resolved on the modified graph; feed this to
    /// [`crate::instrument::guided_plan`] over the *original* VFG.
    pub gamma: Gamma,
    /// Number of distinct redirected nodes (Table 1 column `R`).
    pub redirected: usize,
}

/// What a budgeted Opt II run produced.
#[derive(Clone, Debug)]
pub struct Opt2Outcome {
    /// The (possibly partially discovered / partially resolved) result.
    pub result: Opt2Result,
    /// Per-node resolve coverage when the budget ran out during
    /// resolution: `resolved[v]` true means `v`'s value is exact (see
    /// [`crate::resolve::resolve_condensed_budgeted`]). `None` means
    /// resolution completed.
    pub resolved: Option<Vec<bool>>,
    /// Whether the discovery loop visited every check. Each check's
    /// redirections are independently sound, so a truncated discovery is
    /// still a correct (just weaker) Opt II — but it is *not* the
    /// unbudgeted output, so callers must not cache it.
    pub discovery_complete: bool,
}

impl Opt2Outcome {
    /// Whether the outcome is byte-identical to an unbudgeted run (and
    /// therefore safe to cache).
    pub fn is_complete(&self) -> bool {
        self.discovery_complete && self.resolved.is_none()
    }
}

/// Runs Algorithm 1 and re-resolves definedness with context depth `k`.
pub fn redundant_check_elimination(
    m: &Module,
    pa: &PointerAnalysis,
    ms: &MemSsa,
    vfg: &Vfg,
    k: usize,
) -> Opt2Result {
    let out = redundant_check_elimination_budgeted(m, pa, ms, vfg, k, &Budget::unlimited());
    debug_assert!(out.is_complete(), "unlimited budgets never exhaust");
    out.result
}

/// Budgeted Opt II. Charges the discovery loop per check, per closure
/// node and per examined user edge; resolution continues on the same
/// budget through the anytime engine. Stopping discovery early keeps the
/// redirections found so far — each check's removals stand on their own
/// (running Opt II on a subset of checks is just a weaker Opt II), so
/// the partial set is sound.
pub fn redundant_check_elimination_budgeted(
    m: &Module,
    pa: &PointerAnalysis,
    ms: &MemSsa,
    vfg: &Vfg,
    k: usize,
    budget: &Budget,
) -> Opt2Outcome {
    let mut redirected: HashSet<u32> = HashSet::new();
    // Removed dependence edges `(r, t)`, matched kind-blind like the
    // reference's `remove_edge`.
    let mut removed: FxHashSet<(u32, u32)> = FxHashSet::default();
    let mut discovery_complete = true;

    // Dominator trees per function, computed lazily.
    let mut dts: HashMap<FuncId, DomTree> = HashMap::new();
    let dt_of = |f: FuncId| -> DomTree {
        let func = &m.funcs[f];
        let cfg = Cfg::compute(func);
        DomTree::compute(func, &cfg)
    };

    'discovery: for check in &vfg.checks {
        if !budget.charge(1) {
            discovery_complete = false;
            break 'discovery;
        }
        let Operand::Var(x) = check.operand else {
            continue;
        };
        let Some(x_node) = vfg.tl(check.site.func, x) else {
            continue;
        };

        // x-bar: the MFC, extended with concrete locations read by loads
        // inside it (Algorithm 1, line 4).
        let closure = mfc(m, vfg, x_node, true);
        if !budget.charge(closure.nodes.len() as u64) {
            discovery_complete = false;
            break 'discovery;
        }
        let mut ax: HashSet<u32> = closure.nodes.clone();
        for &n in &closure.nodes {
            let Some(site) = vfg.def_site[n as usize] else {
                continue;
            };
            let NodeKind::Tl(f, _) = vfg.nodes[n as usize] else {
                continue;
            };
            let Some(fs) = ms.funcs.get(&f) else { continue };
            let Some(mus) = fs.mus.get(&site) else {
                continue;
            };
            // Only loads carry mus at TL def sites.
            for mu in mus {
                if pa.is_concrete(mu.loc) {
                    if let Some(mn) = vfg.mem(f, mu.def) {
                        ax.insert(mn);
                    }
                }
            }
        }

        // R_x: nodes outside the closure that depend on it, whose defining
        // statement is dominated by the check.
        dts.entry(check.site.func)
            .or_insert_with(|| dt_of(check.site.func));
        for &t in &ax {
            for (r, _) in vfg.users.edges(t) {
                if !budget.charge(1) {
                    // Dropping the rest of THIS check's redirections is
                    // fine too: a subset of removals re-resolves to a
                    // Gamma that is correct for the original graph plus
                    // the removals actually applied, and the filter
                    // below only consults `removed`.
                    discovery_complete = false;
                    break 'discovery;
                }
                if ax.contains(&r) || r == check.node {
                    continue;
                }
                let Some(r_site) = vfg.def_site[r as usize] else {
                    continue;
                };
                if r_site.func != check.site.func {
                    continue;
                }
                let dt = &dts[&check.site.func];
                if dominates_site(dt, check.site, r_site) {
                    removed.insert((r, t));
                    redirected.insert(r);
                }
            }
        }
    }

    let (gamma, resolved) =
        resolve_condensed_budgeted(vfg, k, |user, node| removed.contains(&(user, node)), budget);
    Opt2Outcome {
        result: Opt2Result {
            gamma,
            redirected: redirected.len(),
        },
        resolved,
        discovery_complete,
    }
}

fn dominates_site(dt: &DomTree, a: Site, b: Site) -> bool {
    if a == b {
        return false;
    }
    if a.block == b.block {
        return a.idx < b.idx;
    }
    dt.dominates(a.block, b.block)
}

// ---- reference implementation (pre-overhaul), kept for equivalence ----

/// The original Opt II: clone the adjacency-list VFG, surgically rewire
/// it, and re-resolve with the visited-state walk over a freshly frozen
/// CSR — exactly the pre-condensation cost profile. Semantics are
/// frozen; do not optimize.
pub fn redundant_check_elimination_reference(
    m: &Module,
    pa: &PointerAnalysis,
    ms: &MemSsa,
    vfg: &RefVfg,
    k: usize,
) -> Opt2Result {
    let mut g2 = vfg.clone();
    let mut redirected: HashSet<u32> = HashSet::new();

    let mut dts: HashMap<FuncId, DomTree> = HashMap::new();
    let dt_of = |f: FuncId| -> DomTree {
        let func = &m.funcs[f];
        let cfg = Cfg::compute(func);
        DomTree::compute(func, &cfg)
    };

    for check in &vfg.checks {
        let Operand::Var(x) = check.operand else {
            continue;
        };
        let Some(x_node) = vfg.tl(check.site.func, x) else {
            continue;
        };

        let closure = mfc_reference(m, vfg, x_node, true);
        let mut ax: HashSet<u32> = closure.clone();
        for &n in &closure {
            let Some(site) = vfg.def_site[n as usize] else {
                continue;
            };
            let NodeKind::Tl(f, _) = vfg.nodes[n as usize] else {
                continue;
            };
            let Some(fs) = ms.funcs.get(&f) else { continue };
            let Some(mus) = fs.mus.get(&site) else {
                continue;
            };
            for mu in mus {
                if pa.is_concrete(mu.loc) {
                    if let Some(mn) = vfg.mem(f, mu.def) {
                        ax.insert(mn);
                    }
                }
            }
        }

        dts.entry(check.site.func)
            .or_insert_with(|| dt_of(check.site.func));
        for &t in &ax {
            let user_list: Vec<u32> = vfg.users[t as usize].iter().map(|(r, _)| *r).collect();
            for r in user_list {
                if ax.contains(&r) || r == check.node {
                    continue;
                }
                let Some(r_site) = vfg.def_site[r as usize] else {
                    continue;
                };
                if r_site.func != check.site.func {
                    continue;
                }
                let dt = &dts[&check.site.func];
                if dominates_site(dt, check.site, r_site) {
                    g2.remove_edge(r, t);
                    g2.add_edge(r, g2.t_root, usher_vfg::EdgeKind::Direct);
                    redirected.insert(r);
                }
            }
        }
    }

    let users = Csr::from_adjacency(&g2.users);
    let (bot, stats) = resolve_graph(&users, g2.f_root, k);
    Opt2Result {
        gamma: Gamma::from_bot_with_stats(bot, k, stats),
        redirected: redirected.len(),
    }
}

/// The MFC fold of [`crate::mfc::mfc`], restricted to the node set (all
/// Opt II consumes) and reading the reference adjacency lists.
fn mfc_reference(m: &Module, vfg: &RefVfg, x_node: u32, fold_bitwise: bool) -> HashSet<u32> {
    let mut nodes: HashSet<u32> = HashSet::new();
    let mut work = vec![x_node];
    let mut seen: HashSet<u32> = HashSet::new();
    while let Some(v) = work.pop() {
        if !seen.insert(v) {
            continue;
        }
        if !matches!(vfg.nodes[v as usize], NodeKind::Tl(..)) {
            continue;
        }
        nodes.insert(v);
        let foldable = match def_inst_reference(m, vfg, v) {
            Some(Inst::Copy { .. }) | Some(Inst::Un { .. }) | Some(Inst::Gep { .. }) => true,
            Some(Inst::Bin { op, .. }) => fold_bitwise || !op.is_bitwise(),
            Some(Inst::Alloc { .. }) => false,
            _ => false,
        };
        if foldable {
            for &(dep, _) in &vfg.deps[v as usize] {
                work.push(dep);
            }
        }
    }
    nodes
}

fn def_inst_reference<'m>(m: &'m Module, vfg: &RefVfg, node: u32) -> Option<&'m Inst> {
    let NodeKind::Tl(f, _) = vfg.nodes[node as usize] else {
        return None;
    };
    let site = vfg.def_site[node as usize]?;
    debug_assert_eq!(site.func, f);
    m.funcs[f].blocks[site.block].insts.get(site.idx)
}
