//! Definedness resolution (Section 3.3).
//!
//! `Gamma(v) = Bot` iff node `v` is reachable from the root `F` along
//! value-flow edges, computed **context-sensitively** by matching call and
//! return edges so unrealizable interprocedural paths (enter through one
//! call site, exit through another) are ruled out. The paper configures
//! 1-call-site sensitivity; the depth is a parameter here (0 recovers a
//! context-insensitive analysis, useful as an ablation).
//!
//! The engine condenses the `users` graph into its SCC DAG (computed
//! once per VFG, shared with Opt II) and propagates reachability as a
//! single forward pass in topological order, with a worklist fixpoint
//! only inside non-trivial components. Contexts are interned into a
//! dense `u32` space ([`CtxTable`]) and each node carries a *lane
//! bitset* over context ids: a `Direct` edge moves every context at
//! once with word-parallel ORs, and only `Call`/`Ret` edges (which
//! remap contexts through push/pop) iterate individual lanes. The
//! per-`(node, context)` visited-state walk this replaces is retained as
//! [`resolve_graph`] — it still resolves quotient graphs for
//! access-equivalence merging and prices the frozen reference path in
//! `scripts/bench.sh` — and the original clone-and-hash engine as
//! [`resolve_reference`].

use std::collections::HashSet;

use usher_ir::{Budget, Operand, Site};
use usher_vfg::demand::{transfer, CtxTable, DeadlinePoller, DemandEngine, DemandStats, Lanes};
use usher_vfg::{Csr, EdgeKind, RefVfg, Vfg};

/// The definedness state of a node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Definedness {
    /// Only reachable from `T`: statically proven defined.
    Top,
    /// Reachable from `F`: may be undefined.
    Bot,
}

/// Counters from one resolution run (threaded into driver telemetry).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ResolveStats {
    /// Distinct k-limited contexts interned.
    pub interned_contexts: usize,
    /// `(node, context)` states visited.
    pub visited_states: usize,
    /// SCCs in the users-graph condensation (0 for the walk engine).
    pub sccs: usize,
    /// SCCs needing an intra-component fixpoint (size > 1 or self-loop).
    pub nontrivial_sccs: usize,
    /// 64-bit word operations spent in lane propagation (0 for the walk
    /// engine).
    pub word_ops: usize,
}

/// The resolved `Gamma` map.
#[derive(Clone, Debug)]
pub struct Gamma {
    bot: Vec<bool>,
    /// Context depth used.
    pub context_depth: usize,
    /// Resolution counters.
    pub stats: ResolveStats,
}

impl Gamma {
    /// State of a node.
    pub fn of(&self, node: u32) -> Definedness {
        if self.bot[node as usize] {
            Definedness::Bot
        } else {
            Definedness::Top
        }
    }

    /// Whether the node may be undefined.
    pub fn is_bot(&self, node: u32) -> bool {
        self.bot[node as usize]
    }

    /// Number of `Bot` nodes.
    pub fn bot_count(&self) -> usize {
        self.bot.iter().filter(|b| **b).count()
    }

    /// Number of VFG nodes this map covers.
    pub fn len(&self) -> usize {
        self.bot.len()
    }

    /// Whether the map covers no nodes.
    pub fn is_empty(&self) -> bool {
        self.bot.is_empty()
    }

    /// Builds a `Gamma` from a raw bot vector (used by the merged
    /// resolution path).
    pub fn from_bot(bot: Vec<bool>, context_depth: usize) -> Gamma {
        Gamma {
            bot,
            context_depth,
            stats: ResolveStats::default(),
        }
    }

    /// Like [`Gamma::from_bot`] but keeps the engine's counters.
    pub fn from_bot_with_stats(bot: Vec<bool>, context_depth: usize, stats: ResolveStats) -> Gamma {
        Gamma {
            bot,
            context_depth,
            stats,
        }
    }
}

/// Per-node visited bitsets indexed by `CtxId`, stored as one flat
/// strided buffer (one allocation, grown only when the context count
/// crosses a 64-multiple).
struct Visited {
    words: Vec<u64>,
    /// Words per node.
    stride: usize,
    n: usize,
    states: usize,
}

impl Visited {
    fn new(n: usize) -> Visited {
        Visited {
            words: vec![0u64; n],
            stride: 1,
            n,
            states: 0,
        }
    }

    #[cold]
    fn grow(&mut self, need: usize) {
        let new_stride = need.next_power_of_two();
        let mut new_words = vec![0u64; self.n * new_stride];
        for v in 0..self.n {
            new_words[v * new_stride..v * new_stride + self.stride]
                .copy_from_slice(&self.words[v * self.stride..(v + 1) * self.stride]);
        }
        self.words = new_words;
        self.stride = new_stride;
    }

    /// Marks `(node, ctx)`; returns whether it was new.
    #[inline]
    fn insert(&mut self, node: u32, ctx: u32) -> bool {
        let wi = (ctx / 64) as usize;
        if wi >= self.stride {
            self.grow(wi + 1);
        }
        let w = &mut self.words[node as usize * self.stride + wi];
        let mask = 1u64 << (ctx % 64);
        if *w & mask == 0 {
            *w |= mask;
            self.states += 1;
            true
        } else {
            false
        }
    }
}

/// Resolves definedness over the VFG with `k`-call-site context
/// sensitivity (the paper uses `k = 1`), via the condensed context-lane
/// engine.
pub fn resolve(vfg: &Vfg, k: usize) -> Gamma {
    resolve_condensed(vfg, k, |_, _| false)
}

/// The condensed engine, with an edge filter: the users edge `node ->
/// user` is ignored when `skip(user, node)` returns true. Opt II resolves
/// its redirected graph this way — edge *removals* only ever split SCCs,
/// so the shared condensation's topological order stays valid and the
/// graph never needs to be cloned or mutated.
pub fn resolve_condensed(vfg: &Vfg, k: usize, skip: impl Fn(u32, u32) -> bool) -> Gamma {
    resolve_condensed_budgeted(vfg, k, skip, &Budget::unlimited()).0
}

/// Budgeted resolution with default options (no edge filter).
///
/// See [`resolve_condensed_budgeted`] for the anytime contract.
pub fn resolve_budgeted(vfg: &Vfg, k: usize, budget: &Budget) -> (Gamma, Option<Vec<bool>>) {
    resolve_condensed_budgeted(vfg, k, |_, _| false, budget)
}

/// The anytime condensed engine.
///
/// The condensation is processed in topological order, and every users
/// edge points from an earlier-processed SCC to a later one — so by the
/// time an SCC's intra-component fixpoint and cross-edge pass finish,
/// its members have received every inbound contribution they ever will:
/// their `Gamma` values are **exact**, not approximations. That makes
/// resolution an anytime algorithm: stop between (or inside) SCCs, keep
/// the exact prefix, and conservatively force every node of the current
/// and all unprocessed SCCs to `Bot` (more propagation can only move a
/// node Top→Bot, so forced-Bot over-approximates — sound).
///
/// Returns the map plus `Some(resolved)` when the budget ran out:
/// `resolved[v]` is true iff `v`'s SCC was fully processed and its value
/// is exact. `None` means the run completed and the map is identical to
/// the unbudgeted engine's.
pub fn resolve_condensed_budgeted(
    vfg: &Vfg,
    k: usize,
    skip: impl Fn(u32, u32) -> bool,
    budget: &Budget,
) -> (Gamma, Option<Vec<bool>>) {
    let users = &vfg.users;
    let cond = vfg.condensation();
    let n = users.len();
    let mut ctxs = CtxTable::new(k);
    let mut lanes = Lanes::new(n);
    let mut scratch: Vec<u64> = Vec::new();
    let mut queue: Vec<u32> = Vec::new();
    let mut queued = vec![false; n];
    let mut resolved = vec![false; n];
    let mut exhausted = false;
    // The wall-clock deadline is polled *inside* the SCC loops (every
    // `DeadlinePoller::PERIOD` charge units), not just at stage
    // boundaries — one giant SCC must not blow past `--deadline-ms`.
    let mut poller = DeadlinePoller::new();

    lanes.set(vfg.f_root, ctxs.empty());

    // SCCs in topological order of the condensation: every cross-SCC
    // users edge points from a higher id to a lower one, so when an SCC
    // is reached its members' lanes are final after the intra fixpoint.
    'sccs: for c in cond.topo_order() {
        let members = cond.members_of(c);
        if !budget.charge(members.len() as u64) || poller.due(budget) {
            exhausted = true;
            break 'sccs;
        }
        // Intra-SCC fixpoint, seeded with members that already have
        // reachable contexts.
        for &u in members {
            if !lanes.row_empty(u) {
                queue.push(u);
                queued[u as usize] = true;
            }
        }
        while let Some(u) = queue.pop() {
            queued[u as usize] = false;
            for (w, kind) in users.edges(u) {
                if cond.comp[w as usize] != c || skip(w, u) {
                    continue;
                }
                if !budget.charge(1) || poller.due(budget) {
                    exhausted = true;
                    break 'sccs;
                }
                if transfer(&mut lanes, &mut ctxs, &mut scratch, u, w, kind) && !queued[w as usize]
                {
                    queue.push(w);
                    queued[w as usize] = true;
                }
            }
        }
        // Cross-SCC edges, once per member, with final lanes.
        for &u in members {
            if lanes.row_empty(u) {
                continue;
            }
            for (w, kind) in users.edges(u) {
                if cond.comp[w as usize] == c || skip(w, u) {
                    continue;
                }
                if !budget.charge(1) || poller.due(budget) {
                    exhausted = true;
                    break 'sccs;
                }
                transfer(&mut lanes, &mut ctxs, &mut scratch, u, w, kind);
            }
        }
        for &u in members {
            resolved[u as usize] = true;
        }
    }

    let bot: Vec<bool> = if exhausted {
        (0..n as u32)
            .map(|v| !resolved[v as usize] || !lanes.row_empty(v))
            .collect()
    } else {
        (0..n as u32).map(|v| !lanes.row_empty(v)).collect()
    };
    let stats = ResolveStats {
        interned_contexts: ctxs.len(),
        visited_states: lanes.states(),
        sccs: cond.sccs,
        nontrivial_sccs: cond.nontrivial,
        word_ops: lanes.word_ops(),
    };
    let gamma = Gamma {
        bot,
        context_depth: k,
        stats,
    };
    (gamma, if exhausted { Some(resolved) } else { None })
}

/// Demand-driven `Gamma` materialization (the paper's Figure 7 deduction
/// direction; DESIGN.md §13): instead of resolving every node, a
/// [`DemandEngine`] queries exactly the nodes guided planning consults —
/// every check node plus the top-level node of each checked operand —
/// and every node outside the walked cones is forced to `Bot` (sound:
/// more resolution can only move a node Top→Bot, and planning never
/// consults outside the cones, so the resulting plan is byte-equal to
/// the exhaustively-resolved one).
///
/// Returns the map, the engine's query counters, and — mirroring
/// [`resolve_budgeted`] — `Some(coverage)` when the budget ran out
/// mid-walk (`coverage[v]` true iff `v`'s value is exact) or `None` when
/// every query completed.
pub fn resolve_demand(
    vfg: &Vfg,
    k: usize,
    budget: &Budget,
) -> (Gamma, DemandStats, Option<Vec<bool>>) {
    let mut eng = DemandEngine::new(vfg, k);
    let mut complete = true;
    for ch in &vfg.checks {
        complete &= eng.query(vfg, ch.node, budget).complete;
        if let Operand::Var(v) = ch.operand {
            if let Some(tl) = vfg.tl(ch.site.func, v) {
                complete &= eng.query(vfg, tl, budget).complete;
            }
        }
    }
    let bot: Vec<bool> = (0..vfg.len() as u32)
        .map(|v| eng.verdict_of(v).unwrap_or(true))
        .collect();
    let cond = vfg.condensation();
    let stats = ResolveStats {
        interned_contexts: eng.interned_contexts(),
        visited_states: eng.visited_states(),
        sccs: cond.sccs,
        nontrivial_sccs: cond.nontrivial,
        word_ops: eng.word_ops(),
    };
    let coverage = (!complete).then(|| eng.coverage().to_vec());
    (
        Gamma::from_bot_with_stats(bot, k, stats),
        eng.stats(),
        coverage,
    )
}

/// The underlying reachability engine: given forward (flows-to) adjacency
/// `users` in CSR form, marks every node reachable from `f_root` under
/// partially balanced, `k`-limited call/return matching. Exposed so
/// clients (e.g. access-equivalence merging) can resolve quotient graphs.
pub fn resolve_graph(users: &Csr, f_root: u32, k: usize) -> (Vec<bool>, ResolveStats) {
    let n = users.len();
    let mut bot = vec![false; n];
    let mut ctxs = CtxTable::new(k);
    let mut visited = Visited::new(n);
    let mut work: Vec<(u32, u32)> = Vec::new();

    let empty = ctxs.empty();
    visited.insert(f_root, empty);
    work.push((f_root, empty));
    bot[f_root as usize] = true;

    while let Some((node, ctx)) = work.pop() {
        // Flow to every user (a node that depends on `node`).
        for (user, kind) in users.edges(node) {
            let next_ctx = match kind {
                EdgeKind::Direct => ctx,
                // user = callee formal, node = caller actual: entering.
                EdgeKind::Call(site) => ctxs.push(ctx, site),
                // user = caller result, node = callee return: leaving.
                EdgeKind::Ret(site) => match ctxs.pop(ctx, site) {
                    Some(c) => c,
                    None => continue,
                },
            };
            if visited.insert(user, next_ctx) {
                bot[user as usize] = true;
                work.push((user, next_ctx));
            }
        }
    }
    let stats = ResolveStats {
        interned_contexts: ctxs.len(),
        visited_states: visited.states,
        ..Default::default()
    };
    (bot, stats)
}

// ---- reference engine (pre-overhaul), kept for equivalence/bench ---------

/// A k-limited calling context as an owned stack (the reference engine's
/// representation; the production engine interns these).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
struct Ctx {
    stack: Vec<Site>,
    overflowed: bool,
}

impl Ctx {
    fn empty() -> Ctx {
        Ctx {
            stack: Vec::new(),
            overflowed: false,
        }
    }

    fn push(&self, site: Site, k: usize) -> Ctx {
        let mut c = self.clone();
        if k == 0 {
            c.overflowed = true;
            return c;
        }
        c.stack.push(site);
        if c.stack.len() > k {
            c.stack.remove(0);
            c.overflowed = true;
        }
        c
    }

    /// Returns `None` when the return is unrealizable in this context.
    fn pop(&self, site: Site) -> Option<Ctx> {
        let mut c = self.clone();
        match c.stack.pop() {
            Some(top) if top == site => Some(c),
            Some(_) => None,
            None => Some(c),
        }
    }
}

/// The original clone-and-hash resolution engine over the frozen
/// adjacency-list VFG, kept as the oracle for the condensed engine.
/// Semantics are frozen; do not optimize.
pub fn resolve_reference(vfg: &RefVfg, k: usize) -> Gamma {
    let bot = resolve_graph_reference(&vfg.users, vfg.f_root, vfg.nodes.len(), k);
    Gamma {
        bot,
        context_depth: k,
        stats: ResolveStats::default(),
    }
}

/// Reference counterpart of [`resolve_graph`] over plain adjacency lists.
pub fn resolve_graph_reference(
    users: &[Vec<(u32, EdgeKind)>],
    f_root: u32,
    n: usize,
    k: usize,
) -> Vec<bool> {
    let mut bot = vec![false; n];
    let mut visited: HashSet<(u32, Ctx)> = HashSet::new();
    let mut work: Vec<(u32, Ctx)> = Vec::new();

    let start = (f_root, Ctx::empty());
    visited.insert(start.clone());
    work.push(start);
    bot[f_root as usize] = true;

    while let Some((node, ctx)) = work.pop() {
        for &(user, kind) in &users[node as usize] {
            let next_ctx = match kind {
                EdgeKind::Direct => Some(ctx.clone()),
                EdgeKind::Call(site) => Some(ctx.push(site, k)),
                EdgeKind::Ret(site) => ctx.pop(site),
            };
            let Some(next_ctx) = next_ctx else { continue };
            let state = (user, next_ctx);
            if visited.insert(state.clone()) {
                bot[user as usize] = true;
                work.push(state);
            }
        }
    }
    bot
}

#[cfg(test)]
mod tests {
    use super::*;
    use usher_frontend::compile_o0im;
    use usher_ir::{FuncId, Idx, Inst, Module, Operand};
    use usher_vfg::{analyze_module, VfgMode};

    fn gamma_for(src: &str, k: usize) -> (Module, Vfg, Gamma) {
        let m = compile_o0im(src).expect("compiles");
        let (_pa, _ms, g) = analyze_module(&m, VfgMode::Full);
        let gamma = resolve(&g, k);
        (m, g, gamma)
    }

    /// The node of the first `Ret` operand of a function.
    fn ret_node(m: &Module, g: &Vfg, name: &str) -> u32 {
        let fid = m.func_by_name(name).unwrap();
        for block in m.funcs[fid].blocks.iter() {
            if let usher_ir::Terminator::Ret(Some(Operand::Var(v))) = block.term {
                return g.tl(fid, v).expect("ret var in vfg");
            }
        }
        panic!("no ret-of-var in {name}");
    }

    #[test]
    fn defined_values_resolve_top() {
        let (m, g, gamma) = gamma_for(
            "def f() -> int { int x = 1; int y = x + 2; return y; }
             def main() { print(f()); }",
            1,
        );
        let r = ret_node(&m, &g, "f");
        assert_eq!(gamma.of(r), Definedness::Top);
    }

    #[test]
    fn uninitialized_local_resolves_bot() {
        let (m, g, gamma) = gamma_for(
            "def f(int c) -> int { int x; if (c) { x = 1; } return x; }
             def main() { print(f(0)); }",
            1,
        );
        let r = ret_node(&m, &g, "f");
        assert_eq!(gamma.of(r), Definedness::Bot);
    }

    #[test]
    fn memory_flow_of_undefinedness() {
        let (m, g, gamma) = gamma_for(
            "def main() -> int {
                 int *p;
                 p = malloc(4);
                 return *(p + 2);
             }",
            1,
        );
        let r = ret_node(&m, &g, "main");
        assert_eq!(gamma.of(r), Definedness::Bot, "malloc memory is undefined");
    }

    #[test]
    fn calloc_memory_is_defined() {
        let (m, g, gamma) = gamma_for(
            "def main() -> int {
                 int *p;
                 p = calloc(4);
                 return *(p + 2);
             }",
            1,
        );
        let r = ret_node(&m, &g, "main");
        assert_eq!(gamma.of(r), Definedness::Top);
    }

    #[test]
    fn globals_are_defined_at_startup() {
        let (m, g, gamma) = gamma_for(
            "int g;
             def main() -> int { return g; }",
            1,
        );
        let r = ret_node(&m, &g, "main");
        assert_eq!(gamma.of(r), Definedness::Top);
    }

    #[test]
    fn store_then_load_through_global_is_defined() {
        let (m, g, gamma) = gamma_for(
            "int g;
             def main() -> int { g = 5; return g; }",
            1,
        );
        let r = ret_node(&m, &g, "main");
        assert_eq!(gamma.of(r), Definedness::Top);
    }

    #[test]
    fn context_sensitivity_blocks_unrealizable_path() {
        // id(undef) flows Bot only to the call site that passed undef:
        // with k=1, the defined call's result stays Top; with k=0 both
        // results are Bot.
        let src = "
            def id(int x) -> int { return x; }
            def main() -> int {
                int u;
                int a = id(u);
                int b = id(7);
                return b;
            }";
        let (m, g, gamma1) = gamma_for(src, 1);
        let r = ret_node(&m, &g, "main");
        assert_eq!(
            gamma1.of(r),
            Definedness::Top,
            "k=1 separates the two call sites"
        );

        let (m0, g0, gamma0) = gamma_for(src, 0);
        let r0 = ret_node(&m0, &g0, "main");
        assert_eq!(gamma0.of(r0), Definedness::Bot, "k=0 conflates call sites");
    }

    #[test]
    fn semi_strong_update_rescues_loop_carried_definedness() {
        // Figure 6's shape: allocate in a loop, store a defined value,
        // read it back. With semi-strong updates the read is Top; a plain
        // weak update would have been Bot.
        let (m, g, gamma) = gamma_for(
            "def main() {
                 int i = 0;
                 int s = 0;
                 while (i < 4) {
                     int *p;
                     p = malloc(1);
                     *p = i;
                     s = s + *p;
                     i = i + 1;
                 }
                 print(s);
             }",
            1,
        );
        // Every load result in main must be Top.
        let fid = m.main.unwrap();
        for (bb, block) in m.funcs[fid].blocks.iter_enumerated() {
            let _ = bb;
            for inst in &block.insts {
                if let Inst::Load { dst, .. } = inst {
                    let n = g.tl(fid, *dst).unwrap();
                    assert_eq!(gamma.of(n), Definedness::Top, "load {dst:?} should be Top");
                }
            }
        }
    }

    #[test]
    fn bot_count_is_monotone_in_context_depth() {
        let src = "
            def id(int x) -> int { return x; }
            def pass(int y) -> int { return id(y); }
            def main() -> int {
                int u;
                int a = pass(u);
                int b = pass(3);
                return a + b;
            }";
        let (_m, _g, g0) = gamma_for(src, 0);
        let (_m, _g, g1) = gamma_for(src, 1);
        let (_m, _g, g2) = gamma_for(src, 2);
        assert!(g1.bot_count() <= g0.bot_count());
        assert!(g2.bot_count() <= g1.bot_count());
    }

    #[test]
    fn roots_have_expected_states() {
        let (_m, g, gamma) = gamma_for("def main() { print(1); }", 1);
        assert!(gamma.is_bot(g.f_root));
        assert!(!gamma.is_bot(g.t_root));
    }

    #[test]
    fn unreached_function_params_default_top() {
        let (m, g, gamma) = gamma_for(
            "def orphan(int x) -> int { return x; }
             def main() { print(1); }",
            1,
        );
        let fid = m.func_by_name("orphan").unwrap();
        let p = m.funcs[fid].params[0];
        if let Some(n) = g.tl(fid, p) {
            assert_eq!(gamma.of(n), Definedness::Top);
        }
        let _ = FuncId(0).index();
    }

    #[test]
    fn interned_engine_matches_reference_across_depths() {
        let src = "
            def id(int x) -> int { return x; }
            def pass(int y) -> int { return id(y); }
            def main() -> int {
                int u;
                int a = pass(u);
                int b = pass(3);
                int *p;
                p = malloc(2);
                *p = a;
                return b + *p;
            }";
        let m = compile_o0im(src).expect("compiles");
        let pa = usher_pointer::analyze(&m);
        let ms = usher_vfg::build_memssa(&m, &pa);
        let g = usher_vfg::build(&m, &pa, &ms, VfgMode::Full);
        let rg = usher_vfg::build_reference(&m, &pa, &ms, VfgMode::Full);
        for k in 0..4 {
            let fast = resolve(&g, k);
            let walk = {
                let (bot, stats) = resolve_graph(&g.users, g.f_root, k);
                Gamma::from_bot_with_stats(bot, k, stats)
            };
            let slow = resolve_reference(&rg, k);
            for v in 0..g.len() as u32 {
                assert_eq!(fast.is_bot(v), slow.is_bot(v), "node {v} at k={k}");
                assert_eq!(fast.is_bot(v), walk.is_bot(v), "walk node {v} at k={k}");
            }
            // The condensed engine reaches exactly the walk engine's
            // `(node, context)` state set.
            assert_eq!(
                fast.stats.visited_states, walk.stats.visited_states,
                "state counts at k={k}"
            );
            assert_eq!(
                fast.stats.interned_contexts, walk.stats.interned_contexts,
                "context counts at k={k}"
            );
        }
    }

    #[test]
    fn condensed_stats_expose_sccs_and_word_ops() {
        // `s` starts undefined and circulates through the loop-carried
        // phi cycle, so lane propagation must do real word work inside a
        // non-trivial SCC.
        let (_m, _g, gamma) = gamma_for(
            "def main() {
                 int i = 0;
                 int s;
                 while (i < 4) { s = s + i; i = i + 1; }
                 print(s);
             }",
            1,
        );
        assert!(gamma.stats.sccs >= 1);
        assert!(gamma.stats.nontrivial_sccs >= 1);
        assert!(gamma.stats.word_ops >= 1);
    }

    #[test]
    fn budgeted_resolve_is_exact_where_covered_and_bot_elsewhere() {
        let src = "
            def id(int x) -> int { return x; }
            def pass(int y) -> int { return id(y); }
            def main() -> int {
                int u;
                int a = pass(u);
                int b = pass(3);
                int *p;
                p = malloc(2);
                *p = a;
                return b + *p;
            }";
        let m = compile_o0im(src).expect("compiles");
        let (_pa, _ms, g) = analyze_module(&m, VfgMode::Full);
        let full = resolve(&g, 1);
        // An unlimited budget must reproduce the unbudgeted map, with no
        // coverage vector.
        let (same, cov) = resolve_budgeted(&g, 1, &Budget::unlimited());
        assert!(cov.is_none());
        for v in 0..g.len() as u32 {
            assert_eq!(same.is_bot(v), full.is_bot(v));
        }
        // Every budget from starvation to surplus: covered nodes exact,
        // uncovered nodes forced Bot (never a spurious Top).
        for steps in 0..200 {
            let (partial, cov) = resolve_budgeted(&g, 1, &Budget::limited(steps));
            match cov {
                None => {
                    for v in 0..g.len() as u32 {
                        assert_eq!(partial.is_bot(v), full.is_bot(v), "complete run diverged");
                    }
                }
                Some(resolved) => {
                    for v in 0..g.len() as u32 {
                        if resolved[v as usize] {
                            assert_eq!(
                                partial.is_bot(v),
                                full.is_bot(v),
                                "covered node {v} must be exact at budget {steps}"
                            );
                        } else {
                            assert!(
                                partial.is_bot(v),
                                "uncovered node {v} must be Bot at budget {steps}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn demand_gamma_agrees_with_exhaustive_on_every_consulted_node() {
        let src = "
            def id(int x) -> int { return x; }
            def pass(int y) -> int { return id(y); }
            def main() -> int {
                int u;
                int a = pass(u);
                int b = pass(3);
                int *p;
                p = malloc(2);
                *p = a;
                return b + *p;
            }";
        let m = compile_o0im(src).expect("compiles");
        let (_pa, _ms, g) = analyze_module(&m, VfgMode::Full);
        for k in 0..3 {
            let full = resolve(&g, k);
            let (dem, dstats, cov) = resolve_demand(&g, k, &Budget::unlimited());
            assert!(cov.is_none(), "unlimited demand run must complete");
            assert!(dstats.queries > 0);
            // Checked nodes and their operand TLs: byte-equal verdicts.
            for ch in &g.checks {
                assert_eq!(
                    dem.is_bot(ch.node),
                    full.is_bot(ch.node),
                    "check node {} at k={k}",
                    ch.node
                );
                if let Operand::Var(v) = ch.operand {
                    if let Some(tl) = g.tl(ch.site.func, v) {
                        assert_eq!(dem.is_bot(tl), full.is_bot(tl), "operand TL {tl} k={k}");
                    }
                }
            }
            // Everywhere else: sound over-approximation only (Bot may be
            // forced on un-walked nodes, Top is never invented).
            for v in 0..g.len() as u32 {
                assert!(
                    dem.is_bot(v) || !full.is_bot(v),
                    "demand invented Top at node {v}, k={k}"
                );
            }
        }
    }

    #[test]
    fn demand_exhaustion_reports_coverage_and_forces_bot() {
        let src = "
            def f(int c) -> int { int x; if (c) { x = 1; } return x; }
            def main() { print(f(0)); }";
        let m = compile_o0im(src).expect("compiles");
        let (_pa, _ms, g) = analyze_module(&m, VfgMode::Full);
        let (full, _, _) = resolve_demand(&g, 1, &Budget::unlimited());
        for steps in 0..120 {
            let (dem, dstats, cov) = resolve_demand(&g, 1, &Budget::limited(steps));
            match cov {
                None => {
                    assert_eq!(dstats.exhausted_queries, 0);
                    for v in 0..g.len() as u32 {
                        assert_eq!(dem.is_bot(v), full.is_bot(v), "steps={steps}");
                    }
                }
                Some(cov) => {
                    assert!(dstats.exhausted_queries > 0, "steps={steps}");
                    for v in 0..g.len() as u32 {
                        if cov[v as usize] {
                            assert_eq!(dem.is_bot(v), full.is_bot(v), "covered {v}");
                        } else {
                            assert!(dem.is_bot(v), "uncovered {v} must be Bot");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn expired_deadline_halts_inside_a_single_giant_scc() {
        // Adversarial rung for the stage-boundary deadline bug: one huge
        // loop-carried accumulation chain puts thousands of nodes in a
        // single SCC, so a resolver that only checks the deadline between
        // stages (or between SCCs) would grind through all of it. The
        // in-SCC poller must halt within one poll period instead.
        // `x` starts undefined so `F` circulates through every chain
        // node — the worklist really has to touch the whole component.
        let mut src = String::from("def main() { int i = 0; int x; while (i < 9) { ");
        for j in 0..1500 {
            src.push_str(&format!("x = x + {}; ", j % 7));
        }
        src.push_str("i = i + 1; } print(x); }");
        let m = compile_o0im(&src).expect("compiles");
        let (_pa, _ms, g) = analyze_module(&m, VfgMode::Full);
        let cond = g.condensation();
        let biggest = (0..cond.sccs as u32)
            .map(|c| cond.members_of(c).len())
            .max()
            .unwrap();
        assert!(
            biggest > 1000,
            "adversarial rung needs one giant SCC, got {biggest}"
        );
        let budget = Budget::new(None, Some(std::time::Duration::ZERO));
        let (gamma, cov) = resolve_budgeted(&g, 1, &budget);
        let cov = cov.expect("an already-expired deadline must halt resolution mid-run");
        assert!(
            cov.iter().any(|&r| !r),
            "halting mid-run must leave some nodes uncovered"
        );
        for v in 0..g.len() as u32 {
            if !cov[v as usize] {
                assert!(gamma.is_bot(v), "uncovered node {v} must be forced Bot");
            }
        }
    }

    #[test]
    fn resolve_stats_are_populated() {
        let (_m, _g, gamma) = gamma_for(
            "def id(int x) -> int { return x; }
             def main() { int u; print(id(u)); }",
            1,
        );
        assert!(gamma.stats.interned_contexts >= 1);
        assert!(gamma.stats.visited_states >= 1);
    }
}
