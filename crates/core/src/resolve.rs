//! Definedness resolution (Section 3.3).
//!
//! `Gamma(v) = Bot` iff node `v` is reachable from the root `F` along
//! value-flow edges, computed **context-sensitively** by matching call and
//! return edges so unrealizable interprocedural paths (enter through one
//! call site, exit through another) are ruled out. The paper configures
//! 1-call-site sensitivity; the depth is a parameter here (0 recovers a
//! context-insensitive analysis, useful as an ablation).

use std::collections::HashSet;

use usher_ir::Site;
use usher_vfg::{EdgeKind, Vfg};

/// The definedness state of a node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Definedness {
    /// Only reachable from `T`: statically proven defined.
    Top,
    /// Reachable from `F`: may be undefined.
    Bot,
}

/// The resolved `Gamma` map.
#[derive(Clone, Debug)]
pub struct Gamma {
    bot: Vec<bool>,
    /// Context depth used.
    pub context_depth: usize,
}

impl Gamma {
    /// State of a node.
    pub fn of(&self, node: u32) -> Definedness {
        if self.bot[node as usize] {
            Definedness::Bot
        } else {
            Definedness::Top
        }
    }

    /// Whether the node may be undefined.
    pub fn is_bot(&self, node: u32) -> bool {
        self.bot[node as usize]
    }

    /// Number of `Bot` nodes.
    pub fn bot_count(&self) -> usize {
        self.bot.iter().filter(|b| **b).count()
    }

    /// Number of VFG nodes this map covers.
    pub fn len(&self) -> usize {
        self.bot.len()
    }

    /// Whether the map covers no nodes.
    pub fn is_empty(&self) -> bool {
        self.bot.is_empty()
    }
}

/// A k-limited calling context: the most recent unmatched call sites.
/// `overflowed` records that older entries were dropped, after which
/// returns become unconstrained (sound over-approximation).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
struct Ctx {
    stack: Vec<Site>,
    overflowed: bool,
}

impl Ctx {
    fn empty() -> Ctx {
        Ctx {
            stack: Vec::new(),
            overflowed: false,
        }
    }

    fn push(&self, site: Site, k: usize) -> Ctx {
        let mut c = self.clone();
        if k == 0 {
            c.overflowed = true;
            return c;
        }
        c.stack.push(site);
        if c.stack.len() > k {
            c.stack.remove(0);
            c.overflowed = true;
        }
        c
    }

    /// Returns `None` when the return is unrealizable in this context.
    fn pop(&self, site: Site) -> Option<Ctx> {
        let mut c = self.clone();
        match c.stack.pop() {
            Some(top) if top == site => Some(c),
            Some(_) => None, // mismatched return: unrealizable
            None => {
                // Nothing tracked: either we overflowed (permissive) or
                // the value originated inside the callee (partially
                // balanced path) — both allowed.
                Some(c)
            }
        }
    }
}

/// Resolves definedness over the VFG with `k`-call-site context
/// sensitivity (the paper uses `k = 1`).
pub fn resolve(vfg: &Vfg, k: usize) -> Gamma {
    let bot = resolve_graph(&vfg.users, vfg.f_root, vfg.nodes.len(), k);
    Gamma {
        bot,
        context_depth: k,
    }
}

/// The underlying reachability engine: given forward (flows-to) adjacency
/// `users`, marks every node reachable from `f_root` under partially
/// balanced, `k`-limited call/return matching. Exposed so clients (e.g.
/// access-equivalence merging) can resolve quotient graphs.
pub fn resolve_graph(users: &[Vec<(u32, EdgeKind)>], f_root: u32, n: usize, k: usize) -> Vec<bool> {
    let mut bot = vec![false; n];
    let mut visited: HashSet<(u32, Ctx)> = HashSet::new();
    let mut work: Vec<(u32, Ctx)> = Vec::new();

    let start = (f_root, Ctx::empty());
    visited.insert(start.clone());
    work.push(start);
    bot[f_root as usize] = true;

    while let Some((node, ctx)) = work.pop() {
        // Flow to every user (a node that depends on `node`).
        for &(user, kind) in &users[node as usize] {
            let next_ctx = match kind {
                EdgeKind::Direct => Some(ctx.clone()),
                // user = callee formal, node = caller actual: entering.
                EdgeKind::Call(site) => Some(ctx.push(site, k)),
                // user = caller result, node = callee return: leaving.
                EdgeKind::Ret(site) => ctx.pop(site),
            };
            let Some(next_ctx) = next_ctx else { continue };
            let state = (user, next_ctx);
            if visited.insert(state.clone()) {
                bot[user as usize] = true;
                work.push(state);
            }
        }
    }
    bot
}

impl Gamma {
    /// Builds a `Gamma` from a raw bot vector (used by the merged
    /// resolution path).
    pub fn from_bot(bot: Vec<bool>, context_depth: usize) -> Gamma {
        Gamma { bot, context_depth }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use usher_frontend::compile_o0im;
    use usher_ir::{FuncId, Idx, Inst, Module, Operand};
    use usher_vfg::{analyze_module, VfgMode};

    fn gamma_for(src: &str, k: usize) -> (Module, Vfg, Gamma) {
        let m = compile_o0im(src).expect("compiles");
        let (_pa, _ms, g) = analyze_module(&m, VfgMode::Full);
        let gamma = resolve(&g, k);
        (m, g, gamma)
    }

    /// The node of the first `Ret` operand of a function.
    fn ret_node(m: &Module, g: &Vfg, name: &str) -> u32 {
        let fid = m.func_by_name(name).unwrap();
        for block in m.funcs[fid].blocks.iter() {
            if let usher_ir::Terminator::Ret(Some(Operand::Var(v))) = block.term {
                return g.tl(fid, v).expect("ret var in vfg");
            }
        }
        panic!("no ret-of-var in {name}");
    }

    #[test]
    fn defined_values_resolve_top() {
        let (m, g, gamma) = gamma_for(
            "def f() -> int { int x = 1; int y = x + 2; return y; }
             def main() { print(f()); }",
            1,
        );
        let r = ret_node(&m, &g, "f");
        assert_eq!(gamma.of(r), Definedness::Top);
    }

    #[test]
    fn uninitialized_local_resolves_bot() {
        let (m, g, gamma) = gamma_for(
            "def f(int c) -> int { int x; if (c) { x = 1; } return x; }
             def main() { print(f(0)); }",
            1,
        );
        let r = ret_node(&m, &g, "f");
        assert_eq!(gamma.of(r), Definedness::Bot);
    }

    #[test]
    fn memory_flow_of_undefinedness() {
        let (m, g, gamma) = gamma_for(
            "def main() -> int {
                 int *p;
                 p = malloc(4);
                 return *(p + 2);
             }",
            1,
        );
        let r = ret_node(&m, &g, "main");
        assert_eq!(gamma.of(r), Definedness::Bot, "malloc memory is undefined");
    }

    #[test]
    fn calloc_memory_is_defined() {
        let (m, g, gamma) = gamma_for(
            "def main() -> int {
                 int *p;
                 p = calloc(4);
                 return *(p + 2);
             }",
            1,
        );
        let r = ret_node(&m, &g, "main");
        assert_eq!(gamma.of(r), Definedness::Top);
    }

    #[test]
    fn globals_are_defined_at_startup() {
        let (m, g, gamma) = gamma_for(
            "int g;
             def main() -> int { return g; }",
            1,
        );
        let r = ret_node(&m, &g, "main");
        assert_eq!(gamma.of(r), Definedness::Top);
    }

    #[test]
    fn store_then_load_through_global_is_defined() {
        let (m, g, gamma) = gamma_for(
            "int g;
             def main() -> int { g = 5; return g; }",
            1,
        );
        let r = ret_node(&m, &g, "main");
        assert_eq!(gamma.of(r), Definedness::Top);
    }

    #[test]
    fn context_sensitivity_blocks_unrealizable_path() {
        // id(undef) flows Bot only to the call site that passed undef:
        // with k=1, the defined call's result stays Top; with k=0 both
        // results are Bot.
        let src = "
            def id(int x) -> int { return x; }
            def main() -> int {
                int u;
                int a = id(u);
                int b = id(7);
                return b;
            }";
        let (m, g, gamma1) = gamma_for(src, 1);
        let r = ret_node(&m, &g, "main");
        assert_eq!(
            gamma1.of(r),
            Definedness::Top,
            "k=1 separates the two call sites"
        );

        let (m0, g0, gamma0) = gamma_for(src, 0);
        let r0 = ret_node(&m0, &g0, "main");
        assert_eq!(gamma0.of(r0), Definedness::Bot, "k=0 conflates call sites");
    }

    #[test]
    fn semi_strong_update_rescues_loop_carried_definedness() {
        // Figure 6's shape: allocate in a loop, store a defined value,
        // read it back. With semi-strong updates the read is Top; a plain
        // weak update would have been Bot.
        let (m, g, gamma) = gamma_for(
            "def main() {
                 int i = 0;
                 int s = 0;
                 while (i < 4) {
                     int *p;
                     p = malloc(1);
                     *p = i;
                     s = s + *p;
                     i = i + 1;
                 }
                 print(s);
             }",
            1,
        );
        // Every load result in main must be Top.
        let fid = m.main.unwrap();
        for (bb, block) in m.funcs[fid].blocks.iter_enumerated() {
            let _ = bb;
            for inst in &block.insts {
                if let Inst::Load { dst, .. } = inst {
                    let n = g.tl(fid, *dst).unwrap();
                    assert_eq!(gamma.of(n), Definedness::Top, "load {dst:?} should be Top");
                }
            }
        }
    }

    #[test]
    fn bot_count_is_monotone_in_context_depth() {
        let src = "
            def id(int x) -> int { return x; }
            def pass(int y) -> int { return id(y); }
            def main() -> int {
                int u;
                int a = pass(u);
                int b = pass(3);
                return a + b;
            }";
        let (_m, _g, g0) = gamma_for(src, 0);
        let (_m, _g, g1) = gamma_for(src, 1);
        let (_m, _g, g2) = gamma_for(src, 2);
        assert!(g1.bot_count() <= g0.bot_count());
        assert!(g2.bot_count() <= g1.bot_count());
    }

    #[test]
    fn roots_have_expected_states() {
        let (_m, g, gamma) = gamma_for("def main() { print(1); }", 1);
        assert!(gamma.is_bot(g.f_root));
        assert!(!gamma.is_bot(g.t_root));
    }

    #[test]
    fn unreached_function_params_default_top() {
        let (m, g, gamma) = gamma_for(
            "def orphan(int x) -> int { return x; }
             def main() { print(1); }",
            1,
        );
        let fid = m.func_by_name("orphan").unwrap();
        let p = m.funcs[fid].params[0];
        if let Some(n) = g.tl(fid, p) {
            assert_eq!(gamma.of(n), Definedness::Top);
        }
        let _ = FuncId(0).index();
    }
}
