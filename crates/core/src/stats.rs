//! Table 1 statistics collection.
//!
//! Gathers, for one benchmark under `O0+IM`, the columns of the paper's
//! Table 1: program sizes, variable-class populations, the fraction of
//! uninitialized allocations, strong/weak/semi-strong update counts, VFG
//! size, the fraction of nodes that reach a critical statement, and the
//! per-optimization effect sizes.

use std::collections::HashSet;

use usher_ir::{Inst, Module, ObjKind};
use usher_vfg::Vfg;

use crate::config::{run_config, Config};

/// One row of Table 1.
#[derive(Clone, Debug, Default)]
pub struct Table1Row {
    /// Benchmark name.
    pub name: String,
    /// Source size in KLOC.
    pub kloc: f64,
    /// Analysis wall-clock seconds (pointer analysis included).
    pub time_secs: f64,
    /// Approximate analysis memory footprint in MB.
    pub mem_mb: f64,
    /// Top-level variables (thousands in the paper; raw count here).
    pub var_tl: usize,
    /// Address-taken: stack objects.
    pub at_stack: usize,
    /// Address-taken: heap objects.
    pub at_heap: usize,
    /// Address-taken: global objects.
    pub at_global: usize,
    /// Percentage of address-taken objects uninitialized when allocated.
    pub pct_uninit: f64,
    /// Semi-strong rule applications per non-array heap allocation site.
    pub semi_per_heap_site: f64,
    /// Percentage of stores strongly updated.
    pub pct_su: f64,
    /// Percentage of stores with a unique target that only admit weak
    /// updates.
    pub pct_wu: f64,
    /// VFG node count.
    pub vfg_nodes: usize,
    /// Percentage of VFG nodes reaching at least one critical statement.
    pub pct_b: f64,
    /// MFCs simplified by Opt I.
    pub opt1_simplified: usize,
    /// Nodes redirected to `T` by Opt II.
    pub opt2_redirected: usize,
}

/// The full-Usher analysis artifacts a Table 1 row is derived from.
/// Decouples the statistics collector from stage wiring so callers that
/// already ran the pipeline (e.g. `usher-driver`) reuse their artifacts.
pub struct AnalysisFacts<'a> {
    /// The VFG built under `Config::USHER`.
    pub vfg: &'a Vfg,
    /// MFCs simplified by Opt I (from the guided plan's stats).
    pub mfcs_simplified: usize,
    /// Nodes redirected to `T` by Opt II.
    pub opt2_redirected: usize,
    /// Analysis wall-clock seconds.
    pub analysis_seconds: f64,
}

/// Collects a Table 1 row for a compiled module, running the full-Usher
/// analysis itself (convenience wrapper over [`table1_row_from`]).
pub fn table1_row(name: &str, source: &str, m: &Module) -> Table1Row {
    let out = run_config(m, Config::USHER);
    let vfg = out.vfg.as_ref().expect("guided config builds a VFG");
    table1_row_from(
        name,
        source,
        m,
        AnalysisFacts {
            vfg,
            mfcs_simplified: out.plan.stats.mfcs_simplified,
            opt2_redirected: out.opt2_redirected,
            analysis_seconds: out.analysis_seconds,
        },
    )
}

/// Collects a Table 1 row from precomputed full-Usher analysis artifacts.
pub fn table1_row_from(name: &str, source: &str, m: &Module, facts: AnalysisFacts) -> Table1Row {
    let mut row = Table1Row {
        name: name.to_string(),
        kloc: source.lines().count() as f64 / 1000.0,
        ..Default::default()
    };

    // Variable populations.
    row.var_tl = m.funcs.iter().map(|f| f.vars.len()).sum();
    let mut uninit = 0usize;
    let mut total_at = 0usize;
    for o in m.objects.iter() {
        total_at += 1;
        match o.kind {
            ObjKind::Global => row.at_global += 1,
            ObjKind::Stack(_) => row.at_stack += 1,
            ObjKind::Heap(_) => row.at_heap += 1,
        }
        if !o.zero_init {
            uninit += 1;
        }
    }
    row.pct_uninit = if total_at == 0 {
        0.0
    } else {
        100.0 * uninit as f64 / total_at as f64
    };

    let vfg = facts.vfg;
    row.time_secs = facts.analysis_seconds;
    row.vfg_nodes = vfg.len();
    row.mem_mb = approx_mem_mb(vfg);
    let s = vfg.stats;
    let singleton = s.strong_stores + s.weak_singleton_stores + s.semi_strong_stores;
    let total = s.total_stores.max(1);
    let _ = singleton;
    row.pct_su = 100.0 * s.strong_stores as f64 / total as f64;
    row.pct_wu = 100.0 * s.weak_singleton_stores as f64 / total as f64;

    // Semi-strong applications per non-array heap allocation site.
    let mut heap_sites = 0usize;
    for (fid, func) in m.funcs.iter_enumerated() {
        let _ = fid;
        for block in func.blocks.iter() {
            for inst in &block.insts {
                if let Inst::Alloc { obj, .. } = inst {
                    let o = &m.objects[*obj];
                    if matches!(o.kind, ObjKind::Heap(_)) && !o.is_array {
                        heap_sites += 1;
                    }
                }
            }
        }
    }
    row.semi_per_heap_site = s.semi_strong_stores as f64 / heap_sites.max(1) as f64;

    row.pct_b = 100.0 * nodes_reaching_checks(vfg) as f64 / vfg.len().max(1) as f64;
    row.opt1_simplified = facts.mfcs_simplified;
    row.opt2_redirected = facts.opt2_redirected;
    row
}

/// Number of VFG nodes from which some critical statement's checked value
/// is reachable (i.e. nodes a check transitively depends on).
pub fn nodes_reaching_checks(vfg: &Vfg) -> usize {
    let mut seen: HashSet<u32> = HashSet::new();
    let mut work: Vec<u32> = Vec::new();
    for c in &vfg.checks {
        if seen.insert(c.node) {
            work.push(c.node);
        }
    }
    while let Some(n) = work.pop() {
        for (d, _) in vfg.deps.edges(n) {
            if seen.insert(d) {
                work.push(d);
            }
        }
    }
    // Exclude the virtual check nodes themselves.
    seen.len().saturating_sub(
        vfg.checks
            .iter()
            .map(|c| c.node)
            .collect::<HashSet<_>>()
            .len(),
    )
}

fn approx_mem_mb(vfg: &Vfg) -> f64 {
    let edges: usize = vfg.deps.targets.len();
    // Node records + two edge directions; a rough but deterministic proxy
    // for the analysis footprint.
    let bytes = vfg.len() * 64 + edges * 24 * 2;
    bytes as f64 / (1024.0 * 1024.0)
}

/// Renders rows in the layout of the paper's Table 1.
pub fn render_table1(rows: &[Table1Row]) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:<12} {:>6} {:>8} {:>7} {:>7} {:>6} {:>6} {:>7} {:>5} {:>5} {:>6} {:>6} {:>7} {:>5} {:>6} {:>6}",
        "Benchmark", "KLOC", "Time(s)", "Mem(MB)", "VarTL", "Stack", "Heap", "Global", "%F",
        "S", "%SU", "%WU", "Nodes", "%B", "S_opt1", "R_opt2"
    );
    for r in rows {
        let _ = writeln!(
            s,
            "{:<12} {:>6.2} {:>8.3} {:>7.2} {:>7} {:>6} {:>6} {:>7} {:>5.0} {:>5.1} {:>6.1} {:>6.1} {:>7} {:>5.1} {:>6} {:>6}",
            r.name,
            r.kloc,
            r.time_secs,
            r.mem_mb,
            r.var_tl,
            r.at_stack,
            r.at_heap,
            r.at_global,
            r.pct_uninit,
            r.semi_per_heap_site,
            r.pct_su,
            r.pct_wu,
            r.vfg_nodes,
            r.pct_b,
            r.opt1_simplified,
            r.opt2_redirected,
        );
    }
    s
}
