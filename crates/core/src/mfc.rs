//! Must Flow-from Closures (Definition 2) — the substrate of both
//! VFG-based optimizations.
//!
//! The MFC of a top-level variable `x` folds backwards through copies,
//! unary/binary operations and geps; it stops at constants/allocations
//! (source `T`), at `undef` (source `F`), and at loads, phis, calls and
//! parameters (the variable itself becomes a source). The result is a DAG
//! with `x` as the sink; `Gamma(x) = Top` iff every source is `Top`.

use std::collections::HashSet;

use usher_ir::{Inst, Module};
use usher_vfg::{NodeKind, Vfg};

/// The must-flow-from closure of one top-level node.
#[derive(Clone, Debug, Default)]
pub struct Mfc {
    /// Every top-level node in the closure (including the sink and the
    /// top-level sources).
    pub nodes: HashSet<u32>,
    /// Nodes where folding stopped: loads, phis, calls, parameters (all
    /// members of `nodes`), plus possibly the roots `T`/`F`.
    pub sources: Vec<u32>,
    /// Number of interior (folded-through) nodes, excluding the sink.
    pub folded: usize,
}

/// Looks up the defining instruction of a top-level node.
pub fn def_inst<'m>(m: &'m Module, vfg: &Vfg, node: u32) -> Option<&'m Inst> {
    let NodeKind::Tl(f, _) = vfg.nodes[node as usize] else {
        return None;
    };
    let site = vfg.def_site[node as usize]?;
    debug_assert_eq!(site.func, f);
    m.funcs[f].blocks[site.block].insts.get(site.idx)
}

/// Computes the MFC of `x_node` (which must be a `Tl` node).
///
/// `fold_bitwise` mirrors the paper's bit-level precision caveat
/// (Section 4.1): in bit-level shadow mode, bitwise operations are not
/// folded because per-bit shadows do not compose as a plain conjunction.
pub fn mfc(m: &Module, vfg: &Vfg, x_node: u32, fold_bitwise: bool) -> Mfc {
    let mut out = Mfc::default();
    let mut work = vec![(x_node, true)];
    let mut seen: HashSet<u32> = HashSet::new();

    while let Some((v, is_sink)) = work.pop() {
        if !seen.insert(v) {
            continue;
        }
        match vfg.nodes[v as usize] {
            NodeKind::RootT | NodeKind::RootF => {
                out.sources.push(v);
                continue;
            }
            NodeKind::Tl(..) => {}
            NodeKind::Mem(..) | NodeKind::Check(..) => {
                // MFCs contain only top-level variables (loads and stores
                // cannot be bypassed during shadow propagation).
                out.sources.push(v);
                continue;
            }
        }
        out.nodes.insert(v);
        let foldable = match def_inst(m, vfg, v) {
            Some(Inst::Copy { .. }) | Some(Inst::Un { .. }) | Some(Inst::Gep { .. }) => true,
            Some(Inst::Bin { op, .. }) => fold_bitwise || !op.is_bitwise(),
            Some(Inst::Alloc { .. }) => {
                // `x := alloc` contributes the source T (the pointer is
                // always defined).
                if !out.sources.contains(&vfg.t_root) {
                    out.sources.push(vfg.t_root);
                }
                if !is_sink {
                    out.folded += 1;
                }
                continue;
            }
            _ => false,
        };
        if foldable {
            if !is_sink {
                out.folded += 1;
            }
            for (dep, _) in vfg.deps.edges(v) {
                work.push((dep, false));
            }
        } else {
            out.sources.push(v);
        }
    }
    // The sink may itself be a source (e.g. a load): `nodes` then has one
    // element and `sources` contains it.
    if out.nodes.len() == 1 && out.folded == 0 && out.sources.is_empty() {
        out.sources.push(x_node);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use usher_frontend::compile_o0im;
    use usher_ir::{Operand, Terminator};
    use usher_vfg::{analyze_module, VfgMode};

    fn sink_of_ret(src: &str) -> (Module, Vfg, u32) {
        let m = compile_o0im(src).unwrap();
        let (_pa, _ms, g) = analyze_module(&m, VfgMode::Full);
        let fid = m.main.unwrap();
        for block in m.funcs[fid].blocks.iter() {
            if let Terminator::Ret(Some(Operand::Var(v))) = block.term {
                let n = g.tl(fid, v).unwrap();
                return (m, g, n);
            }
        }
        panic!("no ret var");
    }

    #[test]
    fn folds_through_arithmetic_chain() {
        // z = (a+b) + (c+d): the closure folds the adds; sources are the
        // four parameter-like loads of... here a..d are constants, so the
        // only source is T.
        let (m, g, sink) = sink_of_ret(
            "def main() -> int {
                 int a = 1; int b = 2; int c = 3; int d = 4;
                 int x = a + b;
                 int y = c + d;
                 int z = x + y;
                 return z;
             }",
        );
        let f = mfc(&m, &g, sink, true);
        assert!(f.folded >= 2, "x and y fold: {f:?}");
        assert_eq!(f.sources, vec![g.t_root]);
    }

    #[test]
    fn load_is_a_source() {
        let (m, g, sink) = sink_of_ret(
            "int ga; int gb;
             def main() -> int {
                 int x = ga + gb;
                 return x;
             }",
        );
        let f = mfc(&m, &g, sink, true);
        // Sources: the two loads of ga/gb.
        let tl_sources: Vec<u32> = f
            .sources
            .iter()
            .copied()
            .filter(|s| matches!(g.nodes[*s as usize], NodeKind::Tl(..)))
            .collect();
        assert_eq!(tl_sources.len(), 2, "{f:?}");
    }

    #[test]
    fn undef_contributes_f_root_source() {
        let (m, g, sink) = sink_of_ret(
            "def main() -> int {
                 int u;
                 return u + 1;
             }",
        );
        let f = mfc(&m, &g, sink, true);
        assert!(f.sources.contains(&g.f_root), "{f:?}");
    }

    #[test]
    fn bitwise_not_folded_in_bit_level_mode() {
        let (m, g, sink) = sink_of_ret(
            "def main() -> int {
                 int a = 3; int b = 5;
                 int x = a & b;
                 return x + 1;
             }",
        );
        let value_mode = mfc(&m, &g, sink, true);
        let bit_mode = mfc(&m, &g, sink, false);
        // In bit-level mode the `&` result is a source, not folded.
        assert!(
            bit_mode.folded < value_mode.folded,
            "{bit_mode:?} vs {value_mode:?}"
        );
    }

    #[test]
    fn singleton_mfc_is_its_own_source() {
        let (m, g, sink) = sink_of_ret(
            "int g0;
             def main() -> int { return g0; }",
        );
        let f = mfc(&m, &g, sink, true);
        assert!(f.sources.contains(&sink), "{f:?}");
        assert_eq!(f.folded, 0);
    }
}
