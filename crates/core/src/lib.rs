//! # usher-core
//!
//! The paper's primary contribution: definedness resolution over the VFG
//! (Section 3.3), guided instrumentation (Section 3.4, Figure 7), and the
//! two VFG-based optimizations (Section 3.5) — value-flow simplification
//! over must-flow-from closures (Opt I) and dominance-based redundant
//! check elimination (Opt II, Algorithm 1) — plus the MSan-style full
//! instrumentation baseline and the Table 1 statistics collector.
//!
//! The usual entry point is [`run_config`] with one of the presets in
//! [`Config`]:
//!
//! ```
//! use usher_core::{run_config, Config};
//!
//! let m = usher_frontend::compile_o0im(
//!     "def main() -> int { int x; if (input()) { x = 1; } return x; }",
//! ).unwrap();
//! let msan = run_config(&m, Config::MSAN);
//! let usher = run_config(&m, Config::USHER);
//! assert!(usher.plan.stats.propagations <= msan.plan.stats.propagations);
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod instrument;
pub mod merge;
pub mod mfc;
pub mod opt2;
pub mod resolve;
pub mod stats;

pub use config::{run_config, AnalysisOutput, Config, UsherConfig};
pub use instrument::{
    full_plan, full_plan_func, full_plan_with, guided_plan, guided_plan_with_fallback,
    stamp_provenance, GuidedOpts, Plan, PlanProvenance, PlanStats, ShadowOp, ShadowSrc,
};
pub use merge::{access_equivalence_classes, resolve_merged, MergeStats};
pub use mfc::{mfc, Mfc};
pub use opt2::{
    redundant_check_elimination, redundant_check_elimination_budgeted,
    redundant_check_elimination_reference, Opt2Outcome, Opt2Result,
};
pub use resolve::{
    resolve, resolve_budgeted, resolve_condensed, resolve_condensed_budgeted, resolve_demand,
    resolve_graph, resolve_graph_reference, resolve_reference, Definedness, Gamma, ResolveStats,
};
pub use stats::{
    nodes_reaching_checks, render_table1, table1_row, table1_row_from, AnalysisFacts, Table1Row,
};

#[cfg(test)]
mod tests {
    use super::*;
    use usher_frontend::compile_o0im;

    fn plans_for(src: &str) -> Vec<(String, PlanStats)> {
        let m = compile_o0im(src).unwrap();
        Config::ALL
            .iter()
            .map(|c| {
                let out = run_config(&m, *c);
                (c.name.to_string(), out.plan.stats)
            })
            .collect()
    }

    #[test]
    fn fully_defined_program_needs_no_guided_instrumentation() {
        let m = compile_o0im(
            "def main() -> int {
                 int x = 1;
                 int y = x + 2;
                 print(y);
                 return 0;
             }",
        )
        .unwrap();
        let out = run_config(&m, Config::USHER_TL_AT);
        assert_eq!(out.plan.stats.checks, 0, "{:?}", out.plan.stats);
        assert_eq!(out.plan.stats.propagations, 0);
    }

    #[test]
    fn full_plan_instruments_everything() {
        let m = compile_o0im(
            "int g;
             def main() -> int { int *p = &g; *p = input(); return *p; }",
        )
        .unwrap();
        let out = run_config(&m, Config::MSAN);
        assert!(out.plan.stats.ops > 0);
        // Full instrumentation checks the pointer at the store and load.
        assert!(out.plan.stats.checks >= 2, "{:?}", out.plan.stats);
    }

    #[test]
    fn guided_never_exceeds_full_instrumentation() {
        let src = "
            int table[32];
            def fill(int n) {
                int i = 0;
                while (i < n) { table[i] = i * 3; i = i + 1; }
            }
            def sum(int n) -> int {
                int s;
                int i = 0;
                while (i < n) { s = s + table[i]; i = i + 1; }
                return s;
            }
            def main() -> int { fill(16); return sum(16); }";
        let plans = plans_for(src);
        let full = plans[0].1;
        for (name, stats) in &plans[1..] {
            assert!(
                stats.propagations <= full.propagations,
                "{name}: {stats:?} vs full {full:?}"
            );
            assert!(stats.checks <= full.checks, "{name}");
        }
    }

    #[test]
    fn variant_ordering_matches_paper_on_pointer_heavy_code() {
        // TL+AT must beat TL when address-taken traffic dominates.
        let src = "
            int buf[64];
            def main() -> int {
                int i = 0;
                int s = 0;
                while (i < 64) { buf[i] = i; i = i + 1; }
                i = 0;
                while (i < 64) { s = s + buf[i]; i = i + 1; }
                if (s > 0) { print(s); }
                return 0;
            }";
        let plans = plans_for(src);
        let get = |n: &str| plans.iter().find(|(name, _)| name == n).unwrap().1;
        let tl = get("Usher_TL");
        let tlat = get("Usher_TL+AT");
        assert!(
            tlat.propagations < tl.propagations,
            "TL+AT {tlat:?} should beat TL {tl:?} here"
        );
        // Everything is actually defined: full Usher drops all checks.
        let usher = get("Usher");
        assert_eq!(usher.checks, 0, "{usher:?}");
    }

    #[test]
    fn genuinely_undefined_use_keeps_its_check() {
        let src = "
            def main() -> int {
                int x;
                if (input()) { x = 1; }
                if (x > 0) { print(1); }
                return 0;
            }";
        let m = compile_o0im(src).unwrap();
        for c in Config::ALL {
            let out = run_config(&m, c);
            assert!(
                out.plan.stats.checks >= 1,
                "{}: the possibly-undefined branch must stay checked",
                c.name
            );
        }
    }

    #[test]
    fn opt2_suppresses_dominated_duplicate_check() {
        // The same possibly-undefined value feeds two branches; the first
        // dominates the second, so Opt II drops the second check.
        let src = "
            def main() -> int {
                int x;
                if (input()) { x = 1; }
                if (x > 0) { print(1); }
                if (x > 1) { print(2); }
                return 0;
            }";
        let m = compile_o0im(src).unwrap();
        let no_opt2 = run_config(&m, Config::USHER_OPT1);
        let with_opt2 = run_config(&m, Config::USHER);
        assert!(
            with_opt2.plan.stats.checks < no_opt2.plan.stats.checks,
            "opt2 {:?} vs opt1 {:?}",
            with_opt2.plan.stats,
            no_opt2.plan.stats
        );
        assert!(with_opt2.opt2_redirected > 0);
    }

    #[test]
    fn opt1_reduces_propagations_on_arithmetic_chains() {
        let src = "
            def main() -> int {
                int u;
                if (input()) { u = input(); }
                int a = u + 1;
                int b = a * 2;
                int c = b - 3;
                int d = c / 2;
                if (d) { print(d); }
                return 0;
            }";
        let m = compile_o0im(src).unwrap();
        let plain = run_config(&m, Config::USHER_TL_AT);
        let opt1 = run_config(&m, Config::USHER_OPT1);
        assert!(
            opt1.plan.stats.propagations < plain.plan.stats.propagations,
            "opt1 {:?} vs plain {:?}",
            opt1.plan.stats,
            plain.plan.stats
        );
        assert!(opt1.plan.stats.mfcs_simplified > 0);
    }

    #[test]
    fn table1_row_populates_all_columns() {
        let src = "
            int g; int arr[8];
            struct P { int a; int b; };
            def main() -> int {
                struct P *p;
                p = malloc(1);
                p->a = 1;
                int i = 0;
                while (i < 8) { arr[i] = p->a; i = i + 1; }
                g = arr[3];
                return g;
            }";
        let m = compile_o0im(src).unwrap();
        let row = table1_row("toy", src, &m);
        assert!(row.var_tl > 0);
        assert_eq!(row.at_global, 2);
        assert!(row.at_heap >= 1);
        assert!(row.vfg_nodes > 0);
        assert!(row.pct_b > 0.0);
        assert!(row.pct_uninit > 0.0);
        let rendered = render_table1(&[row]);
        assert!(rendered.contains("toy"));
    }
}
