//! Instrumentation planning — the guided rules of Figure 7 plus the
//! full-instrumentation baseline (the MSan stand-in).
//!
//! A [`Plan`] attaches shadow operations before/after statement sites (and
//! at function entries). The runtime executes them alongside the program:
//! shadow registers live per frame, shadow memory per allocated cell, and
//! both **default to defined** — so the paper's `sigma(x) := T` strong
//! updates at `Top` nodes are realized by the defaults, and only `Bot`
//! (possibly-undefined) value flow needs explicit operations. Guided
//! planning is demand-driven from the runtime checks, exactly as the `Σ`
//! deduction rules propagate from `[Bot-Check]`.

use std::collections::{HashMap, HashSet};

use usher_ir::{
    Callee, ExtFunc, FuncId, GepOffset, Inst, Module, ObjId, Operand, Site, Terminator, VarId,
};
use usher_pointer::PointerAnalysis;
use usher_vfg::{CheckKind, EdgeKind, MemDefKind, MemSsa, NodeKind, Vfg};

use crate::mfc::mfc;
use crate::resolve::Gamma;

/// Where a shadow operation reads from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShadowSrc {
    /// The shadow register of a top-level variable.
    Tl(VarId),
    /// A constant definedness (operand was a literal/global/`undef`).
    Const(bool),
}

/// Converts an operand into its shadow source.
pub fn shadow_src(op: Operand) -> ShadowSrc {
    match op {
        Operand::Var(v) => ShadowSrc::Tl(v),
        Operand::Undef => ShadowSrc::Const(false),
        Operand::Const(_) | Operand::Global(_) | Operand::Func(_) => ShadowSrc::Const(true),
    }
}

/// One shadow operation. Field meanings follow the variant docs.
#[allow(missing_docs)]
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ShadowOp {
    /// `sigma(dst) := defined` (strong update to a register shadow).
    SetTl { dst: VarId, defined: bool },
    /// `sigma(dst) := sigma(src)`.
    CopyTl { dst: VarId, src: ShadowSrc },
    /// `sigma(dst) := sigma(s1) AND sigma(s2) AND ...`.
    AndTl { dst: VarId, srcs: Vec<ShadowSrc> },
    /// `sigma(dst) := sigma(*addr)` (shadow-memory read).
    LoadSh { dst: VarId, addr: Operand },
    /// `sigma(*addr) := sigma(src)` (shadow-memory write).
    StoreSh { addr: Operand, src: ShadowSrc },
    /// Initialize the shadow of one field class of a freshly allocated
    /// object (`sigma(*x) := T/F` of the `[*-Alloc]` rules). `class` is
    /// the class representative cell; `count` the dynamic element count.
    SetMemClass {
        addr: Operand,
        obj: ObjId,
        class: u32,
        defined: bool,
        count: Option<Operand>,
    },
    /// `sigma_g[index] := sigma(src)` (caller side of `[Bot-Para]`).
    ArgSh { index: usize, src: ShadowSrc },
    /// `sigma(dst) := sigma_g[index]` (callee side of `[Bot-Para]`).
    ParamSh { dst: VarId, index: usize },
    /// `sigma_ret := sigma(src)` (callee side of `[Bot-Ret]`).
    RetSh { src: ShadowSrc },
    /// `sigma(dst) := sigma_ret` (caller side of `[Bot-Ret]`).
    RetResultSh { dst: VarId },
    /// Bit-precise shadow of a binary operation (Memcheck-style, used in
    /// bit-level mode): the runtime combines the operand *values* and
    /// poison masks per operator.
    BinSh {
        dst: VarId,
        op: usher_ir::BinOp,
        lhs: Operand,
        rhs: Operand,
    },
    /// Bit-precise shadow of a unary operation (bit-level mode).
    UnSh {
        dst: VarId,
        op: usher_ir::UnOp,
        src: Operand,
    },
    /// `E(l) := (sigma(op) == F)` — a runtime check at a critical
    /// operation.
    Check { op: Operand, kind: CheckKind },
}

impl ShadowOp {
    /// Number of shadow-variable reads this operation performs (the
    /// paper's Figure 11 "shadow propagations" metric).
    pub fn propagation_reads(&self) -> usize {
        let src_reads = |s: &ShadowSrc| usize::from(matches!(s, ShadowSrc::Tl(_)));
        match self {
            ShadowOp::SetTl { .. } | ShadowOp::SetMemClass { .. } => 0,
            ShadowOp::CopyTl { src, .. }
            | ShadowOp::StoreSh { src, .. }
            | ShadowOp::ArgSh { src, .. }
            | ShadowOp::RetSh { src } => src_reads(src),
            ShadowOp::AndTl { srcs, .. } => srcs.iter().map(src_reads).sum(),
            ShadowOp::BinSh { lhs, rhs, .. } => {
                usize::from(matches!(lhs, Operand::Var(_)))
                    + usize::from(matches!(rhs, Operand::Var(_)))
            }
            ShadowOp::UnSh { src, .. } => usize::from(matches!(src, Operand::Var(_))),
            ShadowOp::LoadSh { .. } | ShadowOp::ParamSh { .. } | ShadowOp::RetResultSh { .. } => 1,
            ShadowOp::Check { .. } => 0,
        }
    }
}

/// Static instrumentation statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PlanStats {
    /// Static count of shadow-variable reads (Figure 11, left).
    pub propagations: usize,
    /// Static count of runtime checks (Figure 11, right).
    pub checks: usize,
    /// Total shadow operations.
    pub ops: usize,
    /// Tracked phis.
    pub phis: usize,
    /// MFCs simplified by Opt I (Table 1 column `S`).
    pub mfcs_simplified: usize,
}

/// How a function's instrumentation was planned. Degradation
/// observability: the driver reports how many functions kept their
/// guided plan versus fell back to full instrumentation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PlanProvenance {
    /// Full MSan-style instrumentation by configuration.
    Full,
    /// Usher-guided instrumentation.
    Guided,
    /// Full instrumentation substituted for a guided plan because the
    /// analysis budget ran out (or a stage failed) for this function.
    FallbackFull,
}

/// A complete instrumentation plan for a module.
#[derive(Clone, Debug, Default)]
pub struct Plan {
    /// Ops to run before a site executes.
    pub before: HashMap<Site, Vec<ShadowOp>>,
    /// Ops to run after a site executes.
    pub after: HashMap<Site, Vec<ShadowOp>>,
    /// Ops to run on function entry.
    pub entry: HashMap<FuncId, Vec<ShadowOp>>,
    /// Phis whose shadow must follow the selected incoming at runtime.
    pub tracked_phis: HashSet<(FuncId, VarId)>,
    /// Static statistics.
    pub stats: PlanStats,
    /// Configuration label (for reports).
    pub name: String,
    /// Per-function provenance (absent for bare fragments; plan
    /// fingerprints deliberately exclude it).
    pub provenance: HashMap<FuncId, PlanProvenance>,
}

impl Plan {
    fn push_before(&mut self, site: Site, op: ShadowOp) {
        self.before.entry(site).or_default().push(op);
    }

    fn push_after(&mut self, site: Site, op: ShadowOp) {
        self.after.entry(site).or_default().push(op);
    }

    /// Recomputes `stats` from the recorded operations.
    pub fn finalize_stats(&mut self) {
        let mut s = PlanStats {
            mfcs_simplified: self.stats.mfcs_simplified,
            ..Default::default()
        };
        for ops in self
            .before
            .values()
            .chain(self.after.values())
            .chain(self.entry.values())
        {
            for op in ops {
                s.ops += 1;
                s.propagations += op.propagation_reads();
                if matches!(op, ShadowOp::Check { .. }) {
                    s.checks += 1;
                }
            }
        }
        s.phis = self.tracked_phis.len();
        s.propagations += s.phis; // each tracked phi reads one incoming shadow
        self.stats = s;
    }

    /// Merges another plan fragment into this one. Fragments planned for
    /// distinct functions touch disjoint sites, so per-function planning
    /// (e.g. [`full_plan_func`]) can run in parallel and be absorbed in
    /// any order; call [`Plan::finalize_stats`] once after the last merge.
    pub fn absorb(&mut self, other: Plan) {
        for (site, ops) in other.before {
            self.before.entry(site).or_default().extend(ops);
        }
        for (site, ops) in other.after {
            self.after.entry(site).or_default().extend(ops);
        }
        for (fid, ops) in other.entry {
            self.entry.entry(fid).or_default().extend(ops);
        }
        self.tracked_phis.extend(other.tracked_phis);
        self.stats.mfcs_simplified += other.stats.mfcs_simplified;
        self.provenance.extend(other.provenance);
    }

    /// How many functions carry each provenance, as
    /// `(full, guided, fallback_full)`.
    pub fn provenance_counts(&self) -> (usize, usize, usize) {
        let mut full = 0;
        let mut guided = 0;
        let mut fallback = 0;
        for p in self.provenance.values() {
            match p {
                PlanProvenance::Full => full += 1,
                PlanProvenance::Guided => guided += 1,
                PlanProvenance::FallbackFull => fallback += 1,
            }
        }
        (full, guided, fallback)
    }

    /// All operations planned at a site (before + after), for tests.
    pub fn ops_at(&self, site: Site) -> Vec<&ShadowOp> {
        self.before
            .get(&site)
            .into_iter()
            .flatten()
            .chain(self.after.get(&site).into_iter().flatten())
            .collect()
    }
}

/// Builds the full-instrumentation baseline (MSan): every value shadowed,
/// every statement shadow-executed, every critical operation checked.
pub fn full_plan(m: &Module) -> Plan {
    full_plan_with(m, false)
}

/// [`full_plan`] with optional bit-level precision.
pub fn full_plan_with(m: &Module, bit_level: bool) -> Plan {
    let mut p = Plan {
        name: "MSan (full)".into(),
        ..Default::default()
    };
    for fid in m.funcs.indices() {
        p.absorb(full_plan_func(m, fid, bit_level));
    }
    p.finalize_stats();
    p
}

/// Marks every function of `m` with the given provenance (the driver
/// uses this to stamp whole-module fallback plans).
pub fn stamp_provenance(p: &mut Plan, m: &Module, prov: PlanProvenance) {
    for fid in m.funcs.indices() {
        p.provenance.insert(fid, prov);
    }
}

/// Plans full instrumentation for a single function, as an unnamed plan
/// fragment with unfinalized stats. Functions are instrumented
/// independently, so the driver fans this out across worker threads and
/// [`Plan::absorb`]s the fragments.
pub fn full_plan_func(m: &Module, fid: FuncId, bit_level: bool) -> Plan {
    let mut p = Plan::default();
    p.provenance.insert(fid, PlanProvenance::Full);
    let func = &m.funcs[fid];
    // Callee side of parameter passing.
    for (i, param) in func.params.iter().enumerate() {
        p.entry.entry(fid).or_default().push(ShadowOp::ParamSh {
            dst: *param,
            index: i,
        });
    }
    for (bb, block) in func.blocks.iter_enumerated() {
        for (idx, inst) in block.insts.iter().enumerate() {
            let site = Site::new(fid, bb, idx);
            full_inst(m, &mut p, site, inst, bit_level);
        }
        let term_site = Site::new(fid, bb, block.insts.len());
        match &block.term {
            Terminator::Br { cond, .. } => {
                if matches!(cond, Operand::Var(_) | Operand::Undef) {
                    p.push_before(
                        term_site,
                        ShadowOp::Check {
                            op: *cond,
                            kind: CheckKind::BranchCond,
                        },
                    );
                }
            }
            Terminator::Ret(Some(op)) => {
                p.push_before(
                    term_site,
                    ShadowOp::RetSh {
                        src: shadow_src(*op),
                    },
                );
            }
            _ => {}
        }
    }
    p
}

fn full_inst(m: &Module, p: &mut Plan, site: Site, inst: &Inst, bit_level: bool) {
    match inst {
        Inst::Copy { dst, src } => {
            p.push_after(
                site,
                ShadowOp::CopyTl {
                    dst: *dst,
                    src: shadow_src(*src),
                },
            );
        }
        Inst::Un { dst, op, src } => {
            if bit_level {
                p.push_after(
                    site,
                    ShadowOp::UnSh {
                        dst: *dst,
                        op: *op,
                        src: *src,
                    },
                );
            } else {
                p.push_after(
                    site,
                    ShadowOp::CopyTl {
                        dst: *dst,
                        src: shadow_src(*src),
                    },
                );
            }
        }
        Inst::Bin { dst, op, lhs, rhs } => {
            if bit_level {
                p.push_after(
                    site,
                    ShadowOp::BinSh {
                        dst: *dst,
                        op: *op,
                        lhs: *lhs,
                        rhs: *rhs,
                    },
                );
            } else {
                p.push_after(
                    site,
                    ShadowOp::AndTl {
                        dst: *dst,
                        srcs: vec![shadow_src(*lhs), shadow_src(*rhs)],
                    },
                );
            }
        }
        Inst::Gep { dst, base, offset } => {
            let mut srcs = vec![shadow_src(*base)];
            if let GepOffset::Index { index, .. } = offset {
                srcs.push(shadow_src(*index));
            }
            p.push_after(site, ShadowOp::AndTl { dst: *dst, srcs });
        }
        Inst::Alloc { dst, obj, count } => {
            // Poison (or bless) the whole fresh object; `u32::MAX` is the
            // all-classes sentinel.
            p.push_after(
                site,
                ShadowOp::SetMemClass {
                    addr: Operand::Var(*dst),
                    obj: *obj,
                    class: u32::MAX,
                    defined: m.objects[*obj].zero_init,
                    count: *count,
                },
            );
        }
        Inst::Load { dst, addr } => {
            if matches!(addr, Operand::Var(_) | Operand::Undef) {
                p.push_before(
                    site,
                    ShadowOp::Check {
                        op: *addr,
                        kind: CheckKind::LoadAddr,
                    },
                );
            }
            p.push_after(
                site,
                ShadowOp::LoadSh {
                    dst: *dst,
                    addr: *addr,
                },
            );
        }
        Inst::Store { addr, val } => {
            if matches!(addr, Operand::Var(_) | Operand::Undef) {
                p.push_before(
                    site,
                    ShadowOp::Check {
                        op: *addr,
                        kind: CheckKind::StoreAddr,
                    },
                );
            }
            p.push_after(
                site,
                ShadowOp::StoreSh {
                    addr: *addr,
                    src: shadow_src(*val),
                },
            );
        }
        Inst::Call { dst, callee, args } => match callee {
            Callee::External(ext) => {
                if let (Some(d), ExtFunc::InputInt) = (dst, ext) {
                    p.push_after(
                        site,
                        ShadowOp::SetTl {
                            dst: *d,
                            defined: true,
                        },
                    );
                }
            }
            Callee::Direct(_) | Callee::Indirect(_) => {
                if let Callee::Indirect(t) = callee {
                    if matches!(t, Operand::Var(_) | Operand::Undef) {
                        p.push_before(
                            site,
                            ShadowOp::Check {
                                op: *t,
                                kind: CheckKind::CallTarget,
                            },
                        );
                    }
                }
                for (i, a) in args.iter().enumerate() {
                    p.push_before(
                        site,
                        ShadowOp::ArgSh {
                            index: i,
                            src: shadow_src(*a),
                        },
                    );
                }
                if let Some(d) = dst {
                    p.push_after(site, ShadowOp::RetResultSh { dst: *d });
                }
            }
        },
        Inst::Phi { dst, .. } => {
            p.tracked_phis.insert((site.func, *dst));
        }
    }
}

/// Options for guided planning.
#[derive(Clone, Copy, Debug, Default)]
pub struct GuidedOpts {
    /// Apply Opt I (value-flow simplification over MFCs).
    pub opt1: bool,
    /// Keep full MSan-style memory instrumentation (allocation poisoning
    /// and store propagation). Required by `Usher_TL`, which does not
    /// track address-taken variables statically and must therefore
    /// maintain shadow memory everywhere, like MSan.
    pub full_memory: bool,
    /// Bit-level precision (Section 4.1): per-bit poison masks with
    /// Memcheck-style propagation for bitwise operations, and no MFC
    /// folding through bitwise operators.
    pub bit_level: bool,
}

/// Builds the Usher-guided plan from a resolved `Gamma` (Section 3.4; use
/// a `Gamma` from Opt II's modified graph to also apply Opt II).
pub fn guided_plan(
    m: &Module,
    pa: &PointerAnalysis,
    ms: &MemSsa,
    vfg: &Vfg,
    gamma: &Gamma,
    opts: GuidedOpts,
    name: impl Into<String>,
) -> Plan {
    guided_plan_with_fallback(m, pa, ms, vfg, gamma, opts, &HashSet::new(), name)
}

/// Builds a mixed plan: Usher-guided instrumentation everywhere except
/// the functions in `fallback`, which get the always-sound full (MSan)
/// fragment instead. The driver uses this for per-function degradation
/// when the analysis budget runs out before `Gamma` covers the whole
/// module.
///
/// Soundness across the guided/full boundary: top-level SSA registers
/// are function-local, so all cross-function top-level coupling flows
/// through the `sigma_g` argument slots and `sigma_ret`:
///
/// * a call from a *guided* function into a fallback callee writes every
///   argument slot (the full fragment's `ParamSh` reads them all);
/// * a call from a *fallback* function into a guided callee needs the
///   callee to write `sigma_ret` at every return (the full fragment's
///   `RetResultSh` reads it) with the returned value's shadow chain
///   maintained;
/// * memory couples through the shared shadow memory, so `full_memory`
///   is forced on whenever any function degrades (the full fragments
///   load from and store to shadow cells everywhere — exactly the
///   `Usher_TL` coupling argument).
///
/// With an empty `fallback` set this is byte-identical to a pure guided
/// plan.
#[allow(clippy::too_many_arguments)]
pub fn guided_plan_with_fallback(
    m: &Module,
    pa: &PointerAnalysis,
    ms: &MemSsa,
    vfg: &Vfg,
    gamma: &Gamma,
    opts: GuidedOpts,
    fallback: &HashSet<FuncId>,
    name: impl Into<String>,
) -> Plan {
    let mut opts = opts;
    if !fallback.is_empty() {
        opts.full_memory = true;
    }
    let mut p = Plan {
        name: name.into(),
        ..Default::default()
    };
    let mut g = Generator {
        m,
        pa,
        ms,
        vfg,
        gamma,
        opts,
        fallback,
        plan: &mut p,
        processed: HashSet::new(),
        store_sh_sites: HashSet::new(),
        ret_sh_sites: HashSet::new(),
        arg_sh_done: HashSet::new(),
        top_mem_done: HashSet::new(),
        work: Vec::new(),
    };

    if opts.full_memory {
        g.instrument_all_memory();
    }

    // [Bot-Check]: demand every possibly-undefined checked value. Checks
    // inside fallback functions come from their full fragments instead.
    for check in &vfg.checks {
        if fallback.contains(&check.site.func) {
            continue;
        }
        if !gamma.is_bot(check.node) {
            continue; // [Top-Check]
        }
        g.plan.push_before(
            check.site,
            ShadowOp::Check {
                op: check.operand,
                kind: check.kind,
            },
        );
        if let Operand::Var(v) = check.operand {
            if let Some(n) = vfg.tl(check.site.func, v) {
                g.demand(n);
            }
        }
    }

    // Boundary patches at every call crossing the guided/full divide.
    if !fallback.is_empty() {
        for (fid, func) in m.funcs.iter_enumerated() {
            let caller_degraded = fallback.contains(&fid);
            for (bb, block) in func.blocks.iter_enumerated() {
                for (idx, inst) in block.insts.iter().enumerate() {
                    let Inst::Call { callee, args, .. } = inst else {
                        continue;
                    };
                    if matches!(callee, Callee::External(_)) {
                        continue;
                    }
                    let site = Site::new(fid, bb, idx);
                    let callees = pa.call_graph.callees_of(site);
                    if caller_degraded {
                        // The full fragment's RetResultSh here reads
                        // sigma_ret: every guided callee must write it,
                        // with the returned value's shadow maintained.
                        for &gc in callees {
                            if fallback.contains(&gc) {
                                continue;
                            }
                            g.emit_ret_shadows(gc);
                            for b2 in m.funcs[gc].blocks.iter() {
                                if let Terminator::Ret(Some(Operand::Var(v))) = b2.term {
                                    if let Some(n) = vfg.tl(gc, v) {
                                        g.demand(n);
                                    }
                                }
                            }
                        }
                    } else if callees.iter().any(|gc| fallback.contains(gc)) {
                        // A fallback callee's full fragment reads every
                        // sigma_g slot at entry: write them all here.
                        for (i, a) in args.iter().enumerate() {
                            if g.arg_sh_done.insert((site, i)) {
                                g.plan.push_before(
                                    site,
                                    ShadowOp::ArgSh {
                                        index: i,
                                        src: shadow_src(*a),
                                    },
                                );
                            }
                            if let Operand::Var(v) = a {
                                if let Some(n) = vfg.tl(fid, *v) {
                                    g.demand(n);
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    g.run();

    // Substitute the full fragment for every degraded function, in
    // sorted order so the emitted op order is deterministic.
    let mut degraded: Vec<FuncId> = fallback.iter().copied().collect();
    degraded.sort_unstable();
    let bit_level = opts.bit_level;
    for fid in degraded {
        p.absorb(full_plan_func(m, fid, bit_level));
    }
    for fid in m.funcs.indices() {
        let prov = if fallback.contains(&fid) {
            PlanProvenance::FallbackFull
        } else {
            PlanProvenance::Guided
        };
        p.provenance.insert(fid, prov);
    }

    p.finalize_stats();
    p
}

struct Generator<'a> {
    m: &'a Module,
    pa: &'a PointerAnalysis,
    ms: &'a MemSsa,
    vfg: &'a Vfg,
    gamma: &'a Gamma,
    opts: GuidedOpts,
    /// Functions degraded to their full fragment: the guided generator
    /// must neither emit into them nor demand their nodes (the full
    /// fragment already maintains every shadow there).
    fallback: &'a HashSet<FuncId>,
    plan: &'a mut Plan,
    processed: HashSet<u32>,
    store_sh_sites: HashSet<Site>,
    ret_sh_sites: HashSet<Site>,
    arg_sh_done: HashSet<(Site, usize)>,
    top_mem_done: HashSet<u32>,
    work: Vec<u32>,
}

impl<'a> Generator<'a> {
    /// `Usher_TL` memory handling: poison every allocation and propagate
    /// every store, demanding the stored top-level values so their shadow
    /// chains are maintained.
    fn instrument_all_memory(&mut self) {
        for (fid, func) in self.m.funcs.iter_enumerated() {
            if self.fallback.contains(&fid) {
                // The full fragment already poisons allocations and
                // propagates stores in degraded functions.
                continue;
            }
            for (bb, block) in func.blocks.iter_enumerated() {
                for (idx, inst) in block.insts.iter().enumerate() {
                    let site = Site::new(fid, bb, idx);
                    match inst {
                        Inst::Alloc { dst, obj, count } => {
                            self.plan.push_after(
                                site,
                                ShadowOp::SetMemClass {
                                    addr: Operand::Var(*dst),
                                    obj: *obj,
                                    class: u32::MAX,
                                    defined: self.m.objects[*obj].zero_init,
                                    count: *count,
                                },
                            );
                        }
                        Inst::Store { addr, val } => {
                            if self.store_sh_sites.insert(site) {
                                self.plan.push_after(
                                    site,
                                    ShadowOp::StoreSh {
                                        addr: *addr,
                                        src: shadow_src(*val),
                                    },
                                );
                            }
                            if let Operand::Var(v) = val {
                                if let Some(n) = self.vfg.tl(fid, *v) {
                                    self.demand(n);
                                }
                            }
                        }
                        _ => {}
                    }
                }
            }
        }
    }

    /// Demands the shadow of a node: if it may be undefined, its defining
    /// statement is instrumented and its dependencies demanded in turn.
    /// `Top` nodes need nothing — register and memory shadows default to
    /// defined, which realizes the `[Top-*]` strong updates.
    fn demand(&mut self, node: u32) {
        if !self.gamma.is_bot(node) {
            return;
        }
        if self.in_fallback(node) {
            // The node's function is degraded to full instrumentation:
            // its full fragment maintains every shadow in it.
            return;
        }
        if self.processed.insert(node) {
            self.work.push(node);
        }
    }

    /// The function a node belongs to, when it has one (roots don't).
    fn node_func(&self, node: u32) -> Option<FuncId> {
        match self.vfg.nodes[node as usize] {
            NodeKind::Tl(f, _) | NodeKind::Mem(f, _) => Some(f),
            NodeKind::Check(site) => Some(site.func),
            NodeKind::RootT | NodeKind::RootF => None,
        }
    }

    fn in_fallback(&self, node: u32) -> bool {
        !self.fallback.is_empty()
            && self
                .node_func(node)
                .is_some_and(|f| self.fallback.contains(&f))
    }

    fn run(&mut self) {
        while let Some(node) = self.work.pop() {
            self.process(node);
        }
    }

    fn demand_deps(&mut self, node: u32) {
        let deps: Vec<u32> = self.vfg.deps.edges(node).map(|(d, _)| d).collect();
        for d in deps {
            if self.in_fallback(d) {
                // Neither demand nor materialize into a degraded
                // function: its full fragment emits the real StoreSh at
                // every store (a Const(true) materialization there would
                // fight it and mask detections).
                continue;
            }
            if !self.gamma.is_bot(d) && matches!(self.vfg.nodes[d as usize], NodeKind::Mem(..)) {
                // A Top *register* needs nothing — register shadows
                // default to defined. A Top *memory* version does: the
                // runtime cell may carry stale poison from a Bot path
                // (e.g. the poisoning allocation), so the strong updates
                // that make the region Top must still execute.
                self.materialize_top_mem(d);
            } else {
                self.demand(d);
            }
        }
    }

    /// Realizes the `[Top-Store]` strong updates of a statically-defined
    /// memory region that flows into a Bot consumer: gamma proves every
    /// value stored here is defined, so each store writes the constant
    /// `defined` shadow — but the write itself cannot be skipped, or the
    /// cell would keep whatever poison an earlier Bot definition left and
    /// surface it as a spurious detection at the consumer's check.
    fn materialize_top_mem(&mut self, node: u32) {
        if !self.top_mem_done.insert(node) {
            return;
        }
        let NodeKind::Mem(f, ver) = self.vfg.nodes[node as usize] else {
            return;
        };
        let Some(fs) = self.ms.funcs.get(&f) else {
            return;
        };
        let def = fs.def(ver);
        match def.kind {
            MemDefKind::StoreChi(site) => {
                if self.store_sh_sites.insert(site) {
                    let inst = self.m.funcs[f].blocks[site.block].insts[site.idx].clone();
                    let Inst::Store { addr, .. } = inst else {
                        return;
                    };
                    self.plan.push_after(
                        site,
                        ShadowOp::StoreSh {
                            addr,
                            src: ShadowSrc::Const(true),
                        },
                    );
                }
                // A weak store lets the other cells of the class flow
                // through from the previous version, which (being part of
                // a Top state) must be materialized as well.
                self.demand_deps(node);
            }
            MemDefKind::Alloc(_) => {
                // A Top allocation is zero-initialized; runtime shadow
                // memory defaults to defined, so nothing to execute.
            }
            MemDefKind::FormalIn | MemDefKind::Phi(_) | MemDefKind::CallChi(_) => {
                // Merge/boundary nodes execute nothing themselves; every
                // path into them must be materialized (Bot paths through
                // the normal demand machinery).
                self.demand_deps(node);
            }
        }
    }

    fn process(&mut self, node: u32) {
        match self.vfg.nodes[node as usize] {
            NodeKind::RootT | NodeKind::RootF | NodeKind::Check(_) => {}
            NodeKind::Tl(f, v) => self.process_tl(node, f, v),
            NodeKind::Mem(f, ver) => self.process_mem(node, f, ver),
        }
    }

    fn process_tl(&mut self, node: u32, f: FuncId, v: VarId) {
        let func = &self.m.funcs[f];
        if func.params.contains(&v) {
            // [Bot-Para]: callee entry reads sigma_g; every call site
            // writes it from the actual's shadow.
            let index = func
                .params
                .iter()
                .position(|p| *p == v)
                .expect("checked above");
            self.plan
                .entry
                .entry(f)
                .or_default()
                .push(ShadowOp::ParamSh { dst: v, index });
            let deps: Vec<(u32, EdgeKind)> = self.vfg.deps.edges(node).collect();
            for (dep, kind) in deps {
                if let EdgeKind::Call(cs) = kind {
                    if self.fallback.contains(&cs.func) {
                        // The caller is degraded: its full fragment
                        // already writes every sigma_g slot at this site.
                        continue;
                    }
                    if self.arg_sh_done.insert((cs, index)) {
                        let src = match self.vfg.nodes[dep as usize] {
                            NodeKind::Tl(_, av) => ShadowSrc::Tl(av),
                            NodeKind::RootF => ShadowSrc::Const(false),
                            _ => ShadowSrc::Const(true),
                        };
                        self.plan.push_before(cs, ShadowOp::ArgSh { index, src });
                    }
                    self.demand(dep);
                }
            }
            return;
        }

        let Some(site) = self.vfg.def_site[node as usize] else {
            // No defining statement (should not happen for non-params).
            return;
        };
        let inst = self.m.funcs[f].blocks[site.block]
            .insts
            .get(site.idx)
            .cloned();
        let Some(inst) = inst else { return };
        match inst {
            Inst::Copy { dst, src } => {
                if self.try_opt1(node, dst, site) {
                    return;
                }
                self.plan.push_after(
                    site,
                    ShadowOp::CopyTl {
                        dst,
                        src: shadow_src(src),
                    },
                );
                self.demand_deps(node);
            }
            Inst::Un { dst, op, src } => {
                if self.try_opt1(node, dst, site) {
                    return;
                }
                if self.opts.bit_level {
                    self.plan.push_after(site, ShadowOp::UnSh { dst, op, src });
                } else {
                    self.plan.push_after(
                        site,
                        ShadowOp::CopyTl {
                            dst,
                            src: shadow_src(src),
                        },
                    );
                }
                self.demand_deps(node);
            }
            Inst::Bin { dst, op, lhs, rhs } => {
                if self.try_opt1(node, dst, site) {
                    return;
                }
                if self.opts.bit_level {
                    self.plan
                        .push_after(site, ShadowOp::BinSh { dst, op, lhs, rhs });
                } else {
                    self.plan.push_after(
                        site,
                        ShadowOp::AndTl {
                            dst,
                            srcs: vec![shadow_src(lhs), shadow_src(rhs)],
                        },
                    );
                }
                self.demand_deps(node);
            }
            Inst::Gep { dst, base, offset } => {
                if self.try_opt1(node, dst, site) {
                    return;
                }
                let mut srcs = vec![shadow_src(base)];
                if let GepOffset::Index { index, .. } = offset {
                    srcs.push(shadow_src(index));
                }
                self.plan.push_after(site, ShadowOp::AndTl { dst, srcs });
                self.demand_deps(node);
            }
            Inst::Alloc { dst, count, .. } => {
                // The pointer itself: Bot only via an undefined count.
                if let Some(c) = count {
                    self.plan.push_after(
                        site,
                        ShadowOp::AndTl {
                            dst,
                            srcs: vec![shadow_src(c)],
                        },
                    );
                }
                self.demand_deps(node);
            }
            Inst::Load { dst, addr } => {
                // [Bot-Load].
                self.plan.push_after(site, ShadowOp::LoadSh { dst, addr });
                self.demand_deps(node);
            }
            Inst::Call {
                dst: Some(dst),
                callee,
                ..
            } => {
                match callee {
                    Callee::External(_) => {
                        // Externals always produce defined results; a Bot
                        // state here cannot arise.
                    }
                    _ => {
                        // [Bot-Ret].
                        self.plan.push_after(site, ShadowOp::RetResultSh { dst });
                        let callees: Vec<FuncId> = self.pa.call_graph.callees_of(site).to_vec();
                        for g in callees {
                            if self.fallback.contains(&g) {
                                // A degraded callee's full fragment
                                // already writes sigma_ret at returns.
                                continue;
                            }
                            self.emit_ret_shadows(g);
                        }
                        self.demand_deps(node);
                    }
                }
            }
            Inst::Phi { dst, .. } => {
                // [Phi]: shadow follows the selected incoming at runtime.
                self.plan.tracked_phis.insert((f, dst));
                self.demand_deps(node);
            }
            Inst::Call { dst: None, .. } | Inst::Store { .. } => {
                // These define no top-level variable.
            }
        }
    }

    /// Emits `sigma_ret := sigma(r)` at every return of `g`.
    fn emit_ret_shadows(&mut self, g: FuncId) {
        let blocks: Vec<(usher_ir::BlockId, Option<Operand>)> = self.m.funcs[g]
            .blocks
            .iter_enumerated()
            .filter_map(|(bb, b)| match b.term {
                Terminator::Ret(op) => Some((bb, op)),
                _ => None,
            })
            .collect();
        for (bb, op) in blocks {
            let term_site = Site::new(g, bb, self.m.funcs[g].blocks[bb].insts.len());
            if let Some(op) = op {
                if self.ret_sh_sites.insert(term_site) {
                    self.plan.push_before(
                        term_site,
                        ShadowOp::RetSh {
                            src: shadow_src(op),
                        },
                    );
                }
            }
        }
    }

    /// Opt I: replace a chain of copies/operations by one conjunction of
    /// the MFC's Bot sources, skipping the interior propagations.
    fn try_opt1(&mut self, node: u32, dst: VarId, site: Site) -> bool {
        if !self.opts.opt1 {
            return false;
        }
        let closure = mfc(self.m, self.vfg, node, !self.opts.bit_level);
        if closure.folded == 0 {
            return false;
        }
        let mut srcs: Vec<ShadowSrc> = Vec::new();
        for &s in &closure.sources {
            if !self.gamma.is_bot(s) {
                continue; // Top sources contribute a constant T
            }
            match self.vfg.nodes[s as usize] {
                NodeKind::RootF => srcs.push(ShadowSrc::Const(false)),
                NodeKind::Tl(sf, sv) if sf == site.func => {
                    srcs.push(ShadowSrc::Tl(sv));
                    self.demand(s);
                }
                _ => {
                    // A source outside this function cannot be read
                    // directly; fall back to plain propagation.
                    return false;
                }
            }
        }
        self.plan.stats.mfcs_simplified += 1;
        if srcs.is_empty() {
            // All sources Top: the value is Top... but we are Bot; be
            // conservative and mark defined.
            self.plan
                .push_after(site, ShadowOp::SetTl { dst, defined: true });
        } else {
            self.plan.push_after(site, ShadowOp::AndTl { dst, srcs });
        }
        true
    }

    fn process_mem(&mut self, node: u32, f: FuncId, ver: usher_vfg::MemVerId) {
        let Some(fs) = self.ms.funcs.get(&f) else {
            return;
        };
        let def = fs.def(ver);
        match def.kind {
            MemDefKind::FormalIn | MemDefKind::Phi(_) => {
                // [VPara]/[Phi]: collect across — shadow memory is global
                // at runtime, nothing to execute.
                self.demand_deps(node);
            }
            MemDefKind::Alloc(site) => {
                // [Bot-Alloc]: set the fresh object's shadow.
                let inst = self.m.funcs[f].blocks[site.block].insts[site.idx].clone();
                let Inst::Alloc { dst, obj, count } = inst else {
                    return;
                };
                let defined = self.m.objects[obj].zero_init;
                self.plan.push_after(
                    site,
                    ShadowOp::SetMemClass {
                        addr: Operand::Var(dst),
                        obj,
                        class: def.loc.field,
                        defined,
                        count,
                    },
                );
                self.demand_deps(node);
            }
            MemDefKind::StoreChi(site) => {
                // [Bot-Store*]: sigma(*x) := sigma(y), once per store.
                if self.store_sh_sites.insert(site) {
                    let inst = self.m.funcs[f].blocks[site.block].insts[site.idx].clone();
                    let Inst::Store { addr, val } = inst else {
                        return;
                    };
                    self.plan.push_after(
                        site,
                        ShadowOp::StoreSh {
                            addr,
                            src: shadow_src(val),
                        },
                    );
                }
                self.demand_deps(node);
            }
            MemDefKind::CallChi(_) => {
                // [VRet]: shadow memory carries the flow at runtime.
                self.demand_deps(node);
            }
        }
    }
}
