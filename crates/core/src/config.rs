//! Analysis configurations: the four Usher variants of Section 4.5 plus
//! the MSan full-instrumentation baseline, and a one-call driver.

use std::time::Instant;

use usher_ir::Module;
use usher_pointer::PointerAnalysis;
use usher_vfg::{MemSsa, Vfg, VfgMode, VfgStats};

use crate::instrument::{full_plan_with, guided_plan, GuidedOpts, Plan};
use crate::opt2::redundant_check_elimination;
use crate::resolve::{resolve, Gamma};

/// One analysis configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Config {
    /// Display name.
    pub name: &'static str,
    /// `None` means full instrumentation (the MSan baseline).
    pub usher: Option<UsherConfig>,
    /// Bit-level shadow precision for the full-instrumentation baseline
    /// (guided configurations carry the flag in [`UsherConfig`]).
    pub bit_level: bool,
}

/// Knobs of a guided (Usher) configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UsherConfig {
    /// Variable-class scope.
    pub mode: VfgMode,
    /// Opt I: value-flow simplification.
    pub opt1: bool,
    /// Opt II: redundant check elimination.
    pub opt2: bool,
    /// Context depth for definedness resolution (the paper uses 1).
    pub context_depth: usize,
    /// Bit-level shadow precision (Section 4.1).
    pub bit_level: bool,
}

impl Config {
    /// The MSan baseline: full instrumentation.
    pub const MSAN: Config = Config {
        name: "MSan",
        usher: None,
        bit_level: false,
    };
    /// `Usher_TL`: top-level variables only, no optimizations.
    pub const USHER_TL: Config = Config {
        name: "Usher_TL",
        usher: Some(UsherConfig {
            mode: VfgMode::TlOnly,
            opt1: false,
            opt2: false,
            context_depth: 1,
            bit_level: false,
        }),
        bit_level: false,
    };
    /// `Usher_TL+AT`: plus address-taken variables.
    pub const USHER_TL_AT: Config = Config {
        name: "Usher_TL+AT",
        usher: Some(UsherConfig {
            mode: VfgMode::Full,
            opt1: false,
            opt2: false,
            context_depth: 1,
            bit_level: false,
        }),
        bit_level: false,
    };
    /// `Usher_OptI`: plus value-flow simplification.
    pub const USHER_OPT1: Config = Config {
        name: "Usher_OptI",
        usher: Some(UsherConfig {
            mode: VfgMode::Full,
            opt1: true,
            opt2: false,
            context_depth: 1,
            bit_level: false,
        }),
        bit_level: false,
    };
    /// Full Usher: both optimizations.
    pub const USHER: Config = Config {
        name: "Usher",
        usher: Some(UsherConfig {
            mode: VfgMode::Full,
            opt1: true,
            opt2: true,
            context_depth: 1,
            bit_level: false,
        }),
        bit_level: false,
    };

    /// Bit-precise MSan baseline (Section 4.1's Memcheck-style shadows).
    pub const MSAN_BIT: Config = Config {
        name: "MSan/bit",
        usher: None,
        bit_level: true,
    };
    /// Bit-precise full Usher.
    pub const USHER_BIT: Config = Config {
        name: "Usher/bit",
        usher: Some(UsherConfig {
            mode: VfgMode::Full,
            opt1: true,
            opt2: true,
            context_depth: 1,
            bit_level: true,
        }),
        bit_level: true,
    };

    /// The five configurations of Figure 10, in plot order.
    pub const ALL: [Config; 5] = [
        Config::MSAN,
        Config::USHER_TL,
        Config::USHER_TL_AT,
        Config::USHER_OPT1,
        Config::USHER,
    ];
}

/// Everything produced by one analysis run.
pub struct AnalysisOutput {
    /// The instrumentation plan.
    pub plan: Plan,
    /// The resolved definedness map (post-Opt II when enabled), if the
    /// configuration is guided.
    pub gamma: Option<Gamma>,
    /// The VFG (guided configurations only).
    pub vfg: Option<Vfg>,
    /// Pointer analysis (guided configurations only).
    pub pa: Option<PointerAnalysis>,
    /// Memory SSA (guided full-mode configurations only).
    pub memssa: Option<MemSsa>,
    /// VFG construction statistics.
    pub vfg_stats: VfgStats,
    /// Nodes redirected by Opt II (Table 1 column `R`).
    pub opt2_redirected: usize,
    /// Wall-clock analysis time in seconds (pointer analysis included).
    pub analysis_seconds: f64,
}

/// Runs a configuration over a module and produces its plan.
pub fn run_config(m: &Module, cfg: Config) -> AnalysisOutput {
    let start = Instant::now();
    match cfg.usher {
        None => {
            let mut plan = full_plan_with(m, cfg.bit_level);
            plan.name = cfg.name.to_string();
            AnalysisOutput {
                plan,
                gamma: None,
                vfg: None,
                pa: None,
                memssa: None,
                vfg_stats: VfgStats::default(),
                opt2_redirected: 0,
                analysis_seconds: start.elapsed().as_secs_f64(),
            }
        }
        Some(u) => {
            let pa = usher_pointer::analyze(m);
            let ms = match u.mode {
                VfgMode::Full => usher_vfg::build_memssa(m, &pa),
                VfgMode::TlOnly => MemSsa::default(),
            };
            let vfg = usher_vfg::build(m, &pa, &ms, u.mode);
            let (gamma, redirected) = if u.opt2 {
                let r = redundant_check_elimination(m, &pa, &ms, &vfg, u.context_depth);
                (r.gamma, r.redirected)
            } else {
                (resolve(&vfg, u.context_depth), 0)
            };
            let opts = GuidedOpts {
                opt1: u.opt1,
                full_memory: u.mode == VfgMode::TlOnly,
                bit_level: u.bit_level,
            };
            let mut plan = guided_plan(m, &pa, &ms, &vfg, &gamma, opts, cfg.name);
            plan.name = cfg.name.to_string();
            AnalysisOutput {
                plan,
                vfg_stats: vfg.stats,
                gamma: Some(gamma),
                vfg: Some(vfg),
                pa: Some(pa),
                memssa: Some(ms),
                opt2_redirected: redirected,
                analysis_seconds: start.elapsed().as_secs_f64(),
            }
        }
    }
}
