//! Developer utility: times compilation, analysis and execution for the
//! first 40 generator seeds and prints any seed whose total exceeds
//! 300ms — the tool that caught the runaway-loop generator bug.
//!
//! Analysis goes through a shared [`Pipeline`], so the per-stage split
//! (including what the five configurations share via the cache) comes
//! from the driver's telemetry instead of hand-rolled timers.
//!
//! ```sh
//! cargo run --release -p usher-bench --example profile_seeds
//! ```

use std::time::Instant;
use usher::core::Config;
use usher::driver::{Pipeline, PipelineOptions, SourceInput};
use usher::runtime::{run, RunOptions};
use usher::workloads::{generate, GenConfig};

fn main() {
    let opts = RunOptions {
        fuel: 2_000_000,
        ..Default::default()
    };
    let pipe = Pipeline::new();
    for seed in 0..40u64 {
        let t0 = Instant::now();
        let src = generate(seed, GenConfig::default());
        let mut per = Vec::new();
        for cfg in Config::ALL {
            let pr = pipe
                .run(
                    format!("seed{seed}"),
                    SourceInput::TinyC(src.clone()),
                    PipelineOptions::from_config(cfg),
                )
                .expect("generated program compiles");
            let tb = Instant::now();
            let r = run(&pr.module, Some(&pr.plan), &opts);
            per.push(format!(
                "{}: a={:.1}ms (cached {}/{}) r={:?} native_ops={}",
                cfg.name,
                1e3 * pr.report.total_seconds,
                pr.report.cache_hits,
                pr.report.cache_hits + pr.report.cache_misses,
                tb.elapsed(),
                r.counters.native_ops
            ));
        }
        let total = t0.elapsed();
        if total.as_millis() > 300 {
            println!("seed {seed}: total={total:?}");
            for p in per {
                println!("   {p}");
            }
        }
    }
    println!("done");
}
