//! Developer utility: times compilation, analysis and execution for the
//! first 40 generator seeds and prints any seed whose total exceeds
//! 300ms — the tool that caught the runaway-loop generator bug.
//!
//! ```sh
//! cargo run --release -p usher-bench --example profile_seeds
//! ```

use std::time::Instant;
use usher::core::{run_config, Config};
use usher::frontend::compile_o0im;
use usher::runtime::{run, RunOptions};
use usher::workloads::{generate, GenConfig};

fn main() {
    let opts = RunOptions { fuel: 2_000_000, ..Default::default() };
    for seed in 0..40u64 {
        let t0 = Instant::now();
        let src = generate(seed, GenConfig::default());
        let m = compile_o0im(&src).unwrap();
        let t1 = Instant::now();
        let mut per = Vec::new();
        for cfg in Config::ALL {
            let ta = Instant::now();
            let out = run_config(&m, cfg);
            let tb = Instant::now();
            let r = run(&m, Some(&out.plan), &opts);
            let tc = Instant::now();
            per.push(format!("{}: a={:?} r={:?} native_ops={}", cfg.name, tb-ta, tc-tb, r.counters.native_ops));
        }
        let total = t0.elapsed();
        if total.as_millis() > 300 {
            println!("seed {seed}: compile={:?} total={:?}", t1-t0, total);
            for p in per { println!("   {p}"); }
        }
    }
    println!("done");
}
