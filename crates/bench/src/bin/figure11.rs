//! Regenerates Figure 11: static numbers of shadow propagations and
//! runtime checks per configuration, normalized to MSan.

use usher_bench::{render_figure11, run_suite};
use usher_runtime::RunOptions;
use usher_workloads::Scale;

fn main() {
    let scale = match std::env::args().nth(1).as_deref() {
        Some("test") => Scale::TEST,
        _ => Scale::REF,
    };
    let rows = run_suite(scale, &RunOptions::default());
    println!("Figure 11 (scale n={})", scale.n);
    print!("{}", render_figure11(&rows));
}
