//! Regenerates Figure 11: static numbers of shadow propagations and
//! runtime checks per configuration, normalized to MSan.

use usher_bench::cli::BenchArgs;
use usher_bench::{render_figure11, run_suite_with};
use usher_runtime::RunOptions;
use usher_workloads::Scale;

fn main() {
    let args = BenchArgs::parse(Scale::REF);
    let pipe = args.pipeline();
    let suite = run_suite_with(args.scale, &RunOptions::default(), &pipe);
    args.emit_report(&suite.batch);
    println!("Figure 11 (scale n={})", args.scale.n);
    print!("{}", render_figure11(&suite.rows));
}
