//! Ablation study over the design choices DESIGN.md calls out:
//!
//! * context depth k of definedness resolution (0 / 1 / 2; the paper uses 1);
//! * the semi-strong update rule on/off (the paper's novel mechanism);
//! * Opt I and Opt II individually.
//!
//! Reported as the suite-average dynamic slowdown of the resulting plan.

use usher_bench::average;
use usher_core::{guided_plan, redundant_check_elimination, resolve, GuidedOpts};
use usher_runtime::{run, RunOptions};
use usher_vfg::{build_memssa, build_with, BuildOpts, VfgMode};
use usher_workloads::{all_workloads, Scale};

struct Variant {
    name: &'static str,
    k: usize,
    semi_strong: bool,
    opt1: bool,
    opt2: bool,
}

const VARIANTS: [Variant; 6] = [
    Variant { name: "full Usher (k=1)", k: 1, semi_strong: true, opt1: true, opt2: true },
    Variant { name: "k=0 (ctx-insensitive)", k: 0, semi_strong: true, opt1: true, opt2: true },
    Variant { name: "k=2", k: 2, semi_strong: true, opt1: true, opt2: true },
    Variant { name: "no semi-strong", k: 1, semi_strong: false, opt1: true, opt2: true },
    Variant { name: "no Opt I", k: 1, semi_strong: true, opt1: false, opt2: true },
    Variant { name: "no Opt II", k: 1, semi_strong: true, opt1: true, opt2: false },
];

fn main() {
    let scale = match std::env::args().nth(1).as_deref() {
        Some("test") => Scale::TEST,
        _ => Scale::REF,
    };
    let opts = RunOptions::default();
    println!("Ablation over the design choices (scale n={})\n", scale.n);
    println!("{:<24} {:>14} {:>16} {:>12}", "variant", "avg slowdown", "avg propagations", "avg checks");

    for v in VARIANTS {
        let mut slowdowns = Vec::new();
        let mut props = Vec::new();
        let mut checks = Vec::new();
        for w in all_workloads(scale) {
            let m = w.compile_o0im().expect(w.name);
            let pa = usher_pointer::analyze(&m);
            let ms = build_memssa(&m, &pa);
            let vfg = build_with(
                &m,
                &pa,
                &ms,
                BuildOpts { mode: VfgMode::Full, semi_strong: v.semi_strong },
            );
            let gamma = if v.opt2 {
                redundant_check_elimination(&m, &pa, &ms, &vfg, v.k).gamma
            } else {
                resolve(&vfg, v.k)
            };
            let plan = guided_plan(
                &m,
                &pa,
                &ms,
                &vfg,
                &gamma,
                GuidedOpts { opt1: v.opt1, full_memory: false, bit_level: false },
                v.name,
            );
            let r = run(&m, Some(&plan), &opts);
            slowdowns.push(r.counters.slowdown_pct());
            props.push(plan.stats.propagations as f64);
            checks.push(plan.stats.checks as f64);
        }
        println!(
            "{:<24} {:>13.0}% {:>16.0} {:>12.0}",
            v.name,
            average(&slowdowns),
            average(&props),
            average(&checks)
        );
    }
}
