//! Ablation study over the design choices DESIGN.md calls out:
//!
//! * context depth k of definedness resolution (0 / 1 / 2; the paper uses 1);
//! * the semi-strong update rule on/off (the paper's novel mechanism);
//! * Opt I and Opt II individually.
//!
//! Each variant is a [`GuidedKnobs`] tweak run through the shared
//! pipeline, so all six variants reuse the compiled module, pointer
//! analysis and memory SSA from the cache, and variants that share a VFG
//! (same semi-strong setting) reuse that too.
//!
//! Reported as the suite-average dynamic slowdown of the resulting plan.

use usher_bench::{average, cli::BenchArgs};
use usher_driver::{GuidedKnobs, Job, PipelineOptions, SourceInput};
use usher_runtime::{run, RunOptions};
use usher_vfg::VfgMode;
use usher_workloads::{all_workloads, Scale};

struct Variant {
    name: &'static str,
    k: usize,
    semi_strong: bool,
    opt1: bool,
    opt2: bool,
}

const VARIANTS: [Variant; 6] = [
    Variant {
        name: "full Usher (k=1)",
        k: 1,
        semi_strong: true,
        opt1: true,
        opt2: true,
    },
    Variant {
        name: "k=0 (ctx-insensitive)",
        k: 0,
        semi_strong: true,
        opt1: true,
        opt2: true,
    },
    Variant {
        name: "k=2",
        k: 2,
        semi_strong: true,
        opt1: true,
        opt2: true,
    },
    Variant {
        name: "no semi-strong",
        k: 1,
        semi_strong: false,
        opt1: true,
        opt2: true,
    },
    Variant {
        name: "no Opt I",
        k: 1,
        semi_strong: true,
        opt1: false,
        opt2: true,
    },
    Variant {
        name: "no Opt II",
        k: 1,
        semi_strong: true,
        opt1: true,
        opt2: false,
    },
];

impl Variant {
    fn options(&self) -> PipelineOptions {
        let knobs = GuidedKnobs {
            mode: VfgMode::Full,
            semi_strong: self.semi_strong,
            context_depth: self.k,
            opt1: self.opt1,
            opt2: self.opt2,
            demand: false,
        };
        PipelineOptions {
            guided: Some(knobs),
            ..PipelineOptions::default()
        }
        .labelled(self.name)
    }
}

fn main() {
    let args = BenchArgs::parse(Scale::REF);
    let pipe = args.pipeline();
    let opts = RunOptions::default();
    let workloads = all_workloads(args.scale);
    println!(
        "Ablation over the design choices (scale n={})\n",
        args.scale.n
    );
    println!(
        "{:<24} {:>14} {:>16} {:>12}",
        "variant", "avg slowdown", "avg propagations", "avg checks"
    );

    for v in VARIANTS {
        let jobs: Vec<Job> = workloads
            .iter()
            .map(|w| {
                Job::new(
                    w.name,
                    SourceInput::TinyC(w.source.clone()),
                    args.apply(v.options()),
                )
            })
            .collect();
        let (runs, batch) = pipe.run_batch(&jobs);
        args.emit_report(&batch);
        let mut slowdowns = Vec::new();
        let mut props = Vec::new();
        let mut checks = Vec::new();
        for r in runs {
            let r = r.expect("suite compiles");
            let exec = run(&r.module, Some(&r.plan), &opts);
            slowdowns.push(exec.counters.slowdown_pct());
            props.push(r.plan.stats.propagations as f64);
            checks.push(r.plan.stats.checks as f64);
        }
        println!(
            "{:<24} {:>13.0}% {:>16.0} {:>12.0}",
            v.name,
            average(&slowdowns),
            average(&props),
            average(&checks)
        );
    }
}
