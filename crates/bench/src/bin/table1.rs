//! Regenerates Table 1: per-benchmark statistics of the value-flow
//! analysis under O0+IM.

use usher_core::{render_table1, table1_row};
use usher_workloads::{all_workloads, Scale};

fn main() {
    let scale = match std::env::args().nth(1).as_deref() {
        Some("test") => Scale::TEST,
        _ => Scale::REF,
    };
    let mut rows = Vec::new();
    for w in all_workloads(scale) {
        let m = w.compile_o0im().unwrap_or_else(|e| panic!("{} fails: {e}", w.name));
        rows.push(table1_row(w.name, &w.source, &m));
    }
    println!("Table 1: benchmark statistics under O0+IM (scale n={})", scale.n);
    print!("{}", render_table1(&rows));
    println!("\n%F  = % of address-taken objects uninitialized when allocated");
    println!("S   = semi-strong rule applications per non-array heap allocation site");
    println!("%SU = % of stores strongly updated; %WU = unique-target stores left weak");
    println!("%B  = % of VFG nodes reaching at least one critical statement");
}
