//! Regenerates Table 1: per-benchmark statistics of the value-flow
//! analysis under O0+IM.

use usher_bench::cli::BenchArgs;
use usher_core::{render_table1, table1_row_from, AnalysisFacts, Config};
use usher_driver::{Job, PipelineOptions, SourceInput};
use usher_workloads::{all_workloads, Scale};

fn main() {
    let args = BenchArgs::parse(Scale::REF);
    let pipe = args.pipeline();
    let workloads = all_workloads(args.scale);
    let jobs: Vec<Job> = workloads
        .iter()
        .map(|w| {
            Job::new(
                w.name,
                SourceInput::TinyC(w.source.clone()),
                args.apply(PipelineOptions::from_config(Config::USHER)),
            )
        })
        .collect();
    let (runs, batch) = pipe.run_batch(&jobs);
    args.emit_report(&batch);

    let mut rows = Vec::new();
    for (w, r) in workloads.iter().zip(runs) {
        let r = r.unwrap_or_else(|e| panic!("{} fails: {e}", w.name));
        // A budgeted run that degraded to full instrumentation has no
        // VFG to report statistics from; its row would be meaningless.
        let Some(vfg) = r.vfg.as_ref() else {
            eprintln!(
                "note: {} degraded to full instrumentation ({} event(s)); no Table 1 row",
                w.name,
                r.report.degrade_events.len()
            );
            continue;
        };
        rows.push(table1_row_from(
            w.name,
            &w.source,
            &r.module,
            AnalysisFacts {
                vfg,
                mfcs_simplified: r.plan.stats.mfcs_simplified,
                opt2_redirected: r.opt2_redirected,
                analysis_seconds: r.report.total_seconds,
            },
        ));
    }
    println!(
        "Table 1: benchmark statistics under O0+IM (scale n={})",
        args.scale.n
    );
    print!("{}", render_table1(&rows));
    println!("\n%F  = % of address-taken objects uninitialized when allocated");
    println!("S   = semi-strong rule applications per non-array heap allocation site");
    println!("%SU = % of stores strongly updated; %WU = unique-target stores left weak");
    println!("%B  = % of VFG nodes reaching at least one critical statement");
}
