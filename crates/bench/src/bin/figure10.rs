//! Regenerates Figure 10: execution-time slowdowns (normalized to native)
//! for MSan and the four Usher variants over the 15-workload suite.

use usher_bench::{render_figure10, run_suite};
use usher_runtime::RunOptions;
use usher_workloads::Scale;

fn main() {
    let scale = match std::env::args().nth(1).as_deref() {
        Some("test") => Scale::TEST,
        _ => Scale::REF,
    };
    let rows = run_suite(scale, &RunOptions::default());
    println!("Figure 10: runtime slowdown vs native (scale n={})", scale.n);
    print!("{}", render_figure10(&rows));
    // Section 4.5: one genuine bug in 197.parser, found by every tool.
    for row in &rows {
        for r in &row.runs {
            if r.detected_sites > 0 {
                println!("note: {} detected {} undefined-use site(s) under {}", row.name, r.detected_sites, r.config);
            }
        }
    }
}
