//! Regenerates Figure 10: execution-time slowdowns (normalized to native)
//! for MSan and the four Usher variants over the 15-workload suite.

use usher_bench::cli::BenchArgs;
use usher_bench::{render_figure10, run_suite_with};
use usher_runtime::RunOptions;
use usher_workloads::Scale;

fn main() {
    let args = BenchArgs::parse(Scale::REF);
    let pipe = args.pipeline();
    let suite = run_suite_with(args.scale, &RunOptions::default(), &pipe);
    args.emit_report(&suite.batch);
    println!(
        "Figure 10: runtime slowdown vs native (scale n={})",
        args.scale.n
    );
    print!("{}", render_figure10(&suite.rows));
    // Section 4.5: one genuine bug in 197.parser, found by every tool.
    for row in &suite.rows {
        for r in &row.runs {
            if r.detected_sites > 0 {
                println!(
                    "note: {} detected {} undefined-use site(s) under {}",
                    row.name, r.detected_sites, r.config
                );
            }
        }
    }
}
