//! Pointer-analysis / resolution stage benchmark: before (the retained
//! reference implementations) vs after (bitmap points-to sets, interned
//! contexts, CSR traversal) over the workload-generator seed ladder.
//!
//! Emits one JSON object (the `BENCH_pointer_resolve.json` format) on
//! stdout; `scripts/bench.sh` redirects it into the repo. Results are
//! cross-checked in-process: both solver generations must agree on the
//! points-to sets and the resolved `Bot` set before any time is reported.
//!
//! Usage: `stage_bench [--quick]` (`--quick` = fewer seeds, one timing
//! iteration — the CI smoke path).

use std::fmt::Write as _;
use std::time::Instant;

use usher_core::{resolve, resolve_reference};
use usher_vfg::{build, build_memssa, VfgMode};
use usher_workloads::{generate, GenConfig};

/// One rung of the seed ladder: (generator seed, helpers, max stmts).
const LADDER: &[(u64, usize, usize)] = &[
    (11, 8, 8),
    (23, 16, 10),
    (37, 32, 12),
    (53, 64, 12),
    (71, 96, 14),
    (97, 128, 14),
    (131, 160, 14),
];

const CONTEXT_DEPTH: usize = 1;

fn time_min<R>(iters: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let t = Instant::now();
        std::hint::black_box(f());
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (seeds, iters): (&[(u64, usize, usize)], usize) = if quick {
        (&LADDER[..2], 1)
    } else {
        (LADDER, 5)
    };

    let mut workloads = String::new();
    let mut largest: Option<(String, f64, f64)> = None;

    for (i, &(seed, helpers, stmts)) in seeds.iter().enumerate() {
        let cfg = GenConfig {
            helpers,
            max_stmts: stmts,
            uninit_pct: 35,
        };
        let src = generate(seed, cfg);
        let m = usher_frontend::compile_o0im(&src).expect("generated workloads compile");

        // Correctness gate: the two solver generations must agree before
        // their timings mean anything.
        let pa = usher_pointer::analyze(&m);
        let pa_ref = usher_pointer::analyze_reference(&m);
        let ms = build_memssa(&m, &pa);
        let g = build(&m, &pa, &ms, VfgMode::Full);
        let gamma = resolve(&g, CONTEXT_DEPTH);
        let gamma_ref = resolve_reference(&g, CONTEXT_DEPTH);
        for v in 0..g.len() as u32 {
            assert_eq!(
                gamma.is_bot(v),
                gamma_ref.is_bot(v),
                "seed {seed}: resolver generations disagree at node {v}"
            );
        }
        assert_eq!(
            pa.call_graph.callees, pa_ref.call_graph.callees,
            "seed {seed}: solver generations disagree on the call graph"
        );

        let t_pointer_before = time_min(iters, || usher_pointer::analyze_reference(&m));
        let t_pointer_after = time_min(iters, || usher_pointer::analyze(&m));
        let t_resolve_before = time_min(iters, || resolve_reference(&g, CONTEXT_DEPTH));
        let t_resolve_after = time_min(iters, || resolve(&g, CONTEXT_DEPTH));

        let p_speedup = t_pointer_before / t_pointer_after.max(1e-9);
        let r_speedup = t_resolve_before / t_resolve_after.max(1e-9);
        let name = format!("gen-{seed}");
        let _ = write!(
            workloads,
            "{}{{\"name\":\"{name}\",\"seed\":{seed},\"helpers\":{helpers},\"source_bytes\":{},\"vfg_nodes\":{},\
             \"pointer\":{{\"before_ms\":{:.3},\"after_ms\":{:.3},\"speedup\":{:.2}}},\
             \"resolve\":{{\"before_ms\":{:.3},\"after_ms\":{:.3},\"speedup\":{:.2}}},\
             \"solver\":{{\"nodes\":{},\"interned_targets\":{},\"pops\":{},\"merges\":{},\"peak_pts_words\":{}}},\
             \"contexts\":{},\"visited_states\":{},\"bot_nodes\":{}}}",
            if i > 0 { "," } else { "" },
            src.len(),
            g.len(),
            t_pointer_before * 1e3,
            t_pointer_after * 1e3,
            p_speedup,
            t_resolve_before * 1e3,
            t_resolve_after * 1e3,
            r_speedup,
            pa.stats.nodes,
            pa.stats.interned_targets,
            pa.stats.pops,
            pa.stats.merges,
            pa.stats.peak_pts_words,
            gamma.stats.interned_contexts,
            gamma.stats.visited_states,
            gamma.bot_count(),
        );
        largest = Some((name, p_speedup, r_speedup));
        eprintln!(
            "seed={seed} helpers={helpers} nodes={} pointer {:.2}ms -> {:.2}ms ({p_speedup:.2}x) resolve {:.2}ms -> {:.2}ms ({r_speedup:.2}x)",
            g.len(),
            t_pointer_before * 1e3,
            t_pointer_after * 1e3,
            t_resolve_before * 1e3,
            t_resolve_after * 1e3,
        );
    }

    let (lname, lp, lr) = largest.expect("at least one seed");
    println!(
        "{{\"bench\":\"pointer_resolve\",\"quick\":{quick},\"iters\":{iters},\"context_depth\":{CONTEXT_DEPTH},\
         \"workloads\":[{workloads}],\
         \"largest\":{{\"name\":\"{lname}\",\"pointer_speedup\":{lp:.2},\"resolve_speedup\":{lr:.2}}}}}"
    );
}
