//! Stage benchmark: times all ten driver stages end-to-end over the
//! workload-generator seed ladder, plus focused before/after rungs for
//! the three overhauled analysis stages — pointer analysis (every
//! solver strategy vs the frozen reference, single-threaded and at 4
//! threads), VFG construction (CSR-first builder vs the frozen
//! adjacency-list reference) and definedness resolution (SCC
//! condensation + context bit-lanes vs the frozen visited-state walk).
//!
//! The resolve rung measures the *same work as the driver's Resolve
//! stage*: Opt II discovery plus re-resolution, on both sides. Every
//! timing is gated by in-process cross-checks — frozen-reference freeze
//! must be structurally identical to the CSR-first build, all `Gamma`s
//! must agree node-for-node, Opt II must redirect the same nodes, and
//! the final instrumentation plans must be byte-identical.
//!
//! A demand rung per workload times the `usher serve` point-query
//! scenario — a fresh [`DemandEngine`] answering one check versus a cold
//! full resolve — with the verdict cross-checked against the exhaustive
//! resolver.
//!
//! Emits one JSON object (the `BENCH_stages.json` format) on stdout;
//! `scripts/bench.sh` redirects it into the repo. Full runs additionally
//! write `BENCH_demand.json` (the demand rungs alone), which is checked
//! in as the record the quick gate asserts against.
//!
//! Usage: `stage_bench [--quick]` (`--quick` = two smoke rungs, fewer
//! iterations, and regression guards: exits nonzero if the condensed
//! vfg+resolve pipeline is slower than the frozen reference, if a live
//! demand query exceeds the gate with slack, or if the checked-in
//! `BENCH_demand.json` records a gen-131 query at or above 10% of a
//! cold full resolve).

use std::fmt::Write as _;
use std::process::ExitCode;
use std::time::Instant;

use usher_core::{
    guided_plan, redundant_check_elimination, redundant_check_elimination_reference, resolve,
    resolve_reference, Config, GuidedOpts,
};
use usher_driver::{analyze_pointer, plan_fingerprint, Pipeline, PipelineOptions};
use usher_ir::{Budget, Module};
use usher_pointer::{PointerAnalysis, PointerStrategy};
use usher_vfg::{build, build_memssa, build_reference, DemandEngine, Vfg, VfgMode};
use usher_workloads::{generate, ladder_config, SEED_LADDER};

const CONTEXT_DEPTH: usize = 1;

/// The demand gate: a single cold point query on the largest rung must
/// cost under this fraction of a cold full resolve (the checked-in
/// `BENCH_demand.json` is the record of evidence; `--quick` re-asserts
/// it without re-timing the big rung).
const DEMAND_RATIO_GATE: f64 = 0.10;

/// Live `--quick` rungs are small (fixed per-query overheads weigh
/// more) and CI machines are noisy, so the live gate gets 3x slack.
const DEMAND_QUICK_SLACK: f64 = 3.0;

/// The rung the checked-in demand gate pins (the ladder's largest).
const DEMAND_GATE_RUNG: &str = "gen-131";

/// Pulls `"ratio":<f64>` out of the named workload's object in a
/// checked-in `BENCH_demand.json`, with a deliberately naive string
/// scan — the bench format is flat and machine-written, and the bench
/// crates stay free of parser dependencies.
fn checked_in_demand_ratio(text: &str, rung: &str) -> Option<f64> {
    let at = text.find(&format!("\"name\":\"{rung}\""))?;
    let rest = &text[at..];
    let tail = &rest[rest.find("\"ratio\":")? + "\"ratio\":".len()..];
    let end = tail.find([',', '}']).unwrap_or(tail.len());
    tail[..end].trim().parse().ok()
}

/// The driver stages in execution order (for stable JSON key order).
const STAGE_NAMES: [&str; 10] = [
    "parse",
    "lower",
    "inline",
    "mem2reg",
    "opt",
    "pointer",
    "memssa",
    "vfg",
    "resolve",
    "instrument",
];

fn time_min<R>(iters: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let t = Instant::now();
        std::hint::black_box(f());
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

/// The frozen reference and the CSR-first builder must produce the same
/// graph, bit for bit: same node interning order, same deduplicated
/// dependence CSR, same transposed user CSR, same checks and stats.
fn assert_freeze_equal(g: &Vfg, frozen: &Vfg, tag: &str) {
    assert_eq!(g.nodes, frozen.nodes, "{tag}: node tables differ");
    assert_eq!(g.deps.offsets, frozen.deps.offsets, "{tag}: deps offsets");
    assert_eq!(g.deps.targets, frozen.deps.targets, "{tag}: deps targets");
    assert_eq!(g.deps.kinds, frozen.deps.kinds, "{tag}: deps kinds");
    assert_eq!(
        g.users.offsets, frozen.users.offsets,
        "{tag}: users offsets"
    );
    assert_eq!(
        g.users.targets, frozen.users.targets,
        "{tag}: users targets"
    );
    assert_eq!(g.users.kinds, frozen.users.kinds, "{tag}: users kinds");
    assert_eq!(g.def_site, frozen.def_site, "{tag}: def sites");
    assert_eq!(g.checks.len(), frozen.checks.len(), "{tag}: check count");
    assert_eq!(g.stats, frozen.stats, "{tag}: store-kind stats");
}

/// All strategies must agree on everything downstream stages consume:
/// per-variable points-to sets and function targets, per-object field
/// classes and memory rows, concreteness and the call graph.
fn assert_strategy_equiv(m: &Module, a: &PointerAnalysis, b: &PointerAnalysis, tag: &str) {
    for (f, func) in m.funcs.iter_enumerated() {
        for (v, _) in func.vars.iter_enumerated() {
            assert_eq!(a.pts_var(f, v), b.pts_var(f, v), "{tag}: pts({f:?},{v:?})");
            assert_eq!(
                a.fn_targets(f, v),
                b.fn_targets(f, v),
                "{tag}: fn_targets({f:?},{v:?})"
            );
        }
    }
    for (o, _) in m.objects.iter_enumerated() {
        let fields = a.all_fields(o);
        assert_eq!(fields, b.all_fields(o), "{tag}: fields({o:?})");
        for l in fields {
            assert_eq!(a.pts_mem(l), b.pts_mem(l), "{tag}: pts_mem({l:?})");
            assert_eq!(a.is_concrete(l), b.is_concrete(l), "{tag}: concrete({l:?})");
        }
    }
    assert_eq!(
        a.call_graph.callees, b.call_graph.callees,
        "{tag}: call graphs differ"
    );
    assert_eq!(
        a.concrete_objects, b.concrete_objects,
        "{tag}: concrete object sets differ"
    );
}

fn main() -> ExitCode {
    let quick = std::env::args().any(|a| a == "--quick");
    let (rungs, iters): (&[(u64, usize, usize)], usize) = if quick {
        (&SEED_LADDER[..2], 2)
    } else {
        (&SEED_LADDER, 5)
    };

    let usher_opts = GuidedOpts {
        opt1: true,
        full_memory: false,
        bit_level: false,
    };

    let mut workloads = String::new();
    let mut demand_workloads = String::new();
    let mut largest: Option<(String, f64, f64, f64, f64, f64, f64)> = None;
    let mut regression = false;

    for (i, &(seed, helpers, stmts)) in rungs.iter().enumerate() {
        let src = generate(seed, ladder_config(helpers, stmts));
        let name = format!("gen-{seed}");
        let m = usher_frontend::compile_o0im(&src).expect("generated workloads compile");

        // Shared upstream artifacts for the vfg/resolve rungs.
        let pa = usher_pointer::analyze(&m);
        let ms = build_memssa(&m, &pa);

        // ---- correctness gates --------------------------------------
        let rg = build_reference(&m, &pa, &ms, VfgMode::Full);
        let g = build(&m, &pa, &ms, VfgMode::Full);
        assert_freeze_equal(&g, &rg.freeze(), &name);

        let gamma = resolve(&g, CONTEXT_DEPTH);
        let gamma_ref = resolve_reference(&rg, CONTEXT_DEPTH);
        for v in 0..g.len() as u32 {
            assert_eq!(
                gamma.is_bot(v),
                gamma_ref.is_bot(v),
                "{name}: resolver generations disagree at node {v}"
            );
        }

        let opt2 = redundant_check_elimination(&m, &pa, &ms, &g, CONTEXT_DEPTH);
        let opt2_ref = redundant_check_elimination_reference(&m, &pa, &ms, &rg, CONTEXT_DEPTH);
        assert_eq!(
            opt2.redirected, opt2_ref.redirected,
            "{name}: Opt II redirection counts disagree"
        );
        for v in 0..g.len() as u32 {
            assert_eq!(
                opt2.gamma.is_bot(v),
                opt2_ref.gamma.is_bot(v),
                "{name}: Opt II gammas disagree at node {v}"
            );
        }

        let plan = guided_plan(&m, &pa, &ms, &g, &opt2.gamma, usher_opts, "bench");
        let plan_ref = guided_plan(
            &m,
            &pa,
            &ms,
            &rg.freeze(),
            &opt2_ref.gamma,
            usher_opts,
            "bench",
        );
        assert_eq!(
            plan_fingerprint(&plan),
            plan_fingerprint(&plan_ref),
            "{name}: instrumentation plans are not byte-identical"
        );

        // Every solver strategy must agree with the frozen reference on
        // all observables, and prefilter+wave must be byte-identical
        // (same digest) no matter how many threads drive the waves.
        let pa_ref = usher_pointer::analyze_reference(&m);
        for strategy in PointerStrategy::ALL {
            let pa_s = analyze_pointer(&m, strategy, 1);
            assert_strategy_equiv(&m, &pa_s, &pa_ref, &format!("{name}/{strategy}"));
        }
        let pa_t4 = analyze_pointer(&m, PointerStrategy::PrefilterWave, 4);
        assert_eq!(
            pa.digest(),
            pa_t4.digest(),
            "{name}: prefilter-wave digest differs between 1 and 4 threads"
        );

        // ---- all ten driver stages + end-to-end ---------------------
        let mut stage_ms = [f64::INFINITY; STAGE_NAMES.len()];
        let mut total_ms = f64::INFINITY;
        for _ in 0..iters {
            let pipe = Pipeline::new().without_cache().with_threads(1);
            let run = pipe
                .run_source(&name, &src, PipelineOptions::from_config(Config::USHER))
                .expect("pipeline runs");
            for st in &run.report.stages {
                let slot = STAGE_NAMES
                    .iter()
                    .position(|n| *n == st.stage.name())
                    .expect("known stage");
                stage_ms[slot] = stage_ms[slot].min(st.seconds * 1e3);
            }
            total_ms = total_ms.min(run.report.total_seconds * 1e3);
        }

        // ---- before/after rungs -------------------------------------
        // One rung per pointer strategy (single-threaded), plus the
        // default strategy on four driver threads.
        let mut t_strategy = [0f64; PointerStrategy::ALL.len()];
        for (j, strategy) in PointerStrategy::ALL.into_iter().enumerate() {
            t_strategy[j] = time_min(iters, || analyze_pointer(&m, strategy, 1));
        }
        let t_pointer_before = t_strategy[0]; // reference
        let t_pointer_after = t_strategy[PointerStrategy::ALL.len() - 1]; // prefilter-wave
        let t_pointer_t4 = time_min(iters, || {
            analyze_pointer(&m, PointerStrategy::PrefilterWave, 4)
        });

        let t_vfg_before = time_min(iters, || build_reference(&m, &pa, &ms, VfgMode::Full));
        let t_vfg_after = time_min(iters, || build(&m, &pa, &ms, VfgMode::Full));

        // The resolve rung is the driver's Resolve stage: Opt II
        // discovery plus re-resolution. The condensed side rebuilds the
        // VFG outside the timed region each iteration so every sample
        // pays for the SCC condensation, exactly as a driver run does.
        let t_resolve_before = time_min(iters, || {
            redundant_check_elimination_reference(&m, &pa, &ms, &rg, CONTEXT_DEPTH)
        });
        let t_resolve_after = {
            let mut best = f64::INFINITY;
            for _ in 0..iters {
                let g_fresh = build(&m, &pa, &ms, VfgMode::Full);
                let t = Instant::now();
                std::hint::black_box(redundant_check_elimination(
                    &m,
                    &pa,
                    &ms,
                    &g_fresh,
                    CONTEXT_DEPTH,
                ));
                best = best.min(t.elapsed().as_secs_f64());
            }
            best
        };

        // ---- demand point-query rung --------------------------------
        // The `usher serve` scenario: the session's VFG is analyzed
        // (its condensation is memoized by the resolve gates above), and
        // a `query-use` answers one check. The cold side pays engine
        // construction plus the sparse backward walk; the resolve side
        // pays a full cold resolution, graph rebuilt outside the timed
        // region so every sample includes the condensation, exactly as
        // a fresh analyze does.
        let t_resolve_cold = {
            let mut best = f64::INFINITY;
            for _ in 0..iters {
                let g_fresh = build(&m, &pa, &ms, VfgMode::Full);
                let t = Instant::now();
                std::hint::black_box(resolve(&g_fresh, CONTEXT_DEPTH));
                best = best.min(t.elapsed().as_secs_f64());
            }
            best
        };
        let check_node = g.checks.first().map(|c| c.node).expect("rungs have checks");
        let t_query_cold = time_min(iters, || {
            let mut eng = DemandEngine::new(&g, CONTEXT_DEPTH);
            eng.query(&g, check_node, &Budget::unlimited())
        });
        let t_query_memo = {
            let mut eng = DemandEngine::new(&g, CONTEXT_DEPTH);
            let v = eng.query(&g, check_node, &Budget::unlimited());
            assert_eq!(
                v.bot,
                gamma.is_bot(check_node),
                "{name}: demand verdict disagrees with the exhaustive resolver"
            );
            time_min(iters, || eng.query(&g, check_node, &Budget::unlimited()))
        };
        let d_ratio = t_query_cold / t_resolve_cold.max(1e-9);
        if quick && d_ratio > DEMAND_RATIO_GATE * DEMAND_QUICK_SLACK {
            eprintln!(
                "REGRESSION: {name}: cold demand query {:.3}ms is {:.2}x a cold full \
                 resolve {:.3}ms (live gate {:.2})",
                t_query_cold * 1e3,
                d_ratio,
                t_resolve_cold * 1e3,
                DEMAND_RATIO_GATE * DEMAND_QUICK_SLACK,
            );
            regression = true;
        }

        let p_speedup = t_pointer_before / t_pointer_after.max(1e-9);
        let p_t4_speedup = t_pointer_before / t_pointer_t4.max(1e-9);
        let v_speedup = t_vfg_before / t_vfg_after.max(1e-9);
        let r_speedup = t_resolve_before / t_resolve_after.max(1e-9);
        let combined =
            (t_vfg_before + t_resolve_before) / (t_vfg_after + t_resolve_after).max(1e-9);
        if quick && combined < 1.0 {
            eprintln!(
                "REGRESSION: {name}: condensed vfg+resolve {:.3}ms is slower than the \
                 frozen reference {:.3}ms (combined speedup {combined:.2}x)",
                (t_vfg_after + t_resolve_after) * 1e3,
                (t_vfg_before + t_resolve_before) * 1e3,
            );
            regression = true;
        }
        if quick && p_speedup < 1.0 {
            eprintln!(
                "REGRESSION: {name}: prefilter-wave pointer solve {:.3}ms is slower than \
                 the frozen reference {:.3}ms ({p_speedup:.2}x)",
                t_pointer_after * 1e3,
                t_pointer_before * 1e3,
            );
            regression = true;
        }

        let rs = opt2.gamma.stats;
        let _ = write!(
            workloads,
            "{}{{\"name\":\"{name}\",\"seed\":{seed},\"helpers\":{helpers},\"source_bytes\":{},\"vfg_nodes\":{}",
            if i > 0 { "," } else { "" },
            src.len(),
            g.len(),
        );
        let _ = write!(workloads, ",\"stages_ms\":{{");
        for (j, n) in STAGE_NAMES.iter().enumerate() {
            let _ = write!(
                workloads,
                "{}\"{n}\":{:.3}",
                if j > 0 { "," } else { "" },
                stage_ms[j],
            );
        }
        let _ = write!(workloads, ",\"total\":{total_ms:.3}}}");
        let _ = write!(workloads, ",\"pointer\":{{\"strategies_ms\":{{");
        for (j, strategy) in PointerStrategy::ALL.into_iter().enumerate() {
            let _ = write!(
                workloads,
                "{}\"{strategy}\":{:.3}",
                if j > 0 { "," } else { "" },
                t_strategy[j] * 1e3,
            );
        }
        let _ = write!(
            workloads,
            "}},\"t4_ms\":{:.3},\"t4_speedup\":{p_t4_speedup:.2},",
            t_pointer_t4 * 1e3,
        );
        let _ = write!(
            workloads,
            "\"before_ms\":{:.3},\"after_ms\":{:.3},\"speedup\":{:.2}}},\
             \"vfg\":{{\"before_ms\":{:.3},\"after_ms\":{:.3},\"speedup\":{:.2}}},\
             \"resolve\":{{\"before_ms\":{:.3},\"after_ms\":{:.3},\"speedup\":{:.2}}},\
             \"combined_vfg_resolve_speedup\":{combined:.2},\
             \"sccs\":{},\"nontrivial_sccs\":{},\"word_ops\":{},\
             \"contexts\":{},\"visited_states\":{},\"bot_nodes\":{},\"opt2_redirected\":{},\
             \"semi_strong_stores\":{},\
             \"demand\":{{\"resolve_cold_ms\":{:.3},\"query_cold_ms\":{:.3},\
             \"query_memo_ms\":{:.4},\"ratio\":{:.4}}}}}",
            t_pointer_before * 1e3,
            t_pointer_after * 1e3,
            p_speedup,
            t_vfg_before * 1e3,
            t_vfg_after * 1e3,
            v_speedup,
            t_resolve_before * 1e3,
            t_resolve_after * 1e3,
            r_speedup,
            rs.sccs,
            rs.nontrivial_sccs,
            rs.word_ops,
            rs.interned_contexts,
            rs.visited_states,
            opt2.gamma.bot_count(),
            opt2.redirected,
            g.stats.semi_strong_stores,
            t_resolve_cold * 1e3,
            t_query_cold * 1e3,
            t_query_memo * 1e3,
            d_ratio,
        );
        let _ = write!(
            demand_workloads,
            "{}{{\"name\":\"{name}\",\"vfg_nodes\":{},\"checks\":{},\
             \"resolve_cold_ms\":{:.3},\"query_cold_ms\":{:.3},\"query_memo_ms\":{:.4},\
             \"ratio\":{:.4}}}",
            if i > 0 { "," } else { "" },
            g.len(),
            g.checks.len(),
            t_resolve_cold * 1e3,
            t_query_cold * 1e3,
            t_query_memo * 1e3,
            d_ratio,
        );
        largest = Some((
            name.clone(),
            p_speedup,
            p_t4_speedup,
            v_speedup,
            r_speedup,
            combined,
            d_ratio,
        ));
        eprintln!(
            "{name} helpers={helpers} nodes={} pointer {:.2}ms -> {:.2}ms ({p_speedup:.2}x, \
             t4 {:.2}ms {p_t4_speedup:.2}x) vfg {:.2}ms -> {:.2}ms ({v_speedup:.2}x) \
             resolve {:.2}ms -> {:.2}ms ({r_speedup:.2}x) combined {combined:.2}x \
             demand-query {:.3}ms/{:.3}ms ({:.1}% of cold resolve) total {total_ms:.1}ms",
            g.len(),
            t_pointer_before * 1e3,
            t_pointer_after * 1e3,
            t_pointer_t4 * 1e3,
            t_vfg_before * 1e3,
            t_vfg_after * 1e3,
            t_resolve_before * 1e3,
            t_resolve_after * 1e3,
            t_query_cold * 1e3,
            t_resolve_cold * 1e3,
            d_ratio * 100.0,
        );
    }

    if quick {
        // The big-rung demand gate, asserted from the checked-in record
        // instead of re-timing gen-131 (which would dwarf the smoke
        // budget). `scripts/bench.sh` refreshes the record.
        match std::fs::read_to_string("BENCH_demand.json")
            .ok()
            .as_deref()
            .and_then(|t| checked_in_demand_ratio(t, DEMAND_GATE_RUNG))
        {
            Some(r) if r < DEMAND_RATIO_GATE => eprintln!(
                "checked-in demand gate: {DEMAND_GATE_RUNG} point query at {:.1}% of a \
                 cold full resolve (< {:.0}%)",
                r * 100.0,
                DEMAND_RATIO_GATE * 100.0,
            ),
            Some(r) => {
                eprintln!(
                    "REGRESSION: checked-in BENCH_demand.json records {DEMAND_GATE_RUNG} \
                     ratio {r:.4}, gate is {DEMAND_RATIO_GATE}"
                );
                regression = true;
            }
            None => {
                eprintln!(
                    "REGRESSION: BENCH_demand.json missing or lacks a {DEMAND_GATE_RUNG} \
                     ratio; run scripts/bench.sh to regenerate it"
                );
                regression = true;
            }
        }
    } else {
        let json = format!(
            "{{\"bench\":\"demand\",\"iters\":{iters},\"context_depth\":{CONTEXT_DEPTH},\
             \"gate_rung\":\"{DEMAND_GATE_RUNG}\",\"gate_ratio\":{DEMAND_RATIO_GATE},\
             \"workloads\":[{demand_workloads}]}}\n"
        );
        match std::fs::write("BENCH_demand.json", &json) {
            Ok(()) => eprintln!("wrote BENCH_demand.json"),
            Err(e) => {
                eprintln!("REGRESSION: cannot write BENCH_demand.json: {e}");
                regression = true;
            }
        }
    }

    let (lname, lp, lp4, lv, lr, lc, ld) = largest.expect("at least one rung");
    println!(
        "{{\"bench\":\"stages\",\"quick\":{quick},\"iters\":{iters},\"context_depth\":{CONTEXT_DEPTH},\
         \"workloads\":[{workloads}],\
         \"largest\":{{\"name\":\"{lname}\",\"pointer_speedup\":{lp:.2},\"pointer_t4_speedup\":{lp4:.2},\
         \"vfg_speedup\":{lv:.2},\"resolve_speedup\":{lr:.2},\"combined_vfg_resolve_speedup\":{lc:.2},\
         \"demand_query_ratio\":{ld:.4}}}}}"
    );
    if regression {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
