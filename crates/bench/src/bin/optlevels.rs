//! Regenerates the Section 4.6 experiment: instrumentation overhead under
//! the O0+IM, O1 and O2 configurations, for MSan and full Usher.

use usher_bench::average;
use usher_core::{run_config, Config};
use usher_ir::OptLevel;
use usher_runtime::{run, RunOptions};
use usher_workloads::{all_workloads, Scale};

fn main() {
    let scale = match std::env::args().nth(1).as_deref() {
        Some("test") => Scale::TEST,
        _ => Scale::REF,
    };
    let opts = RunOptions::default();
    println!("Section 4.6: effect of compiler optimizations (scale n={})", scale.n);
    println!(
        "{:<14} {:>12} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "Benchmark", "MSan@O0+IM", "Usher@O0+IM", "MSan@O1", "Usher@O1", "MSan@O2", "Usher@O2"
    );
    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); 6];
    for w in all_workloads(scale) {
        let mut vals = Vec::new();
        for level in [OptLevel::O0Im, OptLevel::O1, OptLevel::O2] {
            let m = w.compile_with(level).unwrap_or_else(|e| panic!("{}: {e}", w.name));
            for cfg in [Config::MSAN, Config::USHER] {
                let out = run_config(&m, cfg);
                let r = run(&m, Some(&out.plan), &opts);
                vals.push(r.counters.slowdown_pct());
            }
        }
        print!("{:<14}", w.name);
        for (i, v) in vals.iter().enumerate() {
            print!(" {:>11.0}%", v);
            cols[i].push(*v);
        }
        println!();
    }
    print!("{:<14}", "average");
    for c in &cols {
        print!(" {:>11.0}%", average(c));
    }
    println!();
    let red = |m: f64, u: f64| 100.0 * (m - u) / m.max(1.0);
    println!(
        "\nUsher reduces MSan's overhead by {:.1}% (O0+IM), {:.1}% (O1), {:.1}% (O2)",
        red(average(&cols[0]), average(&cols[1])),
        red(average(&cols[2]), average(&cols[3])),
        red(average(&cols[4]), average(&cols[5])),
    );
}
