//! Regenerates the Section 4.6 experiment: instrumentation overhead under
//! the O0+IM, O1 and O2 configurations, for MSan and full Usher.

use usher_bench::{average, cli::BenchArgs};
use usher_core::Config;
use usher_driver::{Job, PipelineOptions, SourceInput};
use usher_ir::OptLevel;
use usher_runtime::{run, RunOptions};
use usher_workloads::{all_workloads, Scale};

fn main() {
    let args = BenchArgs::parse(Scale::REF);
    let pipe = args.pipeline();
    let opts = RunOptions::default();
    let workloads = all_workloads(args.scale);

    // One job per workload × level × {MSan, Usher}; within a level the two
    // configurations share the compiled module through the cache.
    let args_ref = &args;
    let jobs: Vec<Job> = workloads
        .iter()
        .flat_map(|w| {
            [OptLevel::O0Im, OptLevel::O1, OptLevel::O2]
                .into_iter()
                .flat_map(move |level| {
                    [Config::MSAN, Config::USHER].into_iter().map(move |cfg| {
                        Job::new(
                            w.name,
                            SourceInput::TinyC(w.source.clone()),
                            args_ref.apply(PipelineOptions::from_config(cfg).at_level(level)),
                        )
                    })
                })
        })
        .collect();
    let (runs, batch) = pipe.run_batch(&jobs);
    args.emit_report(&batch);

    println!(
        "Section 4.6: effect of compiler optimizations (scale n={})",
        args.scale.n
    );
    println!(
        "{:<14} {:>12} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "Benchmark", "MSan@O0+IM", "Usher@O0+IM", "MSan@O1", "Usher@O1", "MSan@O2", "Usher@O2"
    );
    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); 6];
    for (w, per_workload) in workloads.iter().zip(runs.chunks(6)) {
        print!("{:<14}", w.name);
        for (i, r) in per_workload.iter().enumerate() {
            let r = r.as_ref().unwrap_or_else(|e| panic!("{}: {e}", w.name));
            let exec = run(&r.module, Some(&r.plan), &opts);
            let v = exec.counters.slowdown_pct();
            print!(" {:>11.0}%", v);
            cols[i].push(v);
        }
        println!();
    }
    print!("{:<14}", "average");
    for c in &cols {
        print!(" {:>11.0}%", average(c));
    }
    println!();
    let red = |m: f64, u: f64| 100.0 * (m - u) / m.max(1.0);
    println!(
        "\nUsher reduces MSan's overhead by {:.1}% (O0+IM), {:.1}% (O1), {:.1}% (O2)",
        red(average(&cols[0]), average(&cols[1])),
        red(average(&cols[2]), average(&cols[3])),
        red(average(&cols[4]), average(&cols[5])),
    );
}
