//! # usher-bench
//!
//! The benchmark harness that regenerates every table and figure of the
//! paper's evaluation (Section 4):
//!
//! * `table1`  — benchmark statistics (Table 1);
//! * `figure10` — execution-time slowdowns per configuration (Figure 10);
//! * `figure11` — static shadow propagations / checks vs MSan (Figure 11);
//! * `optlevels` — the `-O1`/`-O2` comparison (Section 4.6);
//! * `ablation` — the design-choice ablation;
//! * std-only wall-clock benches in `benches/`.
//!
//! All static analysis routes through the [`usher_driver::Pipeline`], so
//! the five configurations of one workload share the compiled module (and
//! every other common pipeline prefix) through the artifact cache, and
//! whole suites are scheduled across the worker pool. Every binary takes
//! `--threads N`, `--no-cache` and `--report` (JSON-lines telemetry on
//! stderr); see [`cli`].
//!
//! Numbers come from the deterministic interpreter cost model; the
//! *shape* (who wins, by roughly what factor, where the outliers are) is
//! the reproduction target, not the absolute values from the authors'
//! 2008-era Core2 testbed.

#![warn(missing_docs)]

use std::sync::Arc;

use usher_core::{Config, PlanStats};
use usher_driver::{
    parallel_map, BatchReport, Job, Pipeline, PipelineOptions, PipelineRun, SourceInput,
};
use usher_ir::{Module, OptLevel};
use usher_runtime::{run, RunOptions, RunResult};
use usher_workloads::{all_workloads, Scale, Workload};

pub mod cli;

/// Result of running one workload under one configuration.
#[derive(Clone, Debug)]
pub struct ConfigRun {
    /// Configuration name.
    pub config: String,
    /// Static plan statistics.
    pub plan_stats: PlanStats,
    /// Dynamic slowdown percentage (cost-model based).
    pub slowdown_pct: f64,
    /// Detected undefined-value uses (distinct sites).
    pub detected_sites: usize,
    /// Full run result.
    pub result: RunResult,
}

/// One row of Figure 10/11: a workload under all five configurations.
#[derive(Clone, Debug)]
pub struct WorkloadRuns {
    /// Workload name.
    pub name: String,
    /// Native (uninstrumented) run for reference.
    pub native: RunResult,
    /// The five configurations, in `Config::ALL` order.
    pub runs: Vec<ConfigRun>,
}

/// A whole-suite result: the Figure 10/11 rows plus the pipeline's batch
/// telemetry.
pub struct SuiteResult {
    /// One row per workload, in suite order.
    pub rows: Vec<WorkloadRuns>,
    /// Analysis-phase telemetry (stage times, cache hits, wall clock).
    pub batch: BatchReport,
}

/// Executes an analyzed plan and folds the dynamic numbers into a
/// [`ConfigRun`].
fn execute(pr: &PipelineRun, opts: &RunOptions) -> ConfigRun {
    let result = run(&pr.module, Some(&pr.plan), opts);
    ConfigRun {
        config: pr.options.label.clone(),
        plan_stats: pr.plan.stats,
        slowdown_pct: result.counters.slowdown_pct(),
        detected_sites: result.detected_sites().len(),
        result,
    }
}

/// Runs a compiled module under every configuration of Figure 10,
/// analyzing through `pipe` (so repeated prefixes hit its cache).
pub fn run_all_configs_with(
    pipe: &Pipeline,
    name: &str,
    m: Arc<Module>,
    opts: &RunOptions,
) -> WorkloadRuns {
    let native = run(&m, None, opts);
    let runs = Config::ALL
        .iter()
        .map(|cfg| {
            let pr = pipe.run_module(name, m.clone(), PipelineOptions::from_config(*cfg));
            execute(&pr, opts)
        })
        .collect();
    WorkloadRuns {
        name: name.to_string(),
        native,
        runs,
    }
}

/// Runs a compiled module under every configuration of Figure 10 with a
/// private single-threaded pipeline.
pub fn run_all_configs(name: &str, m: &Module, opts: &RunOptions) -> WorkloadRuns {
    run_all_configs_with(
        &Pipeline::new().with_threads(1),
        name,
        Arc::new(m.clone()),
        opts,
    )
}

/// Runs the whole suite at a scale under every configuration: the
/// analysis phase goes through [`Pipeline::run_batch`] (workload ×
/// configuration jobs over the worker pool), the execution phase is
/// fanned out per workload.
pub fn run_suite_with(scale: Scale, opts: &RunOptions, pipe: &Pipeline) -> SuiteResult {
    let workloads = all_workloads(scale);
    let jobs: Vec<Job> = workloads
        .iter()
        .flat_map(|w| {
            Config::ALL.iter().map(|cfg| {
                Job::new(
                    w.name,
                    SourceInput::TinyC(w.source.clone()),
                    PipelineOptions::from_config(*cfg),
                )
            })
        })
        .collect();
    let (analyzed, batch) = pipe.run_batch(&jobs);
    let analyzed: Vec<PipelineRun> = analyzed
        .into_iter()
        .map(|r| r.unwrap_or_else(|e| panic!("suite workload fails to compile: {e}")))
        .collect();

    let per_workload: Vec<&[PipelineRun]> = analyzed.chunks(Config::ALL.len()).collect();
    let rows = parallel_map(pipe.threads(), &per_workload, |runs| {
        let native = run(&runs[0].module, None, opts);
        WorkloadRuns {
            name: runs[0].name.clone(),
            native,
            runs: runs.iter().map(|pr| execute(pr, opts)).collect(),
        }
    });
    SuiteResult { rows, batch }
}

/// Runs the whole suite with a private default pipeline; see
/// [`run_suite_with`].
pub fn run_suite(scale: Scale, opts: &RunOptions) -> Vec<WorkloadRuns> {
    run_suite_with(scale, opts, &Pipeline::new()).rows
}

/// Compiles one workload at a given optimization level.
pub fn compile_at(w: &Workload, level: OptLevel) -> Module {
    w.compile_with(level)
        .unwrap_or_else(|e| panic!("{} fails at {level}: {e}", w.name))
}

/// Geometric-free average of slowdowns (the paper reports arithmetic
/// means across benchmarks).
pub fn average(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Renders a Figure 10-style table: one row per workload, one column per
/// configuration, values = slowdown %.
pub fn render_figure10(rows: &[WorkloadRuns]) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = write!(s, "{:<14}", "Benchmark");
    for cfg in Config::ALL {
        let _ = write!(s, "{:>13}", cfg.name);
    }
    let _ = writeln!(s);
    let ncols = Config::ALL.len();
    let mut sums = vec![0.0; ncols];
    for row in rows {
        let _ = write!(s, "{:<14}", row.name);
        for (i, r) in row.runs.iter().enumerate() {
            let _ = write!(s, "{:>12.0}%", r.slowdown_pct);
            sums[i] += r.slowdown_pct;
        }
        let _ = writeln!(s);
    }
    let _ = write!(s, "{:<14}", "average");
    for sum in &sums {
        let _ = write!(s, "{:>12.0}%", sum / rows.len().max(1) as f64);
    }
    let _ = writeln!(s);
    s
}

/// Renders a Figure 11-style table: static propagations and checks
/// normalized to MSan (percent).
pub fn render_figure11(rows: &[WorkloadRuns]) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(s, "== Static shadow propagations (% of MSan) ==");
    let _ = render_norm(&mut s, rows, |ps| ps.propagations as f64);
    let _ = writeln!(s, "\n== Static checks (% of MSan) ==");
    let _ = render_norm(&mut s, rows, |ps| ps.checks as f64);
    s
}

fn render_norm(
    s: &mut String,
    rows: &[WorkloadRuns],
    f: impl Fn(&PlanStats) -> f64,
) -> std::fmt::Result {
    use std::fmt::Write as _;
    write!(s, "{:<14}", "Benchmark")?;
    for cfg in Config::ALL.iter().skip(1) {
        write!(s, "{:>13}", cfg.name)?;
    }
    writeln!(s)?;
    let ncols = Config::ALL.len() - 1;
    let mut sums = vec![0.0; ncols];
    for row in rows {
        write!(s, "{:<14}", row.name)?;
        let base = f(&row.runs[0].plan_stats).max(1.0);
        for (i, r) in row.runs.iter().skip(1).enumerate() {
            let pct = 100.0 * f(&r.plan_stats) / base;
            write!(s, "{:>12.0}%", pct)?;
            sums[i] += pct;
        }
        writeln!(s)?;
    }
    write!(s, "{:<14}", "average")?;
    for sum in &sums {
        write!(s, "{:>12.0}%", sum / rows.len().max(1) as f64)?;
    }
    writeln!(s)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn average_of_values() {
        assert_eq!(average(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(average(&[]), 0.0);
    }

    #[test]
    fn one_workload_runs_all_configs() {
        let w = usher_workloads::workload("crafty", Scale::TEST).unwrap();
        let m = w.compile_o0im().unwrap();
        let runs = run_all_configs(w.name, &m, &RunOptions::default());
        assert_eq!(runs.runs.len(), 5);
        assert!(runs.native.trap.is_none(), "{:?}", runs.native.trap);
        // Semantics preserved across configurations.
        for r in &runs.runs {
            assert_eq!(r.result.trace, runs.native.trace, "{}", r.config);
        }
        // MSan costs at least as much as full Usher.
        assert!(runs.runs[0].slowdown_pct >= runs.runs[4].slowdown_pct);
    }

    #[test]
    fn shared_pipeline_reuses_the_frontend_across_configs() {
        let w = usher_workloads::workload("crafty", Scale::TEST).unwrap();
        let pipe = Pipeline::new().with_threads(1);
        let m = Arc::new(w.compile_o0im().unwrap());
        run_all_configs_with(&pipe, w.name, m, &RunOptions::default());
        let stats = pipe.cache_stats();
        assert!(
            stats.hits > 0,
            "five configs must share pipeline prefixes: {stats:?}"
        );
    }
}
