//! # usher-bench
//!
//! The benchmark harness that regenerates every table and figure of the
//! paper's evaluation (Section 4):
//!
//! * `table1`  — benchmark statistics (Table 1);
//! * `figure10` — execution-time slowdowns per configuration (Figure 10);
//! * `figure11` — static shadow propagations / checks vs MSan (Figure 11);
//! * `optlevels` — the `-O1`/`-O2` comparison (Section 4.6);
//! * Criterion wall-clock benches in `benches/`.
//!
//! Numbers come from the deterministic interpreter cost model; the
//! *shape* (who wins, by roughly what factor, where the outliers are) is
//! the reproduction target, not the absolute values from the authors'
//! 2008-era Core2 testbed.

#![warn(missing_docs)]

use usher_core::{run_config, Config, PlanStats};
use usher_ir::{Module, OptLevel};
use usher_runtime::{run, RunOptions, RunResult};
use usher_workloads::{all_workloads, Scale, Workload};

/// Result of running one workload under one configuration.
#[derive(Clone, Debug)]
pub struct ConfigRun {
    /// Configuration name.
    pub config: String,
    /// Static plan statistics.
    pub plan_stats: PlanStats,
    /// Dynamic slowdown percentage (cost-model based).
    pub slowdown_pct: f64,
    /// Detected undefined-value uses (distinct sites).
    pub detected_sites: usize,
    /// Full run result.
    pub result: RunResult,
}

/// One row of Figure 10/11: a workload under all five configurations.
#[derive(Clone, Debug)]
pub struct WorkloadRuns {
    /// Workload name.
    pub name: String,
    /// Native (uninstrumented) run for reference.
    pub native: RunResult,
    /// The five configurations, in `Config::ALL` order.
    pub runs: Vec<ConfigRun>,
}

/// Runs a compiled module under every configuration of Figure 10.
pub fn run_all_configs(name: &str, m: &Module, opts: &RunOptions) -> WorkloadRuns {
    let native = run(m, None, opts);
    let runs = Config::ALL
        .iter()
        .map(|cfg| {
            let out = run_config(m, *cfg);
            let result = run(m, Some(&out.plan), opts);
            ConfigRun {
                config: cfg.name.to_string(),
                plan_stats: out.plan.stats,
                slowdown_pct: result.counters.slowdown_pct(),
                detected_sites: result.detected_sites().len(),
                result,
            }
        })
        .collect();
    WorkloadRuns { name: name.to_string(), native, runs }
}

/// Runs the whole suite at a scale under every configuration.
pub fn run_suite(scale: Scale, opts: &RunOptions) -> Vec<WorkloadRuns> {
    all_workloads(scale)
        .iter()
        .map(|w| {
            let m = w.compile_o0im().unwrap_or_else(|e| panic!("{} fails: {e}", w.name));
            run_all_configs(w.name, &m, opts)
        })
        .collect()
}

/// Compiles one workload at a given optimization level.
pub fn compile_at(w: &Workload, level: OptLevel) -> Module {
    w.compile_with(level).unwrap_or_else(|e| panic!("{} fails at {level}: {e}", w.name))
}

/// Geometric-free average of slowdowns (the paper reports arithmetic
/// means across benchmarks).
pub fn average(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Renders a Figure 10-style table: one row per workload, one column per
/// configuration, values = slowdown %.
pub fn render_figure10(rows: &[WorkloadRuns]) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = write!(s, "{:<14}", "Benchmark");
    for cfg in Config::ALL {
        let _ = write!(s, "{:>13}", cfg.name);
    }
    let _ = writeln!(s);
    let ncols = Config::ALL.len();
    let mut sums = vec![0.0; ncols];
    for row in rows {
        let _ = write!(s, "{:<14}", row.name);
        for (i, r) in row.runs.iter().enumerate() {
            let _ = write!(s, "{:>12.0}%", r.slowdown_pct);
            sums[i] += r.slowdown_pct;
        }
        let _ = writeln!(s);
    }
    let _ = write!(s, "{:<14}", "average");
    for sum in &sums {
        let _ = write!(s, "{:>12.0}%", sum / rows.len().max(1) as f64);
    }
    let _ = writeln!(s);
    s
}

/// Renders a Figure 11-style table: static propagations and checks
/// normalized to MSan (percent).
pub fn render_figure11(rows: &[WorkloadRuns]) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(s, "== Static shadow propagations (% of MSan) ==");
    let _ = render_norm(&mut s, rows, |ps| ps.propagations as f64);
    let _ = writeln!(s, "\n== Static checks (% of MSan) ==");
    let _ = render_norm(&mut s, rows, |ps| ps.checks as f64);
    s
}

fn render_norm(
    s: &mut String,
    rows: &[WorkloadRuns],
    f: impl Fn(&PlanStats) -> f64,
) -> std::fmt::Result {
    use std::fmt::Write as _;
    write!(s, "{:<14}", "Benchmark")?;
    for cfg in Config::ALL.iter().skip(1) {
        write!(s, "{:>13}", cfg.name)?;
    }
    writeln!(s)?;
    let ncols = Config::ALL.len() - 1;
    let mut sums = vec![0.0; ncols];
    for row in rows {
        write!(s, "{:<14}", row.name)?;
        let base = f(&row.runs[0].plan_stats).max(1.0);
        for (i, r) in row.runs.iter().skip(1).enumerate() {
            let pct = 100.0 * f(&r.plan_stats) / base;
            write!(s, "{:>12.0}%", pct)?;
            sums[i] += pct;
        }
        writeln!(s)?;
    }
    write!(s, "{:<14}", "average")?;
    for sum in &sums {
        write!(s, "{:>12.0}%", sum / rows.len().max(1) as f64)?;
    }
    writeln!(s)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn average_of_values() {
        assert_eq!(average(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(average(&[]), 0.0);
    }

    #[test]
    fn one_workload_runs_all_configs() {
        let w = usher_workloads::workload("crafty", Scale::TEST).unwrap();
        let m = w.compile_o0im().unwrap();
        let runs = run_all_configs(w.name, &m, &RunOptions::default());
        assert_eq!(runs.runs.len(), 5);
        assert!(runs.native.trap.is_none(), "{:?}", runs.native.trap);
        // Semantics preserved across configurations.
        for r in &runs.runs {
            assert_eq!(r.result.trace, runs.native.trace, "{}", r.config);
        }
        // MSan costs at least as much as full Usher.
        assert!(runs.runs[0].slowdown_pct >= runs.runs[4].slowdown_pct);
    }
}
