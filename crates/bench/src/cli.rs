//! Shared command-line handling for the benchmark binaries.
//!
//! Every binary accepts:
//!
//! * `test` / `ref` — workload scale (each binary picks its default);
//! * `--threads N` — worker threads for the pipeline driver (default:
//!   the machine's available parallelism);
//! * `--no-cache` — disable the artifact cache (every stage recomputes);
//! * `--report` — emit JSON-lines pipeline telemetry on stderr;
//! * `--budget-steps N` / `--deadline-ms N` — analysis budget, to measure
//!   what graceful degradation costs (and saves) at benchmark scale;
//! * `--strict` — fail instead of degrading when the budget runs out.

use usher_driver::{default_threads, BatchReport, Pipeline, PipelineOptions};
use usher_workloads::Scale;

/// Parsed benchmark arguments.
#[derive(Clone, Debug)]
pub struct BenchArgs {
    /// Workload scale.
    pub scale: Scale,
    /// Worker threads.
    pub threads: usize,
    /// Whether the artifact cache is enabled.
    pub use_cache: bool,
    /// Whether to emit JSON-lines telemetry on stderr.
    pub report: bool,
    /// Analysis step budget (`None` = unlimited).
    pub budget_steps: Option<u64>,
    /// Analysis wall-clock deadline in milliseconds (`None` = none).
    pub deadline_ms: Option<u64>,
    /// Surface degradations as hard errors instead of falling back.
    pub strict: bool,
}

impl BenchArgs {
    /// Parses `std::env::args`, exiting with a usage message on errors.
    pub fn parse(default_scale: Scale) -> BenchArgs {
        let mut out = BenchArgs {
            scale: default_scale,
            threads: default_threads(),
            use_cache: true,
            report: false,
            budget_steps: None,
            deadline_ms: None,
            strict: false,
        };
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "test" => out.scale = Scale::TEST,
                "ref" => out.scale = Scale::REF,
                "--threads" => {
                    let v = it
                        .next()
                        .unwrap_or_else(|| usage("--threads needs a value"));
                    out.threads = v
                        .parse()
                        .ok()
                        .filter(|&n| n >= 1)
                        .unwrap_or_else(|| usage(&format!("bad thread count {v}")));
                }
                "--no-cache" => out.use_cache = false,
                "--report" => out.report = true,
                "--budget-steps" => {
                    let v = it
                        .next()
                        .unwrap_or_else(|| usage("--budget-steps needs a value"));
                    out.budget_steps = Some(
                        v.parse()
                            .unwrap_or_else(|_| usage(&format!("bad step budget {v}"))),
                    );
                }
                "--deadline-ms" => {
                    let v = it
                        .next()
                        .unwrap_or_else(|| usage("--deadline-ms needs a value"));
                    out.deadline_ms = Some(
                        v.parse()
                            .unwrap_or_else(|_| usage(&format!("bad deadline {v}"))),
                    );
                }
                "--strict" => out.strict = true,
                other => usage(&format!("unknown argument {other}")),
            }
        }
        out
    }

    /// Builds the pipeline these arguments describe.
    pub fn pipeline(&self) -> Pipeline {
        let p = Pipeline::new().with_threads(self.threads);
        if self.use_cache {
            p
        } else {
            p.without_cache()
        }
    }

    /// Threads the degradation knobs through a preset's pipeline options.
    pub fn apply(&self, options: PipelineOptions) -> PipelineOptions {
        options
            .with_budget_steps(self.budget_steps)
            .with_deadline_ms(self.deadline_ms)
            .strict(self.strict)
    }

    /// Emits batch telemetry on stderr when `--report` was given.
    pub fn emit_report(&self, batch: &BatchReport) {
        if self.report {
            eprint!("{}", batch.to_json_lines());
        }
    }
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: <bin> [test|ref] [--threads N] [--no-cache] [--report] \
         [--budget-steps N] [--deadline-ms N] [--strict]"
    );
    std::process::exit(2)
}
