//! Wall-clock companion to Figure 10: interpreter throughput under no
//! instrumentation, full instrumentation (MSan) and guided (Usher).
//!
//! The deterministic cost model in `figure10` is the primary metric; this
//! bench confirms that real elapsed time moves the same way.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use usher_core::{run_config, Config};
use usher_runtime::{run, RunOptions};
use usher_workloads::{workload, Scale};

fn bench_slowdown(c: &mut Criterion) {
    let opts = RunOptions::default();
    let mut group = c.benchmark_group("figure10_wallclock");
    group.sample_size(10);
    for name in ["164.gzip", "181.mcf", "253.perlbmk", "300.twolf"] {
        let w = workload(name, Scale::TEST).expect("workload exists");
        let m = w.compile_o0im().expect("compiles");
        let msan = run_config(&m, Config::MSAN).plan;
        let usher = run_config(&m, Config::USHER).plan;
        group.bench_with_input(BenchmarkId::new("native", name), &m, |b, m| {
            b.iter(|| run(m, None, &opts))
        });
        group.bench_with_input(BenchmarkId::new("msan", name), &m, |b, m| {
            b.iter(|| run(m, Some(&msan), &opts))
        });
        group.bench_with_input(BenchmarkId::new("usher", name), &m, |b, m| {
            b.iter(|| run(m, Some(&usher), &opts))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_slowdown);
criterion_main!(benches);
