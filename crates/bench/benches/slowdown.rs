//! Wall-clock companion to Figure 10: interpreter throughput under no
//! instrumentation, full instrumentation (MSan) and guided (Usher).
//!
//! The deterministic cost model in `figure10` is the primary metric; this
//! bench confirms that real elapsed time moves the same way. Std-only
//! harness (no external deps) so offline builds work.

use std::time::Instant;

use usher_core::{run_config, Config};
use usher_runtime::{run, RunOptions};
use usher_workloads::{workload, Scale};

fn bench<F: FnMut()>(label: &str, mut f: F) {
    const ITERS: usize = 10;
    f(); // warmup
    let mut samples: Vec<f64> = (0..ITERS)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    println!(
        "{label:<40} min {:>8.3}ms  median {:>8.3}ms",
        samples[0],
        samples[ITERS / 2]
    );
}

fn main() {
    let opts = RunOptions::default();
    println!("figure10_wallclock (std-only bench, 10 iterations)");
    for name in ["164.gzip", "181.mcf", "253.perlbmk", "300.twolf"] {
        let w = workload(name, Scale::TEST).expect("workload exists");
        let m = w.compile_o0im().expect("compiles");
        let msan = run_config(&m, Config::MSAN).plan;
        let usher = run_config(&m, Config::USHER).plan;
        bench(&format!("native/{name}"), || {
            std::hint::black_box(run(&m, None, &opts));
        });
        bench(&format!("msan/{name}"), || {
            std::hint::black_box(run(&m, Some(&msan), &opts));
        });
        bench(&format!("usher/{name}"), || {
            std::hint::black_box(run(&m, Some(&usher), &opts));
        });
    }
}
