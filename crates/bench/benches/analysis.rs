//! Wall-clock cost of the static analysis itself (Table 1's "Time"
//! column): pointer analysis + memory SSA + VFG + resolution + planning.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use usher_core::{run_config, Config};
use usher_workloads::{workload, Scale};

fn bench_analysis(c: &mut Criterion) {
    let mut group = c.benchmark_group("analysis_time");
    group.sample_size(10);
    for name in ["176.gcc", "253.perlbmk", "255.vortex"] {
        let w = workload(name, Scale::TEST).expect("workload exists");
        let m = w.compile_o0im().expect("compiles");
        group.bench_with_input(BenchmarkId::new("usher_full", name), &m, |b, m| {
            b.iter(|| run_config(m, Config::USHER))
        });
        group.bench_with_input(BenchmarkId::new("usher_tl", name), &m, |b, m| {
            b.iter(|| run_config(m, Config::USHER_TL))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_analysis);
criterion_main!(benches);
