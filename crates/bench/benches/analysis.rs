//! Wall-clock cost of the static analysis itself (Table 1's "Time"
//! column): pointer analysis + memory SSA + VFG + resolution + planning.
//!
//! Std-only micro-bench harness (no external deps so the workspace builds
//! in network-isolated environments): N timed iterations after a warmup,
//! reporting min/median wall time per configuration.

use std::time::Instant;

use usher_core::{run_config, Config};
use usher_workloads::{workload, Scale};

fn bench<F: FnMut()>(label: &str, mut f: F) {
    const ITERS: usize = 10;
    f(); // warmup
    let mut samples: Vec<f64> = (0..ITERS)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    println!(
        "{label:<40} min {:>8.3}ms  median {:>8.3}ms",
        samples[0],
        samples[ITERS / 2]
    );
}

fn main() {
    println!("analysis_time (std-only bench, 10 iterations)");
    for name in ["176.gcc", "253.perlbmk", "255.vortex"] {
        let w = workload(name, Scale::TEST).expect("workload exists");
        let m = w.compile_o0im().expect("compiles");
        bench(&format!("usher_full/{name}"), || {
            std::hint::black_box(run_config(&m, Config::USHER));
        });
        bench(&format!("usher_tl/{name}"), || {
            std::hint::black_box(run_config(&m, Config::USHER_TL));
        });
    }
}
