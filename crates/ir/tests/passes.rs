//! Pass-level coverage: constant folding semantics, DCE/CFG interplay,
//! inliner edge cases, mem2reg corner cases, verifier diagnostics.

use usher_ir::{
    mem2reg, optimize, run_inline, verify, BinOp, BlockId, Callee, ExtFunc, FuncBuilder, FuncId,
    InlinePolicy, Inst, Module, ObjKind, Operand, OptLevel, Terminator,
};

fn module_with_main() -> (Module, FuncId) {
    let mut m = Module::new();
    let fid = m.declare_func("main", Some(m.types.int()));
    m.main = Some(fid);
    (m, fid)
}

fn folded_ret(m: &Module, fid: FuncId) -> Option<i64> {
    for block in m.funcs[fid].blocks.iter() {
        if let Terminator::Ret(Some(Operand::Const(c))) = block.term {
            return Some(c);
        }
    }
    None
}

// ---- constant folding semantics --------------------------------------------

#[test]
fn fold_matrix_matches_interpreter_semantics() {
    // (op, lhs, rhs, expected)
    let cases: &[(BinOp, i64, i64, i64)] = &[
        (BinOp::Add, i64::MAX, 1, i64::MIN), // wrapping
        (BinOp::Sub, i64::MIN, 1, i64::MAX),
        (BinOp::Mul, 1 << 62, 4, 0),
        (BinOp::Div, -7, 2, -3), // trunc toward zero
        (BinOp::Rem, -7, 2, -1),
        (BinOp::Shl, 1, 65, 2),  // shift amount masked to 6 bits
        (BinOp::Shr, -8, 1, -4), // arithmetic shift
        (BinOp::And, -1, 12, 12),
        (BinOp::Xor, 6, 6, 0),
        (BinOp::Lt, -1, 0, 1),
        (BinOp::Ge, 5, 5, 1),
    ];
    for &(op, a, b, want) in cases {
        let (mut m, fid) = module_with_main();
        let int = m.types.int();
        let mut bld = FuncBuilder::new(&mut m, fid);
        let r = bld.bin(op, Operand::Const(a), Operand::Const(b));
        let chained = bld.bin(BinOp::Add, r.into(), Operand::Const(0));
        bld.ret(Some(chained.into()));
        bld.finish();
        optimize(&mut m, OptLevel::O2);
        assert_eq!(folded_ret(&m, fid), Some(want), "{op:?} {a} {b}");
        let _ = int;
    }
}

#[test]
fn division_by_zero_is_never_folded() {
    let (mut m, fid) = module_with_main();
    let mut bld = FuncBuilder::new(&mut m, fid);
    let r = bld.bin(BinOp::Div, Operand::Const(5), Operand::Const(0));
    bld.ret(Some(r.into()));
    bld.finish();
    optimize(&mut m, OptLevel::O2);
    // The division must survive so the runtime trap is preserved.
    assert!(m.funcs[fid]
        .blocks
        .iter()
        .flat_map(|b| &b.insts)
        .any(|i| matches!(i, Inst::Bin { op: BinOp::Div, .. })));
}

#[test]
fn optimization_is_idempotent() {
    let (mut m, fid) = module_with_main();
    let int = m.types.int();
    let mut bld = FuncBuilder::new(&mut m, fid);
    let a = bld.copy(int, Operand::Const(3));
    let b = bld.bin(BinOp::Mul, a.into(), a.into());
    let t = bld.new_block();
    let e = bld.new_block();
    bld.br(b.into(), t, e);
    bld.set_block(t);
    bld.ret(Some(b.into()));
    bld.set_block(e);
    bld.ret(Some(Operand::Const(0)));
    bld.finish();
    optimize(&mut m, OptLevel::O2);
    let once = usher_ir::print_module(&m);
    optimize(&mut m, OptLevel::O2);
    let twice = usher_ir::print_module(&m);
    assert_eq!(once, twice);
    assert!(verify(&m).is_ok());
}

// ---- inliner edge cases -------------------------------------------------------

#[test]
fn inliner_respects_growth_budget() {
    // A chain of alloc wrappers that would explode if fully inlined
    // repeatedly; the budget must stop it while keeping the IR valid.
    let mut m = Module::new();
    let int = m.types.int();
    let pint = m.types.ptr_to(int);
    let w0 = m.declare_func("w0", Some(pint));
    {
        let mut b = FuncBuilder::new(&mut m, w0);
        let (p, _) = b.alloc("h", ObjKind::Heap(w0), int, false, None);
        b.ret(Some(p.into()));
        b.finish();
    }
    // Each wrapper calls the previous one 3 times and returns one result.
    let mut prev = w0;
    for i in 1..6 {
        let wi = m.declare_func(format!("w{i}"), Some(pint));
        let mut b = FuncBuilder::new(&mut m, wi);
        let p1 = b.call(Callee::Direct(prev), vec![], Some(pint)).unwrap();
        let p2 = b.call(Callee::Direct(prev), vec![], Some(pint)).unwrap();
        let p3 = b.call(Callee::Direct(prev), vec![], Some(pint)).unwrap();
        b.store(p1.into(), Operand::Const(1));
        b.store(p2.into(), Operand::Const(2));
        b.ret(Some(p3.into()));
        b.finish();
        prev = wi;
    }
    let main = m.declare_func("main", None);
    {
        let mut b = FuncBuilder::new(&mut m, main);
        let p = b.call(Callee::Direct(prev), vec![], Some(pint)).unwrap();
        b.store(p.into(), Operand::Const(9));
        b.ret(None);
        b.finish();
    }
    m.main = Some(main);
    let before = m.inst_count();
    run_inline(&mut m, InlinePolicy::default());
    assert!(verify(&m).is_ok(), "{:?}", verify(&m));
    let after = m.inst_count();
    assert!(
        after <= before.max(500) * 8 + 4000,
        "runaway growth: {before} -> {after}"
    );
}

#[test]
fn inlining_then_mem2reg_preserves_verification_on_all_orders() {
    let mut m = Module::new();
    let int = m.types.int();
    let pint = m.types.ptr_to(int);
    let helper = m.declare_func("mk", Some(pint));
    {
        let mut b = FuncBuilder::new(&mut m, helper);
        let (p, _) = b.alloc("h", ObjKind::Heap(helper), int, true, None);
        b.ret(Some(p.into()));
        b.finish();
    }
    let main = m.declare_func("main", Some(int));
    {
        let mut b = FuncBuilder::new(&mut m, main);
        let (slot, _) = b.alloc("x", ObjKind::Stack(main), int, false, None);
        b.store(slot.into(), Operand::Const(5));
        let p = b.call(Callee::Direct(helper), vec![], Some(pint)).unwrap();
        let v = b.load(slot.into(), int);
        b.store(p.into(), v.into());
        let w = b.load(p.into(), int);
        b.ret(Some(w.into()));
        b.finish();
    }
    m.main = Some(main);
    run_inline(&mut m, InlinePolicy::default());
    assert!(verify(&m).is_ok());
    mem2reg(&mut m);
    assert!(verify(&m).is_ok());
    optimize(&mut m, OptLevel::O2);
    assert!(verify(&m).is_ok());
}

// ---- mem2reg corner cases -------------------------------------------------------

#[test]
fn mem2reg_handles_nested_loop_redefinitions() {
    let mut m = Module::new();
    let int = m.types.int();
    let fid = m.declare_func("main", Some(int));
    m.main = Some(fid);
    let mut b = FuncBuilder::new(&mut m, fid);
    let (s, _) = b.alloc("s", ObjKind::Stack(fid), int, false, None);
    b.store(s.into(), Operand::Const(0));
    // for i in 0..3 { for j in 0..3 { s += 1 } }
    let (i, _) = b.alloc("i", ObjKind::Stack(fid), int, false, None);
    b.store(i.into(), Operand::Const(0));
    let oh = b.new_block(); // outer header
    let ob = b.new_block(); // outer body
    let ih = b.new_block(); // inner header
    let ib = b.new_block(); // inner body
    let oe = b.new_block(); // outer exit
    b.jmp(oh);
    b.set_block(oh);
    let iv = b.load(i.into(), int);
    let c = b.bin(BinOp::Lt, iv.into(), Operand::Const(3));
    b.br(c.into(), ob, oe);
    b.set_block(ob);
    let (j, _) = b.alloc("j", ObjKind::Stack(fid), int, false, None);
    b.store(j.into(), Operand::Const(0));
    b.jmp(ih);
    b.set_block(ih);
    let jv = b.load(j.into(), int);
    let jc = b.bin(BinOp::Lt, jv.into(), Operand::Const(3));
    let icont = b.new_block();
    b.br(jc.into(), ib, icont);
    b.set_block(ib);
    let sv = b.load(s.into(), int);
    let s2 = b.bin(BinOp::Add, sv.into(), Operand::Const(1));
    b.store(s.into(), s2.into());
    let jv2 = b.load(j.into(), int);
    let j2 = b.bin(BinOp::Add, jv2.into(), Operand::Const(1));
    b.store(j.into(), j2.into());
    b.jmp(ih);
    b.set_block(icont);
    let iv2 = b.load(i.into(), int);
    let i2 = b.bin(BinOp::Add, iv2.into(), Operand::Const(1));
    b.store(i.into(), i2.into());
    b.jmp(oh);
    b.set_block(oe);
    let r = b.load(s.into(), int);
    b.ret(Some(r.into()));
    b.finish();

    let stats = mem2reg(&mut m);
    assert_eq!(stats.promoted, 3);
    assert!(verify(&m).is_ok(), "{:?}", verify(&m));
    // No memory operations survive.
    assert!(m.funcs[fid]
        .blocks
        .iter()
        .flat_map(|b| &b.insts)
        .all(|i| !matches!(
            i,
            Inst::Load { .. } | Inst::Store { .. } | Inst::Alloc { .. }
        )));
}

#[test]
fn mem2reg_skips_slots_whose_address_is_compared() {
    let mut m = Module::new();
    let int = m.types.int();
    let fid = m.declare_func("main", Some(int));
    m.main = Some(fid);
    let mut b = FuncBuilder::new(&mut m, fid);
    let (x, _) = b.alloc("x", ObjKind::Stack(fid), int, false, None);
    b.store(x.into(), Operand::Const(1));
    // Comparing the address makes it observable.
    let cmp = b.bin(BinOp::Eq, x.into(), Operand::Const(0));
    let v = b.load(x.into(), int);
    let r = b.bin(BinOp::Add, v.into(), cmp.into());
    b.ret(Some(r.into()));
    b.finish();
    let stats = mem2reg(&mut m);
    assert_eq!(stats.promoted, 0, "address escaped through comparison");
}

// ---- block terminators / unreachable handling -----------------------------------

#[test]
fn external_calls_survive_every_pass() {
    let (mut m, fid) = module_with_main();
    let mut b = FuncBuilder::new(&mut m, fid);
    b.call_ext(ExtFunc::PrintInt, vec![Operand::Const(1)], None);
    b.call_ext(ExtFunc::PrintInt, vec![Operand::Const(2)], None);
    b.ret(Some(Operand::Const(0)));
    b.finish();
    optimize(&mut m, OptLevel::O2);
    let prints = m.funcs[fid]
        .blocks
        .iter()
        .flat_map(|b| &b.insts)
        .filter(|i| {
            matches!(
                i,
                Inst::Call {
                    callee: Callee::External(ExtFunc::PrintInt),
                    ..
                }
            )
        })
        .count();
    assert_eq!(prints, 2);
}

#[test]
fn verifier_reports_multiple_errors_at_once() {
    let (mut m, fid) = module_with_main();
    let int = m.types.int();
    let f = &mut m.funcs[fid];
    let v = f.new_var("v", int);
    let w = f.new_var("w", int);
    let entry = f.entry;
    f.blocks[entry].insts.push(Inst::Copy {
        dst: v,
        src: Operand::Var(w),
    });
    f.blocks[entry].insts.push(Inst::Copy {
        dst: v,
        src: Operand::Const(1),
    });
    // term stays Unreachable (reachable entry): third error.
    let errs = verify(&m).unwrap_err();
    assert!(errs.len() >= 3, "{errs:?}");
}

#[test]
fn site_display_is_stable() {
    let s = usher_ir::Site::new(FuncId(2), BlockId(3), 4);
    assert_eq!(s.to_string(), "@f2:bb3:4");
}
