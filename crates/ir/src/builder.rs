//! A convenience builder for constructing IR functions.
//!
//! Used by the TinyC lowering, the synthetic-workload generator, and unit
//! tests. Functions are declared first ([`Module::declare_func`]) so that
//! forward calls can reference their ids, then bodies are filled in with a
//! [`FuncBuilder`].

use crate::ids::{BlockId, FuncId, ObjId, TypeId, VarId};
use crate::module::{
    BinOp, Callee, ExtFunc, Function, GepOffset, Inst, Module, ObjKind, Operand, Terminator, UnOp,
};

impl Module {
    /// Declares an empty function shell and returns its id. The body is
    /// filled in later via [`FuncBuilder::finish`].
    pub fn declare_func(&mut self, name: impl Into<String>, ret_ty: Option<TypeId>) -> FuncId {
        self.funcs.push(Function::new(name, ret_ty))
    }
}

/// Incremental builder for one function body.
pub struct FuncBuilder<'m> {
    /// The module, for object/type registration.
    pub module: &'m mut Module,
    fid: FuncId,
    f: Function,
    cur: BlockId,
    sealed: bool,
}

impl<'m> FuncBuilder<'m> {
    /// Starts building the body of a previously declared function.
    pub fn new(module: &'m mut Module, fid: FuncId) -> Self {
        let f = Function::new(module.funcs[fid].name.clone(), module.funcs[fid].ret_ty);
        let cur = f.entry;
        FuncBuilder {
            module,
            fid,
            f,
            cur,
            sealed: false,
        }
    }

    /// The id of the function being built.
    pub fn fid(&self) -> FuncId {
        self.fid
    }

    /// Adds a formal parameter.
    pub fn param(&mut self, name: impl Into<String>, ty: TypeId) -> VarId {
        let v = self.f.new_var(name, ty);
        self.f.params.push(v);
        v
    }

    /// Adds a fresh (not yet placed) block.
    pub fn new_block(&mut self) -> BlockId {
        self.f.new_block()
    }

    /// Switches the insertion point.
    pub fn set_block(&mut self, bb: BlockId) {
        self.cur = bb;
    }

    /// Current insertion block.
    pub fn current(&self) -> BlockId {
        self.cur
    }

    /// Whether the current block already has a terminator.
    pub fn is_terminated(&self) -> bool {
        !matches!(self.f.blocks[self.cur].term, Terminator::Unreachable)
    }

    /// Declares a fresh register.
    pub fn new_var(&mut self, name: impl Into<String>, ty: TypeId) -> VarId {
        self.f.new_var(name, ty)
    }

    /// Type of a register.
    pub fn var_ty(&self, v: VarId) -> TypeId {
        self.f.vars[v].ty
    }

    fn push(&mut self, inst: Inst) {
        debug_assert!(
            matches!(self.f.blocks[self.cur].term, Terminator::Unreachable),
            "appending to a terminated block"
        );
        self.f.blocks[self.cur].insts.push(inst);
    }

    /// `dst := src`.
    pub fn copy(&mut self, ty: TypeId, src: Operand) -> VarId {
        let dst = self.f.new_var("t", ty);
        self.push(Inst::Copy { dst, src });
        dst
    }

    /// `dst := op src` (always int-typed).
    pub fn un(&mut self, op: UnOp, src: Operand) -> VarId {
        let ty = self.module.types.int();
        let dst = self.f.new_var("t", ty);
        self.push(Inst::Un { dst, op, src });
        dst
    }

    /// `dst := lhs op rhs` (always int-typed).
    pub fn bin(&mut self, op: BinOp, lhs: Operand, rhs: Operand) -> VarId {
        let ty = self.module.types.int();
        let dst = self.f.new_var("t", ty);
        self.push(Inst::Bin { dst, op, lhs, rhs });
        dst
    }

    /// Allocates a fresh object of `ty` and returns `(pointer var, object)`.
    ///
    /// `kind` must be `Stack` or `Heap` (globals are registered on the
    /// module directly). `count` makes it a dynamically-sized heap array.
    pub fn alloc(
        &mut self,
        name: impl Into<String>,
        kind: ObjKind,
        ty: TypeId,
        zero_init: bool,
        count: Option<Operand>,
    ) -> (VarId, ObjId) {
        let obj = self
            .module
            .add_object(name, kind, ty, zero_init, count.is_some());
        let pty = self.module.types.ptr_to(ty);
        let dst = self.f.new_var("p", pty);
        self.push(Inst::Alloc { dst, obj, count });
        (dst, obj)
    }

    /// `dst := &base.field`, result typed `ty` (a pointer type).
    pub fn gep_field(&mut self, base: Operand, field: u32, ty: TypeId) -> VarId {
        let dst = self.f.new_var("g", ty);
        self.push(Inst::Gep {
            dst,
            base,
            offset: GepOffset::Field(field),
        });
        dst
    }

    /// `dst := &base[index]`, result typed `ty` (a pointer type).
    pub fn gep_index(
        &mut self,
        base: Operand,
        index: Operand,
        elem_cells: u32,
        ty: TypeId,
    ) -> VarId {
        let dst = self.f.new_var("g", ty);
        self.push(Inst::Gep {
            dst,
            base,
            offset: GepOffset::Index { index, elem_cells },
        });
        dst
    }

    /// `dst := *addr`, result typed `ty`.
    pub fn load(&mut self, addr: Operand, ty: TypeId) -> VarId {
        let dst = self.f.new_var("l", ty);
        self.push(Inst::Load { dst, addr });
        dst
    }

    /// `*addr := val`.
    pub fn store(&mut self, addr: Operand, val: Operand) {
        self.push(Inst::Store { addr, val });
    }

    /// Calls `callee(args)`, returning the result register when `ret_ty`
    /// is present.
    pub fn call(
        &mut self,
        callee: Callee,
        args: Vec<Operand>,
        ret_ty: Option<TypeId>,
    ) -> Option<VarId> {
        let dst = ret_ty.map(|ty| self.f.new_var("r", ty));
        self.push(Inst::Call { dst, callee, args });
        dst
    }

    /// Calls an external function.
    pub fn call_ext(
        &mut self,
        ext: ExtFunc,
        args: Vec<Operand>,
        ret_ty: Option<TypeId>,
    ) -> Option<VarId> {
        self.call(Callee::External(ext), args, ret_ty)
    }

    /// Inserts an SSA phi (must come before non-phis; the builder trusts
    /// the caller here — the verifier will catch violations).
    pub fn phi(&mut self, ty: TypeId, incomings: Vec<(BlockId, Operand)>) -> VarId {
        let dst = self.f.new_var("phi", ty);
        self.push(Inst::Phi { dst, incomings });
        dst
    }

    /// Terminates with an unconditional jump.
    pub fn jmp(&mut self, bb: BlockId) {
        self.f.blocks[self.cur].term = Terminator::Jmp(bb);
    }

    /// Terminates with a conditional branch; folds `then == else` to a jump
    /// so that predecessor lists never contain duplicate edges.
    pub fn br(&mut self, cond: Operand, then_bb: BlockId, else_bb: BlockId) {
        if then_bb == else_bb {
            self.jmp(then_bb);
        } else {
            self.f.blocks[self.cur].term = Terminator::Br {
                cond,
                then_bb,
                else_bb,
            };
        }
    }

    /// Terminates with a return.
    pub fn ret(&mut self, val: Option<Operand>) {
        self.f.blocks[self.cur].term = Terminator::Ret(val);
    }

    /// Writes the finished body back into the module and returns the id.
    pub fn finish(mut self) -> FuncId {
        self.sealed = true;
        self.module.funcs[self.fid] = std::mem::replace(&mut self.f, Function::new("", None));
        self.fid
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify;

    #[test]
    fn builds_verifiable_function() {
        let mut m = Module::new();
        let int = m.types.int();
        let fid = m.declare_func("add1", Some(int));
        let mut b = FuncBuilder::new(&mut m, fid);
        let x = b.param("x", int);
        let r = b.bin(BinOp::Add, x.into(), Operand::Const(1));
        b.ret(Some(r.into()));
        b.finish();
        m.main = Some(fid);
        assert!(verify(&m).is_ok(), "{:?}", verify(&m));
        assert_eq!(m.funcs[fid].params.len(), 1);
    }

    #[test]
    fn br_to_same_target_folds_to_jmp() {
        let mut m = Module::new();
        let int = m.types.int();
        let fid = m.declare_func("f", None);
        let mut b = FuncBuilder::new(&mut m, fid);
        let c = b.copy(int, Operand::Const(0));
        let next = b.new_block();
        b.br(c.into(), next, next);
        b.set_block(next);
        b.ret(None);
        b.finish();
        assert!(matches!(
            m.funcs[fid].blocks[BlockId(0)].term,
            Terminator::Jmp(_)
        ));
    }

    #[test]
    fn alloc_registers_object_and_ptr_type() {
        let mut m = Module::new();
        let int = m.types.int();
        let fid = m.declare_func("f", None);
        let mut b = FuncBuilder::new(&mut m, fid);
        let (p, obj) = b.alloc("x", ObjKind::Stack(fid), int, false, None);
        let v = b.load(p.into(), int);
        b.store(p.into(), v.into());
        b.ret(None);
        b.finish();
        assert_eq!(m.objects[obj].kind, ObjKind::Stack(fid));
        assert!(!m.objects[obj].zero_init);
        assert!(m.types.is_pointer(m.funcs[fid].vars[p].ty));
        assert!(verify(&m).is_ok());
    }
}
