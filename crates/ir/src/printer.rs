//! Textual rendering of modules and functions, in a TinyC-SSA flavour.

use std::fmt::Write as _;

use crate::ids::FuncId;
use crate::module::{Callee, ExtFunc, Function, GepOffset, Inst, Module, Operand, Terminator};

/// Renders an operand.
pub fn operand(m: &Module, op: Operand) -> String {
    match op {
        Operand::Const(c) => c.to_string(),
        Operand::Var(v) => v.to_string(),
        Operand::Global(o) => format!("@{}", m.objects[o].name),
        Operand::Func(f) => format!("&{}", m.funcs[f].name),
        Operand::Undef => "undef".to_string(),
    }
}

/// Renders one instruction.
pub fn inst(m: &Module, i: &Inst) -> String {
    let op = |o: Operand| operand(m, o);
    match i {
        Inst::Copy { dst, src } => format!("{dst} := {}", op(*src)),
        Inst::Un { dst, op: o, src } => format!("{dst} := {o:?} {}", op(*src)),
        Inst::Bin {
            dst,
            op: o,
            lhs,
            rhs,
        } => {
            format!("{dst} := {} {o:?} {}", op(*lhs), op(*rhs))
        }
        Inst::Alloc { dst, obj, count } => {
            let init = if m.objects[*obj].zero_init { "T" } else { "F" };
            match count {
                Some(c) => format!("{dst} := alloc_{init} {}[{}]", m.objects[*obj].name, op(*c)),
                None => format!("{dst} := alloc_{init} {}", m.objects[*obj].name),
            }
        }
        Inst::Gep { dst, base, offset } => match offset {
            GepOffset::Field(k) => format!("{dst} := gep {} field {k}", op(*base)),
            GepOffset::Index { index, elem_cells } => {
                format!(
                    "{dst} := gep {} index {} x{elem_cells}",
                    op(*base),
                    op(*index)
                )
            }
        },
        Inst::Load { dst, addr } => format!("{dst} := *{}", op(*addr)),
        Inst::Store { addr, val } => format!("*{} := {}", op(*addr), op(*val)),
        Inst::Call { dst, callee, args } => {
            let args: Vec<String> = args.iter().map(|a| op(*a)).collect();
            let callee = match callee {
                Callee::Direct(f) => m.funcs[*f].name.clone(),
                Callee::Indirect(t) => format!("(*{})", op(*t)),
                Callee::External(e) => ext_name(*e).to_string(),
            };
            match dst {
                Some(d) => format!("{d} := {callee}({})", args.join(", ")),
                None => format!("{callee}({})", args.join(", ")),
            }
        }
        Inst::Phi { dst, incomings } => {
            let inc: Vec<String> = incomings
                .iter()
                .map(|(bb, o)| format!("[{bb}: {}]", op(*o)))
                .collect();
            format!("{dst} := phi {}", inc.join(", "))
        }
    }
}

/// The source-level name of an external function.
pub fn ext_name(e: ExtFunc) -> &'static str {
    match e {
        ExtFunc::PrintInt => "print",
        ExtFunc::InputInt => "input",
        ExtFunc::Abort => "abort",
        ExtFunc::Free => "free",
    }
}

/// Renders one function.
pub fn function(m: &Module, fid: FuncId, f: &Function) -> String {
    let mut s = String::new();
    let params: Vec<String> = f
        .params
        .iter()
        .map(|p| format!("{p}: {}", m.types.display(f.vars[*p].ty)))
        .collect();
    let _ = writeln!(s, "def {} {}({}) {{", fid, f.name, params.join(", "));
    for (bb, block) in f.blocks.iter_enumerated() {
        let _ = writeln!(s, "{bb}:");
        for i in &block.insts {
            let _ = writeln!(s, "  {}", inst(m, i));
        }
        let t = match &block.term {
            Terminator::Jmp(b) => format!("jmp {b}"),
            Terminator::Br {
                cond,
                then_bb,
                else_bb,
            } => {
                format!("br {} ? {then_bb} : {else_bb}", operand(m, *cond))
            }
            Terminator::Ret(Some(o)) => format!("ret {}", operand(m, *o)),
            Terminator::Ret(None) => "ret".to_string(),
            Terminator::Unreachable => "unreachable".to_string(),
        };
        let _ = writeln!(s, "  {t}");
    }
    let _ = writeln!(s, "}}");
    s
}

/// Renders the whole module.
pub fn module(m: &Module) -> String {
    let mut s = String::new();
    for &g in &m.globals {
        let _ = writeln!(
            s,
            "global @{}: {}",
            m.objects[g].name,
            m.types.display(m.objects[g].ty)
        );
    }
    for (fid, f) in m.funcs.iter_enumerated() {
        s.push('\n');
        s.push_str(&function(m, fid, f));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::VarId;
    use crate::module::{BinOp, Module};

    #[test]
    fn renders_basic_instructions() {
        let mut m = Module::new();
        let int = m.types.int();
        let mut f = Function::new("main", Some(int));
        let a = f.new_var("a", int);
        let b = f.new_var("b", int);
        let i = Inst::Bin {
            dst: b,
            op: BinOp::Add,
            lhs: a.into(),
            rhs: Operand::Const(1),
        };
        m.funcs.push(f);
        let text = inst(&m, &i);
        assert_eq!(text, format!("{} := {} Add 1", VarId(1), VarId(0)));
    }

    #[test]
    fn renders_module_with_globals() {
        let mut m = Module::new();
        let int = m.types.int();
        let g = m.add_object("g", crate::module::ObjKind::Global, int, true, false);
        m.globals.push(g);
        m.funcs.push(Function::new("main", None));
        let text = module(&m);
        assert!(text.contains("global @g: int"));
        assert!(text.contains("def @f0 main()"));
        assert!(text.contains("unreachable"));
    }
}
