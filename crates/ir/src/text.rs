//! A textual serialization of IR modules, with a parser — the
//! `llvm-dis`/`llvm-as` pair of this workspace.
//!
//! [`write_text`] emits a complete, loss-free description of a module
//! (structs, objects, globals, functions, SSA bodies); [`parse_text`]
//! reads it back. Round-tripping is exact: `parse(write(m))` produces a
//! module that prints identically and behaves identically.
//!
//! The format is line-oriented and keyword-led; see the grammar in the
//! parser below. Example:
//!
//! ```text
//! struct Point { x: int, y: int }
//! obj 0 "g" global zeroinit : int
//! globals 0
//! main @f0
//! def @f0 "main" -> int {
//!   var %v0 "x" int
//!   bb0:
//!     %v0 = copy 41
//!     ret %v0
//! }
//! ```

use std::fmt;
use std::fmt::Write as _;

use crate::ids::{BlockId, FuncId, Idx, ObjId, StructId, TypeId, VarId};
use crate::module::{
    BinOp, Callee, ExtFunc, GepOffset, Inst, Module, ObjKind, Operand, Terminator, UnOp,
};
use crate::types::Type;

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn type_text(m: &Module, t: TypeId) -> String {
    match m.types.get(t) {
        Type::Int => "int".to_string(),
        Type::Ptr(e) => format!("{}*", type_text(m, *e)),
        Type::Struct(s) => format!("struct {}", m.types.struct_def(*s).name),
        Type::Array(e, n) => format!("[{}; {}]", type_text(m, *e), n),
        Type::FuncPtr { params, has_ret } => {
            if *has_ret {
                format!("fn({params}) -> int")
            } else {
                format!("fn({params})")
            }
        }
    }
}

fn op_text(op: Operand) -> String {
    match op {
        Operand::Const(c) => c.to_string(),
        Operand::Var(v) => format!("%v{}", v.0),
        Operand::Global(o) => format!("${}", o.0),
        Operand::Func(f) => format!("@f{}", f.0),
        Operand::Undef => "undef".to_string(),
    }
}

fn ext_text(e: ExtFunc) -> &'static str {
    match e {
        ExtFunc::PrintInt => "print",
        ExtFunc::InputInt => "input",
        ExtFunc::Abort => "abort",
        ExtFunc::Free => "free",
    }
}

/// Serializes a module to its textual form.
pub fn write_text(m: &Module) -> String {
    let mut s = String::new();

    // Structs, in id order (fields may reference earlier structs and
    // pointer-wise reference any struct).
    for sid in 0..m.types.num_structs() {
        let def = m.types.struct_def(StructId(sid as u32)).clone();
        let fields: Vec<String> = def
            .fields
            .iter()
            .map(|(n, t)| format!("{n}: {}", type_text(m, *t)))
            .collect();
        let _ = writeln!(s, "struct {} {{ {} }}", def.name, fields.join(", "));
    }

    for (oid, o) in m.objects.iter_enumerated() {
        let kind = match o.kind {
            ObjKind::Global => "global".to_string(),
            ObjKind::Stack(f) => format!("stack(@f{})", f.0),
            ObjKind::Heap(f) => format!("heap(@f{})", f.0),
        };
        let init = if o.zero_init { "zeroinit" } else { "uninit" };
        // `dynamic` is derivable only for heap blocks with runtime counts;
        // record the collapse flag explicitly when it is not implied by
        // the type.
        let dynamic = if o.is_array && !matches!(m.types.get(o.ty), Type::Array(..)) {
            " dynamic"
        } else {
            ""
        };
        let _ = writeln!(
            s,
            "obj {} \"{}\" {kind} {init}{dynamic} : {}",
            oid.0,
            o.name,
            type_text(m, o.ty)
        );
    }

    if !m.globals.is_empty() {
        let ids: Vec<String> = m.globals.iter().map(|g| g.0.to_string()).collect();
        let _ = writeln!(s, "globals {}", ids.join(" "));
    }
    if let Some(main) = m.main {
        let _ = writeln!(s, "main @f{}", main.0);
    }

    for (fid, f) in m.funcs.iter_enumerated() {
        let ret = match f.ret_ty {
            Some(t) => format!(" -> {}", type_text(m, t)),
            None => String::new(),
        };
        let _ = writeln!(s, "def @f{} \"{}\"{ret} {{", fid.0, f.name);
        for (vid, vd) in f.vars.iter_enumerated() {
            let _ = writeln!(
                s,
                "  var %v{} \"{}\" {}",
                vid.0,
                vd.name,
                type_text(m, vd.ty)
            );
        }
        if !f.params.is_empty() {
            let ps: Vec<String> = f.params.iter().map(|p| format!("%v{}", p.0)).collect();
            let _ = writeln!(s, "  params {}", ps.join(" "));
        }
        let _ = writeln!(s, "  entry bb{}", f.entry.0);
        for (bb, block) in f.blocks.iter_enumerated() {
            let _ = writeln!(s, "  bb{}:", bb.0);
            for inst in &block.insts {
                let _ = writeln!(s, "    {}", inst_text(inst));
            }
            let term = match &block.term {
                Terminator::Jmp(b) => format!("jmp bb{}", b.0),
                Terminator::Br {
                    cond,
                    then_bb,
                    else_bb,
                } => {
                    format!("br {} bb{} bb{}", op_text(*cond), then_bb.0, else_bb.0)
                }
                Terminator::Ret(Some(o)) => format!("ret {}", op_text(*o)),
                Terminator::Ret(None) => "ret".to_string(),
                Terminator::Unreachable => "unreachable".to_string(),
            };
            let _ = writeln!(s, "    {term}");
        }
        let _ = writeln!(s, "}}");
    }
    s
}

fn inst_text(inst: &Inst) -> String {
    match inst {
        Inst::Copy { dst, src } => format!("%v{} = copy {}", dst.0, op_text(*src)),
        Inst::Un { dst, op, src } => {
            format!("%v{} = un {op:?} {}", dst.0, op_text(*src))
        }
        Inst::Bin { dst, op, lhs, rhs } => {
            format!(
                "%v{} = bin {op:?} {} {}",
                dst.0,
                op_text(*lhs),
                op_text(*rhs)
            )
        }
        Inst::Alloc { dst, obj, count } => match count {
            Some(c) => format!("%v{} = alloc {} count {}", dst.0, obj.0, op_text(*c)),
            None => format!("%v{} = alloc {}", dst.0, obj.0),
        },
        Inst::Gep { dst, base, offset } => match offset {
            GepOffset::Field(k) => {
                format!("%v{} = gep {} field {k}", dst.0, op_text(*base))
            }
            GepOffset::Index { index, elem_cells } => format!(
                "%v{} = gep {} index {} {elem_cells}",
                dst.0,
                op_text(*base),
                op_text(*index)
            ),
        },
        Inst::Load { dst, addr } => format!("%v{} = load {}", dst.0, op_text(*addr)),
        Inst::Store { addr, val } => format!("store {} {}", op_text(*addr), op_text(*val)),
        Inst::Call { dst, callee, args } => {
            let args: Vec<String> = args.iter().map(|a| op_text(*a)).collect();
            let head = match dst {
                Some(d) => format!("%v{} = ", d.0),
                None => String::new(),
            };
            match callee {
                Callee::Direct(f) => format!("{head}call @f{}({})", f.0, args.join(", ")),
                Callee::Indirect(t) => {
                    format!("{head}icall {}({})", op_text(*t), args.join(", "))
                }
                Callee::External(e) => {
                    format!("{head}ecall {}({})", ext_text(*e), args.join(", "))
                }
            }
        }
        Inst::Phi { dst, incomings } => {
            let inc: Vec<String> = incomings
                .iter()
                .map(|(b, o)| format!("[bb{}: {}]", b.0, op_text(*o)))
                .collect();
            format!("%v{} = phi {}", dst.0, inc.join(" "))
        }
    }
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

/// A parse failure with its 1-based line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TextError {
    /// Description.
    pub message: String,
    /// 1-based line.
    pub line: usize,
}

impl fmt::Display for TextError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "IR text error on line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for TextError {}

struct Cursor<'a> {
    toks: Vec<&'a str>,
    pos: usize,
    line: usize,
}

impl<'a> Cursor<'a> {
    fn err<T>(&self, msg: impl Into<String>) -> Result<T, TextError> {
        Err(TextError {
            message: msg.into(),
            line: self.line,
        })
    }

    fn peek(&self) -> Option<&'a str> {
        self.toks.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<&'a str> {
        let t = self.toks.get(self.pos).copied();
        self.pos += 1;
        t
    }

    fn expect(&mut self, t: &str) -> Result<(), TextError> {
        match self.next() {
            Some(got) if got == t => Ok(()),
            got => self.err(format!("expected `{t}`, found {got:?}")),
        }
    }

    fn eat(&mut self, t: &str) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }
}

/// Splits a line into tokens: punctuation `{}():,` separates; quoted
/// strings stay intact (names never contain quotes).
fn tokenize(line: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let bytes = line.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | ',' => i += 1,
            '"' => {
                let start = i;
                i += 1;
                while i < bytes.len() && bytes[i] != b'"' {
                    i += 1;
                }
                i = (i + 1).min(bytes.len());
                out.push(&line[start..i]);
            }
            ';' => i += 1,
            '{' | '}' | '(' | ')' | ':' | '[' | ']' | '*' => {
                out.push(&line[i..i + 1]);
                i += 1;
            }
            _ => {
                let start = i;
                while i < bytes.len()
                    && !matches!(
                        bytes[i] as char,
                        ' ' | '\t'
                            | ','
                            | ';'
                            | '{'
                            | '}'
                            | '('
                            | ')'
                            | ':'
                            | '['
                            | ']'
                            | '*'
                            | '"'
                    )
                {
                    i += 1;
                }
                out.push(&line[start..i]);
            }
        }
    }
    out
}

fn parse_id<I: Idx>(c: &mut Cursor, prefix: &str) -> Result<I, TextError> {
    let Some(t) = c.next() else {
        return c.err(format!("expected {prefix}N"));
    };
    let Some(num) = t.strip_prefix(prefix) else {
        return c.err(format!("expected {prefix}N, found `{t}`"));
    };
    match num.parse::<usize>() {
        Ok(n) => Ok(I::from_usize(n)),
        Err(_) => c.err(format!("bad id `{t}`")),
    }
}

fn parse_operand(c: &mut Cursor) -> Result<Operand, TextError> {
    let Some(t) = c.next() else {
        return c.err("expected an operand");
    };
    if t == "undef" {
        return Ok(Operand::Undef);
    }
    if let Some(v) = t.strip_prefix("%v") {
        return match v.parse::<u32>() {
            Ok(n) => Ok(Operand::Var(VarId(n))),
            Err(_) => c.err(format!("bad var `{t}`")),
        };
    }
    if let Some(g) = t.strip_prefix('$') {
        return match g.parse::<u32>() {
            Ok(n) => Ok(Operand::Global(ObjId(n))),
            Err(_) => c.err(format!("bad global `{t}`")),
        };
    }
    if let Some(f) = t.strip_prefix("@f") {
        return match f.parse::<u32>() {
            Ok(n) => Ok(Operand::Func(FuncId(n))),
            Err(_) => c.err(format!("bad func `{t}`")),
        };
    }
    match t.parse::<i64>() {
        Ok(n) => Ok(Operand::Const(n)),
        Err(_) => c.err(format!("bad operand `{t}`")),
    }
}

fn is_operand_start(t: &str) -> bool {
    t == "undef"
        || t.starts_with("%v")
        || t.starts_with('$')
        || t.starts_with("@f")
        || t.parse::<i64>().is_ok()
}

fn parse_type(m: &mut Module, c: &mut Cursor) -> Result<TypeId, TextError> {
    let base = match c.next() {
        Some("int") => m.types.int(),
        Some("struct") => {
            let Some(name) = c.next() else {
                return c.err("struct name");
            };
            match m.types.struct_by_name(name) {
                Some(s) => m.types.intern(Type::Struct(s)),
                None => return c.err(format!("unknown struct `{name}`")),
            }
        }
        Some("[") => {
            let elem = parse_type(m, c)?;
            let Some(n) = c.next() else {
                return c.err("array length");
            };
            let len: u32 = n.parse().map_err(|_| TextError {
                message: format!("bad array length `{n}`"),
                line: c.line,
            })?;
            c.expect("]")?;
            m.types.intern(Type::Array(elem, len))
        }
        Some(t) if t.starts_with("fn") => {
            // fn(N) or fn(N) -> int
            c.expect("(")?;
            let Some(p) = c.next() else {
                return c.err("fn arity");
            };
            let params: u32 = p.parse().map_err(|_| TextError {
                message: format!("bad arity `{p}`"),
                line: c.line,
            })?;
            c.expect(")")?;
            let has_ret = if c.eat("->") {
                c.expect("int")?;
                true
            } else {
                false
            };
            m.types.intern(Type::FuncPtr { params, has_ret })
        }
        got => return c.err(format!("expected a type, found {got:?}")),
    };
    // Pointer suffixes arrive as separate `*` tokens or glued (`int*`).
    let mut ty = base;
    while c.eat("*") {
        ty = m.types.ptr_to(ty);
    }
    Ok(ty)
}

fn unquote(t: &str) -> String {
    t.trim_matches('"').to_string()
}

/// Parses the textual form back into a [`Module`].
///
/// # Errors
///
/// Returns the first syntax error with its line number.
pub fn parse_text(src: &str) -> Result<Module, TextError> {
    let mut m = Module::new();
    let mut cur_func: Option<FuncId> = None;
    let mut cur_block: Option<BlockId> = None;

    // Pass 1: declare struct names and function shells so forward
    // references resolve.
    for raw in src.lines() {
        let line = raw.trim();
        if let Some(rest) = line.strip_prefix("struct ") {
            if let Some(name) = rest.split_whitespace().next() {
                m.types.add_struct(crate::types::StructDef {
                    name: name.to_string(),
                    fields: vec![],
                });
            }
        }
        if line.starts_with("def @f") {
            // Ret type resolved in pass 2; declare with None for now.
            let toks = tokenize(line);
            let name = toks
                .iter()
                .find(|t| t.starts_with('"'))
                .map(|t| unquote(t))
                .unwrap_or_default();
            m.declare_func(name, None);
        }
    }

    for (lineno, raw) in src.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with(';') {
            continue;
        }
        let mut c = Cursor {
            toks: tokenize(line),
            pos: 0,
            line: lineno + 1,
        };
        let Some(head) = c.peek() else { continue };
        match head {
            "struct" => {
                c.next();
                let Some(name) = c.next() else {
                    return c.err("struct name");
                };
                c.expect("{")?;
                let mut fields = Vec::new();
                while !c.eat("}") {
                    let Some(fname) = c.next() else {
                        return c.err("field name");
                    };
                    c.expect(":")?;
                    // Collect the remaining tokens of this field's type.
                    let fty = parse_type(&mut m, &mut c)?;
                    fields.push((fname.to_string(), fty));
                }
                let sid = m.types.struct_by_name(name).ok_or_else(|| TextError {
                    message: format!("struct `{name}` not pre-declared"),
                    line: c.line,
                })?;
                m.types.set_struct_fields(sid, fields);
            }
            "obj" => {
                c.next();
                let id: ObjId = {
                    let Some(t) = c.next() else {
                        return c.err("obj id");
                    };
                    ObjId(t.parse().map_err(|_| TextError {
                        message: format!("bad obj id `{t}`"),
                        line: c.line,
                    })?)
                };
                let Some(name) = c.next() else {
                    return c.err("obj name");
                };
                let name = unquote(name);
                let kind = match c.next() {
                    Some("global") => ObjKind::Global,
                    Some("stack") => {
                        c.expect("(")?;
                        let f: FuncId = parse_id(&mut c, "@f")?;
                        c.expect(")")?;
                        ObjKind::Stack(f)
                    }
                    Some("heap") => {
                        c.expect("(")?;
                        let f: FuncId = parse_id(&mut c, "@f")?;
                        c.expect(")")?;
                        ObjKind::Heap(f)
                    }
                    got => return c.err(format!("bad obj kind {got:?}")),
                };
                let zero_init = match c.next() {
                    Some("zeroinit") => true,
                    Some("uninit") => false,
                    got => return c.err(format!("bad init {got:?}")),
                };
                let dynamic = c.eat("dynamic");
                c.expect(":")?;
                let ty = parse_type(&mut m, &mut c)?;
                let got = m.add_object(name, kind, ty, zero_init, dynamic);
                if got != id {
                    return c.err(format!("object ids out of order: {got:?} vs {id:?}"));
                }
            }
            "globals" => {
                c.next();
                while let Some(t) = c.next() {
                    let n: u32 = t.parse().map_err(|_| TextError {
                        message: format!("bad global id `{t}`"),
                        line: c.line,
                    })?;
                    m.globals.push(ObjId(n));
                }
            }
            "main" => {
                c.next();
                let f: FuncId = parse_id(&mut c, "@f")?;
                m.main = Some(f);
            }
            "def" => {
                c.next();
                let fid: FuncId = parse_id(&mut c, "@f")?;
                let _name = c.next(); // already set in pass 1
                let ret = if c.eat("->") {
                    Some(parse_type(&mut m, &mut c)?)
                } else {
                    None
                };
                c.expect("{")?;
                m.funcs[fid].ret_ty = ret;
                m.funcs[fid].blocks = crate::ids::IdxVec::new();
                cur_func = Some(fid);
                cur_block = None;
            }
            "var" => {
                c.next();
                let Some(fid) = cur_func else {
                    return c.err("var outside def");
                };
                let v: VarId = parse_id(&mut c, "%v")?;
                let Some(name) = c.next() else {
                    return c.err("var name");
                };
                let name = unquote(name);
                let ty = parse_type(&mut m, &mut c)?;
                let got = m.funcs[fid].new_var(name, ty);
                if got != v {
                    return c.err(format!("var ids out of order: {got:?} vs {v:?}"));
                }
            }
            "params" => {
                c.next();
                let Some(fid) = cur_func else {
                    return c.err("params outside def");
                };
                while c.peek().is_some() {
                    let v: VarId = parse_id(&mut c, "%v")?;
                    m.funcs[fid].params.push(v);
                }
            }
            "entry" => {
                c.next();
                let Some(fid) = cur_func else {
                    return c.err("entry outside def");
                };
                let b: BlockId = parse_id(&mut c, "bb")?;
                m.funcs[fid].entry = b;
            }
            "}" => {
                cur_func = None;
                cur_block = None;
            }
            _ if head.starts_with("bb") && line.ends_with(':') => {
                let Some(fid) = cur_func else {
                    return c.err("block outside def");
                };
                let b: BlockId = parse_id(&mut c, "bb")?;
                let got = m.funcs[fid].new_block();
                if got != b {
                    return c.err(format!("block ids out of order: {got:?} vs {b:?}"));
                }
                cur_block = Some(b);
            }
            _ => {
                let (Some(fid), Some(bb)) = (cur_func, cur_block) else {
                    return c.err(format!("statement outside a block: `{line}`"));
                };
                parse_stmt(&mut m, fid, bb, &mut c)?;
            }
        }
    }
    Ok(m)
}

fn parse_stmt(m: &mut Module, fid: FuncId, bb: BlockId, c: &mut Cursor) -> Result<(), TextError> {
    let head = c.peek().unwrap_or("");

    // Terminators.
    match head {
        "jmp" => {
            c.next();
            let b: BlockId = parse_id(c, "bb")?;
            m.funcs[fid].blocks[bb].term = Terminator::Jmp(b);
            return Ok(());
        }
        "br" => {
            c.next();
            let cond = parse_operand(c)?;
            let t: BlockId = parse_id(c, "bb")?;
            let e: BlockId = parse_id(c, "bb")?;
            m.funcs[fid].blocks[bb].term = Terminator::Br {
                cond,
                then_bb: t,
                else_bb: e,
            };
            return Ok(());
        }
        "ret" => {
            c.next();
            let op = match c.peek() {
                Some(t) if is_operand_start(t) => Some(parse_operand(c)?),
                _ => None,
            };
            m.funcs[fid].blocks[bb].term = Terminator::Ret(op);
            return Ok(());
        }
        "unreachable" => {
            m.funcs[fid].blocks[bb].term = Terminator::Unreachable;
            return Ok(());
        }
        _ => {}
    }

    // `store` and dst-less calls.
    if head == "store" {
        c.next();
        let addr = parse_operand(c)?;
        let val = parse_operand(c)?;
        m.funcs[fid].blocks[bb]
            .insts
            .push(Inst::Store { addr, val });
        return Ok(());
    }
    if head == "call" || head == "icall" || head == "ecall" {
        let inst = parse_call(m, None, c)?;
        m.funcs[fid].blocks[bb].insts.push(inst);
        return Ok(());
    }

    // `%vN = <op> ...`
    let dst: VarId = parse_id(c, "%v")?;
    c.expect("=")?;
    let Some(op) = c.next() else {
        return c.err("instruction kind");
    };
    let inst = match op {
        "copy" => Inst::Copy {
            dst,
            src: parse_operand(c)?,
        },
        "un" => {
            let u = match c.next() {
                Some("Neg") => UnOp::Neg,
                Some("Not") => UnOp::Not,
                Some("BitNot") => UnOp::BitNot,
                got => return c.err(format!("bad unop {got:?}")),
            };
            Inst::Un {
                dst,
                op: u,
                src: parse_operand(c)?,
            }
        }
        "bin" => {
            let Some(name) = c.next() else {
                return c.err("binop");
            };
            let b = parse_binop(name).ok_or_else(|| TextError {
                message: format!("bad binop `{name}`"),
                line: c.line,
            })?;
            let lhs = parse_operand(c)?;
            let rhs = parse_operand(c)?;
            Inst::Bin {
                dst,
                op: b,
                lhs,
                rhs,
            }
        }
        "alloc" => {
            let Some(t) = c.next() else {
                return c.err("obj id");
            };
            let obj = ObjId(t.parse().map_err(|_| TextError {
                message: format!("bad obj id `{t}`"),
                line: c.line,
            })?);
            let count = if c.eat("count") {
                Some(parse_operand(c)?)
            } else {
                None
            };
            Inst::Alloc { dst, obj, count }
        }
        "gep" => {
            let base = parse_operand(c)?;
            match c.next() {
                Some("field") => {
                    let Some(t) = c.next() else {
                        return c.err("field offset");
                    };
                    let k: u32 = t.parse().map_err(|_| TextError {
                        message: format!("bad field `{t}`"),
                        line: c.line,
                    })?;
                    Inst::Gep {
                        dst,
                        base,
                        offset: GepOffset::Field(k),
                    }
                }
                Some("index") => {
                    let index = parse_operand(c)?;
                    let Some(t) = c.next() else {
                        return c.err("elem cells");
                    };
                    let elem_cells: u32 = t.parse().map_err(|_| TextError {
                        message: format!("bad elem cells `{t}`"),
                        line: c.line,
                    })?;
                    Inst::Gep {
                        dst,
                        base,
                        offset: GepOffset::Index { index, elem_cells },
                    }
                }
                got => return c.err(format!("bad gep kind {got:?}")),
            }
        }
        "load" => Inst::Load {
            dst,
            addr: parse_operand(c)?,
        },
        "call" | "icall" | "ecall" => {
            c.pos -= 1;
            parse_call(m, Some(dst), c)?
        }
        "phi" => {
            let mut incomings = Vec::new();
            while c.eat("[") {
                let b: BlockId = parse_id(c, "bb")?;
                c.expect(":")?;
                let o = parse_operand(c)?;
                c.expect("]")?;
                incomings.push((b, o));
            }
            Inst::Phi { dst, incomings }
        }
        other => return c.err(format!("unknown instruction `{other}`")),
    };
    m.funcs[fid].blocks[bb].insts.push(inst);
    Ok(())
}

fn parse_call(m: &mut Module, dst: Option<VarId>, c: &mut Cursor) -> Result<Inst, TextError> {
    let kind = c.next().unwrap_or("");
    let callee = match kind {
        "call" => {
            let f: FuncId = parse_id(c, "@f")?;
            Callee::Direct(f)
        }
        "icall" => Callee::Indirect(parse_operand(c)?),
        "ecall" => {
            let e = match c.next() {
                Some("print") => ExtFunc::PrintInt,
                Some("input") => ExtFunc::InputInt,
                Some("abort") => ExtFunc::Abort,
                Some("free") => ExtFunc::Free,
                got => return c.err(format!("bad external {got:?}")),
            };
            Callee::External(e)
        }
        other => return c.err(format!("bad call kind `{other}`")),
    };
    c.expect("(")?;
    let mut args = Vec::new();
    while !c.eat(")") {
        args.push(parse_operand(c)?);
    }
    let _ = m;
    Ok(Inst::Call { dst, callee, args })
}

fn parse_binop(name: &str) -> Option<BinOp> {
    Some(match name {
        "Add" => BinOp::Add,
        "Sub" => BinOp::Sub,
        "Mul" => BinOp::Mul,
        "Div" => BinOp::Div,
        "Rem" => BinOp::Rem,
        "And" => BinOp::And,
        "Or" => BinOp::Or,
        "Xor" => BinOp::Xor,
        "Shl" => BinOp::Shl,
        "Shr" => BinOp::Shr,
        "Eq" => BinOp::Eq,
        "Ne" => BinOp::Ne,
        "Lt" => BinOp::Lt,
        "Le" => BinOp::Le,
        "Gt" => BinOp::Gt,
        "Ge" => BinOp::Ge,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FuncBuilder;

    fn sample_module() -> Module {
        let mut m = Module::new();
        let int = m.types.int();
        let g = m.add_object("g", ObjKind::Global, int, true, false);
        m.globals.push(g);
        let fid = m.declare_func("main", Some(int));
        m.main = Some(fid);
        let mut b = FuncBuilder::new(&mut m, fid);
        let (p, _) = b.alloc("x", ObjKind::Stack(fid), int, false, None);
        b.store(p.into(), Operand::Const(3));
        let v = b.load(p.into(), int);
        let w = b.bin(BinOp::Mul, v.into(), Operand::Const(2));
        b.store(Operand::Global(g), w.into());
        let r = b.load(Operand::Global(g), int);
        b.ret(Some(r.into()));
        b.finish();
        m
    }

    #[test]
    fn round_trip_is_textually_stable() {
        let m = sample_module();
        let once = write_text(&m);
        let parsed = parse_text(&once).expect("parses");
        let twice = write_text(&parsed);
        assert_eq!(once, twice);
        assert!(crate::verify::verify(&parsed).is_ok());
    }

    #[test]
    fn round_trip_preserves_structure() {
        let m = sample_module();
        let parsed = parse_text(&write_text(&m)).unwrap();
        assert_eq!(parsed.funcs.len(), m.funcs.len());
        assert_eq!(parsed.objects.len(), m.objects.len());
        assert_eq!(parsed.globals, m.globals);
        assert_eq!(parsed.main, m.main);
        let fid = m.main.unwrap();
        assert_eq!(parsed.funcs[fid].blocks.len(), m.funcs[fid].blocks.len());
        assert_eq!(parsed.funcs[fid].vars.len(), m.funcs[fid].vars.len());
    }

    #[test]
    fn error_reports_line() {
        let bad = "def @f0 \"f\" {\n  var %v0 \"x\" int\n  bb0:\n    %v0 = frobnicate 3\n";
        let e = parse_text(bad).unwrap_err();
        assert_eq!(e.line, 4);
        assert!(e.message.contains("frobnicate"));
    }

    #[test]
    fn negative_constants_round_trip() {
        let mut m = Module::new();
        let int = m.types.int();
        let fid = m.declare_func("main", Some(int));
        m.main = Some(fid);
        let mut b = FuncBuilder::new(&mut m, fid);
        let v = b.copy(int, Operand::Const(-42));
        b.ret(Some(v.into()));
        b.finish();
        let parsed = parse_text(&write_text(&m)).unwrap();
        assert_eq!(write_text(&parsed), write_text(&m));
    }
}
