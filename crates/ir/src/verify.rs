//! A structural IR verifier.
//!
//! Catches broken invariants early in the pipeline: multiple definitions of
//! an SSA register, uses of never-defined registers, dangling block ids,
//! phi incomings that do not match predecessors, and `Unreachable`
//! terminators surviving in reachable code.

use std::collections::HashSet;
use std::fmt;

use crate::cfg::Cfg;
use crate::ids::{BlockId, FuncId, Idx, VarId};
use crate::module::{Callee, Function, Inst, Module, Operand, Terminator};

/// A verifier finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VerifyError {
    /// Function the error was found in.
    pub func: FuncId,
    /// Description.
    pub message: String,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "verify error in {}: {}", self.func, self.message)
    }
}

impl std::error::Error for VerifyError {}

/// Verifies the module, returning all findings.
///
/// # Errors
///
/// Returns the list of violated invariants; empty result means the module
/// is structurally well-formed.
pub fn verify(m: &Module) -> Result<(), Vec<VerifyError>> {
    let mut errors = Vec::new();
    for (fid, f) in m.funcs.iter_enumerated() {
        verify_function(m, fid, f, &mut errors);
    }
    if let Some(main) = m.main {
        if main.index() >= m.funcs.len() {
            errors.push(VerifyError {
                func: main,
                message: "main id out of range".into(),
            });
        }
    }
    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

fn verify_function(m: &Module, fid: FuncId, f: &Function, errors: &mut Vec<VerifyError>) {
    macro_rules! err {
        ($($arg:tt)*) => {
            errors.push(VerifyError { func: fid, message: format!($($arg)*) })
        };
    }

    // Single definition per register.
    let mut defined: HashSet<VarId> = f.params.iter().copied().collect();
    if defined.len() != f.params.len() {
        err!("duplicate parameter registers");
    }
    for (bb, block) in f.blocks.iter_enumerated() {
        for inst in &block.insts {
            if let Some(d) = inst.dst() {
                if d.index() >= f.vars.len() {
                    err!("{bb}: def of out-of-range var {d}");
                } else if !defined.insert(d) {
                    err!("{bb}: second definition of {d}");
                }
            }
        }
    }

    let cfg = Cfg::compute(f);

    let check_operand = |op: Operand, bb: BlockId, errs: &mut Vec<VerifyError>| match op {
        Operand::Var(v) => {
            if v.index() >= f.vars.len() {
                errs.push(VerifyError {
                    func: fid,
                    message: format!("{bb}: use of out-of-range var {v}"),
                });
            } else if !defined.contains(&v) {
                errs.push(VerifyError {
                    func: fid,
                    message: format!("{bb}: use of never-defined var {v}"),
                });
            }
        }
        Operand::Global(o) => {
            if o.index() >= m.objects.len() {
                errs.push(VerifyError {
                    func: fid,
                    message: format!("{bb}: use of out-of-range object {o}"),
                });
            }
        }
        Operand::Func(g) => {
            if g.index() >= m.funcs.len() {
                errs.push(VerifyError {
                    func: fid,
                    message: format!("{bb}: use of out-of-range function {g}"),
                });
            }
        }
        Operand::Const(_) | Operand::Undef => {}
    };

    for (bb, block) in f.blocks.iter_enumerated() {
        for inst in &block.insts {
            inst.for_each_use(|op| check_operand(op, bb, errors));
            match inst {
                Inst::Alloc { obj, .. } if obj.index() >= m.objects.len() => {
                    errors.push(VerifyError {
                        func: fid,
                        message: format!("{bb}: alloc of out-of-range object {obj}"),
                    });
                }
                Inst::Call {
                    callee: Callee::Direct(g),
                    args,
                    ..
                } => {
                    if g.index() >= m.funcs.len() {
                        errors.push(VerifyError {
                            func: fid,
                            message: format!("{bb}: call to out-of-range function {g}"),
                        });
                    } else if m.funcs[*g].params.len() != args.len() {
                        errors.push(VerifyError {
                            func: fid,
                            message: format!(
                                "{bb}: call to {} with {} args, expected {}",
                                m.funcs[*g].name,
                                args.len(),
                                m.funcs[*g].params.len()
                            ),
                        });
                    }
                }
                Inst::Phi { incomings, .. } if cfg.is_reachable(bb) => {
                    let preds: HashSet<BlockId> = cfg.preds[bb].iter().copied().collect();
                    let inc: HashSet<BlockId> = incomings.iter().map(|(b, _)| *b).collect();
                    if inc.len() != incomings.len() {
                        errors.push(VerifyError {
                            func: fid,
                            message: format!("{bb}: phi with duplicate incoming blocks"),
                        });
                    }
                    // Every incoming must be an actual predecessor; every
                    // reachable predecessor must appear.
                    for b in &inc {
                        if !preds.contains(b) {
                            errors.push(VerifyError {
                                func: fid,
                                message: format!("{bb}: phi incoming from non-predecessor {b}"),
                            });
                        }
                    }
                    for p in &preds {
                        if cfg.is_reachable(*p) && !inc.contains(p) {
                            errors.push(VerifyError {
                                func: fid,
                                message: format!("{bb}: phi missing incoming for predecessor {p}"),
                            });
                        }
                    }
                }
                _ => {}
            }
        }
        block.term.for_each_use(|op| check_operand(op, bb, errors));
        for s in block.term.successors() {
            if s.index() >= f.blocks.len() {
                err!("{bb}: branch to out-of-range block {s}");
            }
        }
        if cfg.is_reachable(bb) && matches!(block.term, Terminator::Unreachable) {
            err!("{bb}: reachable block has Unreachable terminator");
        }
        // Phis must be a prefix of the block.
        let mut seen_non_phi = false;
        for inst in &block.insts {
            match inst {
                Inst::Phi { .. } if seen_non_phi => {
                    err!("{bb}: phi after non-phi instruction");
                    break;
                }
                Inst::Phi { .. } => {}
                _ => seen_non_phi = true,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::{Block, Module, Operand};

    fn empty_main() -> Module {
        let mut m = Module::new();
        let mut f = Function::new("main", None);
        f.blocks[f.entry].term = Terminator::Ret(None);
        let id = m.funcs.push(f);
        m.main = Some(id);
        m
    }

    #[test]
    fn accepts_minimal_module() {
        let m = empty_main();
        assert!(verify(&m).is_ok());
    }

    #[test]
    fn rejects_double_definition() {
        let mut m = empty_main();
        let int = m.types.int();
        let f = &mut m.funcs[FuncId(0)];
        let v = f.new_var("v", int);
        f.blocks[f.entry].insts.push(Inst::Copy {
            dst: v,
            src: Operand::Const(1),
        });
        f.blocks[f.entry].insts.push(Inst::Copy {
            dst: v,
            src: Operand::Const(2),
        });
        let errs = verify(&m).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("second definition")));
    }

    #[test]
    fn rejects_use_of_undefined_register() {
        let mut m = empty_main();
        let int = m.types.int();
        let f = &mut m.funcs[FuncId(0)];
        let v = f.new_var("v", int);
        let w = f.new_var("w", int);
        f.blocks[f.entry].insts.push(Inst::Copy {
            dst: v,
            src: Operand::Var(w),
        });
        let errs = verify(&m).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("never-defined")));
    }

    #[test]
    fn rejects_reachable_unreachable_terminator() {
        let mut m = empty_main();
        let f = &mut m.funcs[FuncId(0)];
        let b = f.new_block();
        f.blocks[f.entry].term = Terminator::Jmp(b);
        // b keeps its Unreachable terminator.
        let errs = verify(&m).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| e.message.contains("Unreachable terminator")));
    }

    #[test]
    fn rejects_phi_from_non_predecessor() {
        let mut m = empty_main();
        let int = m.types.int();
        let f = &mut m.funcs[FuncId(0)];
        let v = f.new_var("v", int);
        let b = f.new_block();
        f.blocks[f.entry].term = Terminator::Jmp(b);
        f.blocks[b].insts.push(Inst::Phi {
            dst: v,
            incomings: vec![(f.entry, Operand::Const(1)), (b, Operand::Const(2))],
        });
        f.blocks[b].term = Terminator::Ret(None);
        let errs = verify(&m).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("non-predecessor")));
    }

    #[test]
    fn rejects_arity_mismatch() {
        let mut m = empty_main();
        let int = m.types.int();
        let mut g = Function::new("g", Some(int));
        let p = g.new_var("p", int);
        g.params.push(p);
        g.blocks[g.entry].term = Terminator::Ret(Some(Operand::Var(p)));
        let gid = m.funcs.push(g);
        let f = &mut m.funcs[FuncId(0)];
        f.blocks[f.entry].insts.insert(
            0,
            Inst::Call {
                dst: None,
                callee: Callee::Direct(gid),
                args: vec![],
            },
        );
        let errs = verify(&m).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("expected 1")));
    }

    #[test]
    fn rejects_phi_after_non_phi() {
        let mut m = empty_main();
        let int = m.types.int();
        let f = &mut m.funcs[FuncId(0)];
        let a = f.new_var("a", int);
        let b = f.new_var("b", int);
        let entry = f.entry;
        f.blocks[entry].insts.push(Inst::Copy {
            dst: a,
            src: Operand::Const(1),
        });
        f.blocks[entry].insts.push(Inst::Phi {
            dst: b,
            incomings: vec![],
        });
        let errs = verify(&m).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("phi after non-phi")));
    }

    #[test]
    fn allows_block_struct_default() {
        // Block::new is Unreachable but fine when the block is unreachable.
        let mut m = empty_main();
        let f = &mut m.funcs[FuncId(0)];
        let _dead = f.blocks.push(Block::new());
        assert!(verify(&m).is_ok());
    }
}
