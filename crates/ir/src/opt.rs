//! Scalar optimization passes used to model the paper's `-O1`/`-O2`
//! configurations (Section 4.6).
//!
//! The paper inserts instrumentation into code that has already been
//! optimized by LLVM at O1/O2; the effect studied there is that the
//! *relative* benefit of Usher over MSan narrows because the native
//! baseline speeds up more than the instrumented code. We reproduce the
//! mechanism with classic SSA passes: constant folding/propagation, copy
//! propagation, dead-code elimination, CFG simplification and a local CSE.
//!
//! As in the paper (Section 4.3), optimizing before instrumenting can hide
//! some uses of undefined values (e.g. `undef * 0` folds to `0`); this is
//! faithful, deliberate behaviour.

use std::collections::HashMap;

use crate::cfg::Cfg;
use crate::ids::{BlockId, Idx, IdxVec, VarId};
use crate::module::{BinOp, Function, GepOffset, Inst, Module, Operand, Terminator, UnOp};

/// An optimization level mirroring the paper's configurations.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum OptLevel {
    /// `O0+IM`: inlining + mem2reg only (the paper's recommended debugging
    /// configuration). No scalar optimization.
    #[default]
    O0Im,
    /// `-O1`: one round of copy/const propagation, DCE and CFG cleanup.
    O1,
    /// `-O2`: `-O1` to a fixpoint, plus local CSE.
    O2,
}

impl std::fmt::Display for OptLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OptLevel::O0Im => write!(f, "O0+IM"),
            OptLevel::O1 => write!(f, "O1"),
            OptLevel::O2 => write!(f, "O2"),
        }
    }
}

/// Runs the scalar pipeline for `level` over the whole module.
pub fn optimize(m: &mut Module, level: OptLevel) {
    match level {
        OptLevel::O0Im => {}
        OptLevel::O1 => {
            for fid in m.funcs.indices().collect::<Vec<_>>() {
                let f = &mut m.funcs[fid];
                copy_and_const_prop(f);
                dce(f);
                simplify_cfg(f);
            }
        }
        OptLevel::O2 => {
            for fid in m.funcs.indices().collect::<Vec<_>>() {
                let f = &mut m.funcs[fid];
                for _ in 0..4 {
                    let mut changed = copy_and_const_prop(f);
                    changed |= local_cse(f);
                    changed |= dce(f);
                    changed |= simplify_cfg(f);
                    if !changed {
                        break;
                    }
                }
            }
        }
    }
}

/// Removes blocks unreachable from the entry, compacting ids and fixing
/// phi incomings. Returns whether anything changed.
pub fn remove_unreachable_blocks(f: &mut Function) -> bool {
    let cfg = Cfg::compute(f);
    if cfg.rpo.len() == f.blocks.len() {
        return false;
    }
    // Old -> new id map.
    let mut remap: IdxVec<BlockId, Option<BlockId>> = IdxVec::from_elem(None, f.blocks.len());
    for (i, &bb) in cfg.rpo.iter().enumerate() {
        remap[bb] = Some(BlockId(i as u32));
    }
    let old_blocks = std::mem::take(&mut f.blocks);
    let mut new_blocks = IdxVec::new();
    for &bb in &cfg.rpo {
        let mut block = old_blocks[bb].clone();
        block
            .term
            .map_targets(|t| remap[t].expect("successor of reachable block is reachable"));
        // Drop phi incomings from removed predecessors, remap the rest.
        for inst in &mut block.insts {
            if let Inst::Phi { incomings, .. } = inst {
                incomings.retain(|(p, _)| remap[*p].is_some());
                for (p, _) in incomings.iter_mut() {
                    *p = remap[*p].expect("retained incoming is reachable");
                }
            }
        }
        new_blocks.push(block);
    }
    f.blocks = new_blocks;
    f.entry = remap[f.entry].expect("entry is reachable");
    true
}

fn eval_bin(op: BinOp, a: i64, b: i64) -> Option<i64> {
    Some(match op {
        BinOp::Add => a.wrapping_add(b),
        BinOp::Sub => a.wrapping_sub(b),
        BinOp::Mul => a.wrapping_mul(b),
        BinOp::Div => {
            if b == 0 {
                return None;
            }
            a.wrapping_div(b)
        }
        BinOp::Rem => {
            if b == 0 {
                return None;
            }
            a.wrapping_rem(b)
        }
        BinOp::And => a & b,
        BinOp::Or => a | b,
        BinOp::Xor => a ^ b,
        BinOp::Shl => a.wrapping_shl((b & 63) as u32),
        BinOp::Shr => a.wrapping_shr((b & 63) as u32),
        BinOp::Eq => (a == b) as i64,
        BinOp::Ne => (a != b) as i64,
        BinOp::Lt => (a < b) as i64,
        BinOp::Le => (a <= b) as i64,
        BinOp::Gt => (a > b) as i64,
        BinOp::Ge => (a >= b) as i64,
    })
}

fn eval_un(op: UnOp, a: i64) -> i64 {
    match op {
        UnOp::Neg => a.wrapping_neg(),
        UnOp::Not => (a == 0) as i64,
        UnOp::BitNot => !a,
    }
}

/// Sparse copy + constant propagation with folding. Returns whether
/// anything changed.
pub fn copy_and_const_prop(f: &mut Function) -> bool {
    // value_of[v] = the operand v is known to equal (a const, another var,
    // or Undef).
    let mut value_of: HashMap<VarId, Operand> = HashMap::new();
    let mut changed = false;

    // Iterate to a fixpoint over block order (SSA makes this converge
    // quickly; phis of identical values also fold).
    for _ in 0..4 {
        let mut round_changed = false;
        let resolve = |value_of: &HashMap<VarId, Operand>, mut o: Operand| -> Operand {
            // Chase copy chains (bounded: SSA chains are acyclic except
            // through degenerate phis, which we bound).
            for _ in 0..8 {
                match o {
                    Operand::Var(v) => match value_of.get(&v) {
                        Some(&next) if next != o => o = next,
                        _ => break,
                    },
                    _ => break,
                }
            }
            o
        };
        for block in f.blocks.iter_mut() {
            for inst in &mut block.insts {
                inst.map_uses(|o| resolve(&value_of, o));
                match inst {
                    Inst::Copy { dst, src } if value_of.get(dst) != Some(src) => {
                        value_of.insert(*dst, *src);
                        round_changed = true;
                    }
                    Inst::Un {
                        dst,
                        op,
                        src: Operand::Const(c),
                    } => {
                        let v = Operand::Const(eval_un(*op, *c));
                        if value_of.get(dst) != Some(&v) {
                            value_of.insert(*dst, v);
                            round_changed = true;
                        }
                    }
                    Inst::Bin {
                        dst,
                        op,
                        lhs: Operand::Const(a),
                        rhs: Operand::Const(b),
                    } => {
                        if let Some(c) = eval_bin(*op, *a, *b) {
                            let v = Operand::Const(c);
                            if value_of.get(dst) != Some(&v) {
                                value_of.insert(*dst, v);
                                round_changed = true;
                            }
                        }
                    }
                    Inst::Phi { dst, incomings } => {
                        // Fold phis whose incomings all agree (excluding
                        // self-references).
                        let mut vals: Vec<Operand> = incomings
                            .iter()
                            .map(|(_, o)| resolve(&value_of, *o))
                            .filter(|o| *o != Operand::Var(*dst))
                            .collect();
                        vals.dedup();
                        if vals.len() == 1
                            && !matches!(vals[0], Operand::Undef)
                            && value_of.get(dst) != Some(&vals[0])
                        {
                            value_of.insert(*dst, vals[0]);
                            round_changed = true;
                        }
                    }
                    _ => {}
                }
            }
            block.term.map_uses(|o| resolve(&value_of, o));
        }
        changed |= round_changed;
        if !round_changed {
            break;
        }
    }

    // Rewrite copies whose value is fully known into canonical form (DCE
    // will remove the now-dead ones).
    changed
}

/// Removes instructions whose results are unused and that have no side
/// effects. Returns whether anything changed.
pub fn dce(f: &mut Function) -> bool {
    let mut used = vec![false; f.vars.len()];
    for block in f.blocks.iter() {
        for inst in &block.insts {
            inst.for_each_use(|o| {
                if let Operand::Var(v) = o {
                    used[v.index()] = true;
                }
            });
        }
        block.term.for_each_use(|o| {
            if let Operand::Var(v) = o {
                used[v.index()] = true;
            }
        });
    }
    let mut changed = false;
    for block in f.blocks.iter_mut() {
        let before = block.insts.len();
        block.insts.retain(|inst| match inst {
            Inst::Copy { dst, .. }
            | Inst::Un { dst, .. }
            | Inst::Bin { dst, .. }
            | Inst::Gep { dst, .. }
            | Inst::Phi { dst, .. }
            | Inst::Load { dst, .. } => used[dst.index()],
            // Calls and stores have side effects; allocs define memory
            // that loads may observe via escaped pointers, but an alloc
            // whose result is unused is unobservable.
            Inst::Alloc { dst, .. } => used[dst.index()],
            Inst::Store { .. } | Inst::Call { .. } => true,
        });
        changed |= block.insts.len() != before;
    }
    changed
}

/// Folds constant branches, removes unreachable blocks, and merges
/// single-predecessor jump chains. Returns whether anything changed.
pub fn simplify_cfg(f: &mut Function) -> bool {
    let mut changed = false;
    for block in f.blocks.iter_mut() {
        if let Terminator::Br {
            cond: Operand::Const(c),
            then_bb,
            else_bb,
        } = block.term
        {
            block.term = Terminator::Jmp(if c != 0 { then_bb } else { else_bb });
            changed = true;
        }
    }
    changed |= remove_unreachable_blocks(f);
    changed |= merge_blocks(f);
    changed
}

/// Merges `A -> Jmp B` when `B`'s only predecessor is `A`. Phis in `B`
/// degenerate to copies of their single incoming.
pub fn merge_blocks(f: &mut Function) -> bool {
    let mut changed = false;
    loop {
        let cfg = Cfg::compute(f);
        let mut merged = false;
        for a in cfg.rpo.clone() {
            let Terminator::Jmp(b) = f.blocks[a].term else {
                continue;
            };
            if b == f.entry || b == a || cfg.preds[b].len() != 1 {
                continue;
            }
            // Resolve B's phis to copies, splice instructions, take B's
            // terminator, and patch B's successors' phi incomings to A.
            let b_block = std::mem::take(&mut f.blocks[b].insts);
            for inst in b_block {
                match inst {
                    Inst::Phi { dst, incomings } => {
                        let src = incomings.first().map(|(_, o)| *o).unwrap_or(Operand::Undef);
                        f.blocks[a].insts.push(Inst::Copy { dst, src });
                    }
                    other => f.blocks[a].insts.push(other),
                }
            }
            let b_term = std::mem::replace(&mut f.blocks[b].term, Terminator::Unreachable);
            for s in b_term.successors() {
                for inst in f.blocks[s].insts.iter_mut() {
                    if let Inst::Phi { incomings, .. } = inst {
                        for (pb, _) in incomings.iter_mut() {
                            if *pb == b {
                                *pb = a;
                            }
                        }
                    } else {
                        break;
                    }
                }
            }
            f.blocks[a].term = b_term;
            merged = true;
            changed = true;
            break; // CFG changed; recompute
        }
        if !merged {
            break;
        }
    }
    if changed {
        remove_unreachable_blocks(f);
    }
    changed
}

/// Local common-subexpression elimination within each block (pure
/// instructions only). Returns whether anything changed.
pub fn local_cse(f: &mut Function) -> bool {
    let mut changed = false;
    for block in f.blocks.iter_mut() {
        let mut seen: HashMap<(UnOp, Operand), VarId> = HashMap::new();
        let mut seen_bin: HashMap<(BinOp, Operand, Operand), VarId> = HashMap::new();
        let mut replace: HashMap<VarId, VarId> = HashMap::new();
        for inst in &mut block.insts {
            inst.map_uses(|o| match o {
                Operand::Var(v) => Operand::Var(*replace.get(&v).unwrap_or(&v)),
                o => o,
            });
            match inst {
                Inst::Un { dst, op, src } => {
                    if let Some(&prev) = seen.get(&(*op, *src)) {
                        replace.insert(*dst, prev);
                        changed = true;
                    } else {
                        seen.insert((*op, *src), *dst);
                    }
                }
                Inst::Bin { dst, op, lhs, rhs } => {
                    if let Some(&prev) = seen_bin.get(&(*op, *lhs, *rhs)) {
                        replace.insert(*dst, prev);
                        changed = true;
                    } else {
                        seen_bin.insert((*op, *lhs, *rhs), *dst);
                    }
                }
                _ => {}
            }
        }
        if !replace.is_empty() {
            block.term.map_uses(|o| match o {
                Operand::Var(v) => Operand::Var(*replace.get(&v).unwrap_or(&v)),
                o => o,
            });
        }
    }
    // Cross-block uses of replaced vars: propagate via a module-wide pass.
    changed
}

/// A `Gep` with constant index 0 is the identity; canonicalize it to a
/// copy so later passes see through it.
pub fn canonicalize_geps(f: &mut Function) -> bool {
    let mut changed = false;
    for block in f.blocks.iter_mut() {
        for inst in &mut block.insts {
            if let Inst::Gep { dst, base, offset } = inst {
                let zero = matches!(
                    offset,
                    GepOffset::Field(0)
                        | GepOffset::Index {
                            index: Operand::Const(0),
                            ..
                        }
                );
                if zero {
                    *inst = Inst::Copy {
                        dst: *dst,
                        src: *base,
                    };
                    changed = true;
                }
            }
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FuncBuilder;
    use crate::module::Module;
    use crate::verify::verify;

    fn count_insts(f: &Function) -> usize {
        f.inst_count()
    }

    #[test]
    fn const_prop_folds_chain() {
        let mut m = Module::new();
        let int = m.types.int();
        let fid = m.declare_func("f", Some(int));
        let mut b = FuncBuilder::new(&mut m, fid);
        let a = b.copy(int, Operand::Const(2));
        let c = b.bin(BinOp::Mul, a.into(), Operand::Const(21));
        b.ret(Some(c.into()));
        b.finish();
        let f = &mut m.funcs[fid];
        copy_and_const_prop(f);
        dce(f);
        assert_eq!(
            m.funcs[fid].blocks[BlockId(0)].term,
            Terminator::Ret(Some(Operand::Const(42)))
        );
        assert_eq!(count_insts(&m.funcs[fid]), 0);
    }

    #[test]
    fn dce_keeps_side_effects() {
        let mut m = Module::new();
        let fid = m.declare_func("f", None);
        let mut b = FuncBuilder::new(&mut m, fid);
        let dead = b.bin(BinOp::Add, Operand::Const(1), Operand::Const(2));
        let _ = dead;
        b.call_ext(
            crate::module::ExtFunc::PrintInt,
            vec![Operand::Const(5)],
            None,
        );
        b.ret(None);
        b.finish();
        let f = &mut m.funcs[fid];
        dce(f);
        assert_eq!(count_insts(&m.funcs[fid]), 1); // only the call
    }

    #[test]
    fn simplify_cfg_folds_constant_branch() {
        let mut m = Module::new();
        let fid = m.declare_func("f", None);
        let mut b = FuncBuilder::new(&mut m, fid);
        let t = b.new_block();
        let e = b.new_block();
        b.br(Operand::Const(1), t, e);
        b.set_block(t);
        b.ret(None);
        b.set_block(e);
        b.ret(None);
        b.finish();
        let f = &mut m.funcs[fid];
        assert!(simplify_cfg(f));
        assert_eq!(m.funcs[fid].blocks.len(), 1); // merged into entry
        assert!(verify(&m).is_ok());
    }

    #[test]
    fn unreachable_removal_fixes_phis() {
        let mut m = Module::new();
        let int = m.types.int();
        let fid = m.declare_func("f", Some(int));
        let mut b = FuncBuilder::new(&mut m, fid);
        let join = b.new_block();
        let dead = b.new_block();
        b.jmp(join);
        b.set_block(dead);
        b.jmp(join);
        b.set_block(join);
        let entry = BlockId(0);
        let p = b.phi(
            int,
            vec![(entry, Operand::Const(1)), (dead, Operand::Const(2))],
        );
        b.ret(Some(p.into()));
        b.finish();
        let f = &mut m.funcs[fid];
        assert!(remove_unreachable_blocks(f));
        let f = &m.funcs[fid];
        let phi = f
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .find_map(|i| match i {
                Inst::Phi { incomings, .. } => Some(incomings.clone()),
                _ => None,
            });
        assert_eq!(phi.unwrap().len(), 1);
        assert!(verify(&m).is_ok(), "{:?}", verify(&m));
    }

    #[test]
    fn cse_merges_duplicate_binops() {
        let mut m = Module::new();
        let int = m.types.int();
        let fid = m.declare_func("f", Some(int));
        let mut b = FuncBuilder::new(&mut m, fid);
        let x = b.param("x", int);
        let a = b.bin(BinOp::Mul, x.into(), x.into());
        let c = b.bin(BinOp::Mul, x.into(), x.into());
        let s = b.bin(BinOp::Add, a.into(), c.into());
        b.ret(Some(s.into()));
        b.finish();
        let f = &mut m.funcs[fid];
        assert!(local_cse(f));
        dce(f);
        assert_eq!(count_insts(&m.funcs[fid]), 2);
        assert!(verify(&m).is_ok());
    }

    #[test]
    fn o2_pipeline_runs_to_fixpoint() {
        let mut m = Module::new();
        let int = m.types.int();
        let fid = m.declare_func("f", Some(int));
        m.main = Some(fid);
        let mut b = FuncBuilder::new(&mut m, fid);
        let a = b.copy(int, Operand::Const(1));
        let c = b.bin(BinOp::Add, a.into(), Operand::Const(1));
        let t = b.new_block();
        let e = b.new_block();
        b.br(c.into(), t, e);
        b.set_block(t);
        b.ret(Some(c.into()));
        b.set_block(e);
        b.ret(Some(Operand::Const(0)));
        b.finish();
        optimize(&mut m, OptLevel::O2);
        assert!(verify(&m).is_ok(), "{:?}", verify(&m));
        // Branch folds to the taken side; everything constant-folds away.
        assert_eq!(m.funcs[fid].blocks.len(), 1);
        assert_eq!(
            m.funcs[fid].blocks[BlockId(0)].term,
            Terminator::Ret(Some(Operand::Const(2)))
        );
    }

    #[test]
    fn undef_times_zero_stays_conservative() {
        // We do NOT fold ops with Undef operands: the dynamic analysis is
        // the judge of undef semantics, the optimizer must not invent
        // values (mirrors LLVM's nondeterminism warning in the paper only
        // through copy chains, never through arithmetic).
        let mut m = Module::new();
        let int = m.types.int();
        let fid = m.declare_func("f", Some(int));
        let mut b = FuncBuilder::new(&mut m, fid);
        let a = b.copy(int, Operand::Undef);
        let c = b.bin(BinOp::Mul, a.into(), Operand::Const(0));
        b.ret(Some(c.into()));
        b.finish();
        optimize(&mut m, OptLevel::O2);
        // The multiply survives (operand is Undef, not a constant we fold).
        assert!(m.funcs[fid]
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .any(|i| matches!(i, Inst::Bin { .. })));
    }

    #[test]
    fn gep_zero_canonicalizes_to_copy() {
        let mut m = Module::new();
        let int = m.types.int();
        let pint = m.types.ptr_to(int);
        let fid = m.declare_func("f", None);
        let mut b = FuncBuilder::new(&mut m, fid);
        let p = b.param("p", pint);
        let g = b.gep_field(p.into(), 0, pint);
        b.store(g.into(), Operand::Const(1));
        b.ret(None);
        b.finish();
        let f = &mut m.funcs[fid];
        assert!(canonicalize_geps(f));
        assert!(m.funcs[fid].blocks[BlockId(0)]
            .insts
            .iter()
            .any(|i| matches!(i, Inst::Copy { .. })));
    }
}
