//! Dominator tree and dominance frontiers (Cooper–Harvey–Kennedy).
//!
//! Used by SSA construction (phi placement), by the semi-strong update rule
//! (an allocation site must dominate the store), and by Opt II's redundant
//! check elimination (a check must dominate the redirected definition).

use crate::cfg::Cfg;
use crate::ids::{BlockId, Idx, IdxVec};
use crate::module::Function;

/// Dominator information for one function.
#[derive(Clone, Debug)]
pub struct DomTree {
    /// Immediate dominator of each reachable block (entry maps to itself);
    /// `None` for unreachable blocks.
    pub idom: IdxVec<BlockId, Option<BlockId>>,
    /// Dominator-tree children.
    pub children: IdxVec<BlockId, Vec<BlockId>>,
    /// Dominance frontier of each block.
    pub frontier: IdxVec<BlockId, Vec<BlockId>>,
    /// Preorder interval [in, out] on the dominator tree for O(1)
    /// `dominates` queries.
    tin: IdxVec<BlockId, u32>,
    tout: IdxVec<BlockId, u32>,
    entry: BlockId,
}

impl DomTree {
    /// Computes dominators and frontiers for `f` given its `cfg`.
    pub fn compute(f: &Function, cfg: &Cfg) -> DomTree {
        let n = f.blocks.len();
        let mut idom: IdxVec<BlockId, Option<BlockId>> = IdxVec::from_elem(None, n);
        idom[f.entry] = Some(f.entry);

        // Cooper-Harvey-Kennedy iteration over RPO.
        let mut changed = true;
        while changed {
            changed = false;
            for &bb in cfg.rpo.iter().skip(1) {
                let mut new_idom: Option<BlockId> = None;
                for &p in &cfg.preds[bb] {
                    if idom[p].is_none() {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, &cfg.rpo_index, cur, p),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom[bb] != Some(ni) {
                        idom[bb] = Some(ni);
                        changed = true;
                    }
                }
            }
        }

        let mut children: IdxVec<BlockId, Vec<BlockId>> = IdxVec::from_elem(Vec::new(), n);
        for &bb in &cfg.rpo {
            if bb != f.entry {
                if let Some(d) = idom[bb] {
                    children[d].push(bb);
                }
            }
        }

        // Dominance frontiers.
        let mut frontier: IdxVec<BlockId, Vec<BlockId>> = IdxVec::from_elem(Vec::new(), n);
        for &bb in &cfg.rpo {
            if cfg.preds[bb].len() >= 2 {
                let target = idom[bb];
                for &p in &cfg.preds[bb] {
                    if idom[p].is_none() {
                        continue;
                    }
                    let mut runner = p;
                    while Some(runner) != target {
                        if !frontier[runner].contains(&bb) {
                            frontier[runner].push(bb);
                        }
                        let up = idom[runner].expect("reachable block has idom");
                        if up == runner {
                            break; // reached entry
                        }
                        runner = up;
                    }
                }
            }
        }

        // Preorder intervals for `dominates`.
        let mut tin = IdxVec::from_elem(0u32, n);
        let mut tout = IdxVec::from_elem(0u32, n);
        let mut clock = 0u32;
        let mut stack = vec![(f.entry, false)];
        while let Some((bb, processed)) = stack.pop() {
            if processed {
                tout[bb] = clock;
                clock += 1;
            } else {
                tin[bb] = clock;
                clock += 1;
                stack.push((bb, true));
                for &c in children[bb].iter().rev() {
                    stack.push((c, false));
                }
            }
        }

        DomTree {
            idom,
            children,
            frontier,
            tin,
            tout,
            entry: f.entry,
        }
    }

    /// Whether block `a` dominates block `b` (reflexive). Unreachable
    /// blocks dominate nothing and are dominated by nothing.
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        if self.idom[a].is_none() || self.idom[b].is_none() {
            return false;
        }
        self.tin[a] <= self.tin[b] && self.tout[b] <= self.tout[a]
    }

    /// The function entry block.
    pub fn entry(&self) -> BlockId {
        self.entry
    }

    /// Iterated dominance frontier of a set of definition blocks — the phi
    /// placement set of minimal SSA.
    pub fn iterated_frontier(&self, defs: &[BlockId]) -> Vec<BlockId> {
        let mut result: Vec<BlockId> = Vec::new();
        let mut in_result = vec![false; self.idom.len()];
        let mut work: Vec<BlockId> = defs.to_vec();
        let mut queued = vec![false; self.idom.len()];
        for &d in defs {
            queued[d.index()] = true;
        }
        while let Some(bb) = work.pop() {
            for &fb in &self.frontier[bb] {
                if !in_result[fb.index()] {
                    in_result[fb.index()] = true;
                    result.push(fb);
                    if !queued[fb.index()] {
                        queued[fb.index()] = true;
                        work.push(fb);
                    }
                }
            }
        }
        result.sort();
        result
    }
}

fn intersect(
    idom: &IdxVec<BlockId, Option<BlockId>>,
    rpo_index: &IdxVec<BlockId, usize>,
    mut a: BlockId,
    mut b: BlockId,
) -> BlockId {
    while a != b {
        while rpo_index[a] > rpo_index[b] {
            a = idom[a].expect("intersect only visits processed blocks");
        }
        while rpo_index[b] > rpo_index[a] {
            b = idom[b].expect("intersect only visits processed blocks");
        }
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::{Operand, Terminator};

    /// Classic diamond with a loop back-edge:
    /// 0 -> {1,2}; 1 -> 3; 2 -> 3; 3 -> {0? no..} build: 3 -> 4; 4 -> ret
    /// and a loop 4 -> 1 optionally.
    fn build(edges: &[(u32, Vec<u32>)], nblocks: u32) -> Function {
        let mut f = Function::new("t", None);
        for _ in 1..nblocks {
            f.new_block();
        }
        for (src, dsts) in edges {
            let bb = BlockId(*src);
            f.blocks[bb].term = match dsts.len() {
                0 => Terminator::Ret(None),
                1 => Terminator::Jmp(BlockId(dsts[0])),
                2 => Terminator::Br {
                    cond: Operand::Const(1),
                    then_bb: BlockId(dsts[0]),
                    else_bb: BlockId(dsts[1]),
                },
                _ => unreachable!(),
            };
        }
        f
    }

    #[test]
    fn diamond_idoms() {
        let f = build(
            &[(0, vec![1, 2]), (1, vec![3]), (2, vec![3]), (3, vec![])],
            4,
        );
        let cfg = Cfg::compute(&f);
        let dt = DomTree::compute(&f, &cfg);
        assert_eq!(dt.idom[BlockId(1)], Some(BlockId(0)));
        assert_eq!(dt.idom[BlockId(2)], Some(BlockId(0)));
        assert_eq!(dt.idom[BlockId(3)], Some(BlockId(0)));
        assert!(dt.dominates(BlockId(0), BlockId(3)));
        assert!(!dt.dominates(BlockId(1), BlockId(3)));
        assert!(dt.dominates(BlockId(3), BlockId(3)));
    }

    #[test]
    fn diamond_frontiers() {
        let f = build(
            &[(0, vec![1, 2]), (1, vec![3]), (2, vec![3]), (3, vec![])],
            4,
        );
        let cfg = Cfg::compute(&f);
        let dt = DomTree::compute(&f, &cfg);
        assert_eq!(dt.frontier[BlockId(1)], vec![BlockId(3)]);
        assert_eq!(dt.frontier[BlockId(2)], vec![BlockId(3)]);
        assert!(dt.frontier[BlockId(0)].is_empty());
    }

    #[test]
    fn loop_frontier_contains_header() {
        // 0 -> 1; 1 -> {2, 3}; 2 -> 1; 3 -> ret. Block 1 is a loop header.
        let f = build(
            &[(0, vec![1]), (1, vec![2, 3]), (2, vec![1]), (3, vec![])],
            4,
        );
        let cfg = Cfg::compute(&f);
        let dt = DomTree::compute(&f, &cfg);
        assert_eq!(dt.idom[BlockId(2)], Some(BlockId(1)));
        assert!(dt.frontier[BlockId(2)].contains(&BlockId(1)));
        assert!(dt.frontier[BlockId(1)].contains(&BlockId(1)));
    }

    #[test]
    fn iterated_frontier_reaches_second_level_joins() {
        // 0 -> {1,2}; 1 -> 3; 2 -> 3; 3 -> {4,5}; 4 -> 6; 5 -> 6; 6 -> ret
        let f = build(
            &[
                (0, vec![1, 2]),
                (1, vec![3]),
                (2, vec![3]),
                (3, vec![4, 5]),
                (4, vec![6]),
                (5, vec![6]),
                (6, vec![]),
            ],
            7,
        );
        let cfg = Cfg::compute(&f);
        let dt = DomTree::compute(&f, &cfg);
        // A def in block 1 needs phis at 3 and (via 3's redefinition) at 6.
        let idf = dt.iterated_frontier(&[BlockId(1)]);
        assert_eq!(idf, vec![BlockId(3)]);
        let idf2 = dt.iterated_frontier(&[BlockId(1), BlockId(4)]);
        assert_eq!(idf2, vec![BlockId(3), BlockId(6)]);
    }

    #[test]
    fn dominates_is_false_for_unreachable() {
        let mut f = build(&[(0, vec![])], 1);
        let dead = f.new_block();
        f.blocks[dead].term = Terminator::Ret(None);
        let cfg = Cfg::compute(&f);
        let dt = DomTree::compute(&f, &cfg);
        assert!(!dt.dominates(BlockId(0), dead));
        assert!(!dt.dominates(dead, BlockId(0)));
    }
}
