//! The IR itself: modules, functions, blocks, instructions.
//!
//! The IR mimics LLVM-IR the way the paper's TinyC does (Section 2.1):
//!
//! * *top-level variables* are virtual registers ([`VarId`]); there is no
//!   address-of operator — addresses only arise from `Alloc` results and
//!   `Global`/`Func` constants;
//! * *address-taken variables* are abstract objects ([`ObjId`]) accessed
//!   only via loads and stores through top-level pointers;
//! * the IR is kept in SSA form for top-level variables: every `VarId` has
//!   exactly one textual definition (the front-end lowers named source
//!   variables through memory; `mem2reg` promotes them and inserts phis).

use crate::ids::{BlockId, FuncId, IdxVec, ObjId, TypeId, VarId};
use crate::types::TypeTable;

/// An operand: constant, register, or address constant.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Operand {
    /// Integer literal. Constants are always defined.
    Const(i64),
    /// A top-level variable (virtual register).
    Var(VarId),
    /// The address of a global object (a defined pointer constant).
    Global(ObjId),
    /// The address of a function (a defined function-pointer constant).
    Func(FuncId),
    /// An undefined value, produced by `mem2reg` when a promoted local is
    /// read before any store reaches it. Evaluates to 0 with the
    /// ground-truth *undefined* bit set; its shadow is `F`.
    Undef,
}

impl Operand {
    /// The variable this operand reads, if it is a register.
    pub fn as_var(self) -> Option<VarId> {
        match self {
            Operand::Var(v) => Some(v),
            _ => None,
        }
    }
}

impl From<VarId> for Operand {
    fn from(v: VarId) -> Self {
        Operand::Var(v)
    }
}

/// Binary operators (comparisons yield 0/1 ints).
#[allow(missing_docs)]
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    And,
    Or,
    Xor,
    Shl,
    Shr,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl BinOp {
    /// Whether the operator is a bitwise operation, for which the bit-level
    /// shadow mode propagates per-bit (Section 4.1 bit-exactness).
    pub fn is_bitwise(self) -> bool {
        matches!(
            self,
            BinOp::And | BinOp::Or | BinOp::Xor | BinOp::Shl | BinOp::Shr
        )
    }

    /// Whether the operator is a comparison producing a boolean int.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }
}

/// Unary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Logical not (`!x`, yields 0/1).
    Not,
    /// Bitwise complement.
    BitNot,
}

/// A `gep`-style address adjustment.
#[allow(missing_docs)]
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum GepOffset {
    /// Constant struct-field offset, in cells. Field-sensitive.
    Field(u32),
    /// Dynamic array index scaled by element size in cells. Collapsed by
    /// the pointer analysis (arrays are treated as a whole).
    Index { index: Operand, elem_cells: u32 },
}

/// The target of a call.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Callee {
    /// Call to a known function.
    Direct(FuncId),
    /// Call through a function pointer.
    Indirect(Operand),
    /// Call to a modelled external function.
    External(ExtFunc),
}

/// Modelled external functions (the analogue of MSan's runtime summaries
/// for libc: their effect on shadow state is known a priori).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ExtFunc {
    /// `print(x)`: writes an int to the trace; does not dereference.
    PrintInt,
    /// `input()`: reads a deterministic, seeded, *defined* int.
    InputInt,
    /// `abort()`: stops execution.
    Abort,
    /// `free(p)`: releases a heap object; later accesses trap.
    Free,
}

/// One IR instruction. `dst` registers are in SSA form; field meanings
/// follow the variant docs.
#[allow(missing_docs)]
#[derive(Clone, Debug, PartialEq)]
pub enum Inst {
    /// `dst := src`.
    Copy { dst: VarId, src: Operand },
    /// `dst := op src`.
    Un { dst: VarId, op: UnOp, src: Operand },
    /// `dst := lhs op rhs`.
    Bin {
        dst: VarId,
        op: BinOp,
        lhs: Operand,
        rhs: Operand,
    },
    /// `dst := alloc obj` — stack or heap allocation site; `dst` points to
    /// a fresh instance of `obj`. `count`, if present, is a runtime element
    /// count for heap arrays. The object's `zero_init` flag says whether
    /// the memory starts defined (`alloc_T`) or undefined (`alloc_F`).
    Alloc {
        dst: VarId,
        obj: ObjId,
        count: Option<Operand>,
    },
    /// `dst := &base[offset]` — address arithmetic.
    Gep {
        dst: VarId,
        base: Operand,
        offset: GepOffset,
    },
    /// `dst := *addr`.
    Load { dst: VarId, addr: Operand },
    /// `*addr := val`.
    Store { addr: Operand, val: Operand },
    /// `dst := callee(args)`.
    Call {
        dst: Option<VarId>,
        callee: Callee,
        args: Vec<Operand>,
    },
    /// SSA phi. Incomings are ordered to match the block's predecessor
    /// list at the time of construction (the CFG is recomputed on demand;
    /// incomings name their predecessor explicitly).
    Phi {
        dst: VarId,
        incomings: Vec<(BlockId, Operand)>,
    },
}

impl Inst {
    /// The register defined by this instruction, if any.
    pub fn dst(&self) -> Option<VarId> {
        match self {
            Inst::Copy { dst, .. }
            | Inst::Un { dst, .. }
            | Inst::Bin { dst, .. }
            | Inst::Alloc { dst, .. }
            | Inst::Gep { dst, .. }
            | Inst::Load { dst, .. }
            | Inst::Phi { dst, .. } => Some(*dst),
            Inst::Call { dst, .. } => *dst,
            Inst::Store { .. } => None,
        }
    }

    /// Invokes `f` on every operand read by this instruction.
    pub fn for_each_use(&self, mut f: impl FnMut(Operand)) {
        match self {
            Inst::Copy { src, .. } | Inst::Un { src, .. } => f(*src),
            Inst::Bin { lhs, rhs, .. } => {
                f(*lhs);
                f(*rhs);
            }
            Inst::Alloc { count, .. } => {
                if let Some(c) = count {
                    f(*c);
                }
            }
            Inst::Gep { base, offset, .. } => {
                f(*base);
                if let GepOffset::Index { index, .. } = offset {
                    f(*index);
                }
            }
            Inst::Load { addr, .. } => f(*addr),
            Inst::Store { addr, val } => {
                f(*addr);
                f(*val);
            }
            Inst::Call { callee, args, .. } => {
                if let Callee::Indirect(t) = callee {
                    f(*t);
                }
                for a in args {
                    f(*a);
                }
            }
            Inst::Phi { incomings, .. } => {
                for (_, op) in incomings {
                    f(*op);
                }
            }
        }
    }

    /// Rewrites every operand read by this instruction through `f`.
    pub fn map_uses(&mut self, mut f: impl FnMut(Operand) -> Operand) {
        match self {
            Inst::Copy { src, .. } | Inst::Un { src, .. } => *src = f(*src),
            Inst::Bin { lhs, rhs, .. } => {
                *lhs = f(*lhs);
                *rhs = f(*rhs);
            }
            Inst::Alloc { count, .. } => {
                if let Some(c) = count {
                    *c = f(*c);
                }
            }
            Inst::Gep { base, offset, .. } => {
                *base = f(*base);
                if let GepOffset::Index { index, .. } = offset {
                    *index = f(*index);
                }
            }
            Inst::Load { addr, .. } => *addr = f(*addr),
            Inst::Store { addr, val } => {
                *addr = f(*addr);
                *val = f(*val);
            }
            Inst::Call { callee, args, .. } => {
                if let Callee::Indirect(t) = callee {
                    *t = f(*t);
                }
                for a in args {
                    *a = f(*a);
                }
            }
            Inst::Phi { incomings, .. } => {
                for (_, op) in incomings {
                    *op = f(*op);
                }
            }
        }
    }
}

/// A block terminator.
#[allow(missing_docs)]
#[derive(Clone, Debug, PartialEq)]
pub enum Terminator {
    /// Unconditional jump.
    Jmp(BlockId),
    /// Conditional branch on a (critical-operation) condition.
    Br {
        cond: Operand,
        then_bb: BlockId,
        else_bb: BlockId,
    },
    /// Function return.
    Ret(Option<Operand>),
    /// Placeholder used transiently by builders; never executed.
    Unreachable,
}

impl Terminator {
    /// Successor blocks.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Terminator::Jmp(b) => vec![*b],
            Terminator::Br {
                then_bb, else_bb, ..
            } => vec![*then_bb, *else_bb],
            Terminator::Ret(_) | Terminator::Unreachable => vec![],
        }
    }

    /// Invokes `f` on every operand read by the terminator.
    pub fn for_each_use(&self, mut f: impl FnMut(Operand)) {
        match self {
            Terminator::Br { cond, .. } => f(*cond),
            Terminator::Ret(Some(op)) => f(*op),
            _ => {}
        }
    }

    /// Rewrites operands through `f`.
    pub fn map_uses(&mut self, mut f: impl FnMut(Operand) -> Operand) {
        match self {
            Terminator::Br { cond, .. } => *cond = f(*cond),
            Terminator::Ret(Some(op)) => *op = f(*op),
            _ => {}
        }
    }

    /// Rewrites successor block ids through `f`.
    pub fn map_targets(&mut self, mut f: impl FnMut(BlockId) -> BlockId) {
        match self {
            Terminator::Jmp(b) => *b = f(*b),
            Terminator::Br {
                then_bb, else_bb, ..
            } => {
                *then_bb = f(*then_bb);
                *else_bb = f(*else_bb);
            }
            _ => {}
        }
    }
}

/// A basic block.
#[derive(Clone, Debug, PartialEq)]
pub struct Block {
    /// Straight-line instructions.
    pub insts: Vec<Inst>,
    /// The terminator.
    pub term: Terminator,
}

impl Block {
    /// An empty block ending in `Unreachable`.
    pub fn new() -> Self {
        Block {
            insts: Vec::new(),
            term: Terminator::Unreachable,
        }
    }
}

impl Default for Block {
    fn default() -> Self {
        Self::new()
    }
}

/// Metadata for a top-level variable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VarData {
    /// Debug name (source name or temp).
    pub name: String,
    /// Static type.
    pub ty: TypeId,
}

/// A function definition.
#[derive(Clone, Debug, PartialEq)]
pub struct Function {
    /// Source-level name.
    pub name: String,
    /// Formal parameters (registers defined at entry).
    pub params: Vec<VarId>,
    /// Return type, if non-void.
    pub ret_ty: Option<TypeId>,
    /// All top-level variables.
    pub vars: IdxVec<VarId, VarData>,
    /// Basic blocks; `entry` is block 0 by convention but kept explicit.
    pub blocks: IdxVec<BlockId, Block>,
    /// Entry block.
    pub entry: BlockId,
}

impl Function {
    /// Creates an empty function with a single unreachable entry block.
    pub fn new(name: impl Into<String>, ret_ty: Option<TypeId>) -> Self {
        let mut blocks = IdxVec::new();
        let entry = blocks.push(Block::new());
        Function {
            name: name.into(),
            params: Vec::new(),
            ret_ty,
            vars: IdxVec::new(),
            blocks,
            entry,
        }
    }

    /// Adds a fresh variable.
    pub fn new_var(&mut self, name: impl Into<String>, ty: TypeId) -> VarId {
        self.vars.push(VarData {
            name: name.into(),
            ty,
        })
    }

    /// Adds a fresh block.
    pub fn new_block(&mut self) -> BlockId {
        self.blocks.push(Block::new())
    }

    /// Total instruction count (excluding terminators).
    pub fn inst_count(&self) -> usize {
        self.blocks.iter().map(|b| b.insts.len()).sum()
    }

    /// Iterates over every instruction site `(block, index)` in block order.
    pub fn sites(&self) -> impl Iterator<Item = (BlockId, usize)> + '_ {
        self.blocks
            .iter_enumerated()
            .flat_map(|(bb, b)| (0..b.insts.len()).map(move |i| (bb, i)))
    }
}

/// Where an abstract object lives.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ObjKind {
    /// A global variable; exists for the whole execution, zero-initialized
    /// (hence *defined*, per C's default-initialization of globals).
    Global,
    /// A stack allocation site inside the given function. Uninitialized.
    Stack(FuncId),
    /// A heap allocation site inside the given function; `zero_init`
    /// distinguishes `calloc` (defined) from `malloc` (undefined).
    Heap(FuncId),
}

/// An abstract memory object — one per allocation site / global.
#[derive(Clone, Debug, PartialEq)]
pub struct ObjectData {
    /// Debug name.
    pub name: String,
    /// Storage class.
    pub kind: ObjKind,
    /// Declared element type of the allocation.
    pub ty: TypeId,
    /// Static cell count of one element of the layout (for dynamic heap
    /// arrays this is the element size; runtime length is `count * size`).
    pub size: u32,
    /// Per-cell field class, `layout.classes` of `ty`.
    pub field_classes: Vec<u32>,
    /// Number of field classes.
    pub num_classes: u32,
    /// Whether all cells under this object collapse to one class (arrays,
    /// or dynamically sized heap blocks).
    pub is_array: bool,
    /// Whether the memory starts *defined* (`alloc_T`): globals, `calloc`.
    pub zero_init: bool,
}

impl ObjectData {
    /// Field class for a cell index, clamping dynamic tails into the last
    /// class (dynamic heap arrays repeat the element layout).
    pub fn class_of_cell(&self, cell: u32) -> u32 {
        if self.is_array || self.field_classes.is_empty() {
            0
        } else {
            self.field_classes[(cell as usize) % self.field_classes.len()]
        }
    }
}

/// A whole program.
#[derive(Clone, Debug, Default)]
pub struct Module {
    /// All functions.
    pub funcs: IdxVec<FuncId, Function>,
    /// Type interner and struct registry.
    pub types: TypeTable,
    /// All abstract objects.
    pub objects: IdxVec<ObjId, ObjectData>,
    /// The subset of `objects` that are globals, in declaration order.
    pub globals: Vec<ObjId>,
    /// The entry function, if resolved.
    pub main: Option<FuncId>,
}

impl Module {
    /// Creates an empty module.
    pub fn new() -> Self {
        Module {
            types: TypeTable::new(),
            ..Default::default()
        }
    }

    /// Finds a function by name.
    pub fn func_by_name(&self, name: &str) -> Option<FuncId> {
        self.funcs
            .iter_enumerated()
            .find(|(_, f)| f.name == name)
            .map(|(i, _)| i)
    }

    /// Registers an object built from `ty`'s layout.
    pub fn add_object(
        &mut self,
        name: impl Into<String>,
        kind: ObjKind,
        ty: TypeId,
        zero_init: bool,
        dynamic: bool,
    ) -> ObjId {
        let layout = self.types.layout(ty);
        let is_array = dynamic
            || layout.num_classes == 1
                && layout.size() > 1
                && layout.classes.iter().all(|&c| c == 0)
                && matches!(self.types.get(ty), crate::types::Type::Array(..));
        let (field_classes, num_classes, is_array) = if dynamic {
            (vec![0; layout.size() as usize], 1, true)
        } else {
            (layout.classes.clone(), layout.num_classes.max(1), is_array)
        };
        self.objects.push(ObjectData {
            name: name.into(),
            kind,
            ty,
            size: layout.size().max(1),
            field_classes,
            num_classes,
            is_array,
            zero_init,
        })
    }

    /// Whether `main` exists and the module is runnable.
    pub fn is_runnable(&self) -> bool {
        self.main.is_some()
    }

    /// Total instruction count across functions.
    pub fn inst_count(&self) -> usize {
        self.funcs.iter().map(|f| f.inst_count()).sum()
    }
}

/// A statement site: one instruction or terminator within the module.
/// `idx == block.insts.len()` addresses the terminator.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Site {
    /// Enclosing function.
    pub func: FuncId,
    /// Enclosing block.
    pub block: BlockId,
    /// Instruction index; `insts.len()` means the terminator.
    pub idx: usize,
}

impl Site {
    /// Builds a site.
    pub fn new(func: FuncId, block: BlockId, idx: usize) -> Self {
        Site { func, block, idx }
    }

    /// Whether this site addresses the block terminator of `f`.
    pub fn is_terminator(&self, f: &Function) -> bool {
        self.idx >= f.blocks[self.block].insts.len()
    }
}

impl std::fmt::Display for Site {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}:{}", self.func, self.block, self.idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inst_dst_and_uses() {
        let mut f = Function::new("t", None);
        let a = f.new_var("a", TypeId(0));
        let b = f.new_var("b", TypeId(0));
        let c = f.new_var("c", TypeId(0));
        let i = Inst::Bin {
            dst: c,
            op: BinOp::Add,
            lhs: a.into(),
            rhs: b.into(),
        };
        assert_eq!(i.dst(), Some(c));
        let mut uses = vec![];
        i.for_each_use(|o| uses.push(o));
        assert_eq!(uses, vec![Operand::Var(a), Operand::Var(b)]);
    }

    #[test]
    fn map_uses_rewrites_all_operands() {
        let mut i = Inst::Store {
            addr: Operand::Var(VarId(0)),
            val: Operand::Var(VarId(1)),
        };
        i.map_uses(|o| match o {
            Operand::Var(v) => Operand::Var(VarId(v.0 + 10)),
            o => o,
        });
        assert_eq!(
            i,
            Inst::Store {
                addr: Operand::Var(VarId(10)),
                val: Operand::Var(VarId(11))
            }
        );
    }

    #[test]
    fn terminator_successors() {
        let t = Terminator::Br {
            cond: Operand::Const(1),
            then_bb: BlockId(1),
            else_bb: BlockId(2),
        };
        assert_eq!(t.successors(), vec![BlockId(1), BlockId(2)]);
        assert!(Terminator::Ret(None).successors().is_empty());
    }

    #[test]
    fn module_object_registration_array_collapses() {
        let mut m = Module::new();
        let int = m.types.int();
        let arr = m.types.intern(crate::types::Type::Array(int, 8));
        let o = m.add_object("buf", ObjKind::Global, arr, true, false);
        assert!(m.objects[o].is_array);
        assert_eq!(m.objects[o].num_classes, 1);
        assert_eq!(m.objects[o].size, 8);
    }

    #[test]
    fn module_object_registration_struct_fields() {
        let mut m = Module::new();
        let int = m.types.int();
        let s = m.types.add_struct(crate::types::StructDef {
            name: "P".into(),
            fields: vec![("x".into(), int), ("y".into(), int)],
        });
        let ty = m.types.intern(crate::types::Type::Struct(s));
        let o = m.add_object("p", ObjKind::Stack(FuncId(0)), ty, false, false);
        assert!(!m.objects[o].is_array);
        assert_eq!(m.objects[o].num_classes, 2);
        assert_eq!(m.objects[o].class_of_cell(0), 0);
        assert_eq!(m.objects[o].class_of_cell(1), 1);
    }

    #[test]
    fn dynamic_heap_object_is_collapsed() {
        let mut m = Module::new();
        let int = m.types.int();
        let o = m.add_object("h", ObjKind::Heap(FuncId(0)), int, false, true);
        assert!(m.objects[o].is_array);
        assert_eq!(m.objects[o].num_classes, 1);
    }
}
