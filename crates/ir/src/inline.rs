//! Function inlining.
//!
//! Reproduces the `I` of the paper's `O0+IM` configuration (Section 4.1):
//! the merged bitcode is "transformed by iteratively inlining the functions
//! with at least one function pointer argument to simplify the call graph
//! (excluding those functions that are directly recursive)". We also
//! inline small *heap-allocation wrappers*: because every inlined copy of
//! an `Alloc` gets a fresh abstract object, this realizes the paper's
//! "1-callsite-sensitive heap cloning applied to allocation wrapper
//! functions" without a context-sensitive object naming scheme.

use std::collections::{HashMap, HashSet};

use crate::ids::{BlockId, FuncId, Idx, VarId};
use crate::module::{Block, Callee, Function, Inst, Module, ObjKind, Operand, Terminator};

/// What to inline.
#[derive(Clone, Copy, Debug)]
pub struct InlinePolicy {
    /// Inline functions that take a function-pointer parameter.
    pub fnptr_params: bool,
    /// Inline small functions that return a pointer produced by a heap
    /// allocation in their own body (allocation wrappers).
    pub alloc_wrappers: bool,
    /// Size cap (in instructions) for inlinees.
    pub max_callee_insts: usize,
    /// Stop when the module grows beyond `initial_insts * max_growth`.
    pub max_growth: usize,
}

impl Default for InlinePolicy {
    fn default() -> Self {
        InlinePolicy {
            fnptr_params: true,
            alloc_wrappers: true,
            max_callee_insts: 60,
            max_growth: 8,
        }
    }
}

/// Statistics from one inlining run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct InlineStats {
    /// Call sites inlined.
    pub sites_inlined: usize,
    /// Heap allocation sites cloned in the process (per-callsite heap
    /// cloning).
    pub heap_clones: usize,
}

/// Which functions the inliner touched or could have touched, cumulative
/// over every fixpoint round. The serve engine's incremental edit path
/// consults this: a function outside `involved` was neither an inline
/// candidate in any round nor had code inlined into it, so its
/// post-inline body is its raw lowered body and a body edit to it cannot
/// change any *other* function's post-inline body.
#[derive(Clone, Debug, Default)]
pub struct InlineTrace {
    /// Union of every round's target set plus every caller that had a
    /// call site inlined into it.
    pub involved: HashSet<FuncId>,
    /// Union of every round's target set only (functions whose bodies
    /// were candidates for being copied into callers).
    pub targets: HashSet<FuncId>,
}

/// Runs the inliner to a bounded fixpoint.
pub fn run_inline(m: &mut Module, policy: InlinePolicy) -> InlineStats {
    run_inline_traced(m, policy).0
}

/// [`run_inline`], additionally reporting which functions participated
/// (see [`InlineTrace`]).
pub fn run_inline_traced(m: &mut Module, policy: InlinePolicy) -> (InlineStats, InlineTrace) {
    let mut stats = InlineStats::default();
    let mut trace = InlineTrace::default();
    let budget = m.inst_count().saturating_mul(policy.max_growth).max(4000);

    for _round in 0..6 {
        let targets = select_targets(m, policy);
        if targets.is_empty() {
            break;
        }
        trace.targets.extend(targets.keys().copied());
        trace.involved.extend(targets.keys().copied());
        let mut any = false;
        for caller in m.funcs.indices().collect::<Vec<_>>() {
            loop {
                if m.inst_count() > budget {
                    return (stats, trace);
                }
                let Some((bb, idx, callee)) = find_inlinable_call(m, caller, &targets) else {
                    break;
                };
                let s = inline_one(m, caller, bb, idx, callee);
                stats.sites_inlined += 1;
                stats.heap_clones += s;
                trace.involved.insert(caller);
                any = true;
            }
        }
        if !any {
            break;
        }
    }
    (stats, trace)
}

/// Whether `fid` satisfies the default policy's target predicate on the
/// current module state (see [`select_targets`]). Evaluated by the serve
/// engine against a freshly relowered body to decide whether the edit
/// could draw the inliner in.
pub fn is_inline_target(m: &Module, fid: FuncId) -> bool {
    target_predicate(m, fid, &m.funcs[fid], InlinePolicy::default())
}

fn select_targets(m: &Module, policy: InlinePolicy) -> HashMap<FuncId, ()> {
    let mut targets = HashMap::new();
    for (fid, f) in m.funcs.iter_enumerated() {
        if target_predicate(m, fid, f, policy) {
            targets.insert(fid, ());
        }
    }
    targets
}

fn target_predicate(m: &Module, fid: FuncId, f: &Function, policy: InlinePolicy) -> bool {
    if Some(fid) == m.main || f.blocks.is_empty() {
        return false;
    }
    if f.inst_count() > policy.max_callee_insts {
        return false;
    }
    if is_directly_recursive(f, fid) {
        return false;
    }
    let has_fnptr_param = f.params.iter().any(|p| {
        matches!(
            m.types.get(f.vars[*p].ty),
            crate::types::Type::FuncPtr { .. }
        )
    });
    let is_wrapper = f.ret_ty.is_some_and(|t| m.types.is_pointer(t))
        && f.blocks.iter().flat_map(|b| &b.insts).any(|i| {
            matches!(i, Inst::Alloc { obj, .. } if matches!(m.objects[*obj].kind, ObjKind::Heap(_)))
        });
    (policy.fnptr_params && has_fnptr_param) || (policy.alloc_wrappers && is_wrapper)
}

fn is_directly_recursive(f: &Function, fid: FuncId) -> bool {
    f.blocks
        .iter()
        .flat_map(|b| &b.insts)
        .any(|i| matches!(i, Inst::Call { callee: Callee::Direct(g), .. } if *g == fid))
}

fn find_inlinable_call(
    m: &Module,
    caller: FuncId,
    targets: &HashMap<FuncId, ()>,
) -> Option<(BlockId, usize, FuncId)> {
    let f = &m.funcs[caller];
    for (bb, block) in f.blocks.iter_enumerated() {
        for (idx, inst) in block.insts.iter().enumerate() {
            if let Inst::Call {
                callee: Callee::Direct(g),
                ..
            } = inst
            {
                if *g != caller && targets.contains_key(g) {
                    return Some((bb, idx, *g));
                }
            }
        }
    }
    None
}

/// Inlines the call at `(bb, idx)` in `caller` to `callee`. Returns the
/// number of heap objects cloned.
fn inline_one(m: &mut Module, caller: FuncId, bb: BlockId, idx: usize, callee: FuncId) -> usize {
    let callee_fn = m.funcs[callee].clone();
    let mut heap_clones = 0;

    // --- Pre-register cloned objects for every Alloc in the callee.
    let mut obj_remap = HashMap::new();
    for block in callee_fn.blocks.iter() {
        for inst in &block.insts {
            if let Inst::Alloc { obj, .. } = inst {
                if !obj_remap.contains_key(obj) {
                    let mut data = m.objects[*obj].clone();
                    data.kind = match data.kind {
                        ObjKind::Stack(_) => ObjKind::Stack(caller),
                        ObjKind::Heap(_) => {
                            heap_clones += 1;
                            ObjKind::Heap(caller)
                        }
                        k => k,
                    };
                    data.name = format!("{}.in.{}", data.name, m.funcs[caller].name);
                    let new_obj = m.objects.push(data);
                    obj_remap.insert(*obj, new_obj);
                }
            }
        }
    }

    let f = &mut m.funcs[caller];

    // --- Extract the call.
    let call_inst = f.blocks[bb].insts[idx].clone();
    let Inst::Call {
        dst: call_dst,
        args,
        ..
    } = call_inst
    else {
        panic!("inline_one pointed at a non-call instruction");
    };

    // --- Clone callee vars into caller.
    let var_off = f.vars.len();
    for vd in callee_fn.vars.iter() {
        f.vars.push(vd.clone());
    }
    let remap_var = |v: VarId| VarId((v.index() + var_off) as u32);
    let remap_op = |o: Operand| match o {
        Operand::Var(v) => Operand::Var(remap_var(v)),
        o => o,
    };

    // --- Clone callee blocks into caller.
    let block_off = f.blocks.len();
    let remap_block = |b: BlockId| BlockId((b.index() + block_off) as u32);
    // Continuation block takes the tail of `bb`.
    let cont = BlockId((block_off + callee_fn.blocks.len()) as u32);

    let mut ret_incomings: Vec<(BlockId, Operand)> = Vec::new();
    for (cbid, cblock) in callee_fn.blocks.iter_enumerated() {
        let mut nb = Block::new();
        for inst in &cblock.insts {
            let mut ni = inst.clone();
            // Remap dst, uses, objects and phi blocks.
            match &mut ni {
                Inst::Copy { dst, .. }
                | Inst::Un { dst, .. }
                | Inst::Bin { dst, .. }
                | Inst::Gep { dst, .. }
                | Inst::Load { dst, .. } => *dst = remap_var(*dst),
                Inst::Alloc { dst, obj, .. } => {
                    *dst = remap_var(*dst);
                    *obj = obj_remap[obj];
                }
                Inst::Call { dst, .. } => {
                    if let Some(d) = dst {
                        *d = remap_var(*d);
                    }
                }
                Inst::Phi { dst, incomings } => {
                    *dst = remap_var(*dst);
                    for (pb, _) in incomings.iter_mut() {
                        *pb = remap_block(*pb);
                    }
                }
                Inst::Store { .. } => {}
            }
            ni.map_uses(remap_op);
            nb.insts.push(ni);
        }
        let mut term = cblock.term.clone();
        term.map_uses(remap_op);
        term.map_targets(remap_block);
        if let Terminator::Ret(val) = &term {
            // `term` has already been remapped; use the value as-is.
            ret_incomings.push((remap_block(cbid), val.unwrap_or(Operand::Const(0))));
            term = Terminator::Jmp(cont);
        }
        nb.term = term;
        f.blocks.push(nb);
    }

    // --- Build the continuation block from the tail of `bb`.
    let tail_insts: Vec<Inst> = f.blocks[bb].insts.split_off(idx + 1);
    f.blocks[bb].insts.pop(); // remove the call itself
    let orig_term = std::mem::replace(&mut f.blocks[bb].term, Terminator::Unreachable);

    let mut cont_block = Block::new();
    if let Some(dst) = call_dst {
        match ret_incomings.len() {
            0 => {
                // Callee never returns normally; the continuation is
                // unreachable but the dst must still be defined.
                cont_block.insts.push(Inst::Copy {
                    dst,
                    src: Operand::Undef,
                });
            }
            1 => cont_block.insts.push(Inst::Copy {
                dst,
                src: ret_incomings[0].1,
            }),
            _ => cont_block.insts.push(Inst::Phi {
                dst,
                incomings: ret_incomings.clone(),
            }),
        }
    }
    cont_block.insts.extend(tail_insts);
    cont_block.term = orig_term;
    let cont_actual = f.blocks.push(cont_block);
    debug_assert_eq!(cont_actual, cont);

    // --- Patch successor phis: edges that used to come from `bb` now come
    // from `cont`.
    let succs = f.blocks[cont].term.successors();
    for s in succs {
        for inst in f.blocks[s].insts.iter_mut() {
            if let Inst::Phi { incomings, .. } = inst {
                for (pb, _) in incomings.iter_mut() {
                    if *pb == bb {
                        *pb = cont;
                    }
                }
            } else {
                break;
            }
        }
    }

    // --- Bind arguments and jump into the cloned entry.
    for (p, a) in callee_fn.params.iter().zip(args.iter()) {
        f.blocks[bb].insts.push(Inst::Copy {
            dst: remap_var(*p),
            src: *a,
        });
    }
    f.blocks[bb].term = Terminator::Jmp(remap_block(callee_fn.entry));

    heap_clones
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FuncBuilder;
    use crate::module::{BinOp, ExtFunc};
    use crate::types::Type;
    use crate::verify::verify;

    /// Builds: wrapper() -> int* { return malloc-like alloc; }
    /// main() { p = wrapper(); q = wrapper(); *p = 1; *q = 2; }
    fn wrapper_module() -> (Module, FuncId, FuncId) {
        let mut m = Module::new();
        let int = m.types.int();
        let pint = m.types.ptr_to(int);
        let wid = m.declare_func("wrapper", Some(pint));
        let mid = m.declare_func("main", None);
        {
            let mut b = FuncBuilder::new(&mut m, wid);
            let (p, _) = b.alloc("h", ObjKind::Heap(wid), int, false, None);
            b.ret(Some(p.into()));
            b.finish();
        }
        {
            let mut b = FuncBuilder::new(&mut m, mid);
            let p = b.call(Callee::Direct(wid), vec![], Some(pint)).unwrap();
            let q = b.call(Callee::Direct(wid), vec![], Some(pint)).unwrap();
            b.store(p.into(), Operand::Const(1));
            b.store(q.into(), Operand::Const(2));
            b.ret(None);
            b.finish();
        }
        m.main = Some(mid);
        (m, wid, mid)
    }

    #[test]
    fn inlines_alloc_wrapper_and_clones_heap_objects() {
        let (mut m, _wid, mid) = wrapper_module();
        let objs_before = m.objects.len();
        let stats = run_inline(&mut m, InlinePolicy::default());
        assert_eq!(stats.sites_inlined, 2);
        assert_eq!(stats.heap_clones, 2);
        assert_eq!(m.objects.len(), objs_before + 2);
        assert!(verify(&m).is_ok(), "{:?}", verify(&m));
        // main no longer calls wrapper.
        let f = &m.funcs[mid];
        assert!(!f.blocks.iter().flat_map(|b| &b.insts).any(|i| matches!(
            i,
            Inst::Call {
                callee: Callee::Direct(_),
                ..
            }
        )));
        // Two distinct Alloc sites now exist in main.
        let allocs: Vec<_> = f
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .filter_map(|i| match i {
                Inst::Alloc { obj, .. } => Some(*obj),
                _ => None,
            })
            .collect();
        assert_eq!(allocs.len(), 2);
        assert_ne!(allocs[0], allocs[1]);
    }

    #[test]
    fn inlines_fnptr_param_function() {
        let mut m = Module::new();
        let int = m.types.int();
        let fp = m.types.intern(Type::FuncPtr {
            params: 1,
            has_ret: true,
        });
        let callee = m.declare_func("apply", Some(int));
        let target = m.declare_func("double_it", Some(int));
        let mid = m.declare_func("main", None);
        {
            let mut b = FuncBuilder::new(&mut m, target);
            let x = b.param("x", int);
            let r = b.bin(BinOp::Mul, x.into(), Operand::Const(2));
            b.ret(Some(r.into()));
            b.finish();
        }
        {
            let mut b = FuncBuilder::new(&mut m, callee);
            let g = b.param("g", fp);
            let x = b.param("x", int);
            let r = b
                .call(Callee::Indirect(g.into()), vec![x.into()], Some(int))
                .unwrap();
            b.ret(Some(r.into()));
            b.finish();
        }
        {
            let mut b = FuncBuilder::new(&mut m, mid);
            let r = b
                .call(
                    Callee::Direct(callee),
                    vec![Operand::Func(target), Operand::Const(21)],
                    Some(int),
                )
                .unwrap();
            b.call_ext(ExtFunc::PrintInt, vec![r.into()], None);
            b.ret(None);
            b.finish();
        }
        m.main = Some(mid);
        let stats = run_inline(&mut m, InlinePolicy::default());
        assert_eq!(stats.sites_inlined, 1);
        assert!(verify(&m).is_ok(), "{:?}", verify(&m));
        // The indirect call is now in main, with the fnptr as a local copy.
        assert!(m.funcs[mid]
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .any(|i| matches!(
                i,
                Inst::Call {
                    callee: Callee::Indirect(_),
                    ..
                }
            )));
    }

    #[test]
    fn multi_return_callee_gets_phi() {
        let mut m = Module::new();
        let int = m.types.int();
        let pint = m.types.ptr_to(int);
        let wid = m.declare_func("pick", Some(pint));
        let mid = m.declare_func("main", None);
        {
            let mut b = FuncBuilder::new(&mut m, wid);
            let c = b.param("c", int);
            let t = b.new_block();
            let e = b.new_block();
            b.br(c.into(), t, e);
            b.set_block(t);
            let (p1, _) = b.alloc("h1", ObjKind::Heap(wid), int, false, None);
            b.ret(Some(p1.into()));
            b.set_block(e);
            let (p2, _) = b.alloc("h2", ObjKind::Heap(wid), int, true, None);
            b.ret(Some(p2.into()));
            b.finish();
        }
        {
            let mut b = FuncBuilder::new(&mut m, mid);
            let p = b
                .call(Callee::Direct(wid), vec![Operand::Const(1)], Some(pint))
                .unwrap();
            b.store(p.into(), Operand::Const(3));
            b.ret(None);
            b.finish();
        }
        m.main = Some(mid);
        let stats = run_inline(&mut m, InlinePolicy::default());
        assert_eq!(stats.sites_inlined, 1);
        assert!(verify(&m).is_ok(), "{:?}", verify(&m));
        assert!(m.funcs[mid]
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .any(|i| matches!(i, Inst::Phi { .. })));
    }

    #[test]
    fn recursive_functions_are_not_inlined() {
        let mut m = Module::new();
        let int = m.types.int();
        let pint = m.types.ptr_to(int);
        let rid = m.declare_func("rec", Some(pint));
        let mid = m.declare_func("main", None);
        {
            let mut b = FuncBuilder::new(&mut m, rid);
            let n = b.param("n", int);
            let t = b.new_block();
            let e = b.new_block();
            b.br(n.into(), t, e);
            b.set_block(t);
            let n1 = b.bin(BinOp::Sub, n.into(), Operand::Const(1));
            let r = b
                .call(Callee::Direct(rid), vec![n1.into()], Some(pint))
                .unwrap();
            b.ret(Some(r.into()));
            b.set_block(e);
            let (p, _) = b.alloc("h", ObjKind::Heap(rid), int, false, None);
            b.ret(Some(p.into()));
            b.finish();
        }
        {
            let mut b = FuncBuilder::new(&mut m, mid);
            let p = b
                .call(Callee::Direct(rid), vec![Operand::Const(3)], Some(pint))
                .unwrap();
            b.store(p.into(), Operand::Const(1));
            b.ret(None);
            b.finish();
        }
        m.main = Some(mid);
        let stats = run_inline(&mut m, InlinePolicy::default());
        assert_eq!(stats.sites_inlined, 0);
    }

    #[test]
    fn call_mid_block_preserves_tail_instructions() {
        let (mut m, _wid, mid) = wrapper_module();
        run_inline(&mut m, InlinePolicy::default());
        // The stores after the calls survive.
        let stores = m.funcs[mid]
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .filter(|i| matches!(i, Inst::Store { .. }))
            .count();
        assert_eq!(stores, 2);
    }
}
