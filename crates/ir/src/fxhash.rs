//! A fast, non-cryptographic hasher for the analysis hot paths.
//!
//! The solver and resolver intern millions of small keys (node tags,
//! `(ctx, site)` pairs); the default SipHash spends more time hashing
//! than the table operations themselves. This is the classic
//! multiply-rotate word hash (as popularized by the Firefox/rustc
//! "fx" hash): one rotate, one xor and one multiply per input word.
//! Not DoS-resistant — use only on keys the analysis itself created.
//!
//! Hash values must never leak into output ordering: any map/set using
//! this hasher must be drained through an explicit sort (or into an
//! order-insensitive structure) before its contents become observable.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplier from the fx word hash (a 64-bit odd constant derived from
/// the golden ratio).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The hasher state: one word folded per input word.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_word(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_word(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_word(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_word(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_word(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_word(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_word(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_word(n as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with the fx hash.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with the fx hash.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_keys_hash_distinctly_enough() {
        let mut seen = FxHashSet::default();
        for i in 0..10_000u64 {
            seen.insert(i.wrapping_mul(0x9e37_79b9));
        }
        assert_eq!(seen.len(), 10_000);
    }

    #[test]
    fn map_roundtrips() {
        let mut m: FxHashMap<(u32, u32), u32> = FxHashMap::default();
        for i in 0..1000 {
            m.insert((i, i * 2), i);
        }
        for i in 0..1000 {
            assert_eq!(m.get(&(i, i * 2)), Some(&i));
        }
    }

    #[test]
    fn partial_byte_writes_differ() {
        use std::hash::Hasher as _;
        let mut a = FxHasher::default();
        a.write(b"abc");
        let mut b = FxHasher::default();
        b.write(b"abd");
        assert_ne!(a.finish(), b.finish());
    }
}
