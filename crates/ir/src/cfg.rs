//! Control-flow graph utilities: predecessors, reverse postorder.

use crate::ids::{BlockId, Idx, IdxVec};
use crate::module::Function;

/// Per-function CFG info, recomputed on demand after transformations.
#[derive(Clone, Debug)]
pub struct Cfg {
    /// Predecessor lists (duplicates kept for two-way branches to the same
    /// target so that phi incoming counts stay consistent).
    pub preds: IdxVec<BlockId, Vec<BlockId>>,
    /// Successor lists.
    pub succs: IdxVec<BlockId, Vec<BlockId>>,
    /// Reverse postorder over reachable blocks, starting at entry.
    pub rpo: Vec<BlockId>,
    /// Position of each block in `rpo`; `usize::MAX` if unreachable.
    pub rpo_index: IdxVec<BlockId, usize>,
}

impl Cfg {
    /// Computes the CFG of `f`.
    pub fn compute(f: &Function) -> Cfg {
        let n = f.blocks.len();
        let mut preds: IdxVec<BlockId, Vec<BlockId>> = IdxVec::from_elem(Vec::new(), n);
        let mut succs: IdxVec<BlockId, Vec<BlockId>> = IdxVec::from_elem(Vec::new(), n);
        for (bb, block) in f.blocks.iter_enumerated() {
            let ss = block.term.successors();
            for s in &ss {
                preds[*s].push(bb);
            }
            succs[bb] = ss;
        }
        // Iterative postorder DFS from entry.
        let mut post = Vec::with_capacity(n);
        let mut visited = vec![false; n];
        let mut stack: Vec<(BlockId, usize)> = vec![(f.entry, 0)];
        visited[f.entry.index()] = true;
        while let Some(&mut (bb, ref mut i)) = stack.last_mut() {
            if *i < succs[bb].len() {
                let nxt = succs[bb][*i];
                *i += 1;
                if !visited[nxt.index()] {
                    visited[nxt.index()] = true;
                    stack.push((nxt, 0));
                }
            } else {
                post.push(bb);
                stack.pop();
            }
        }
        let rpo: Vec<BlockId> = post.into_iter().rev().collect();
        let mut rpo_index = IdxVec::from_elem(usize::MAX, n);
        for (i, bb) in rpo.iter().enumerate() {
            rpo_index[*bb] = i;
        }
        Cfg {
            preds,
            succs,
            rpo,
            rpo_index,
        }
    }

    /// Whether `bb` is reachable from entry.
    pub fn is_reachable(&self, bb: BlockId) -> bool {
        self.rpo_index[bb] != usize::MAX
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::{Operand, Terminator};

    /// entry -> {a, b}; a -> join; b -> join; join -> ret; plus one
    /// unreachable block.
    fn diamond() -> Function {
        let mut f = Function::new("d", None);
        let entry = f.entry;
        let a = f.new_block();
        let b = f.new_block();
        let join = f.new_block();
        let dead = f.new_block();
        f.blocks[entry].term = Terminator::Br {
            cond: Operand::Const(1),
            then_bb: a,
            else_bb: b,
        };
        f.blocks[a].term = Terminator::Jmp(join);
        f.blocks[b].term = Terminator::Jmp(join);
        f.blocks[join].term = Terminator::Ret(None);
        f.blocks[dead].term = Terminator::Jmp(join);
        f
    }

    #[test]
    fn preds_and_succs() {
        let f = diamond();
        let cfg = Cfg::compute(&f);
        assert_eq!(cfg.succs[BlockId(0)], vec![BlockId(1), BlockId(2)]);
        let mut join_preds = cfg.preds[BlockId(3)].clone();
        join_preds.sort();
        // The dead block also lists itself as a predecessor edge source.
        assert_eq!(join_preds, vec![BlockId(1), BlockId(2), BlockId(4)]);
    }

    #[test]
    fn rpo_starts_at_entry_and_skips_unreachable() {
        let f = diamond();
        let cfg = Cfg::compute(&f);
        assert_eq!(cfg.rpo[0], BlockId(0));
        assert_eq!(cfg.rpo.len(), 4);
        assert!(!cfg.is_reachable(BlockId(4)));
        assert!(cfg.is_reachable(BlockId(3)));
    }

    #[test]
    fn rpo_orders_before_successors_in_acyclic_graph() {
        let f = diamond();
        let cfg = Cfg::compute(&f);
        assert!(cfg.rpo_index[BlockId(0)] < cfg.rpo_index[BlockId(1)]);
        assert!(cfg.rpo_index[BlockId(1)] < cfg.rpo_index[BlockId(3)]);
        assert!(cfg.rpo_index[BlockId(2)] < cfg.rpo_index[BlockId(3)]);
    }
}
