//! The TinyC/IR type system and flattened memory layouts.
//!
//! Scalar values occupy one *cell* each. Aggregates (structs, arrays) are
//! flattened into consecutive cells. Field-sensitivity in the pointer
//! analysis is *offset-based* and arrays are treated as a whole, exactly as
//! in the paper (Section 4.1): every cell of an object is assigned a *field
//! class*, struct fields get distinct classes, and all cells covered by an
//! array collapse into the single class of the array's first cell.

use crate::ids::{IdxVec, StructId, TypeId};

/// A type in the IR. Interned in a [`TypeTable`]; compare by `TypeId`.
#[allow(missing_docs)]
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Type {
    /// 64-bit signed integer, the sole arithmetic type (as in TinyC).
    Int,
    /// Pointer to a value of the element type.
    Ptr(TypeId),
    /// A named struct; its fields live in the [`TypeTable`].
    Struct(StructId),
    /// Fixed-size array.
    Array(TypeId, u32),
    /// Pointer-to-function with `n` parameters; all params and the optional
    /// return are scalars in TinyC, so arity is all we need.
    FuncPtr { params: u32, has_ret: bool },
}

/// A struct definition: named, ordered fields.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StructDef {
    /// Source-level name.
    pub name: String,
    /// Ordered `(field name, field type)` pairs.
    pub fields: Vec<(String, TypeId)>,
}

/// What kind of scalar a flattened cell holds (used by the interpreter to
/// produce sensible traps and by the verifier).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CellKind {
    /// Integer cell.
    Int,
    /// Data-pointer cell.
    Ptr,
    /// Function-pointer cell.
    FuncPtr,
}

/// Flattened layout of a type: per-cell kinds and field classes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Layout {
    /// One entry per cell.
    pub cells: Vec<CellKind>,
    /// Field class of each cell: distinct classes for distinct struct
    /// fields, one shared class for all cells under any array.
    pub classes: Vec<u32>,
    /// Number of distinct classes (`classes` values are `0..num_classes`).
    pub num_classes: u32,
}

impl Layout {
    /// Total number of scalar cells.
    pub fn size(&self) -> u32 {
        self.cells.len() as u32
    }
}

/// Interner for types and registry of struct definitions.
#[derive(Clone, Debug, Default)]
pub struct TypeTable {
    types: IdxVec<TypeId, Type>,
    structs: IdxVec<StructId, StructDef>,
    /// Memoized common ids.
    int_ty: Option<TypeId>,
}

impl TypeTable {
    /// Creates an empty table with `Int` pre-interned.
    pub fn new() -> Self {
        let mut t = TypeTable::default();
        t.int_ty = Some(t.intern(Type::Int));
        t
    }

    /// Interns `ty`, returning a stable id.
    pub fn intern(&mut self, ty: Type) -> TypeId {
        if let Some((id, _)) = self.types.iter_enumerated().find(|(_, t)| **t == ty) {
            return id;
        }
        self.types.push(ty)
    }

    /// The `Int` type id.
    pub fn int(&self) -> TypeId {
        self.int_ty.expect("TypeTable::new pre-interns Int")
    }

    /// Interns `Ptr(elem)`.
    pub fn ptr_to(&mut self, elem: TypeId) -> TypeId {
        self.intern(Type::Ptr(elem))
    }

    /// Looks up a type by id.
    pub fn get(&self, id: TypeId) -> &Type {
        &self.types[id]
    }

    /// Registers a struct definition and returns its id.
    ///
    /// The caller is responsible for not registering two structs with the
    /// same name (the frontend's scope checking enforces this).
    pub fn add_struct(&mut self, def: StructDef) -> StructId {
        self.structs.push(def)
    }

    /// Looks up a struct definition.
    pub fn struct_def(&self, id: StructId) -> &StructDef {
        &self.structs[id]
    }

    /// Replaces the fields of `id` (used for forward-declared structs whose
    /// bodies are filled in a second pass).
    pub fn set_struct_fields(&mut self, id: StructId, fields: Vec<(String, TypeId)>) {
        self.structs[id].fields = fields;
    }

    /// Number of interned types. The incremental relowering path
    /// snapshots this to detect when an edit would have interned a new
    /// type (which invalidates retained type-indexed state).
    pub fn len(&self) -> usize {
        self.types.len()
    }

    /// Whether no types are interned (never true after `new`).
    pub fn is_empty(&self) -> bool {
        self.types.is_empty()
    }

    /// Number of registered structs.
    pub fn num_structs(&self) -> usize {
        self.structs.len()
    }

    /// Finds a struct by name.
    pub fn struct_by_name(&self, name: &str) -> Option<StructId> {
        self.structs
            .iter_enumerated()
            .find(|(_, d)| d.name == name)
            .map(|(i, _)| i)
    }

    /// Whether `id` is a pointer (data or function) type.
    pub fn is_pointer(&self, id: TypeId) -> bool {
        matches!(self.get(id), Type::Ptr(_) | Type::FuncPtr { .. })
    }

    /// Element type of a pointer/array type, if any.
    pub fn pointee(&self, id: TypeId) -> Option<TypeId> {
        match self.get(id) {
            Type::Ptr(e) | Type::Array(e, _) => Some(*e),
            _ => None,
        }
    }

    /// Number of scalar cells occupied by a value of type `id`.
    pub fn size_in_cells(&self, id: TypeId) -> u32 {
        match self.get(id) {
            Type::Int | Type::Ptr(_) | Type::FuncPtr { .. } => 1,
            Type::Struct(s) => {
                let def = self.structs[*s].clone();
                def.fields.iter().map(|(_, t)| self.size_in_cells(*t)).sum()
            }
            Type::Array(e, n) => self.size_in_cells(*e) * n,
        }
    }

    /// Cell offset of field `idx` within struct type `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a struct type or `idx` is out of range.
    pub fn field_offset(&self, id: TypeId, idx: usize) -> u32 {
        let Type::Struct(s) = self.get(id) else {
            panic!("field_offset on non-struct type {id:?}");
        };
        let def = self.structs[*s].clone();
        def.fields[..idx]
            .iter()
            .map(|(_, t)| self.size_in_cells(*t))
            .sum()
    }

    /// Computes the flattened [`Layout`] of `id`.
    pub fn layout(&self, id: TypeId) -> Layout {
        let mut l = Layout {
            cells: Vec::new(),
            classes: Vec::new(),
            num_classes: 0,
        };
        self.flatten(id, &mut l, false);
        l
    }

    fn flatten(&self, id: TypeId, l: &mut Layout, in_array: bool) {
        match self.get(id) {
            Type::Int => self.push_cell(CellKind::Int, l, in_array),
            Type::Ptr(_) => self.push_cell(CellKind::Ptr, l, in_array),
            Type::FuncPtr { .. } => self.push_cell(CellKind::FuncPtr, l, in_array),
            Type::Struct(s) => {
                let def = self.structs[*s].clone();
                for (_, fty) in &def.fields {
                    self.flatten(*fty, l, in_array);
                }
            }
            Type::Array(e, n) => {
                // All cells under an array share one class: allocate the
                // class at the array boundary, then flatten elements inside
                // the `in_array` regime.
                let (e, n) = (*e, *n);
                let entered_here = !in_array;
                if entered_here {
                    l.num_classes += 1;
                }
                for _ in 0..n {
                    self.flatten(e, l, true);
                }
            }
        }
    }

    fn push_cell(&self, kind: CellKind, l: &mut Layout, in_array: bool) {
        if in_array {
            // Reuse the class opened at the enclosing array boundary.
            l.cells.push(kind);
            l.classes.push(l.num_classes - 1);
        } else {
            l.cells.push(kind);
            l.classes.push(l.num_classes);
            l.num_classes += 1;
        }
    }

    /// Human-readable rendering of a type.
    pub fn display(&self, id: TypeId) -> String {
        match self.get(id) {
            Type::Int => "int".to_string(),
            Type::Ptr(e) => format!("{}*", self.display(*e)),
            Type::Struct(s) => format!("struct {}", self.structs[*s].name),
            Type::Array(e, n) => format!("{}[{}]", self.display(*e), n),
            Type::FuncPtr { params, has_ret } => {
                format!("fn({}){}", params, if *has_ret { " -> int" } else { "" })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table_with_point() -> (TypeTable, TypeId) {
        let mut t = TypeTable::new();
        let int = t.int();
        let s = t.add_struct(StructDef {
            name: "Point".into(),
            fields: vec![("x".into(), int), ("y".into(), int)],
        });
        let ty = t.intern(Type::Struct(s));
        (t, ty)
    }

    #[test]
    fn interning_deduplicates() {
        let mut t = TypeTable::new();
        let a = t.intern(Type::Int);
        let b = t.intern(Type::Int);
        assert_eq!(a, b);
        let p1 = t.ptr_to(a);
        let p2 = t.ptr_to(b);
        assert_eq!(p1, p2);
        assert_ne!(a, p1);
    }

    #[test]
    fn struct_layout_gives_distinct_classes() {
        let (t, ty) = table_with_point();
        let l = t.layout(ty);
        assert_eq!(l.cells, vec![CellKind::Int, CellKind::Int]);
        assert_eq!(l.classes, vec![0, 1]);
        assert_eq!(l.num_classes, 2);
    }

    #[test]
    fn array_layout_collapses_to_one_class() {
        let mut t = TypeTable::new();
        let int = t.int();
        let arr = t.intern(Type::Array(int, 4));
        let l = t.layout(arr);
        assert_eq!(l.size(), 4);
        assert_eq!(l.classes, vec![0, 0, 0, 0]);
        assert_eq!(l.num_classes, 1);
    }

    #[test]
    fn array_of_structs_collapses_fields_too() {
        let (mut t, point) = table_with_point();
        let arr = t.intern(Type::Array(point, 3));
        let l = t.layout(arr);
        assert_eq!(l.size(), 6);
        assert!(l.classes.iter().all(|&c| c == 0));
        assert_eq!(l.num_classes, 1);
    }

    #[test]
    fn struct_with_array_field_mixes_classes() {
        let mut t = TypeTable::new();
        let int = t.int();
        let arr = t.intern(Type::Array(int, 2));
        let s = t.add_struct(StructDef {
            name: "Buf".into(),
            fields: vec![
                ("len".into(), int),
                ("data".into(), arr),
                ("cap".into(), int),
            ],
        });
        let ty = t.intern(Type::Struct(s));
        let l = t.layout(ty);
        // len | data[0] data[1] | cap
        assert_eq!(l.classes, vec![0, 1, 1, 2]);
        assert_eq!(l.num_classes, 3);
    }

    #[test]
    fn field_offsets_respect_nested_sizes() {
        let (mut t, point) = table_with_point();
        let int = t.int();
        let s = t.add_struct(StructDef {
            name: "Seg".into(),
            fields: vec![
                ("a".into(), point),
                ("b".into(), point),
                ("tag".into(), int),
            ],
        });
        let ty = t.intern(Type::Struct(s));
        assert_eq!(t.field_offset(ty, 0), 0);
        assert_eq!(t.field_offset(ty, 1), 2);
        assert_eq!(t.field_offset(ty, 2), 4);
        assert_eq!(t.size_in_cells(ty), 5);
    }

    #[test]
    fn pointer_cells_are_pointers() {
        let mut t = TypeTable::new();
        let int = t.int();
        let p = t.ptr_to(int);
        let l = t.layout(p);
        assert_eq!(l.cells, vec![CellKind::Ptr]);
    }
}
