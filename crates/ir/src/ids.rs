//! Index newtypes and a typed index vector.
//!
//! Every entity in the IR (function, block, variable, object, ...) is
//! addressed by a small `u32` newtype. [`IdxVec`] is a thin wrapper over
//! `Vec` indexed by such a newtype, which keeps cross-entity indexing
//! mistakes out of the compiler-style code in the rest of the workspace.

use std::fmt;
use std::marker::PhantomData;

/// A typed index: a `u32` wrapper convertible to and from `usize`.
pub trait Idx: Copy + Eq + std::hash::Hash + fmt::Debug + 'static {
    /// Builds the index from a raw `usize`.
    fn from_usize(i: usize) -> Self;
    /// Returns the raw `usize` value of the index.
    fn index(self) -> usize;
}

/// Declares one or more `u32` index newtypes implementing [`Idx`].
#[macro_export]
macro_rules! new_id {
    ($(#[$meta:meta])* $vis:vis struct $name:ident = $prefix:literal; $($rest:tt)*) => {
        $(#[$meta])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        $vis struct $name(pub u32);

        impl $crate::ids::Idx for $name {
            #[inline]
            fn from_usize(i: usize) -> Self {
                debug_assert!(i <= u32::MAX as usize);
                $name(i as u32)
            }
            #[inline]
            fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl ::std::fmt::Debug for $name {
            fn fmt(&self, f: &mut ::std::fmt::Formatter<'_>) -> ::std::fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl ::std::fmt::Display for $name {
            fn fmt(&self, f: &mut ::std::fmt::Formatter<'_>) -> ::std::fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        $crate::new_id!($($rest)*);
    };
    () => {};
}

/// A `Vec` indexed by an [`Idx`] newtype.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct IdxVec<I: Idx, T> {
    raw: Vec<T>,
    _marker: PhantomData<fn(I)>,
}

impl<I: Idx, T> IdxVec<I, T> {
    /// Creates an empty vector.
    pub fn new() -> Self {
        IdxVec {
            raw: Vec::new(),
            _marker: PhantomData,
        }
    }

    /// Creates a vector with `n` copies of `value`.
    pub fn from_elem(value: T, n: usize) -> Self
    where
        T: Clone,
    {
        IdxVec {
            raw: vec![value; n],
            _marker: PhantomData,
        }
    }

    /// Wraps an existing `Vec`.
    pub fn from_raw(raw: Vec<T>) -> Self {
        IdxVec {
            raw,
            _marker: PhantomData,
        }
    }

    /// Appends `value` and returns its index.
    pub fn push(&mut self, value: T) -> I {
        let id = I::from_usize(self.raw.len());
        self.raw.push(value);
        id
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.raw.len()
    }

    /// Whether the vector is empty.
    pub fn is_empty(&self) -> bool {
        self.raw.is_empty()
    }

    /// The index the next `push` would return.
    pub fn next_id(&self) -> I {
        I::from_usize(self.raw.len())
    }

    /// Iterates over `(index, &element)` pairs.
    pub fn iter_enumerated(&self) -> impl Iterator<Item = (I, &T)> {
        self.raw
            .iter()
            .enumerate()
            .map(|(i, t)| (I::from_usize(i), t))
    }

    /// Iterates over all valid indices.
    pub fn indices(&self) -> impl Iterator<Item = I> + 'static {
        (0..self.raw.len()).map(I::from_usize)
    }

    /// Iterates over elements.
    pub fn iter(&self) -> std::slice::Iter<'_, T> {
        self.raw.iter()
    }

    /// Iterates over elements mutably.
    pub fn iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
        self.raw.iter_mut()
    }

    /// Borrow by index, if in bounds.
    pub fn get(&self, id: I) -> Option<&T> {
        self.raw.get(id.index())
    }

    /// Borrow mutably by index, if in bounds.
    pub fn get_mut(&mut self, id: I) -> Option<&mut T> {
        self.raw.get_mut(id.index())
    }

    /// The underlying slice.
    pub fn raw(&self) -> &[T] {
        &self.raw
    }

    /// Shortens the vector to its first `len` elements. Used by the
    /// incremental relowering splice, which truncates a function's object
    /// slots, relowers into them, and re-appends the saved tail.
    pub fn truncate(&mut self, len: usize) {
        self.raw.truncate(len);
    }
}

impl<I: Idx, T> Default for IdxVec<I, T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<I: Idx, T> std::ops::Index<I> for IdxVec<I, T> {
    type Output = T;
    #[inline]
    fn index(&self, id: I) -> &T {
        &self.raw[id.index()]
    }
}

impl<I: Idx, T> std::ops::IndexMut<I> for IdxVec<I, T> {
    #[inline]
    fn index_mut(&mut self, id: I) -> &mut T {
        &mut self.raw[id.index()]
    }
}

impl<I: Idx, T: fmt::Debug> fmt::Debug for IdxVec<I, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.raw.iter()).finish()
    }
}

impl<I: Idx, T> FromIterator<T> for IdxVec<I, T> {
    fn from_iter<It: IntoIterator<Item = T>>(iter: It) -> Self {
        IdxVec {
            raw: Vec::from_iter(iter),
            _marker: PhantomData,
        }
    }
}

impl<'a, I: Idx, T> IntoIterator for &'a IdxVec<I, T> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.raw.iter()
    }
}

new_id! {
    /// A function in a [`crate::Module`].
    pub struct FuncId = "@f";
    /// A basic block within a function.
    pub struct BlockId = "bb";
    /// A virtual register (top-level variable) within a function.
    pub struct VarId = "%v";
    /// An abstract memory object (allocation site, global, or function).
    pub struct ObjId = "obj";
    /// An interned type.
    pub struct TypeId = "ty";
    /// A struct definition.
    pub struct StructId = "st";
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_index_round_trip() {
        let mut v: IdxVec<VarId, &str> = IdxVec::new();
        let a = v.push("a");
        let b = v.push("b");
        assert_eq!(a, VarId(0));
        assert_eq!(b, VarId(1));
        assert_eq!(v[a], "a");
        assert_eq!(v[b], "b");
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn display_uses_prefix() {
        assert_eq!(format!("{}", FuncId(3)), "@f3");
        assert_eq!(format!("{}", BlockId(0)), "bb0");
        assert_eq!(format!("{}", VarId(7)), "%v7");
    }

    #[test]
    fn iter_enumerated_yields_ids_in_order() {
        let v: IdxVec<BlockId, i32> = IdxVec::from_raw(vec![10, 20]);
        let pairs: Vec<_> = v.iter_enumerated().collect();
        assert_eq!(pairs, vec![(BlockId(0), &10), (BlockId(1), &20)]);
    }

    #[test]
    fn next_id_tracks_len() {
        let mut v: IdxVec<ObjId, ()> = IdxVec::new();
        assert_eq!(v.next_id(), ObjId(0));
        v.push(());
        assert_eq!(v.next_id(), ObjId(1));
    }
}
