//! # usher-ir
//!
//! The LLVM-like intermediate representation underpinning the Usher
//! reproduction (Ye, Sui & Xue, *Accelerating Dynamic Detection of Uses of
//! Undefined Values with Static Value-Flow Analysis*, CGO 2014).
//!
//! The IR mirrors the paper's TinyC-in-SSA discipline:
//!
//! * **top-level variables** are SSA virtual registers,
//! * **address-taken variables** are abstract memory objects reached only
//!   through loads and stores,
//! * allocation sites (`alloc_T` / `alloc_F`) are the only source of
//!   addresses besides global/function constants.
//!
//! Besides the data model this crate provides the CFG/dominator machinery,
//! `mem2reg` SSA construction, a function inliner (the paper's `O0+IM`
//! pre-pass which also realizes 1-callsite heap cloning), the scalar
//! optimization pipeline modelling `-O1`/`-O2`, a printer and a verifier.
//!
//! ```
//! use usher_ir::{Module, FuncBuilder, BinOp, Operand};
//!
//! let mut m = Module::new();
//! let int = m.types.int();
//! let fid = m.declare_func("add1", Some(int));
//! let mut b = FuncBuilder::new(&mut m, fid);
//! let x = b.param("x", int);
//! let r = b.bin(BinOp::Add, x.into(), Operand::Const(1));
//! b.ret(Some(r.into()));
//! b.finish();
//! assert!(usher_ir::verify(&m).is_ok());
//! ```

#![warn(missing_docs)]

pub mod budget;
pub mod builder;
pub mod cfg;
pub mod dom;
pub mod fxhash;
pub mod ids;
pub mod inline;
pub mod module;
pub mod opt;
pub mod printer;
pub mod ssa;
pub mod text;
pub mod types;
pub mod verify;

pub use budget::{Budget, Exhausted};
pub use builder::FuncBuilder;
pub use cfg::Cfg;
pub use dom::DomTree;
pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use ids::{BlockId, FuncId, Idx, IdxVec, ObjId, StructId, TypeId, VarId};
pub use inline::{
    is_inline_target, run_inline, run_inline_traced, InlinePolicy, InlineStats, InlineTrace,
};
pub use module::{
    BinOp, Block, Callee, ExtFunc, Function, GepOffset, Inst, Module, ObjKind, ObjectData, Operand,
    Site, Terminator, UnOp, VarData,
};
pub use opt::{optimize, OptLevel};
pub use printer::{function as print_function, module as print_module};
pub use ssa::{mem2reg, mem2reg_function, Mem2RegStats};
pub use text::{parse_text, write_text, TextError};
pub use types::{CellKind, Layout, StructDef, Type, TypeTable};
pub use verify::{verify, VerifyError};
