//! `mem2reg`: promotion of scalar stack slots to SSA registers.
//!
//! This is the `M` of the paper's `O0+IM` configuration. The front-end
//! lowers every named local through a stack slot; this pass promotes each
//! slot whose address never escapes (used only directly as a load/store
//! address) into SSA registers with phis at iterated dominance frontiers.
//! Promoted variables become the *top-level* variables of the analysis;
//! the remaining slots are the *address-taken* variables.
//!
//! A load that can observe the slot before any store yields
//! [`Operand::Undef`] — the analogue of LLVM's `undef`, which the
//! value-flow analysis connects to the root `F`.

use std::collections::HashMap;

use crate::cfg::Cfg;
use crate::dom::DomTree;
use crate::ids::{BlockId, FuncId, IdxVec, VarId};
use crate::module::{Inst, Module, ObjKind, Operand};
use crate::opt::remove_unreachable_blocks;

/// Statistics from one `mem2reg` run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Mem2RegStats {
    /// Stack slots promoted to registers.
    pub promoted: usize,
    /// Phi instructions inserted.
    pub phis_inserted: usize,
    /// Loads that became `Undef` reads (possible uninitialized locals).
    pub undef_reads: usize,
}

/// Runs `mem2reg` over every function of the module.
pub fn mem2reg(m: &mut Module) -> Mem2RegStats {
    let mut total = Mem2RegStats::default();
    for fid in m.funcs.indices().collect::<Vec<_>>() {
        let stats = promote_function(m, fid);
        total.promoted += stats.promoted;
        total.phis_inserted += stats.phis_inserted;
        total.undef_reads += stats.undef_reads;
    }
    total
}

/// Runs `mem2reg` over a single function. Promotion is per-function (it
/// reads only the function body and the module's object table), so the
/// incremental serve path can promote one relowered body and leave every
/// other function's SSA form untouched.
pub fn mem2reg_function(m: &mut Module, fid: FuncId) -> Mem2RegStats {
    promote_function(m, fid)
}

fn promote_function(m: &mut Module, fid: FuncId) -> Mem2RegStats {
    remove_unreachable_blocks(&mut m.funcs[fid]);
    let mut stats = Mem2RegStats::default();

    // 1. Find promotable allocs: scalar stack slots whose pointer is used
    //    only as a direct load/store address.
    let promotable = find_promotable(m, fid);
    if promotable.is_empty() {
        return stats;
    }
    stats.promoted = promotable.len();

    let f = &mut m.funcs[fid];
    let cfg = Cfg::compute(f);
    let dt = DomTree::compute(f, &cfg);

    // Promo index per pointer var.
    let promo_of: HashMap<VarId, usize> = promotable
        .iter()
        .enumerate()
        .map(|(i, p)| (p.ptr, i))
        .collect();

    // 2. Collect definition blocks per promoted slot.
    let nslots = promotable.len();
    let mut def_blocks: Vec<Vec<BlockId>> = vec![Vec::new(); nslots];
    for (bb, block) in f.blocks.iter_enumerated() {
        for inst in &block.insts {
            match inst {
                Inst::Store {
                    addr: Operand::Var(p),
                    ..
                } => {
                    if let Some(&i) = promo_of.get(p) {
                        if !def_blocks[i].contains(&bb) {
                            def_blocks[i].push(bb);
                        }
                    }
                }
                // The alloc itself counts as a def (of Undef) so that
                // phis merge Undef along paths that skip all stores.
                Inst::Alloc { dst, .. } => {
                    if let Some(&i) = promo_of.get(dst) {
                        if !def_blocks[i].contains(&bb) {
                            def_blocks[i].push(bb);
                        }
                    }
                }
                _ => {}
            }
        }
    }

    // 3. Insert empty phis at iterated dominance frontiers.
    //    phi_slots[bb] maps "position in block's phi prefix" -> slot.
    let mut phi_slot_at: HashMap<(BlockId, VarId), usize> = HashMap::new();
    for (i, slot) in promotable.iter().enumerate() {
        for bb in dt.iterated_frontier(&def_blocks[i]) {
            let dst = f.new_var(format!("{}.phi", slot.name), slot.val_ty);
            f.blocks[bb].insts.insert(
                0,
                Inst::Phi {
                    dst,
                    incomings: Vec::new(),
                },
            );
            phi_slot_at.insert((bb, dst), i);
            stats.phis_inserted += 1;
        }
    }

    // 4. Rename along the dominator tree.
    let nblocks = f.blocks.len();
    let mut visited: IdxVec<BlockId, bool> = IdxVec::from_elem(false, nblocks);
    // Explicit stack of (block, current values on entry).
    let mut stack: Vec<(BlockId, Vec<Operand>)> = vec![(f.entry, vec![Operand::Undef; nslots])];

    while let Some((bb, mut cur)) = stack.pop() {
        if visited[bb] {
            continue;
        }
        visited[bb] = true;

        let mut new_insts: Vec<Inst> = Vec::with_capacity(f.blocks[bb].insts.len());
        let insts = std::mem::take(&mut f.blocks[bb].insts);
        for mut inst in insts {
            match &inst {
                Inst::Alloc { dst, .. } if promo_of.contains_key(dst) => {
                    // Slot comes into existence holding Undef.
                    cur[promo_of[dst]] = Operand::Undef;
                    continue; // drop the alloc
                }
                Inst::Store {
                    addr: Operand::Var(p),
                    val,
                } if promo_of.contains_key(p) => {
                    cur[promo_of[p]] = *val;
                    continue; // drop the store
                }
                Inst::Load {
                    dst,
                    addr: Operand::Var(p),
                } if promo_of.contains_key(p) => {
                    let v = cur[promo_of[p]];
                    if v == Operand::Undef {
                        stats.undef_reads += 1;
                    }
                    new_insts.push(Inst::Copy { dst: *dst, src: v });
                    continue;
                }
                Inst::Phi { dst, .. } => {
                    if let Some(&i) = phi_slot_at.get(&(bb, *dst)) {
                        cur[i] = Operand::Var(*dst);
                    }
                    new_insts.push(inst);
                    continue;
                }
                _ => {}
            }
            // Any other instruction passes through unchanged; promoted
            // pointers cannot appear in them (escape check).
            inst.map_uses(|o| o);
            new_insts.push(inst);
        }
        f.blocks[bb].insts = new_insts;

        // 5. Fill successor phis along each CFG edge.
        for &succ in &cfg.succs[bb] {
            for inst in f.blocks[succ].insts.iter_mut() {
                let Inst::Phi { dst, incomings } = inst else {
                    break;
                };
                if let Some(&i) = phi_slot_at.get(&(succ, *dst)) {
                    incomings.push((bb, cur[i]));
                }
            }
        }

        // 6. Recurse into dominator-tree children with the current state.
        for &c in dt.children[bb].iter().rev() {
            stack.push((c, cur.clone()));
        }
    }

    stats
}

struct PromoSlot {
    ptr: VarId,
    name: String,
    val_ty: crate::ids::TypeId,
}

fn find_promotable(m: &Module, fid: FuncId) -> Vec<PromoSlot> {
    let f = &m.funcs[fid];
    // Candidate scalar stack allocs.
    let mut cand: HashMap<VarId, PromoSlot> = HashMap::new();
    for block in f.blocks.iter() {
        for inst in &block.insts {
            if let Inst::Alloc {
                dst,
                obj,
                count: None,
            } = inst
            {
                let o = &m.objects[*obj];
                if matches!(o.kind, ObjKind::Stack(_)) && o.size == 1 && !o.is_array {
                    let val_ty = m
                        .types
                        .pointee(f.vars[*dst].ty)
                        .expect("alloc result is a pointer");
                    cand.insert(
                        *dst,
                        PromoSlot {
                            ptr: *dst,
                            name: o.name.clone(),
                            val_ty,
                        },
                    );
                }
            }
        }
    }
    if cand.is_empty() {
        return Vec::new();
    }

    // Disqualify any candidate whose pointer escapes.
    let disqualify = |v: VarId, cand: &mut HashMap<VarId, PromoSlot>| {
        cand.remove(&v);
    };
    for block in f.blocks.iter() {
        for inst in &block.insts {
            match inst {
                Inst::Load { addr, .. } => {
                    // Direct load address is fine.
                    let _ = addr;
                }
                Inst::Store { addr, val } => {
                    // Storing the pointer itself escapes it.
                    if let Operand::Var(v) = val {
                        disqualify(*v, &mut cand);
                    }
                    let _ = addr;
                }
                _ => {
                    inst.for_each_use(|o| {
                        if let Operand::Var(v) = o {
                            cand.remove(&v);
                        }
                    });
                }
            }
        }
        block.term.for_each_use(|o| {
            if let Operand::Var(v) = o {
                cand.remove(&v);
            }
        });
    }

    let mut slots: Vec<PromoSlot> = cand.into_values().collect();
    slots.sort_by_key(|s| s.ptr);
    slots
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FuncBuilder;
    use crate::module::{BinOp, Module};
    use crate::verify::verify;

    /// int x; if (c) { x = 1; } return x;  -- phi of (1, Undef)
    fn cond_init_module() -> (Module, FuncId) {
        let mut m = Module::new();
        let int = m.types.int();
        let fid = m.declare_func("f", Some(int));
        let mut b = FuncBuilder::new(&mut m, fid);
        let c = b.param("c", int);
        let (x, _) = b.alloc("x", ObjKind::Stack(fid), int, false, None);
        let then_bb = b.new_block();
        let join = b.new_block();
        b.br(c.into(), then_bb, join);
        b.set_block(then_bb);
        b.store(x.into(), Operand::Const(1));
        b.jmp(join);
        b.set_block(join);
        let v = b.load(x.into(), int);
        b.ret(Some(v.into()));
        b.finish();
        m.main = Some(fid);
        (m, fid)
    }

    #[test]
    fn promotes_conditionally_initialized_local() {
        let (mut m, fid) = cond_init_module();
        let stats = mem2reg(&mut m);
        assert_eq!(stats.promoted, 1);
        assert_eq!(stats.phis_inserted, 1);
        assert!(verify(&m).is_ok(), "{:?}", verify(&m));
        // No load/store/alloc remains.
        let f = &m.funcs[fid];
        for block in f.blocks.iter() {
            for inst in &block.insts {
                assert!(
                    !matches!(
                        inst,
                        Inst::Load { .. } | Inst::Store { .. } | Inst::Alloc { .. }
                    ),
                    "memory op survived: {inst:?}"
                );
            }
        }
        // The phi merges Const(1) and Undef.
        let phi = f
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .find_map(|i| match i {
                Inst::Phi { incomings, .. } => Some(incomings.clone()),
                _ => None,
            })
            .expect("phi inserted");
        let ops: Vec<Operand> = phi.iter().map(|(_, o)| *o).collect();
        assert!(ops.contains(&Operand::Const(1)));
        assert!(ops.contains(&Operand::Undef));
    }

    #[test]
    fn does_not_promote_escaping_slot() {
        let mut m = Module::new();
        let int = m.types.int();
        let fid = m.declare_func("f", Some(int));
        let gid = m.declare_func("g", None);
        // g(p) { *p = 1; }
        {
            let mut b = FuncBuilder::new(&mut m, gid);
            let ip = m_ptr_int(b.module);
            let p = b.param("p", ip);
            b.store(p.into(), Operand::Const(1));
            b.ret(None);
            b.finish();
        }
        let mut b = FuncBuilder::new(&mut m, fid);
        let (x, _) = b.alloc("x", ObjKind::Stack(fid), int, false, None);
        b.call(crate::module::Callee::Direct(gid), vec![x.into()], None);
        let v = b.load(x.into(), int);
        b.ret(Some(v.into()));
        b.finish();
        let stats = mem2reg(&mut m);
        assert_eq!(stats.promoted, 0);
    }

    fn m_ptr_int(m: &mut Module) -> crate::ids::TypeId {
        let int = m.types.int();
        m.types.ptr_to(int)
    }

    #[test]
    fn straight_line_store_then_load_forwards_value() {
        let mut m = Module::new();
        let int = m.types.int();
        let fid = m.declare_func("f", Some(int));
        let mut b = FuncBuilder::new(&mut m, fid);
        let (x, _) = b.alloc("x", ObjKind::Stack(fid), int, false, None);
        b.store(x.into(), Operand::Const(7));
        let v = b.load(x.into(), int);
        let w = b.bin(BinOp::Add, v.into(), Operand::Const(1));
        b.ret(Some(w.into()));
        b.finish();
        let stats = mem2reg(&mut m);
        assert_eq!(stats.promoted, 1);
        assert_eq!(stats.phis_inserted, 0);
        assert_eq!(stats.undef_reads, 0);
        // The load became Copy{src: Const(7)}.
        let f = &m.funcs[fid];
        assert!(f.blocks.iter().flat_map(|b| &b.insts).any(|i| matches!(
            i,
            Inst::Copy {
                src: Operand::Const(7),
                ..
            }
        )));
    }

    #[test]
    fn load_before_store_reads_undef() {
        let mut m = Module::new();
        let int = m.types.int();
        let fid = m.declare_func("f", Some(int));
        let mut b = FuncBuilder::new(&mut m, fid);
        let (x, _) = b.alloc("x", ObjKind::Stack(fid), int, false, None);
        let v = b.load(x.into(), int);
        b.ret(Some(v.into()));
        b.finish();
        let stats = mem2reg(&mut m);
        assert_eq!(stats.promoted, 1);
        assert_eq!(stats.undef_reads, 1);
        let f = &m.funcs[fid];
        assert!(f.blocks.iter().flat_map(|b| &b.insts).any(|i| matches!(
            i,
            Inst::Copy {
                src: Operand::Undef,
                ..
            }
        )));
    }

    #[test]
    fn loop_variable_gets_header_phi() {
        // i = 0; while (i < 10) i = i + 1; return i;
        let mut m = Module::new();
        let int = m.types.int();
        let fid = m.declare_func("f", Some(int));
        let mut b = FuncBuilder::new(&mut m, fid);
        let (i, _) = b.alloc("i", ObjKind::Stack(fid), int, false, None);
        b.store(i.into(), Operand::Const(0));
        let header = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        b.jmp(header);
        b.set_block(header);
        let iv = b.load(i.into(), int);
        let c = b.bin(BinOp::Lt, iv.into(), Operand::Const(10));
        b.br(c.into(), body, exit);
        b.set_block(body);
        let iv2 = b.load(i.into(), int);
        let inc = b.bin(BinOp::Add, iv2.into(), Operand::Const(1));
        b.store(i.into(), inc.into());
        b.jmp(header);
        b.set_block(exit);
        let r = b.load(i.into(), int);
        b.ret(Some(r.into()));
        b.finish();
        let stats = mem2reg(&mut m);
        assert_eq!(stats.promoted, 1);
        assert!(stats.phis_inserted >= 1);
        assert_eq!(stats.undef_reads, 0);
        assert!(verify(&m).is_ok(), "{:?}", verify(&m));
    }
}
