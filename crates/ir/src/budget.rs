//! Cooperative step budgets for the anytime analysis pipeline.
//!
//! The fixpoint loops in the pointer solver, memory-SSA construction,
//! VFG building and definedness resolution are the places a pathological
//! module can make the static analysis spin. A [`Budget`] lets the
//! driver bound that work: the hot loops call [`Budget::charge`] with
//! the number of abstract steps they are about to perform and bail out
//! with [`Exhausted`] when the allowance runs dry, leaving the driver to
//! degrade to the always-sound full-instrumentation plan instead of
//! hanging.
//!
//! Design constraints, in order:
//!
//! * **The unlimited budget must cost nothing.** [`Budget::unlimited`]
//!   carries no state at all; `charge` on it is one predictable branch,
//!   so threading a budget through the hot loops cannot perturb the
//!   benchmarked unbudgeted behavior.
//! * **Exhaustion is sticky.** Once a charge fails, every later charge
//!   fails too, so a stage that checks the budget only at loop heads
//!   still terminates promptly even when helpers elsewhere keep
//!   charging.
//! * **Shared across threads.** One budget covers a whole pipeline run;
//!   parallel shards (per-function memory SSA, for example) charge the
//!   same pool through relaxed atomics — the limit is a bound, not an
//!   exact accounting, and a few steps of overshoot are fine.
//!
//! The optional wall-clock deadline is deliberately *not* checked by
//! `charge` (a syscall per worklist pop would dominate the loop); the
//! driver polls [`Budget::deadline_exceeded`] at stage boundaries.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Error type for budgeted computations: the step allowance ran out.
///
/// Deliberately a unit struct — exhaustion carries no blame; the driver
/// knows which stage it handed the budget to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Exhausted;

impl std::fmt::Display for Exhausted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("analysis step budget exhausted")
    }
}

impl std::error::Error for Exhausted {}

#[derive(Debug)]
struct BudgetInner {
    limit: u64,
    spent: AtomicU64,
    exhausted: AtomicBool,
    deadline: Option<Instant>,
}

/// A cooperative step counter with an optional wall-clock deadline.
///
/// Cloning is cheap and shares the pool: all clones charge the same
/// counter.
#[derive(Clone, Debug)]
pub struct Budget {
    inner: Option<Arc<BudgetInner>>,
}

impl Default for Budget {
    fn default() -> Self {
        Budget::unlimited()
    }
}

impl Budget {
    /// A budget that never exhausts and never expires. Charging it is a
    /// single branch — no atomics are touched.
    pub fn unlimited() -> Budget {
        Budget { inner: None }
    }

    /// A budget of `steps` abstract analysis steps.
    pub fn limited(steps: u64) -> Budget {
        Budget::new(Some(steps), None)
    }

    /// A budget with an optional step limit and an optional wall-clock
    /// deadline (measured from now). `new(None, None)` is
    /// [`Budget::unlimited`].
    pub fn new(steps: Option<u64>, deadline: Option<Duration>) -> Budget {
        if steps.is_none() && deadline.is_none() {
            return Budget::unlimited();
        }
        Budget {
            inner: Some(Arc::new(BudgetInner {
                limit: steps.unwrap_or(u64::MAX),
                spent: AtomicU64::new(0),
                exhausted: AtomicBool::new(false),
                deadline: deadline.map(|d| Instant::now() + d),
            })),
        }
    }

    /// Whether this budget can ever exhaust (step limit or deadline).
    pub fn is_limited(&self) -> bool {
        self.inner.is_some()
    }

    /// Charges `n` steps. Returns `false` — permanently, for every
    /// later call too — once the cumulative charge exceeds the limit.
    #[inline]
    pub fn charge(&self, n: u64) -> bool {
        let Some(inner) = &self.inner else {
            return true;
        };
        if inner.exhausted.load(Ordering::Relaxed) {
            return false;
        }
        let before = inner.spent.fetch_add(n, Ordering::Relaxed);
        if before.saturating_add(n) > inner.limit {
            inner.exhausted.store(true, Ordering::Relaxed);
            return false;
        }
        true
    }

    /// Charges `n` steps, mapping exhaustion to [`Exhausted`] so hot
    /// loops can use `?`.
    #[inline]
    pub fn try_charge(&self, n: u64) -> Result<(), Exhausted> {
        if self.charge(n) {
            Ok(())
        } else {
            Err(Exhausted)
        }
    }

    /// Steps charged so far (0 for the unlimited budget).
    pub fn spent(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.spent.load(Ordering::Relaxed).min(i.limit))
    }

    /// Whether a charge has already failed.
    pub fn is_exhausted(&self) -> bool {
        self.inner
            .as_ref()
            .is_some_and(|i| i.exhausted.load(Ordering::Relaxed))
    }

    /// Whether the wall-clock deadline has passed. Reads the clock, so
    /// callers should poll this at stage boundaries only.
    pub fn deadline_exceeded(&self) -> bool {
        self.inner
            .as_ref()
            .and_then(|i| i.deadline)
            .is_some_and(|d| Instant::now() >= d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_exhausts() {
        let b = Budget::unlimited();
        assert!(!b.is_limited());
        for _ in 0..1000 {
            assert!(b.charge(u64::MAX / 2));
        }
        assert_eq!(b.spent(), 0);
        assert!(!b.is_exhausted());
        assert!(!b.deadline_exceeded());
    }

    #[test]
    fn limited_budget_exhausts_and_stays_exhausted() {
        let b = Budget::limited(10);
        assert!(b.charge(6));
        assert!(b.charge(4));
        assert!(!b.charge(1), "11th step must fail");
        assert!(!b.charge(0), "exhaustion is sticky even for free charges");
        assert!(b.is_exhausted());
        assert_eq!(b.spent(), 10, "spent is clamped to the limit");
        assert_eq!(b.try_charge(1), Err(Exhausted));
    }

    #[test]
    fn clones_share_the_pool() {
        let a = Budget::limited(4);
        let b = a.clone();
        assert!(a.charge(2));
        assert!(b.charge(2));
        assert!(!a.charge(1));
        assert!(b.is_exhausted());
    }

    #[test]
    fn elapsed_deadline_is_observed_without_affecting_steps() {
        let b = Budget::new(None, Some(Duration::from_secs(0)));
        assert!(b.is_limited());
        assert!(b.deadline_exceeded());
        // The deadline is polled, never charged: steps still flow.
        assert!(b.charge(100));
    }
}
