//! Compressed-sparse-row encoding of VFG-style adjacency lists.
//!
//! The resolution and cycle-collapse traversals walk the same edges many
//! times; the per-node `Vec<(u32, EdgeKind)>` lists scatter them across
//! the heap. [`Csr`] freezes an adjacency into three flat arrays
//! (offsets / targets / kinds, struct-of-arrays) so a node's out-edges
//! are one contiguous, cache-resident slice.

use crate::build::EdgeKind;

/// A frozen adjacency in compressed-sparse-row form.
#[derive(Clone, Debug, Default)]
pub struct Csr {
    /// `offsets[v]..offsets[v + 1]` indexes v's out-edges.
    pub offsets: Vec<u32>,
    /// Edge target node ids, grouped by source.
    pub targets: Vec<u32>,
    /// Edge kinds, parallel to `targets`.
    pub kinds: Vec<EdgeKind>,
}

impl Csr {
    /// Freezes `adj` (indexed by node id) into CSR form, preserving the
    /// per-node edge order.
    pub fn from_adjacency(adj: &[Vec<(u32, EdgeKind)>]) -> Csr {
        let n = adj.len();
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0u32);
        let total: usize = adj.iter().map(Vec::len).sum();
        let mut targets = Vec::with_capacity(total);
        let mut kinds = Vec::with_capacity(total);
        for edges in adj {
            for &(t, k) in edges {
                targets.push(t);
                kinds.push(k);
            }
            offsets.push(targets.len() as u32);
        }
        Csr {
            offsets,
            targets,
            kinds,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Out-edges of `v` as `(target, kind)` pairs.
    pub fn edges(&self, v: u32) -> impl Iterator<Item = (u32, EdgeKind)> + '_ {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        self.targets[lo..hi]
            .iter()
            .zip(&self.kinds[lo..hi])
            .map(|(&t, &k)| (t, k))
    }

    /// Out-degree of `v`.
    pub fn degree(&self, v: u32) -> usize {
        (self.offsets[v as usize + 1] - self.offsets[v as usize]) as usize
    }

    /// The reverse graph in CSR form, via counting sort on targets: edge
    /// `v -(k)-> w` here becomes `w -(k)-> v` there. Per target, edges
    /// appear in source order.
    pub fn transpose(&self) -> Csr {
        let n = self.len();
        let m = self.targets.len();
        let mut offsets = vec![0u32; n + 1];
        for &t in &self.targets {
            offsets[t as usize + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let mut targets = vec![0u32; m];
        let mut kinds = vec![EdgeKind::Direct; m];
        let mut fill: Vec<u32> = offsets[..n].to_vec();
        for v in 0..n as u32 {
            for (t, k) in self.edges(v) {
                let slot = fill[t as usize] as usize;
                targets[slot] = v;
                kinds[slot] = k;
                fill[t as usize] += 1;
            }
        }
        Csr {
            offsets,
            targets,
            kinds,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csr_preserves_adjacency() {
        let adj = vec![
            vec![(1, EdgeKind::Direct), (2, EdgeKind::Direct)],
            vec![],
            vec![(0, EdgeKind::Direct)],
        ];
        let csr = Csr::from_adjacency(&adj);
        assert_eq!(csr.len(), 3);
        assert_eq!(csr.degree(0), 2);
        assert_eq!(csr.degree(1), 0);
        for (v, edges) in adj.iter().enumerate() {
            let got: Vec<(u32, EdgeKind)> = csr.edges(v as u32).collect();
            assert_eq!(&got, edges);
        }
    }

    #[test]
    fn transpose_reverses_edges_and_keeps_kinds() {
        let adj = vec![
            vec![(1, EdgeKind::Direct), (2, EdgeKind::Direct)],
            vec![(2, EdgeKind::Direct)],
            vec![],
        ];
        let csr = Csr::from_adjacency(&adj);
        let rev = csr.transpose();
        assert_eq!(rev.len(), 3);
        let got: Vec<(u32, EdgeKind)> = rev.edges(2).collect();
        assert_eq!(got, vec![(0, EdgeKind::Direct), (1, EdgeKind::Direct)]);
        assert_eq!(rev.degree(0), 0);
        // Transposing twice restores the original (sources are emitted
        // in order, so the round trip is exact).
        let back = rev.transpose();
        assert_eq!(back.offsets, csr.offsets);
        assert_eq!(back.targets, csr.targets);
    }

    #[test]
    fn empty_graph() {
        let csr = Csr::from_adjacency(&[]);
        assert!(csr.is_empty());
        assert_eq!(csr.len(), 0);
    }
}
