//! Value-flow graph construction (Section 3.2), straight into CSR form.
//!
//! Nodes are SSA definitions (top-level variables and memory versions)
//! plus the two roots `T` (defined) and `F` (undefined) and one virtual
//! node per runtime check. An edge `v -> w` records that `v`'s value
//! *depends on* `w`'s. Interprocedural edges are labelled with their call
//! site so definedness resolution can match calls with returns.
//!
//! The builder makes one pass over the module, interning nodes through
//! dense per-function tables (top-level variables and memory versions
//! both have dense per-function id spaces, so a `Vec<u32>` lookup
//! replaces the old global `HashMap<NodeKind, u32>`) and appending edges
//! to one flat arena. A count-then-fill pass then freezes the arena into
//! the dependence CSR (deduplicating exactly like the old `add_edge`),
//! and the users CSR is its counting-sort transpose. CSR *is* the
//! primary representation: the graph is immutable after construction
//! (Opt II filters edges instead of mutating), so there is no
//! cache-invalidation dance.
//!
//! Stores implement the paper's three update flavors:
//!
//! * **strong** — the pointer uniquely targets a concrete location: the
//!   old version is killed (`rho_m -> y` only);
//! * **semi-strong** — unique but abstract target whose allocation site
//!   dominates the store: the old version is bypassed back to the
//!   allocation's incoming version (`rho_m -> y`, `rho_m -> rho_j`),
//!   exactly Figure 6;
//! * **weak** — everything else (`rho_m -> y`, `rho_m -> rho_n`).

use std::collections::HashMap;
use std::sync::OnceLock;

use usher_ir::{
    Budget, Callee, Cfg, DomTree, Exhausted, ExtFunc, FuncId, GepOffset, Idx, Inst, Module,
    Operand, Site, Terminator, VarId,
};
use usher_pointer::{Loc, PointerAnalysis};

use crate::condense::Condensation;
use crate::csr::Csr;
use crate::memssa::{MemSsa, MemVerId};

/// Analysis scope: the paper's `Usher_TL` tracks only top-level variables;
/// everything else handles address-taken variables through memory SSA.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum VfgMode {
    /// Top-level variables only: loads are unknown (`F`), stores are not
    /// modelled.
    TlOnly,
    /// Full interprocedural value flow for both variable classes.
    #[default]
    Full,
}

/// A VFG node.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// The defined root.
    RootT,
    /// The undefined root.
    RootF,
    /// A top-level SSA variable.
    Tl(FuncId, VarId),
    /// A memory version.
    Mem(FuncId, MemVerId),
    /// The virtual node of a runtime check at a critical operation.
    Check(Site),
}

/// Interprocedural labelling of an edge.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EdgeKind {
    /// Intraprocedural flow.
    Direct,
    /// Callee formal depends on caller actual at this site.
    Call(Site),
    /// Caller result depends on callee return at this site.
    Ret(Site),
}

/// What a check guards.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CheckKind {
    /// Pointer operand of a load.
    LoadAddr,
    /// Pointer operand of a store.
    StoreAddr,
    /// Branch condition.
    BranchCond,
    /// Indirect call target.
    CallTarget,
}

/// A registered runtime check (critical operation, Definition 1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Check {
    /// The virtual check node.
    pub node: u32,
    /// Site of the critical statement.
    pub site: Site,
    /// The operand whose definedness is checked.
    pub operand: Operand,
    /// Which operand of the statement.
    pub kind: CheckKind,
}

/// Update flavor statistics (Table 1 columns `%SU`, `%WU`, `S`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct VfgStats {
    /// Stores with a unique concrete target (strong updates).
    pub strong_stores: usize,
    /// Stores with a unique abstract target where only a weak update
    /// would apply (the paper's `%WU` column).
    pub weak_singleton_stores: usize,
    /// Semi-strong update applications.
    pub semi_strong_stores: usize,
    /// Stores with multiple possible targets.
    pub multi_target_stores: usize,
    /// Total stores.
    pub total_stores: usize,
    /// Total chi (indirect def) edges added for stores.
    pub store_chis: usize,
}

/// The value-flow graph, immutable after construction.
#[derive(Clone, Debug)]
pub struct Vfg {
    /// Node payloads.
    pub nodes: Vec<NodeKind>,
    /// `deps.edges(v)` = nodes `v` depends on.
    pub deps: Csr,
    /// `users.edges(v)` = nodes depending on `v` (reverse edges).
    pub users: Csr,
    /// The `T` root.
    pub t_root: u32,
    /// The `F` root.
    pub f_root: u32,
    /// All runtime checks.
    pub checks: Vec<Check>,
    /// Defining site per node, when one exists.
    pub def_site: Vec<Option<Site>>,
    /// Construction statistics.
    pub stats: VfgStats,
    /// The mode this graph was built in.
    pub mode: VfgMode,
    /// Dense per-function node tables: `[func][var] -> id + 1` (0 =
    /// absent).
    tl_ids: Vec<Vec<u32>>,
    /// Dense per-function node tables: `[func][mem version] -> id + 1`.
    mem_ids: Vec<Vec<u32>>,
    /// Lazily computed SCC condensation of the `users` graph, shared by
    /// Gamma resolution and Opt II.
    condensation: OnceLock<Condensation>,
}

fn table_get(t: &[Vec<u32>], f: usize, i: usize) -> Option<u32> {
    match t.get(f).and_then(|row| row.get(i)) {
        Some(0) | None => None,
        Some(&id) => Some(id - 1),
    }
}

fn table_set(t: &mut Vec<Vec<u32>>, f: usize, i: usize, id: u32) {
    if t.len() <= f {
        t.resize(f + 1, Vec::new());
    }
    if t[f].len() <= i {
        t[f].resize(i + 1, 0);
    }
    t[f][i] = id + 1;
}

impl Vfg {
    /// Assembles a graph from finished parts, rebuilding the dense node
    /// tables from the node payloads (used by
    /// [`crate::reference::RefVfg::freeze`]).
    #[allow(clippy::too_many_arguments)]
    pub fn from_parts(
        nodes: Vec<NodeKind>,
        deps: Csr,
        users: Csr,
        t_root: u32,
        f_root: u32,
        checks: Vec<Check>,
        def_site: Vec<Option<Site>>,
        stats: VfgStats,
        mode: VfgMode,
    ) -> Vfg {
        let mut tl_ids: Vec<Vec<u32>> = Vec::new();
        let mut mem_ids: Vec<Vec<u32>> = Vec::new();
        for (id, n) in nodes.iter().enumerate() {
            match *n {
                NodeKind::Tl(f, v) => table_set(&mut tl_ids, f.index(), v.index(), id as u32),
                NodeKind::Mem(f, mv) => {
                    table_set(&mut mem_ids, f.index(), mv.0 as usize, id as u32)
                }
                NodeKind::RootT | NodeKind::RootF | NodeKind::Check(_) => {}
            }
        }
        Vfg {
            nodes,
            deps,
            users,
            t_root,
            f_root,
            checks,
            def_site,
            stats,
            mode,
            tl_ids,
            mem_ids,
            condensation: OnceLock::new(),
        }
    }

    /// Node id of a top-level variable, if it is in the graph.
    pub fn tl(&self, f: FuncId, v: VarId) -> Option<u32> {
        table_get(&self.tl_ids, f.index(), v.index())
    }

    /// Node id of a memory version, if it is in the graph.
    pub fn mem(&self, f: FuncId, v: MemVerId) -> Option<u32> {
        table_get(&self.mem_ids, f.index(), v.0 as usize)
    }

    /// Looks up an existing node.
    pub fn lookup(&self, kind: NodeKind) -> Option<u32> {
        match kind {
            NodeKind::RootT => Some(self.t_root),
            NodeKind::RootF => Some(self.f_root),
            NodeKind::Tl(f, v) => self.tl(f, v),
            NodeKind::Mem(f, mv) => self.mem(f, mv),
            NodeKind::Check(site) => self.checks.iter().find(|c| c.site == site).map(|c| c.node),
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph is empty (it never is: the roots exist).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The SCC condensation of the `users` (flows-to) graph, computed
    /// once per graph on first use. Definedness resolution propagates
    /// over it in topological order; Opt II reuses the same condensation
    /// because its edge *removals* can only coarsen the SCC structure, so
    /// the order stays valid.
    pub fn condensation(&self) -> &Condensation {
        self.condensation
            .get_or_init(|| Condensation::compute(&self.users))
    }

    /// Renders the graph in Graphviz DOT format (for the `vfg_explorer`
    /// example and debugging).
    pub fn to_dot(&self, m: &Module) -> String {
        use std::fmt::Write as _;
        let mut s = String::from("digraph vfg {\n  rankdir=BT;\n");
        for (i, n) in self.nodes.iter().enumerate() {
            let label = match n {
                NodeKind::RootT => "T".to_string(),
                NodeKind::RootF => "F".to_string(),
                NodeKind::Tl(f, v) => format!("{}::{}", m.funcs[*f].name, v),
                NodeKind::Mem(f, mv) => format!("{}::mem{}", m.funcs[*f].name, mv.0),
                NodeKind::Check(site) => format!("check@{site}"),
            };
            let _ = writeln!(s, "  n{i} [label=\"{label}\"];");
        }
        for i in 0..self.nodes.len() {
            for (d, kind) in self.deps.edges(i as u32) {
                let style = match kind {
                    EdgeKind::Direct => String::new(),
                    EdgeKind::Call(cs) => format!(" [color=blue,label=\"call {cs}\"]"),
                    EdgeKind::Ret(cs) => format!(" [color=red,label=\"ret {cs}\"]"),
                };
                let _ = writeln!(s, "  n{i} -> n{d}{style};");
            }
        }
        s.push_str("}\n");
        s
    }
}

/// Construction knobs beyond the mode; mainly ablation switches.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BuildOpts {
    /// Variable-class scope.
    pub mode: VfgMode,
    /// Apply the paper's semi-strong update rule at stores (Section 3.2).
    /// Disabling it degrades eligible stores to weak updates — the
    /// ablation for the paper's novel mechanism.
    pub semi_strong: bool,
}

impl Default for BuildOpts {
    fn default() -> Self {
        BuildOpts {
            mode: VfgMode::Full,
            semi_strong: true,
        }
    }
}

/// One recorded builder operation. A function's traversal is replayed
/// from these to rebuild an identical graph without touching the
/// function body: `Touch` reproduces the exact node interning order
/// (recorded even on table hits), `Def`/`Edge` the metadata and edge
/// arena, and the two composite ops re-execute against the *current*
/// module state — `Check` because check nodes are always fresh, `Call`
/// because a call's emissions read the callee's params, returns and
/// memory summaries, which may belong to the one function that changed.
#[derive(Clone, Copy, Debug)]
enum TapeOp {
    Touch(NodeKind),
    Def(NodeKind, Site),
    Edge(NodeKind, NodeKind, EdgeKind),
    Check(Site, Operand, CheckKind),
    Call(Site),
}

/// The recorded traversal of one function: its builder ops in emission
/// order plus its contribution to the store statistics.
#[derive(Clone, Debug, Default)]
struct FuncTape {
    ops: Vec<TapeOp>,
    stats: VfgStats,
}

/// A per-function recording of an entire VFG construction, replayable by
/// [`rebuild_with_tape`] with any single function swapped out for a live
/// traversal. Tapes of unchanged functions are shared (`Arc`) across
/// rebuilds.
#[derive(Clone, Debug)]
pub struct VfgTape {
    funcs: Vec<std::sync::Arc<FuncTape>>,
    opts: BuildOpts,
}

impl VfgTape {
    /// The options the tape was recorded under; a rebuild must use the
    /// same ones.
    pub fn opts(&self) -> BuildOpts {
        self.opts
    }

    /// Number of recorded functions.
    pub fn num_funcs(&self) -> usize {
        self.funcs.len()
    }
}

fn stats_delta(after: &VfgStats, before: &VfgStats) -> VfgStats {
    VfgStats {
        strong_stores: after.strong_stores - before.strong_stores,
        weak_singleton_stores: after.weak_singleton_stores - before.weak_singleton_stores,
        semi_strong_stores: after.semi_strong_stores - before.semi_strong_stores,
        multi_target_stores: after.multi_target_stores - before.multi_target_stores,
        total_stores: after.total_stores - before.total_stores,
        store_chis: after.store_chis - before.store_chis,
    }
}

fn stats_add(into: &mut VfgStats, d: &VfgStats) {
    into.strong_stores += d.strong_stores;
    into.weak_singleton_stores += d.weak_singleton_stores;
    into.semi_strong_stores += d.semi_strong_stores;
    into.multi_target_stores += d.multi_target_stores;
    into.total_stores += d.total_stores;
    into.store_chis += d.store_chis;
}

/// The in-flight construction state: node tables plus one flat edge
/// arena. Nodes are interned in the same traversal order as the frozen
/// reference builder, so ids are identical across generations.
struct Builder {
    nodes: Vec<NodeKind>,
    def_site: Vec<Option<Site>>,
    tl_ids: Vec<Vec<u32>>,
    mem_ids: Vec<Vec<u32>>,
    /// `(from, to, kind)` in emission order; deduplicated at freeze.
    edges: Vec<(u32, u32, EdgeKind)>,
    t_root: u32,
    f_root: u32,
    checks: Vec<Check>,
    stats: VfgStats,
    /// Active tape recording, if any. Composite emissions (checks,
    /// calls) suppress it around their low-level ops.
    rec: Option<Vec<TapeOp>>,
}

impl Builder {
    fn new(m: &Module, ms: &MemSsa) -> Builder {
        let nfuncs = m.funcs.len();
        let mut tl_ids = Vec::with_capacity(nfuncs);
        let mut mem_ids = Vec::with_capacity(nfuncs);
        for (fid, func) in m.funcs.iter_enumerated() {
            tl_ids.push(vec![0u32; func.vars.len()]);
            let defs = ms.funcs.get(&fid).map_or(0, |fs| fs.defs.len());
            mem_ids.push(vec![0u32; defs]);
        }
        let mut b = Builder {
            nodes: Vec::new(),
            def_site: Vec::new(),
            tl_ids,
            mem_ids,
            edges: Vec::new(),
            t_root: 0,
            f_root: 0,
            checks: Vec::new(),
            stats: VfgStats::default(),
            rec: None,
        };
        b.t_root = b.fresh(NodeKind::RootT);
        b.f_root = b.fresh(NodeKind::RootF);
        b
    }

    fn fresh(&mut self, kind: NodeKind) -> u32 {
        let id = self.nodes.len() as u32;
        self.nodes.push(kind);
        self.def_site.push(None);
        id
    }

    fn tl_node(&mut self, f: FuncId, v: VarId) -> u32 {
        if let Some(r) = self.rec.as_mut() {
            // Recorded even on a table hit: replay must reproduce the
            // exact first-touch interning order.
            r.push(TapeOp::Touch(NodeKind::Tl(f, v)));
        }
        let slot = &mut self.tl_ids[f.index()][v.index()];
        if *slot != 0 {
            return *slot - 1;
        }
        let id = self.nodes.len() as u32;
        self.nodes.push(NodeKind::Tl(f, v));
        self.def_site.push(None);
        *slot = id + 1;
        id
    }

    fn mem_node(&mut self, f: FuncId, mv: MemVerId) -> u32 {
        if let Some(r) = self.rec.as_mut() {
            r.push(TapeOp::Touch(NodeKind::Mem(f, mv)));
        }
        let slot = &mut self.mem_ids[f.index()][mv.0 as usize];
        if *slot != 0 {
            return *slot - 1;
        }
        let id = self.nodes.len() as u32;
        self.nodes.push(NodeKind::Mem(f, mv));
        self.def_site.push(None);
        *slot = id + 1;
        id
    }

    /// Check nodes need no table: each site is visited exactly once.
    fn check_node(&mut self, site: Site) -> u32 {
        self.fresh(NodeKind::Check(site))
    }

    /// Interns the node a tape operand refers to. Check nodes never
    /// appear as tape operands (their emissions are composite ops).
    fn intern(&mut self, kind: NodeKind) -> u32 {
        match kind {
            NodeKind::RootT => self.t_root,
            NodeKind::RootF => self.f_root,
            NodeKind::Tl(f, v) => self.tl_node(f, v),
            NodeKind::Mem(f, mv) => self.mem_node(f, mv),
            NodeKind::Check(_) => unreachable!("check nodes are never tape operands"),
        }
    }

    /// Records a defining site for a node.
    fn set_def(&mut self, node: u32, site: Site) {
        if let Some(r) = self.rec.as_mut() {
            r.push(TapeOp::Def(self.nodes[node as usize], site));
        }
        self.def_site[node as usize] = Some(site);
    }

    #[inline]
    fn edge(&mut self, from: u32, to: u32, kind: EdgeKind) {
        if let Some(r) = self.rec.as_mut() {
            r.push(TapeOp::Edge(
                self.nodes[from as usize],
                self.nodes[to as usize],
                kind,
            ));
        }
        self.edges.push((from, to, kind));
    }

    /// Count-then-fill: freezes the edge arena into the dependence CSR
    /// (deduplicating `(to, kind)` per source, matching the reference
    /// `add_edge`), derives the users CSR by transposition, and
    /// assembles the graph.
    fn finish(self, mode: VfgMode) -> Vfg {
        let n = self.nodes.len();
        let mut offsets = vec![0u32; n + 1];
        for &(f, _, _) in &self.edges {
            offsets[f as usize + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let mut targets = vec![0u32; self.edges.len()];
        let mut kinds = vec![EdgeKind::Direct; self.edges.len()];
        // fill[v] is the next free slot in v's region; duplicates leave
        // the slot unfilled and are compacted out below.
        let mut fill: Vec<u32> = offsets[..n].to_vec();
        'arena: for &(f, t, k) in &self.edges {
            let lo = offsets[f as usize] as usize;
            let hi = fill[f as usize] as usize;
            for i in lo..hi {
                if targets[i] == t && kinds[i] == k {
                    continue 'arena;
                }
            }
            targets[hi] = t;
            kinds[hi] = k;
            fill[f as usize] += 1;
        }
        let mut compact_offsets = vec![0u32; n + 1];
        let mut w = 0usize;
        for v in 0..n {
            let lo = offsets[v] as usize;
            let hi = fill[v] as usize;
            for i in lo..hi {
                targets[w] = targets[i];
                kinds[w] = kinds[i];
                w += 1;
            }
            compact_offsets[v + 1] = w as u32;
        }
        targets.truncate(w);
        kinds.truncate(w);
        let deps = Csr {
            offsets: compact_offsets,
            targets,
            kinds,
        };
        let users = deps.transpose();
        Vfg {
            nodes: self.nodes,
            deps,
            users,
            t_root: self.t_root,
            f_root: self.f_root,
            checks: self.checks,
            def_site: self.def_site,
            stats: self.stats,
            mode,
            tl_ids: self.tl_ids,
            mem_ids: self.mem_ids,
            condensation: OnceLock::new(),
        }
    }
}

/// Builds the VFG for a module with default options.
pub fn build(m: &Module, pa: &PointerAnalysis, ms: &MemSsa, mode: VfgMode) -> Vfg {
    build_with(
        m,
        pa,
        ms,
        BuildOpts {
            mode,
            ..Default::default()
        },
    )
}

/// Builds the VFG with explicit options.
pub fn build_with(m: &Module, pa: &PointerAnalysis, ms: &MemSsa, opts: BuildOpts) -> Vfg {
    build_with_budgeted(m, pa, ms, opts, &Budget::unlimited())
        .expect("unlimited budgets never exhaust")
}

/// Budgeted VFG construction: charges one step per instruction visited.
///
/// On exhaustion the partially built graph is discarded — a VFG missing
/// edges *under*-approximates value flow, so no partial result is sound
/// to keep. The driver falls back to full instrumentation instead.
pub fn build_with_budgeted(
    m: &Module,
    pa: &PointerAnalysis,
    ms: &MemSsa,
    opts: BuildOpts,
    budget: &Budget,
) -> Result<Vfg, Exhausted> {
    let mut b = Builder::new(m, ms);
    for fid in m.funcs.indices() {
        traverse_function(&mut b, m, pa, ms, fid, opts, budget)?;
    }
    Ok(b.finish(opts.mode))
}

/// Builds the VFG and records a replayable per-function tape of the
/// construction alongside it.
pub fn build_with_tape(
    m: &Module,
    pa: &PointerAnalysis,
    ms: &MemSsa,
    opts: BuildOpts,
) -> (Vfg, VfgTape) {
    let mut b = Builder::new(m, ms);
    let mut funcs = Vec::with_capacity(m.funcs.len());
    for fid in m.funcs.indices() {
        funcs.push(std::sync::Arc::new(record_function(
            &mut b, m, pa, ms, fid, opts,
        )));
    }
    (b.finish(opts.mode), VfgTape { funcs, opts })
}

/// Rebuilds the VFG after an edit confined to `dirty`'s body: every
/// other function replays its recorded tape (no CFG, dominator or
/// instruction work), `dirty` is traversed live and re-recorded. The
/// result is bit-identical to [`build_with_tape`] on the current module
/// because the replayed ops reproduce the exact node interning and edge
/// emission order, and the composite `Check`/`Call` ops re-read the
/// current module state for anything that can reference `dirty`.
pub fn rebuild_with_tape(
    m: &Module,
    pa: &PointerAnalysis,
    ms: &MemSsa,
    opts: BuildOpts,
    tape: &VfgTape,
    dirty: FuncId,
) -> (Vfg, VfgTape) {
    assert_eq!(
        tape.funcs.len(),
        m.funcs.len(),
        "tape does not match the module's function count"
    );
    assert_eq!(tape.opts, opts, "tape was recorded under different options");
    let mut b = Builder::new(m, ms);
    let mut funcs = Vec::with_capacity(m.funcs.len());
    for fid in m.funcs.indices() {
        if fid == dirty {
            funcs.push(std::sync::Arc::new(record_function(
                &mut b, m, pa, ms, fid, opts,
            )));
        } else {
            replay_function(&mut b, m, pa, ms, fid, opts, &tape.funcs[fid.index()]);
            funcs.push(std::sync::Arc::clone(&tape.funcs[fid.index()]));
        }
    }
    (b.finish(opts.mode), VfgTape { funcs, opts })
}

fn record_function(
    b: &mut Builder,
    m: &Module,
    pa: &PointerAnalysis,
    ms: &MemSsa,
    fid: FuncId,
    opts: BuildOpts,
) -> FuncTape {
    let before = b.stats;
    b.rec = Some(Vec::new());
    traverse_function(b, m, pa, ms, fid, opts, &Budget::unlimited())
        .expect("unlimited budgets never exhaust");
    let ops = b.rec.take().unwrap_or_default();
    FuncTape {
        ops,
        stats: stats_delta(&b.stats, &before),
    }
}

fn replay_function(
    b: &mut Builder,
    m: &Module,
    pa: &PointerAnalysis,
    ms: &MemSsa,
    fid: FuncId,
    opts: BuildOpts,
    ft: &FuncTape,
) {
    debug_assert!(b.rec.is_none(), "replay never records");
    let full = opts.mode == VfgMode::Full;
    for op in &ft.ops {
        match *op {
            TapeOp::Touch(kind) => {
                b.intern(kind);
            }
            TapeOp::Def(kind, site) => {
                let n = b.intern(kind);
                b.set_def(n, site);
            }
            TapeOp::Edge(from, to, ek) => {
                let x = b.intern(from);
                let y = b.intern(to);
                b.edge(x, y, ek);
            }
            TapeOp::Check(site, operand, kind) => {
                register_check(b, site, operand, kind, fid);
            }
            TapeOp::Call(site) => {
                let inst = &m.funcs[site.func].blocks[site.block].insts[site.idx];
                let Inst::Call { dst, callee, args } = inst else {
                    unreachable!("Call tape op does not point at a call instruction");
                };
                build_call(b, m, pa, ms, fid, site, *dst, callee, args, full);
            }
        }
    }
    stats_add(&mut b.stats, &ft.stats);
}

fn traverse_function(
    b: &mut Builder,
    m: &Module,
    pa: &PointerAnalysis,
    ms: &MemSsa,
    fid: FuncId,
    opts: BuildOpts,
    budget: &Budget,
) -> Result<(), Exhausted> {
    let func = &m.funcs[fid];
    let cfg = Cfg::compute(func);
    let dt = DomTree::compute(func, &cfg);
    let fs = ms.funcs.get(&fid);

    // Allocation chis per location, for semi-strong lookups:
    // loc -> [(site, old version at the alloc)].
    let mut alloc_chis: HashMap<Loc, Vec<(Site, MemVerId)>> = HashMap::new();
    if let Some(fs) = fs {
        let mut chi_sites: Vec<Site> = fs.chis.keys().copied().collect();
        chi_sites.sort_unstable();
        for site in chi_sites {
            for c in &fs.chis[&site] {
                if matches!(fs.def(c.new).kind, crate::memssa::MemDefKind::Alloc(_)) {
                    alloc_chis.entry(c.loc).or_default().push((site, c.old));
                }
            }
        }
    }

    // Region phi edges, in block order so node numbering is stable.
    if opts.mode == VfgMode::Full {
        if let Some(fs) = fs {
            let mut phi_blocks: Vec<_> = fs.phis.keys().copied().collect();
            phi_blocks.sort_unstable();
            for bb in phi_blocks {
                for p in &fs.phis[&bb] {
                    let d = b.mem_node(fid, p.def);
                    for (_, inc) in &p.incomings {
                        let i = b.mem_node(fid, *inc);
                        b.edge(d, i, EdgeKind::Direct);
                    }
                }
            }
        }
    }

    for (bb, block) in func.blocks.iter_enumerated() {
        if !cfg.is_reachable(bb) {
            continue;
        }
        for (idx, inst) in block.insts.iter().enumerate() {
            budget.try_charge(1)?;
            let site = Site::new(fid, bb, idx);
            build_inst(b, m, pa, ms, fid, site, inst, opts, &dt, &alloc_chis);
        }
        budget.try_charge(1)?;
        let term_site = Site::new(fid, bb, block.insts.len());
        match &block.term {
            Terminator::Br { cond, .. } => {
                register_check_traced(b, term_site, *cond, CheckKind::BranchCond, fid);
            }
            Terminator::Jmp(_) | Terminator::Ret(_) | Terminator::Unreachable => {}
        }
    }
    Ok(())
}

fn op_node(b: &mut Builder, f: FuncId, op: Operand) -> u32 {
    match op {
        Operand::Var(v) => b.tl_node(f, v),
        Operand::Const(_) | Operand::Global(_) | Operand::Func(_) => b.t_root,
        Operand::Undef => b.f_root,
    }
}

fn register_check(b: &mut Builder, site: Site, op: Operand, kind: CheckKind, f: FuncId) {
    if !matches!(op, Operand::Var(_) | Operand::Undef) {
        // Constant addresses/conditions are trivially defined.
        return;
    }
    let node = b.check_node(site);
    b.set_def(node, site);
    let target = op_node(b, f, op);
    b.edge(node, target, EdgeKind::Direct);
    b.checks.push(Check {
        node,
        site,
        operand: op,
        kind,
    });
}

/// [`register_check`] recorded as one composite tape op: the check node
/// is always fresh, so replay re-executes the registration rather than
/// replaying its low-level emissions.
fn register_check_traced(b: &mut Builder, site: Site, op: Operand, kind: CheckKind, f: FuncId) {
    let saved = b.rec.take();
    register_check(b, site, op, kind, f);
    b.rec = saved;
    if let Some(r) = b.rec.as_mut() {
        r.push(TapeOp::Check(site, op, kind));
    }
}

#[allow(clippy::too_many_arguments)]
fn build_inst(
    b: &mut Builder,
    m: &Module,
    pa: &PointerAnalysis,
    ms: &MemSsa,
    fid: FuncId,
    site: Site,
    inst: &Inst,
    opts: BuildOpts,
    dt: &DomTree,
    alloc_chis: &HashMap<Loc, Vec<(Site, MemVerId)>>,
) {
    let full = opts.mode == VfgMode::Full;
    let fs = ms.funcs.get(&fid);
    match inst {
        Inst::Copy { dst, src } | Inst::Un { dst, src, .. } => {
            let d = b.tl_node(fid, *dst);
            b.set_def(d, site);
            let s = op_node(b, fid, *src);
            b.edge(d, s, EdgeKind::Direct);
        }
        Inst::Bin { dst, lhs, rhs, .. } => {
            let d = b.tl_node(fid, *dst);
            b.set_def(d, site);
            let l = op_node(b, fid, *lhs);
            let r = op_node(b, fid, *rhs);
            b.edge(d, l, EdgeKind::Direct);
            b.edge(d, r, EdgeKind::Direct);
        }
        Inst::Gep { dst, base, offset } => {
            let d = b.tl_node(fid, *dst);
            b.set_def(d, site);
            let bnode = op_node(b, fid, *base);
            b.edge(d, bnode, EdgeKind::Direct);
            if let GepOffset::Index { index, .. } = offset {
                let i = op_node(b, fid, *index);
                b.edge(d, i, EdgeKind::Direct);
            }
        }
        Inst::Alloc { dst, obj, count } => {
            // The resulting pointer is always defined.
            let d = b.tl_node(fid, *dst);
            b.set_def(d, site);
            b.edge(d, b.t_root, EdgeKind::Direct);
            if let Some(c) = count {
                let cn = op_node(b, fid, *c);
                b.edge(d, cn, EdgeKind::Direct);
            }
            if full {
                if let Some(fs) = fs {
                    if let Some(chis) = fs.chis.get(&site) {
                        let init = if m.objects[*obj].zero_init {
                            b.t_root
                        } else {
                            b.f_root
                        };
                        for c in chis {
                            let n = b.mem_node(fid, c.new);
                            b.set_def(n, site);
                            let o = b.mem_node(fid, c.old);
                            b.edge(n, init, EdgeKind::Direct);
                            b.edge(n, o, EdgeKind::Direct);
                        }
                    }
                }
            }
        }
        Inst::Load { dst, addr } => {
            register_check_traced(b, site, *addr, CheckKind::LoadAddr, fid);
            let d = b.tl_node(fid, *dst);
            b.set_def(d, site);
            if full {
                let mus = fs.and_then(|fs| fs.mus.get(&site));
                match mus {
                    Some(mus) if !mus.is_empty() => {
                        for mu in mus {
                            let n = b.mem_node(fid, mu.def);
                            b.edge(d, n, EdgeKind::Direct);
                        }
                    }
                    // A load with no resolvable target (null/unknown): be
                    // conservative.
                    _ => b.edge(d, b.f_root, EdgeKind::Direct),
                }
            } else {
                // TL-only: memory contents are unknown.
                b.edge(d, b.f_root, EdgeKind::Direct);
            }
        }
        Inst::Store { addr, val } => {
            register_check_traced(b, site, *addr, CheckKind::StoreAddr, fid);
            b.stats.total_stores += 1;
            if !full {
                return;
            }
            let Some(fs) = fs else { return };
            let Some(chis) = fs.chis.get(&site) else {
                return;
            };
            b.stats.store_chis += chis.len();
            let v = op_node(b, fid, *val);
            let unique = pa.unique_target(fid, *addr);
            if chis.len() == 1 && unique == Some(chis[0].loc) {
                let c = chis[0];
                let n = b.mem_node(fid, c.new);
                b.set_def(n, site);
                b.edge(n, v, EdgeKind::Direct);
                if pa.is_concrete(c.loc) {
                    // Strong update: the old version is killed.
                    b.stats.strong_stores += 1;
                } else if opts.semi_strong && pa.is_single_cell(c.loc) {
                    // Semi-strong: bypass back to the dominating
                    // allocation's incoming version when one exists.
                    let dominating = alloc_chis.get(&c.loc).and_then(|sites| {
                        sites
                            .iter()
                            .find(|(asite, _)| dominates_site(dt, *asite, site))
                    });
                    match dominating {
                        Some((_, old_at_alloc)) => {
                            let o = b.mem_node(fid, *old_at_alloc);
                            b.edge(n, o, EdgeKind::Direct);
                            b.stats.semi_strong_stores += 1;
                        }
                        None => {
                            let o = b.mem_node(fid, c.old);
                            b.edge(n, o, EdgeKind::Direct);
                            b.stats.weak_singleton_stores += 1;
                        }
                    }
                } else {
                    let o = b.mem_node(fid, c.old);
                    b.edge(n, o, EdgeKind::Direct);
                    b.stats.weak_singleton_stores += 1;
                }
            } else {
                b.stats.multi_target_stores += 1;
                for c in chis {
                    let n = b.mem_node(fid, c.new);
                    b.set_def(n, site);
                    let o = b.mem_node(fid, c.old);
                    b.edge(n, v, EdgeKind::Direct);
                    b.edge(n, o, EdgeKind::Direct);
                }
            }
        }
        Inst::Call { dst, callee, args } => {
            // Composite tape op: a call's emissions read the callee's
            // params, return terminators and memory summaries, which can
            // belong to the edited function — replay re-executes this
            // against the current module instead of replaying stale ops.
            let saved = b.rec.take();
            build_call(b, m, pa, ms, fid, site, *dst, callee, args, full);
            b.rec = saved;
            if let Some(r) = b.rec.as_mut() {
                r.push(TapeOp::Call(site));
            }
        }
        Inst::Phi { dst, incomings } => {
            let d = b.tl_node(fid, *dst);
            b.set_def(d, site);
            for (_, op) in incomings {
                let n = op_node(b, fid, *op);
                b.edge(d, n, EdgeKind::Direct);
            }
        }
    }
}

/// Emits the value-flow of one call instruction: the indirect-target
/// check, top-level parameter/return flow, and (in full mode) the
/// virtual mu/chi flow through callee memory summaries.
#[allow(clippy::too_many_arguments)]
fn build_call(
    b: &mut Builder,
    m: &Module,
    pa: &PointerAnalysis,
    ms: &MemSsa,
    fid: FuncId,
    site: Site,
    dst: Option<VarId>,
    callee: &Callee,
    args: &[Operand],
    full: bool,
) {
    let fs = ms.funcs.get(&fid);
    if let Callee::Indirect(t) = callee {
        register_check(b, site, *t, CheckKind::CallTarget, fid);
    }
    if let Callee::External(ext) = callee {
        if let Some(d) = dst {
            let dn = b.tl_node(fid, d);
            b.set_def(dn, site);
            // input() yields a defined value; other externals
            // have no results.
            let root = match ext {
                ExtFunc::InputInt => b.t_root,
                _ => b.t_root,
            };
            b.edge(dn, root, EdgeKind::Direct);
        }
        return;
    }
    let callees: &[FuncId] = pa.call_graph.callees_of(site);
    // Top-level parameter and return flow.
    for &gcallee in callees {
        let callee_fn = &m.funcs[gcallee];
        for (&p, a) in callee_fn.params.iter().zip(args.iter()) {
            let pn = b.tl_node(gcallee, p);
            let an = op_node(b, fid, *a);
            b.edge(pn, an, EdgeKind::Call(site));
        }
        if let Some(d) = dst {
            let dn = b.tl_node(fid, d);
            b.set_def(dn, site);
            for block in callee_fn.blocks.iter() {
                if let Terminator::Ret(Some(op)) = &block.term {
                    let rn = op_node(b, gcallee, *op);
                    b.edge(dn, rn, EdgeKind::Ret(site));
                }
            }
        }
    }
    if !full {
        return;
    }
    let Some(fs) = fs else { return };
    // Virtual parameter flow.
    if let Some(mus) = fs.mus.get(&site) {
        for mu in mus {
            let caller_ver = b.mem_node(fid, mu.def);
            for &gcallee in callees {
                if let Some(cal) = ms.funcs.get(&gcallee) {
                    if let Some(&fin) = cal.formal_in.get(&mu.loc) {
                        let fn_node = b.mem_node(gcallee, fin);
                        b.edge(fn_node, caller_ver, EdgeKind::Call(site));
                    }
                }
            }
        }
    }
    if let Some(chis) = fs.chis.get(&site) {
        for c in chis {
            let n = b.mem_node(fid, c.new);
            b.set_def(n, site);
            let o = b.mem_node(fid, c.old);
            b.edge(n, o, EdgeKind::Direct);
            for &gcallee in callees {
                if let Some(cal) = ms.funcs.get(&gcallee) {
                    let mut ret_blocks: Vec<_> = cal.ret_mus.keys().copied().collect();
                    ret_blocks.sort_unstable();
                    for bb in ret_blocks {
                        for mu in &cal.ret_mus[&bb] {
                            if mu.loc == c.loc {
                                let out_node = b.mem_node(gcallee, mu.def);
                                b.edge(n, out_node, EdgeKind::Ret(site));
                            }
                        }
                    }
                }
            }
        }
    }
}

fn dominates_site(dt: &DomTree, a: Site, b: Site) -> bool {
    if a.block == b.block {
        return a.idx < b.idx;
    }
    dt.dominates(a.block, b.block)
}
