//! Annotated memory-SSA printing, in the style of the paper's Figure 5:
//! loads carry `[mu(rho_k)]` lists, stores/allocations/calls carry
//! `[rho_m := chi(rho_n)]` lists, block heads show region phis, and
//! returns show the virtual output parameters.

use std::fmt::Write as _;

use usher_ir::{FuncId, Module, Terminator};
use usher_pointer::Loc;

use crate::memssa::{FuncMemSsa, MemSsa, MemVerId};

fn loc_name(m: &Module, l: Loc) -> String {
    let o = &m.objects[l.obj];
    if o.num_classes > 1 {
        format!("{}.f{}", o.name, l.field)
    } else {
        o.name.clone()
    }
}

fn ver(m: &Module, fs: &FuncMemSsa, v: MemVerId) -> String {
    format!("{}_{}", loc_name(m, fs.def(v).loc), v.0)
}

/// Renders one function with its memory-SSA annotations.
pub fn print_annotated(m: &Module, fid: FuncId, ms: &MemSsa) -> String {
    let mut s = String::new();
    let func = &m.funcs[fid];
    let Some(fs) = ms.funcs.get(&fid) else {
        return usher_ir::print_function(m, fid, func);
    };

    // Header with virtual parameters.
    let mut vins: Vec<String> = fs.summary_in.iter().map(|l| loc_name(m, *l)).collect();
    vins.sort();
    let mut vouts: Vec<String> = fs.summary_out.iter().map(|l| loc_name(m, *l)).collect();
    vouts.sort();
    let _ = writeln!(
        s,
        "def {} {} [in: {}] [out: {}] {{",
        fid,
        func.name,
        vins.join(", "),
        vouts.join(", ")
    );

    for (bb, block) in func.blocks.iter_enumerated() {
        let _ = writeln!(s, "{bb}:");
        if let Some(phis) = fs.phis.get(&bb) {
            for p in phis {
                let incs: Vec<String> = p
                    .incomings
                    .iter()
                    .map(|(pb, v)| format!("{pb}: {}", ver(m, fs, *v)))
                    .collect();
                let _ = writeln!(s, "  {} := phi({})", ver(m, fs, p.def), incs.join(", "));
            }
        }
        for (idx, inst) in block.insts.iter().enumerate() {
            let site = usher_ir::Site::new(fid, bb, idx);
            let mut line = format!("  {}", usher_ir::printer::inst(m, inst));
            if let Some(mus) = fs.mus.get(&site) {
                let parts: Vec<String> = mus
                    .iter()
                    .map(|mu| format!("mu({})", ver(m, fs, mu.def)))
                    .collect();
                let _ = write!(line, "  [{}]", parts.join(", "));
            }
            if let Some(chis) = fs.chis.get(&site) {
                let parts: Vec<String> = chis
                    .iter()
                    .map(|c| format!("{} := chi({})", ver(m, fs, c.new), ver(m, fs, c.old)))
                    .collect();
                let _ = write!(line, "  [{}]", parts.join(", "));
            }
            let _ = writeln!(s, "{line}");
        }
        match &block.term {
            Terminator::Ret(op) => {
                let mut line = match op {
                    Some(o) => format!("  ret {}", usher_ir::printer::operand(m, *o)),
                    None => "  ret".to_string(),
                };
                if let Some(outs) = fs.ret_mus.get(&bb) {
                    if !outs.is_empty() {
                        let parts: Vec<String> = outs.iter().map(|mu| ver(m, fs, mu.def)).collect();
                        let _ = write!(line, "  [{}]", parts.join(", "));
                    }
                }
                let _ = writeln!(s, "{line}");
            }
            Terminator::Jmp(b) => {
                let _ = writeln!(s, "  jmp {b}");
            }
            Terminator::Br {
                cond,
                then_bb,
                else_bb,
            } => {
                let _ = writeln!(
                    s,
                    "  br {} ? {then_bb} : {else_bb}",
                    usher_ir::printer::operand(m, *cond)
                );
            }
            Terminator::Unreachable => {
                let _ = writeln!(s, "  unreachable");
            }
        }
    }
    let _ = writeln!(s, "}}");
    s
}

/// Renders every function of the module with annotations.
pub fn print_module_annotated(m: &Module, ms: &MemSsa) -> String {
    let mut s = String::new();
    for fid in m.funcs.indices() {
        s.push_str(&print_annotated(m, fid, ms));
        s.push('\n');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use usher_frontend::compile_o0im;
    use usher_ir::Idx;

    #[test]
    fn annotations_follow_figure_5_shape() {
        let m = compile_o0im(
            "int g;
             def bump() { g = g + 1; }
             def main() { bump(); print(g); }",
        )
        .unwrap();
        let pa = usher_pointer::analyze(&m);
        let ms = crate::memssa::build(&m, &pa);
        let text = print_module_annotated(&m, &ms);
        assert!(text.contains("mu("), "loads carry mu lists:\n{text}");
        assert!(text.contains(":= chi("), "stores carry chi lists:\n{text}");
        assert!(
            text.contains("[in: "),
            "virtual input parameters shown:\n{text}"
        );
        assert!(
            text.contains("[out: "),
            "virtual output parameters shown:\n{text}"
        );
        let _ = usher_ir::FuncId(0).index();
    }

    #[test]
    fn region_phis_are_printed_at_block_heads() {
        let m = compile_o0im(
            "int g;
             def main() {
                 int i = 0;
                 while (i < 4) { g = g + i; i = i + 1; }
                 print(g);
             }",
        )
        .unwrap();
        let pa = usher_pointer::analyze(&m);
        let ms = crate::memssa::build(&m, &pa);
        let text = print_annotated(&m, m.main.unwrap(), &ms);
        assert!(text.contains(":= phi("), "loop-carried region phi:\n{text}");
    }
}
