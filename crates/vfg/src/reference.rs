//! The pre-overhaul VFG representation and builder, frozen as the
//! reference for the CSR-first generation in [`crate::build`].
//!
//! [`RefVfg`] keeps the original mutable shape — a global
//! `HashMap<NodeKind, u32>` interner and per-node `Vec<(u32, EdgeKind)>`
//! adjacency lists — and [`build_reference`] is the original traversal,
//! byte for byte. The representation-equivalence suite builds every
//! workload through both generations and asserts the frozen graph
//! ([`RefVfg::freeze`]) is structurally identical to the CSR-first one;
//! `scripts/bench.sh` uses this builder for its "before" timings.
//! Semantics are frozen; do not optimize.

use std::collections::HashMap;

use usher_ir::{
    Callee, Cfg, DomTree, ExtFunc, FuncId, GepOffset, Inst, Module, Operand, Site, Terminator,
};
use usher_pointer::{Loc, PointerAnalysis};

use crate::build::{BuildOpts, Check, CheckKind, EdgeKind, NodeKind, Vfg, VfgMode, VfgStats};
use crate::csr::Csr;
use crate::memssa::{MemSsa, MemVerId};

/// The original adjacency-list value-flow graph.
#[derive(Clone, Debug)]
pub struct RefVfg {
    /// Node payloads.
    pub nodes: Vec<NodeKind>,
    ids: HashMap<NodeKind, u32>,
    /// `deps[v]` = nodes `v` depends on.
    pub deps: Vec<Vec<(u32, EdgeKind)>>,
    /// `users[v]` = nodes depending on `v` (reverse edges).
    pub users: Vec<Vec<(u32, EdgeKind)>>,
    /// The `T` root.
    pub t_root: u32,
    /// The `F` root.
    pub f_root: u32,
    /// All runtime checks.
    pub checks: Vec<Check>,
    /// Defining site per node, when one exists.
    pub def_site: Vec<Option<Site>>,
    /// Construction statistics.
    pub stats: VfgStats,
    /// The mode this graph was built in.
    pub mode: VfgMode,
}

impl RefVfg {
    fn new(mode: VfgMode) -> RefVfg {
        let mut g = RefVfg {
            nodes: Vec::new(),
            ids: HashMap::new(),
            deps: Vec::new(),
            users: Vec::new(),
            t_root: 0,
            f_root: 0,
            checks: Vec::new(),
            def_site: Vec::new(),
            stats: VfgStats::default(),
            mode,
        };
        g.t_root = g.node(NodeKind::RootT);
        g.f_root = g.node(NodeKind::RootF);
        g
    }

    /// Interns a node.
    pub fn node(&mut self, kind: NodeKind) -> u32 {
        if let Some(&id) = self.ids.get(&kind) {
            return id;
        }
        let id = self.nodes.len() as u32;
        self.nodes.push(kind);
        self.deps.push(Vec::new());
        self.users.push(Vec::new());
        self.def_site.push(None);
        self.ids.insert(kind, id);
        id
    }

    /// Looks up an existing node.
    pub fn lookup(&self, kind: NodeKind) -> Option<u32> {
        self.ids.get(&kind).copied()
    }

    /// Node id of a top-level variable, if it is in the graph.
    pub fn tl(&self, f: FuncId, v: usher_ir::VarId) -> Option<u32> {
        self.lookup(NodeKind::Tl(f, v))
    }

    /// Node id of a memory version, if it is in the graph.
    pub fn mem(&self, f: FuncId, v: MemVerId) -> Option<u32> {
        self.lookup(NodeKind::Mem(f, v))
    }

    /// Adds `from -> to` (from depends on to).
    pub fn add_edge(&mut self, from: u32, to: u32, kind: EdgeKind) {
        if self.deps[from as usize].contains(&(to, kind)) {
            return;
        }
        self.deps[from as usize].push((to, kind));
        self.users[to as usize].push((from, kind));
    }

    /// Removes a dependence edge (used by Opt II's graph surgery).
    pub fn remove_edge(&mut self, from: u32, to: u32) {
        self.deps[from as usize].retain(|(t, _)| *t != to);
        self.users[to as usize].retain(|(f, _)| *f != from);
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph is empty (it never is: the roots exist).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Converts to the CSR-first representation. Per-node dependence
    /// order is preserved and the users CSR is derived exactly as the
    /// CSR-first builder derives it, so for equal inputs the result is
    /// structurally identical to [`crate::build::build_with`]'s.
    pub fn freeze(&self) -> Vfg {
        let deps = Csr::from_adjacency(&self.deps);
        let users = deps.transpose();
        Vfg::from_parts(
            self.nodes.clone(),
            deps,
            users,
            self.t_root,
            self.f_root,
            self.checks.clone(),
            self.def_site.clone(),
            self.stats,
            self.mode,
        )
    }
}

/// Builds the reference VFG for a module with default options.
pub fn build_reference(m: &Module, pa: &PointerAnalysis, ms: &MemSsa, mode: VfgMode) -> RefVfg {
    build_with_reference(
        m,
        pa,
        ms,
        BuildOpts {
            mode,
            ..Default::default()
        },
    )
}

/// Builds the reference VFG with explicit options (the original
/// traversal, including its per-instruction clones).
pub fn build_with_reference(
    m: &Module,
    pa: &PointerAnalysis,
    ms: &MemSsa,
    opts: BuildOpts,
) -> RefVfg {
    let mode = opts.mode;
    let mut g = RefVfg::new(mode);
    let b = &mut g;

    for (fid, func) in m.funcs.iter_enumerated() {
        let cfg = Cfg::compute(func);
        let dt = DomTree::compute(func, &cfg);
        let fs = ms.funcs.get(&fid);

        // Allocation chis per location, for semi-strong lookups:
        // loc -> [(site, old version at the alloc)].
        let mut alloc_chis: HashMap<Loc, Vec<(Site, MemVerId)>> = HashMap::new();
        if let Some(fs) = fs {
            let mut chi_sites: Vec<Site> = fs.chis.keys().copied().collect();
            chi_sites.sort_unstable();
            for site in chi_sites {
                for c in &fs.chis[&site] {
                    if matches!(fs.def(c.new).kind, crate::memssa::MemDefKind::Alloc(_)) {
                        alloc_chis.entry(c.loc).or_default().push((site, c.old));
                    }
                }
            }
        }

        // Region phi edges, in block order so node numbering is stable.
        if mode == VfgMode::Full {
            if let Some(fs) = fs {
                let mut phi_blocks: Vec<_> = fs.phis.keys().copied().collect();
                phi_blocks.sort_unstable();
                for bb in phi_blocks {
                    for p in &fs.phis[&bb] {
                        let d = b.node(NodeKind::Mem(fid, p.def));
                        for (_, inc) in &p.incomings {
                            let i = b.node(NodeKind::Mem(fid, *inc));
                            b.add_edge(d, i, EdgeKind::Direct);
                        }
                    }
                }
            }
        }

        for (bb, block) in func.blocks.iter_enumerated() {
            if !cfg.is_reachable(bb) {
                continue;
            }
            for (idx, inst) in block.insts.iter().enumerate() {
                let site = Site::new(fid, bb, idx);
                build_inst(b, m, pa, ms, fid, site, inst, opts, &dt, &alloc_chis);
            }
            let term_site = Site::new(fid, bb, block.insts.len());
            match &block.term {
                Terminator::Br { cond, .. } => {
                    register_check(b, term_site, *cond, CheckKind::BranchCond, fid);
                }
                Terminator::Jmp(_) | Terminator::Ret(_) | Terminator::Unreachable => {}
            }
        }
    }
    g
}

fn op_node(g: &mut RefVfg, f: FuncId, op: Operand) -> u32 {
    match op {
        Operand::Var(v) => g.node(NodeKind::Tl(f, v)),
        Operand::Const(_) | Operand::Global(_) | Operand::Func(_) => g.t_root,
        Operand::Undef => g.f_root,
    }
}

fn register_check(g: &mut RefVfg, site: Site, op: Operand, kind: CheckKind, f: FuncId) {
    if !matches!(op, Operand::Var(_) | Operand::Undef) {
        // Constant addresses/conditions are trivially defined.
        return;
    }
    let node = g.node(NodeKind::Check(site));
    g.def_site[node as usize] = Some(site);
    let target = op_node(g, f, op);
    g.add_edge(node, target, EdgeKind::Direct);
    g.checks.push(Check {
        node,
        site,
        operand: op,
        kind,
    });
}

#[allow(clippy::too_many_arguments)]
fn build_inst(
    g: &mut RefVfg,
    m: &Module,
    pa: &PointerAnalysis,
    ms: &MemSsa,
    fid: FuncId,
    site: Site,
    inst: &Inst,
    opts: BuildOpts,
    dt: &DomTree,
    alloc_chis: &HashMap<Loc, Vec<(Site, MemVerId)>>,
) {
    let full = opts.mode == VfgMode::Full;
    let fs = ms.funcs.get(&fid);
    match inst {
        Inst::Copy { dst, src } => {
            let d = g.node(NodeKind::Tl(fid, *dst));
            g.def_site[d as usize] = Some(site);
            let s = op_node(g, fid, *src);
            g.add_edge(d, s, EdgeKind::Direct);
        }
        Inst::Un { dst, src, .. } => {
            let d = g.node(NodeKind::Tl(fid, *dst));
            g.def_site[d as usize] = Some(site);
            let s = op_node(g, fid, *src);
            g.add_edge(d, s, EdgeKind::Direct);
        }
        Inst::Bin { dst, lhs, rhs, .. } => {
            let d = g.node(NodeKind::Tl(fid, *dst));
            g.def_site[d as usize] = Some(site);
            let l = op_node(g, fid, *lhs);
            let r = op_node(g, fid, *rhs);
            g.add_edge(d, l, EdgeKind::Direct);
            g.add_edge(d, r, EdgeKind::Direct);
        }
        Inst::Gep { dst, base, offset } => {
            let d = g.node(NodeKind::Tl(fid, *dst));
            g.def_site[d as usize] = Some(site);
            let bnode = op_node(g, fid, *base);
            g.add_edge(d, bnode, EdgeKind::Direct);
            if let GepOffset::Index { index, .. } = offset {
                let i = op_node(g, fid, *index);
                g.add_edge(d, i, EdgeKind::Direct);
            }
        }
        Inst::Alloc { dst, obj, count } => {
            // The resulting pointer is always defined.
            let d = g.node(NodeKind::Tl(fid, *dst));
            g.def_site[d as usize] = Some(site);
            g.add_edge(d, g.t_root, EdgeKind::Direct);
            if let Some(c) = count {
                let cn = op_node(g, fid, *c);
                g.add_edge(d, cn, EdgeKind::Direct);
            }
            if full {
                if let Some(fs) = fs {
                    if let Some(chis) = fs.chis.get(&site) {
                        let init = if m.objects[*obj].zero_init {
                            g.t_root
                        } else {
                            g.f_root
                        };
                        for c in chis {
                            let n = g.node(NodeKind::Mem(fid, c.new));
                            g.def_site[n as usize] = Some(site);
                            let o = g.node(NodeKind::Mem(fid, c.old));
                            g.add_edge(n, init, EdgeKind::Direct);
                            g.add_edge(n, o, EdgeKind::Direct);
                        }
                    }
                }
            }
        }
        Inst::Load { dst, addr } => {
            register_check(g, site, *addr, CheckKind::LoadAddr, fid);
            let d = g.node(NodeKind::Tl(fid, *dst));
            g.def_site[d as usize] = Some(site);
            if full {
                let mus = fs.and_then(|fs| fs.mus.get(&site));
                match mus {
                    Some(mus) if !mus.is_empty() => {
                        for mu in mus.clone() {
                            let n = g.node(NodeKind::Mem(fid, mu.def));
                            g.add_edge(d, n, EdgeKind::Direct);
                        }
                    }
                    // A load with no resolvable target (null/unknown): be
                    // conservative.
                    _ => g.add_edge(d, g.f_root, EdgeKind::Direct),
                }
            } else {
                // TL-only: memory contents are unknown.
                g.add_edge(d, g.f_root, EdgeKind::Direct);
            }
        }
        Inst::Store { addr, val } => {
            register_check(g, site, *addr, CheckKind::StoreAddr, fid);
            g.stats.total_stores += 1;
            if !full {
                return;
            }
            let Some(fs) = fs else { return };
            let Some(chis) = fs.chis.get(&site) else {
                return;
            };
            g.stats.store_chis += chis.len();
            let v = op_node(g, fid, *val);
            let unique = pa.unique_target(fid, *addr);
            if chis.len() == 1 && unique == Some(chis[0].loc) {
                let c = chis[0];
                let n = g.node(NodeKind::Mem(fid, c.new));
                g.def_site[n as usize] = Some(site);
                g.add_edge(n, v, EdgeKind::Direct);
                if pa.is_concrete(c.loc) {
                    // Strong update: the old version is killed.
                    g.stats.strong_stores += 1;
                } else if opts.semi_strong && pa.is_single_cell(c.loc) {
                    // Semi-strong: bypass back to the dominating
                    // allocation's incoming version when one exists.
                    let dominating = alloc_chis.get(&c.loc).and_then(|sites| {
                        sites
                            .iter()
                            .find(|(asite, _)| dominates_site(dt, *asite, site))
                    });
                    match dominating {
                        Some((_, old_at_alloc)) => {
                            let o = g.node(NodeKind::Mem(fid, *old_at_alloc));
                            g.add_edge(n, o, EdgeKind::Direct);
                            g.stats.semi_strong_stores += 1;
                        }
                        None => {
                            let o = g.node(NodeKind::Mem(fid, c.old));
                            g.add_edge(n, o, EdgeKind::Direct);
                            g.stats.weak_singleton_stores += 1;
                        }
                    }
                } else {
                    let o = g.node(NodeKind::Mem(fid, c.old));
                    g.add_edge(n, o, EdgeKind::Direct);
                    g.stats.weak_singleton_stores += 1;
                }
            } else {
                g.stats.multi_target_stores += 1;
                for c in chis.clone() {
                    let n = g.node(NodeKind::Mem(fid, c.new));
                    g.def_site[n as usize] = Some(site);
                    let o = g.node(NodeKind::Mem(fid, c.old));
                    g.add_edge(n, v, EdgeKind::Direct);
                    g.add_edge(n, o, EdgeKind::Direct);
                }
            }
        }
        Inst::Call { dst, callee, args } => {
            if let Callee::Indirect(t) = callee {
                register_check(g, site, *t, CheckKind::CallTarget, fid);
            }
            if let Callee::External(ext) = callee {
                if let Some(d) = dst {
                    let dn = g.node(NodeKind::Tl(fid, *d));
                    g.def_site[dn as usize] = Some(site);
                    // input() yields a defined value; other externals
                    // have no results.
                    let root = match ext {
                        ExtFunc::InputInt => g.t_root,
                        _ => g.t_root,
                    };
                    g.add_edge(dn, root, EdgeKind::Direct);
                }
                return;
            }
            let callees: Vec<FuncId> = pa.call_graph.callees_of(site).to_vec();
            // Top-level parameter and return flow.
            for &gcallee in &callees {
                let callee_fn = &m.funcs[gcallee];
                for (p, a) in callee_fn.params.clone().into_iter().zip(args.iter()) {
                    let pn = g.node(NodeKind::Tl(gcallee, p));
                    let an = op_node(g, fid, *a);
                    g.add_edge(pn, an, EdgeKind::Call(site));
                }
                if let Some(d) = dst {
                    let dn = g.node(NodeKind::Tl(fid, *d));
                    g.def_site[dn as usize] = Some(site);
                    for block in callee_fn.blocks.iter() {
                        if let Terminator::Ret(Some(op)) = &block.term {
                            let rn = op_node(g, gcallee, *op);
                            g.add_edge(dn, rn, EdgeKind::Ret(site));
                        }
                    }
                }
            }
            if !full {
                return;
            }
            let Some(fs) = fs else { return };
            // Virtual parameter flow.
            if let Some(mus) = fs.mus.get(&site) {
                for mu in mus.clone() {
                    let caller_ver = g.node(NodeKind::Mem(fid, mu.def));
                    for &gcallee in &callees {
                        if let Some(cal) = ms.funcs.get(&gcallee) {
                            if let Some(&fin) = cal.formal_in.get(&mu.loc) {
                                let fn_node = g.node(NodeKind::Mem(gcallee, fin));
                                g.add_edge(fn_node, caller_ver, EdgeKind::Call(site));
                            }
                        }
                    }
                }
            }
            if let Some(chis) = fs.chis.get(&site) {
                for c in chis.clone() {
                    let n = g.node(NodeKind::Mem(fid, c.new));
                    g.def_site[n as usize] = Some(site);
                    let o = g.node(NodeKind::Mem(fid, c.old));
                    g.add_edge(n, o, EdgeKind::Direct);
                    for &gcallee in &callees {
                        if let Some(cal) = ms.funcs.get(&gcallee) {
                            let mut ret_blocks: Vec<_> = cal.ret_mus.keys().copied().collect();
                            ret_blocks.sort_unstable();
                            for bb in ret_blocks {
                                for mu in &cal.ret_mus[&bb] {
                                    if mu.loc == c.loc {
                                        let out_node = g.node(NodeKind::Mem(gcallee, mu.def));
                                        g.add_edge(n, out_node, EdgeKind::Ret(site));
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        Inst::Phi { dst, incomings } => {
            let d = g.node(NodeKind::Tl(fid, *dst));
            g.def_site[d as usize] = Some(site);
            for (_, op) in incomings {
                let n = op_node(g, fid, *op);
                g.add_edge(d, n, EdgeKind::Direct);
            }
        }
    }
}

fn dominates_site(dt: &DomTree, a: Site, b: Site) -> bool {
    if a.block == b.block {
        return a.idx < b.idx;
    }
    dt.dominates(a.block, b.block)
}
