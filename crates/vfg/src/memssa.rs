//! Memory SSA construction (Section 3.1).
//!
//! Following the paper (which follows Chow et al.), every load is
//! annotated with `mu(rho)` functions for the locations it may read, every
//! store and allocation site with `rho_m := chi(rho_n)` functions for the
//! locations it may define, and call sites with the `mu`/`chi` of their
//! callees' mod/ref summaries. Address-taken locations are then versioned
//! per function with region phis at iterated dominance frontiers.
//!
//! Versions are function-local: interprocedural flow is threaded through
//! *virtual parameters* — the formal-in defs at function entry (fed by
//! call-site `mu` versions) and the formal-out uses at returns (feeding
//! call-site `chi` versions).
//!
//! Lifetime caveat (also present in the paper's LLVM realization): a
//! callee's own stack objects are excluded from its mod/ref summary, so a
//! dangling read of a dead frame resolves to the "no prior definition"
//! version, which the VFG maps to a fresh, dependency-free node.

use std::collections::{HashMap, HashSet};

use usher_ir::{
    BlockId, Budget, Callee, Cfg, DomTree, Exhausted, ExtFunc, FuncId, Idx, Inst, Module, ObjKind,
    Site, Terminator,
};
use usher_pointer::{Loc, PointerAnalysis};

/// A memory-version definition id, local to one function.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MemVerId(pub u32);

/// What created a memory version.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MemDefKind {
    /// Version live on function entry (virtual formal parameter).
    FormalIn,
    /// Defined by an allocation site's `chi`.
    Alloc(Site),
    /// Defined by a store's `chi`.
    StoreChi(Site),
    /// Defined by a call site's `chi` (callee may modify it).
    CallChi(Site),
    /// A region phi at a join block.
    Phi(BlockId),
}

/// One memory-version definition.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemDef {
    /// The location this version belongs to.
    pub loc: Loc,
    /// Provenance.
    pub kind: MemDefKind,
}

/// An indirect use: `mu(loc)` referencing its reaching definition.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MuUse {
    /// Location read.
    pub loc: Loc,
    /// Reaching version.
    pub def: MemVerId,
}

/// An indirect def: `new := chi(old)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChiDef {
    /// Location written.
    pub loc: Loc,
    /// The freshly defined version.
    pub new: MemVerId,
    /// The previous version (merged in on weak updates).
    pub old: MemVerId,
}

/// A region phi.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RegionPhi {
    /// Location.
    pub loc: Loc,
    /// Defined version.
    pub def: MemVerId,
    /// Incoming `(pred block, version)` pairs.
    pub incomings: Vec<(BlockId, MemVerId)>,
}

/// Memory SSA for one function.
#[derive(Clone, Debug, Default)]
pub struct FuncMemSsa {
    /// All versions, indexed by [`MemVerId`].
    pub defs: Vec<MemDef>,
    /// `mu` lists per load / call site.
    pub mus: HashMap<Site, Vec<MuUse>>,
    /// `chi` lists per store / alloc / call site.
    pub chis: HashMap<Site, Vec<ChiDef>>,
    /// Region phis per block (at block head).
    pub phis: HashMap<BlockId, Vec<RegionPhi>>,
    /// Virtual output parameters at each `ret` block: `(loc, final
    /// version)`; only locations in the function's mod summary appear.
    pub ret_mus: HashMap<BlockId, Vec<MuUse>>,
    /// The formal-in version of every versioned location.
    pub formal_in: HashMap<Loc, MemVerId>,
    /// Locations in the function's ref+mod summary (its virtual
    /// parameters); formal-ins outside this set have no callers' flow.
    pub summary_in: HashSet<Loc>,
    /// Locations in the mod summary (virtual output parameters).
    pub summary_out: HashSet<Loc>,
}

impl FuncMemSsa {
    /// The definition record for a version.
    pub fn def(&self, v: MemVerId) -> MemDef {
        self.defs[v.0 as usize]
    }
}

/// Memory SSA for the whole module plus the mod/ref summaries.
#[derive(Clone, Debug, Default)]
pub struct MemSsa {
    /// Per-function results.
    pub funcs: HashMap<FuncId, FuncMemSsa>,
}

/// Whole-program mod/ref summaries: the sequential prefix of memory-SSA
/// construction (interprocedural, bottom-up over call-graph SCCs). Once
/// computed, the per-function SSA phase ([`build_function_ssa`]) is
/// independent per function and may run in parallel.
#[derive(Clone, Debug, Default)]
pub struct ModRef {
    /// Locations each function (transitively) may modify.
    pub mods: HashMap<FuncId, HashSet<Loc>>,
    /// Locations each function (transitively) may read.
    pub refs: HashMap<FuncId, HashSet<Loc>>,
}

/// Computes the [`ModRef`] summaries for every function.
pub fn modref_summaries(m: &Module, pa: &PointerAnalysis) -> ModRef {
    modref_summaries_budgeted(m, pa, &Budget::unlimited()).expect("unlimited budgets never exhaust")
}

/// [`modref_summaries`] under a cooperative step budget: one step per
/// call-edge visit of the interprocedural fixpoint.
///
/// # Errors
///
/// Returns [`Exhausted`] when the budget runs out; a partial summary
/// under-approximates mod/ref sets and must be discarded.
pub fn modref_summaries_budgeted(
    m: &Module,
    pa: &PointerAnalysis,
    budget: &Budget,
) -> Result<ModRef, Exhausted> {
    let mut mods: HashMap<FuncId, HashSet<Loc>> = HashMap::new();
    let mut refs: HashMap<FuncId, HashSet<Loc>> = HashMap::new();
    for f in m.funcs.indices() {
        mods.insert(f, HashSet::new());
        refs.insert(f, HashSet::new());
    }
    // Direct effects.
    for (fid, func) in m.funcs.iter_enumerated() {
        for (_bb, block) in func.blocks.iter_enumerated() {
            for inst in &block.insts {
                match inst {
                    Inst::Load { addr, .. } => {
                        for l in pa.pts_operand(fid, *addr) {
                            refs.get_mut(&fid).expect("init above").insert(l);
                        }
                    }
                    Inst::Store { addr, .. } => {
                        for l in pa.pts_operand(fid, *addr) {
                            mods.get_mut(&fid).expect("init above").insert(l);
                            // The old version is merged on weak updates,
                            // which reads it.
                            refs.get_mut(&fid).expect("init above").insert(l);
                        }
                    }
                    Inst::Alloc { obj, .. } => {
                        for l in pa.all_fields(*obj) {
                            mods.get_mut(&fid).expect("init above").insert(l);
                        }
                    }
                    _ => {}
                }
            }
        }
    }
    // Transitive effects: iterate SCCs bottom-up; within an SCC loop to a
    // fixpoint.
    let bottom_up = pa.call_graph.bottom_up.clone();
    for scc in &bottom_up {
        loop {
            let mut changed = false;
            for &f in scc {
                let sites: Vec<Site> = call_sites(m, f);
                for site in sites {
                    for &g in pa.call_graph.callees_of(site) {
                        budget.try_charge(1)?;
                        let callee_mods: Vec<Loc> = mods[&g]
                            .iter()
                            .copied()
                            .filter(|l| visible_outside(m, g, *l))
                            .collect();
                        let callee_refs: Vec<Loc> = refs[&g]
                            .iter()
                            .copied()
                            .filter(|l| visible_outside(m, g, *l))
                            .collect();
                        let fm = mods.get_mut(&f).expect("init above");
                        for l in callee_mods {
                            changed |= fm.insert(l);
                        }
                        let fr = refs.get_mut(&f).expect("init above");
                        for l in callee_refs {
                            changed |= fr.insert(l);
                        }
                    }
                }
            }
            if !changed || scc.len() == 1 {
                break;
            }
        }
    }
    Ok(ModRef { mods, refs })
}

/// Builds memory SSA for one function given precomputed [`ModRef`]
/// summaries. Returns `None` for bodiless declarations. Functions are
/// independent at this phase, so callers (e.g. the `usher-driver`
/// scheduler) may fan this out across worker threads.
pub fn build_function_ssa(
    m: &Module,
    pa: &PointerAnalysis,
    fid: FuncId,
    modref: &ModRef,
) -> Option<FuncMemSsa> {
    build_function_ssa_budgeted(m, pa, fid, modref, &Budget::unlimited())
        .expect("unlimited budgets never exhaust")
}

/// [`build_function_ssa`] under a cooperative step budget: one step per
/// instruction visited during placement and renaming.
///
/// # Errors
///
/// Returns [`Exhausted`] when the budget runs out; the partial SSA form
/// must be discarded.
pub fn build_function_ssa_budgeted(
    m: &Module,
    pa: &PointerAnalysis,
    fid: FuncId,
    modref: &ModRef,
    budget: &Budget,
) -> Result<Option<FuncMemSsa>, Exhausted> {
    if m.funcs[fid].blocks.is_empty() {
        return Ok(None);
    }
    build_function(m, pa, fid, &modref.mods, &modref.refs, budget).map(Some)
}

/// Builds memory SSA for every function (sequential reference wiring;
/// the driver parallelizes the per-function phase).
pub fn build(m: &Module, pa: &PointerAnalysis) -> MemSsa {
    let modref = modref_summaries(m, pa);
    let mut out = MemSsa::default();
    for fid in m.funcs.indices() {
        if let Some(fs) = build_function_ssa(m, pa, fid, &modref) {
            out.funcs.insert(fid, fs);
        }
    }
    out
}

fn call_sites(m: &Module, f: FuncId) -> Vec<Site> {
    let mut out = Vec::new();
    for (bb, block) in m.funcs[f].blocks.iter_enumerated() {
        for (idx, inst) in block.insts.iter().enumerate() {
            if matches!(inst, Inst::Call { .. }) {
                out.push(Site::new(f, bb, idx));
            }
        }
    }
    out
}

/// A callee's own stack objects die with its frame and are not threaded
/// to callers.
fn visible_outside(m: &Module, callee: FuncId, l: Loc) -> bool {
    !matches!(m.objects[l.obj].kind, ObjKind::Stack(f) if f == callee)
}

fn build_function(
    m: &Module,
    pa: &PointerAnalysis,
    fid: FuncId,
    mods: &HashMap<FuncId, HashSet<Loc>>,
    refs: &HashMap<FuncId, HashSet<Loc>>,
    budget: &Budget,
) -> Result<FuncMemSsa, Exhausted> {
    let func = &m.funcs[fid];
    let cfg = Cfg::compute(func);
    let dt = DomTree::compute(func, &cfg);
    let mut fs = FuncMemSsa {
        summary_in: refs[&fid].union(&mods[&fid]).copied().collect(),
        summary_out: mods[&fid].clone(),
        ..Default::default()
    };

    // --- Which locations does this function version, and where are the
    // defs? (mu/chi placement decisions, before numbering.)
    #[derive(Default)]
    struct SiteEffects {
        mus: Vec<Loc>,
        chis: Vec<Loc>,
    }
    let mut effects: HashMap<Site, SiteEffects> = HashMap::new();
    let mut versioned: Vec<Loc> = Vec::new();
    let mut versioned_set: HashSet<Loc> = HashSet::new();
    let mut def_blocks: HashMap<Loc, Vec<BlockId>> = HashMap::new();

    let note = |l: Loc, versioned: &mut Vec<Loc>, versioned_set: &mut HashSet<Loc>| {
        if versioned_set.insert(l) {
            versioned.push(l);
        }
    };

    for (bb, block) in func.blocks.iter_enumerated() {
        if !cfg.is_reachable(bb) {
            continue;
        }
        for (idx, inst) in block.insts.iter().enumerate() {
            budget.try_charge(1)?;
            let site = Site::new(fid, bb, idx);
            match inst {
                Inst::Load { addr, .. } => {
                    let mut locs = pa.pts_operand(fid, *addr);
                    locs.sort_unstable();
                    locs.dedup();
                    for &l in &locs {
                        note(l, &mut versioned, &mut versioned_set);
                    }
                    effects.entry(site).or_default().mus = locs;
                }
                Inst::Store { addr, .. } => {
                    let mut locs = pa.pts_operand(fid, *addr);
                    locs.sort_unstable();
                    locs.dedup();
                    for &l in &locs {
                        note(l, &mut versioned, &mut versioned_set);
                        def_blocks.entry(l).or_default().push(bb);
                    }
                    effects.entry(site).or_default().chis = locs;
                }
                Inst::Alloc { obj, .. } => {
                    let locs = pa.all_fields(*obj);
                    for &l in &locs {
                        note(l, &mut versioned, &mut versioned_set);
                        def_blocks.entry(l).or_default().push(bb);
                    }
                    effects.entry(site).or_default().chis = locs;
                }
                Inst::Call { callee, .. } => {
                    let mut mu_locs: HashSet<Loc> = HashSet::new();
                    let mut chi_locs: HashSet<Loc> = HashSet::new();
                    match callee {
                        Callee::External(ExtFunc::Free) => {
                            // free neither defines nor reads contents.
                        }
                        Callee::External(_) => {}
                        _ => {
                            for &g in pa.call_graph.callees_of(site) {
                                for &l in &refs[&g] {
                                    if visible_outside(m, g, l) {
                                        mu_locs.insert(l);
                                    }
                                }
                                for &l in &mods[&g] {
                                    if visible_outside(m, g, l) {
                                        chi_locs.insert(l);
                                    }
                                }
                            }
                        }
                    }
                    if mu_locs.is_empty() && chi_locs.is_empty() {
                        continue;
                    }
                    let mut mus: Vec<Loc> = mu_locs.into_iter().collect();
                    let mut chis: Vec<Loc> = chi_locs.into_iter().collect();
                    mus.sort_unstable();
                    chis.sort_unstable();
                    for &l in mus.iter().chain(chis.iter()) {
                        note(l, &mut versioned, &mut versioned_set);
                    }
                    for &l in &chis {
                        def_blocks.entry(l).or_default().push(bb);
                    }
                    let e = effects.entry(site).or_default();
                    e.mus = mus;
                    e.chis = chis;
                }
                _ => {}
            }
        }
    }

    // --- Version numbering.
    let loc_idx: HashMap<Loc, usize> = versioned.iter().enumerate().map(|(i, l)| (*l, i)).collect();
    let new_def = |fs: &mut FuncMemSsa, loc: Loc, kind: MemDefKind| -> MemVerId {
        let id = MemVerId(fs.defs.len() as u32);
        fs.defs.push(MemDef { loc, kind });
        id
    };

    // Formal-in versions for every versioned loc.
    let mut cur_entry: Vec<MemVerId> = Vec::with_capacity(versioned.len());
    for &l in &versioned {
        let v = new_def(&mut fs, l, MemDefKind::FormalIn);
        fs.formal_in.insert(l, v);
        cur_entry.push(v);
    }

    // Phi placement at iterated dominance frontiers; entry is a def block
    // for every loc (the formal-in). Iterate locs in discovery order, not
    // map order, so version numbering and per-block phi order are stable.
    let mut phi_at: HashMap<(BlockId, usize), MemVerId> = HashMap::new();
    for l in &versioned {
        let Some(blocks) = def_blocks.get(l) else {
            continue;
        };
        let li = loc_idx[l];
        let mut dbs = blocks.clone();
        dbs.push(func.entry);
        dbs.sort_unstable();
        dbs.dedup();
        for bb in dt.iterated_frontier(&dbs) {
            let v = new_def(&mut fs, *l, MemDefKind::Phi(bb));
            fs.phis.entry(bb).or_default().push(RegionPhi {
                loc: *l,
                def: v,
                incomings: Vec::new(),
            });
            phi_at.insert((bb, li), v);
        }
    }

    // --- Renaming over the dominator tree.
    let mut visited = vec![false; func.blocks.len()];
    let mut stack: Vec<(BlockId, Vec<MemVerId>)> = vec![(func.entry, cur_entry)];
    while let Some((bb, mut cur)) = stack.pop() {
        if visited[bb.index()] {
            continue;
        }
        visited[bb.index()] = true;
        budget.try_charge(1 + func.blocks[bb].insts.len() as u64)?;

        if let Some(phis) = fs.phis.get(&bb) {
            for p in phis {
                cur[loc_idx[&p.loc]] = p.def;
            }
        }

        for (idx, inst) in func.blocks[bb].insts.iter().enumerate() {
            let site = Site::new(fid, bb, idx);
            let Some(e) = effects.get(&site) else {
                continue;
            };
            // mus first (they read the pre-state).
            if !e.mus.is_empty() {
                let mus: Vec<MuUse> = e
                    .mus
                    .iter()
                    .map(|l| MuUse {
                        loc: *l,
                        def: cur[loc_idx[l]],
                    })
                    .collect();
                fs.mus.insert(site, mus);
            }
            if !e.chis.is_empty() {
                let kind = match inst {
                    Inst::Alloc { .. } => MemDefKind::Alloc(site),
                    Inst::Store { .. } => MemDefKind::StoreChi(site),
                    Inst::Call { .. } => MemDefKind::CallChi(site),
                    _ => unreachable!("chi only on alloc/store/call"),
                };
                let mut chis = Vec::with_capacity(e.chis.len());
                for l in &e.chis {
                    let old = cur[loc_idx[l]];
                    let new = new_def(&mut fs, *l, kind);
                    cur[loc_idx[l]] = new;
                    chis.push(ChiDef { loc: *l, new, old });
                }
                fs.chis.insert(site, chis);
            }
        }

        // Virtual output parameters at returns.
        if let Terminator::Ret(_) = func.blocks[bb].term {
            let mut outs: Vec<MuUse> = fs
                .summary_out
                .iter()
                .filter(|l| loc_idx.contains_key(l))
                .map(|l| MuUse {
                    loc: *l,
                    def: cur[loc_idx[l]],
                })
                .collect();
            outs.sort_by_key(|mu| mu.loc);
            fs.ret_mus.insert(bb, outs);
        }

        // Fill successor phis.
        for &succ in &cfg.succs[bb] {
            if let Some(phis) = fs.phis.get_mut(&succ) {
                for p in phis {
                    p.incomings.push((bb, cur[loc_idx[&p.loc]]));
                }
            }
        }

        for &c in dt.children[bb].iter().rev() {
            stack.push((c, cur.clone()));
        }
    }

    Ok(fs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use usher_frontend::compile_o0im;
    use usher_pointer::analyze;

    fn memssa_for(src: &str) -> (Module, PointerAnalysis, MemSsa) {
        let m = compile_o0im(src).expect("compiles");
        let pa = analyze(&m);
        let ms = build(&m, &pa);
        (m, pa, ms)
    }

    #[test]
    fn load_gets_mu_store_gets_chi() {
        let (m, _pa, ms) = memssa_for(
            "int g;
             def main() -> int { g = 3; return g; }",
        );
        let fid = m.main.unwrap();
        let fs = &ms.funcs[&fid];
        assert_eq!(fs.chis.len(), 1, "one store chi");
        assert_eq!(fs.mus.len(), 1, "one load mu");
        let chi = fs.chis.values().next().unwrap();
        let mu = fs.mus.values().next().unwrap();
        assert_eq!(chi[0].loc, mu[0].loc);
        // The load's reaching def is the store's chi.
        assert_eq!(mu[0].def, chi[0].new);
    }

    #[test]
    fn loop_induces_region_phi() {
        let (m, _pa, ms) = memssa_for(
            "int g;
             def main() {
                 int i = 0;
                 while (i < 4) { g = g + i; i = i + 1; }
                 print(g);
             }",
        );
        let fid = m.main.unwrap();
        let fs = &ms.funcs[&fid];
        let total_phis: usize = fs.phis.values().map(Vec::len).sum();
        assert!(total_phis >= 1, "loop-carried memory needs a region phi");
        // Every phi has one incoming per predecessor (2 for a loop header).
        for phis in fs.phis.values() {
            for p in phis {
                assert_eq!(p.incomings.len(), 2, "{p:?}");
            }
        }
    }

    #[test]
    fn call_site_gets_callee_effects() {
        let (m, _pa, ms) = memssa_for(
            "int g;
             def bump() { g = g + 1; }
             def main() { bump(); print(g); }",
        );
        let main = m.main.unwrap();
        let fs = &ms.funcs[&main];
        // The call to bump must carry both a mu (bump reads g) and a chi
        // (bump writes g).
        let call_chis: Vec<_> = fs
            .chis
            .iter()
            .filter(|(_, cs)| {
                cs.iter()
                    .any(|c| matches!(fs.def(c.new).kind, MemDefKind::CallChi(_)))
            })
            .collect();
        assert_eq!(call_chis.len(), 1);
        let call_mus: Vec<_> = fs.mus.iter().collect();
        assert!(!call_mus.is_empty());
        // bump's own summary includes g on both sides.
        let bump = m.func_by_name("bump").unwrap();
        let bs = &ms.funcs[&bump];
        assert_eq!(bs.summary_out.len(), 1);
        assert!(!bs.summary_in.is_empty());
        // bump's ret carries the final version of g.
        assert_eq!(bs.ret_mus.len(), 1);
        assert_eq!(bs.ret_mus.values().next().unwrap().len(), 1);
    }

    #[test]
    fn callee_stack_objects_stay_private() {
        let (m, _pa, ms) = memssa_for(
            "def helper() -> int { int x; int *p = &x; *p = 5; return *p; }
             def main() { print(helper()); }",
        );
        let main = m.main.unwrap();
        let fs = &ms.funcs[&main];
        // helper's local x must not appear in main's call-site chis.
        for chis in fs.chis.values() {
            for c in chis {
                assert!(
                    !matches!(m.objects[c.loc.obj].kind, ObjKind::Stack(f) if f != main),
                    "foreign stack object leaked into main: {c:?}"
                );
            }
        }
    }

    #[test]
    fn alloc_defines_every_field_class() {
        let (m, _pa, ms) = memssa_for(
            "struct P { int x; int y; };
             def main() { struct P *p; p = malloc(1); p->x = 1; p->y = 2; print(p->x + p->y); }",
        );
        let fid = m.main.unwrap();
        let fs = &ms.funcs[&fid];
        // Find the alloc chi (malloc was inlined/unchanged; kind Alloc).
        let alloc_chis: Vec<_> = fs
            .chis
            .values()
            .flatten()
            .filter(|c| matches!(fs.def(c.new).kind, MemDefKind::Alloc(_)))
            .collect();
        // Struct P has two field classes; both get a chi at the heap alloc.
        let heap_chis: Vec<_> = alloc_chis
            .iter()
            .filter(|c| matches!(m.objects[c.loc.obj].kind, ObjKind::Heap(_)))
            .collect();
        assert_eq!(heap_chis.len(), 2, "{alloc_chis:?}");
    }

    #[test]
    fn store_through_unknown_pointer_weakly_updates_all_targets() {
        let (m, _pa, ms) = memssa_for(
            "int a; int b;
             def main(int c) {
                 int *p;
                 if (c) { p = &a; } else { p = &b; }
                 *p = 7;
                 print(a);
             }",
        );
        let fid = m.main.unwrap();
        let fs = &ms.funcs[&fid];
        // The store *p = 7 must chi both a and b.
        let store_chis: Vec<_> = fs
            .chis
            .values()
            .filter(|cs| {
                cs.iter()
                    .any(|c| matches!(fs.def(c.new).kind, MemDefKind::StoreChi(_)))
            })
            .collect();
        assert_eq!(store_chis.len(), 1);
        assert_eq!(store_chis[0].len(), 2, "{store_chis:?}");
    }

    #[test]
    fn mu_reaching_def_is_formal_in_when_unwritten() {
        let (m, _pa, ms) = memssa_for(
            "int g;
             def reader() -> int { return g; }
             def main() { print(reader()); }",
        );
        let reader = m.func_by_name("reader").unwrap();
        let fs = &ms.funcs[&reader];
        let mu = fs.mus.values().next().unwrap();
        assert!(matches!(fs.def(mu[0].def).kind, MemDefKind::FormalIn));
    }
}
