//! Demand-driven definedness queries (DESIGN.md §13).
//!
//! The exhaustive resolver answers "is `v` reachable from `F`?" for
//! every node of the VFG. This module answers it for *one* node — a
//! check the planner is about to consult — by walking only the node's
//! backward dependence cone: a sparse DFS over `deps` edges that stops
//! at already-resolved frontier nodes, then a forward lane propagation
//! over just the touched SCCs in condensation order. The machinery is
//! the *same* machinery the exhaustive engine uses ([`CtxTable`],
//! [`Lanes`], [`transfer`] live here and are imported by
//! `usher-core::resolve`), so demand verdicts are byte-equal to the
//! exhaustive `Gamma` by construction, not by luck.
//!
//! Three ideas from SUPA (demand-driven pointer analysis with strong
//! updates via value-flow refinement) shape the walk:
//!
//! * **sparsity** — only the cone of the queried use is visited; nodes
//!   outside it are never materialized;
//! * **refinement** — a resolved predecessor whose lane row is empty is
//!   *proven* `Top` (a strong update killed every `F` path through it),
//!   so the pull across that edge is skipped entirely; the
//!   [`DemandStats::refinements`] counter records each pruned edge;
//! * **memoization** — every SCC the walk completes is marked resolved,
//!   its lanes final; a later query whose cone touches it stops there,
//!   and a query *on* a resolved node is a pure memo hit.
//!
//! Every walk is bounded by a [`Budget`] (steps and wall-clock
//! deadline, polled every [`DeadlinePoller::PERIOD`] charge units): an
//! exhausted query returns `Bot` with `complete = false` and leaves the
//! engine in a safe state — lanes are monotone, so a later query (or a
//! retry with more budget) resumes the walk instead of restarting it.

use usher_ir::{Budget, FxHashMap, Site};

use crate::build::{EdgeKind, Vfg};

/// Interned k-limited calling contexts.
///
/// A context is a stack of at most `k` unmatched call sites plus an
/// `overflowed` bit recording that older entries were dropped (after
/// which returns become unconstrained — sound over-approximation).
/// Contexts are deduplicated into dense `u32` ids; push results are
/// memoized per `(ctx, site)` and pop results per ctx (a pop only
/// depends on the stack top).
pub struct CtxTable {
    /// id -> (stack, overflowed).
    entries: Vec<(Vec<Site>, bool)>,
    ids: FxHashMap<(Vec<Site>, bool), u32>,
    push_cache: FxHashMap<(u32, Site), u32>,
    /// id -> id of the context with the top popped (for a matching top).
    pop_cache: Vec<Option<u32>>,
    k: usize,
}

impl CtxTable {
    /// An empty table for depth `k`, with the empty context pre-interned
    /// as id 0.
    pub fn new(k: usize) -> CtxTable {
        let mut t = CtxTable {
            entries: Vec::new(),
            ids: FxHashMap::default(),
            push_cache: FxHashMap::default(),
            pop_cache: Vec::new(),
            k,
        };
        t.intern(Vec::new(), false);
        t
    }

    /// The empty context.
    pub fn empty(&self) -> u32 {
        0
    }

    /// Number of distinct contexts interned so far.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no context has been interned (never true: the empty
    /// context is interned at construction).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn intern(&mut self, stack: Vec<Site>, overflowed: bool) -> u32 {
        if let Some(&id) = self.ids.get(&(stack.clone(), overflowed)) {
            return id;
        }
        let id = self.entries.len() as u32;
        self.entries.push((stack.clone(), overflowed));
        self.ids.insert((stack, overflowed), id);
        self.pop_cache.push(None);
        id
    }

    /// Entering a callee through `site`.
    pub fn push(&mut self, ctx: u32, site: Site) -> u32 {
        if let Some(&id) = self.push_cache.get(&(ctx, site)) {
            return id;
        }
        let (stack, overflowed) = &self.entries[ctx as usize];
        let id = if self.k == 0 {
            let stack = stack.clone();
            self.intern(stack, true)
        } else {
            let mut stack = stack.clone();
            let mut overflowed = *overflowed;
            stack.push(site);
            if stack.len() > self.k {
                stack.remove(0);
                overflowed = true;
            }
            self.intern(stack, overflowed)
        };
        self.push_cache.insert((ctx, site), id);
        id
    }

    /// Leaving a callee through `site`; `None` when the return is
    /// unrealizable in this context.
    pub fn pop(&mut self, ctx: u32, site: Site) -> Option<u32> {
        let (stack, overflowed) = &self.entries[ctx as usize];
        match stack.last() {
            Some(&top) if top == site => {
                if let Some(id) = self.pop_cache[ctx as usize] {
                    return Some(id);
                }
                let mut stack = stack.clone();
                let overflowed = *overflowed;
                stack.pop();
                let id = self.intern(stack, overflowed);
                self.pop_cache[ctx as usize] = Some(id);
                Some(id)
            }
            Some(_) => None, // mismatched return: unrealizable
            None => {
                // Nothing tracked: either we overflowed (permissive) or
                // the value originated inside the callee (partially
                // balanced path) — both allowed.
                Some(ctx)
            }
        }
    }
}

/// Per-node context-lane bitsets: lane `c` of node `v` set means the
/// state `(v, context c)` is reachable from `(F, empty)`. One flat
/// strided buffer; the stride (words per node) grows only when the
/// interned-context count crosses a 64-multiple, and spills to as many
/// words as the context space needs.
pub struct Lanes {
    words: Vec<u64>,
    /// Words per node (power of two).
    stride: usize,
    n: usize,
    /// Total set bits (= visited `(node, context)` states).
    states: usize,
    /// Word-level operations spent ORing and scanning lanes.
    word_ops: usize,
}

impl Lanes {
    /// All-clear lanes for `n` nodes.
    pub fn new(n: usize) -> Lanes {
        Lanes {
            words: vec![0u64; n],
            stride: 1,
            n,
            states: 0,
            word_ops: 0,
        }
    }

    #[cold]
    fn grow(&mut self, need: usize) {
        let new_stride = need.next_power_of_two();
        let mut new_words = vec![0u64; self.n * new_stride];
        for v in 0..self.n {
            new_words[v * new_stride..v * new_stride + self.stride]
                .copy_from_slice(&self.words[v * self.stride..(v + 1) * self.stride]);
        }
        self.words = new_words;
        self.stride = new_stride;
    }

    /// Sets lane `ctx` of `node`; returns whether it was clear.
    #[inline]
    pub fn set(&mut self, node: u32, ctx: u32) -> bool {
        let wi = (ctx / 64) as usize;
        if wi >= self.stride {
            self.grow(wi + 1);
        }
        let w = &mut self.words[node as usize * self.stride + wi];
        let mask = 1u64 << (ctx % 64);
        if *w & mask == 0 {
            *w |= mask;
            self.states += 1;
            true
        } else {
            false
        }
    }

    /// Whether `node` has no reachable context.
    #[inline]
    pub fn row_empty(&self, node: u32) -> bool {
        let lo = node as usize * self.stride;
        self.words[lo..lo + self.stride].iter().all(|&w| w == 0)
    }

    /// `dst |= src`, word-parallel; returns whether any lane was added.
    #[inline]
    pub fn or_into(&mut self, src: u32, dst: u32) -> bool {
        if src == dst {
            return false;
        }
        let s = src as usize * self.stride;
        let d = dst as usize * self.stride;
        let mut changed = false;
        for i in 0..self.stride {
            let v = self.words[s + i];
            self.word_ops += 1;
            if v != 0 {
                let old = self.words[d + i];
                let new = old | v;
                if new != old {
                    self.words[d + i] = new;
                    self.states += (old ^ new).count_ones() as usize;
                    changed = true;
                }
            }
        }
        changed
    }

    /// Copies `node`'s row into `scratch` (so callers can iterate lanes
    /// while `set` may reallocate the buffer, and so self-loop edges read
    /// a stable snapshot).
    #[inline]
    pub fn snapshot(&mut self, node: u32, scratch: &mut Vec<u64>) {
        let lo = node as usize * self.stride;
        scratch.clear();
        scratch.extend_from_slice(&self.words[lo..lo + self.stride]);
        self.word_ops += self.stride;
    }

    /// Total `(node, context)` states set so far.
    pub fn states(&self) -> usize {
        self.states
    }

    /// Word-level operations spent ORing and scanning lanes.
    pub fn word_ops(&self) -> usize {
        self.word_ops
    }
}

/// Propagates `u`'s lanes across one users edge `u -> w`. Direct edges
/// move all contexts in one word-parallel OR; Call/Ret remap each lane
/// through the context table, reading from a snapshot because `set` can
/// grow the buffer mid-iteration (and because `w == u` self-loops must
/// not observe their own writes within one transfer).
pub fn transfer(
    lanes: &mut Lanes,
    ctxs: &mut CtxTable,
    scratch: &mut Vec<u64>,
    u: u32,
    w: u32,
    kind: EdgeKind,
) -> bool {
    match kind {
        EdgeKind::Direct => lanes.or_into(u, w),
        EdgeKind::Call(site) | EdgeKind::Ret(site) => {
            let is_call = matches!(kind, EdgeKind::Call(_));
            lanes.snapshot(u, scratch);
            let mut changed = false;
            for (wi, &word) in scratch.iter().enumerate() {
                let mut bits = word;
                while bits != 0 {
                    let b = bits.trailing_zeros();
                    bits &= bits - 1;
                    let ctx = (wi as u32) * 64 + b;
                    let next = if is_call {
                        Some(ctxs.push(ctx, site))
                    } else {
                        ctxs.pop(ctx, site)
                    };
                    if let Some(nc) = next {
                        changed |= lanes.set(w, nc);
                    }
                }
            }
            changed
        }
    }
}

/// Amortized wall-clock deadline polling: `Budget::deadline_exceeded`
/// reads the clock, so hot loops call [`DeadlinePoller::due`] per charge
/// unit and only every [`DeadlinePoller::PERIOD`]-th call actually polls.
/// This is how one giant SCC stops blowing past `--deadline-ms` between
/// stage boundaries.
#[derive(Default)]
pub struct DeadlinePoller {
    count: u32,
}

impl DeadlinePoller {
    /// Charge units between clock reads.
    pub const PERIOD: u32 = 1024;

    /// A poller whose first clock read is `PERIOD` calls away.
    pub fn new() -> DeadlinePoller {
        DeadlinePoller::default()
    }

    /// Counts one charge unit; true when this call polled the clock and
    /// the deadline has passed.
    #[inline]
    pub fn due(&mut self, budget: &Budget) -> bool {
        self.count = self.count.wrapping_add(1);
        self.count.is_multiple_of(Self::PERIOD) && budget.deadline_exceeded()
    }
}

/// Counters from one engine's lifetime of queries (threaded into driver
/// and serve telemetry).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DemandStats {
    /// Queries answered (including memo hits).
    pub queries: usize,
    /// Queries answered without any walk (node already resolved).
    pub memo_hits: usize,
    /// Cone nodes visited during backward discovery.
    pub nodes_visited: usize,
    /// Inbound pulls skipped because the resolved predecessor was proven
    /// `Top` (its lane row is empty — a strong update killed every `F`
    /// path through it).
    pub refinements: usize,
    /// SCCs fully processed and memoized.
    pub sccs_processed: usize,
    /// Queries that exhausted their budget and degraded to `Bot`.
    pub exhausted_queries: usize,
}

/// One query's answer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QueryVerdict {
    /// Whether the node may be undefined (`Bot`). Exhausted queries
    /// report `true` — degrading to `Bot` is the sound direction.
    pub bot: bool,
    /// Whether the walk completed. When false the verdict is the forced
    /// `Bot` over-approximation, not the exact value.
    pub complete: bool,
}

/// The demand-driven query engine.
///
/// Holds no reference to the graph: every method takes the [`Vfg`] it
/// was constructed against (asserted by node count), so the engine can
/// live beside the graph in session state without self-reference. All
/// state is monotone — lanes only gain bits, SCCs only become resolved —
/// which is what makes partial (budget-exhausted) walks resumable and
/// verdict memoization sound.
pub struct DemandEngine {
    ctxs: CtxTable,
    lanes: Lanes,
    /// `resolved[v]` = `v`'s SCC has been fully processed; its lanes are
    /// final and `verdict_of(v)` is exact.
    resolved: Vec<bool>,
    stats: DemandStats,
    scratch: Vec<u64>,
    queue: Vec<u32>,
    queued: Vec<bool>,
    /// Per-node DFS stamp (`== epoch` means visited this query), so cone
    /// discovery needs no per-query allocation.
    mark: Vec<u32>,
    /// Per-SCC stamp for the touched-component set.
    comp_mark: Vec<u32>,
    epoch: u32,
    n: usize,
    k: usize,
}

impl DemandEngine {
    /// An engine for `vfg` at context depth `k`, with the roots
    /// pre-resolved: `F` carries the empty context, `T` carries nothing
    /// (roots have no dependences, so their rows are final at birth).
    pub fn new(vfg: &Vfg, k: usize) -> DemandEngine {
        let n = vfg.len();
        let sccs = vfg.condensation().sccs;
        let ctxs = CtxTable::new(k);
        let mut lanes = Lanes::new(n);
        let mut resolved = vec![false; n];
        let empty = ctxs.empty();
        lanes.set(vfg.f_root, empty);
        resolved[vfg.f_root as usize] = true;
        resolved[vfg.t_root as usize] = true;
        DemandEngine {
            ctxs,
            lanes,
            resolved,
            stats: DemandStats::default(),
            scratch: Vec::new(),
            queue: Vec::new(),
            queued: vec![false; n],
            mark: vec![0; n],
            comp_mark: vec![0; sccs],
            epoch: 0,
            n,
            k,
        }
    }

    /// The context depth the engine was built with.
    pub fn context_depth(&self) -> usize {
        self.k
    }

    /// Number of VFG nodes the engine covers.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the engine covers no nodes.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Lifetime counters.
    pub fn stats(&self) -> DemandStats {
        self.stats
    }

    /// Whether `v`'s SCC has been fully processed (its verdict is exact
    /// and memoized).
    pub fn is_resolved(&self, v: u32) -> bool {
        self.resolved[v as usize]
    }

    /// The memoized exact verdict of a resolved node (`true` = `Bot`),
    /// without counting a query; `None` when `v` is not resolved yet.
    pub fn verdict_of(&self, v: u32) -> Option<bool> {
        self.resolved[v as usize].then(|| !self.lanes.row_empty(v))
    }

    /// The resolved-coverage map, in the same shape the anytime
    /// exhaustive resolver reports: `resolved[v]` true iff `v`'s value
    /// is exact. Un-walked nodes count as uncovered.
    pub fn coverage(&self) -> &[bool] {
        &self.resolved
    }

    /// Distinct contexts interned across all queries so far.
    pub fn interned_contexts(&self) -> usize {
        self.ctxs.len()
    }

    /// `(node, context)` states reached across all queries so far.
    pub fn visited_states(&self) -> usize {
        self.lanes.states()
    }

    /// Word operations spent in lane propagation across all queries.
    pub fn word_ops(&self) -> usize {
        self.lanes.word_ops()
    }

    /// Answers "may `node` be undefined?" for one node, walking only its
    /// backward cone and reusing every SCC any earlier query resolved.
    ///
    /// The walk has two phases. **Discovery**: a DFS over `deps` edges
    /// from `node`, stopping at resolved frontier nodes, collects the
    /// touched SCCs; because `deps` is the exact transpose of `users`,
    /// the cone automatically contains every member of every touched SCC.
    /// **Propagation**: touched SCCs are processed in decreasing
    /// component id — the condensation's topological order, so every
    /// cross-SCC source is final before its target's fixpoint — by first
    /// pulling inbound lanes through each member's `deps` edges (skipping
    /// proven-`Top` sources: the refinement), then running the same
    /// intra-SCC worklist fixpoint the exhaustive engine runs, then
    /// marking the SCC resolved. The queried node's SCC has the minimum
    /// component id in the cone and is processed last, so an exhausted
    /// walk always leaves the queried node unresolved — never a stale
    /// non-exact memo.
    ///
    /// # Panics
    ///
    /// Panics when `vfg` is not the graph the engine was built against
    /// (detected by node count).
    pub fn query(&mut self, vfg: &Vfg, node: u32, budget: &Budget) -> QueryVerdict {
        assert_eq!(
            vfg.len(),
            self.n,
            "DemandEngine::query called with a different graph than it was built against"
        );
        self.stats.queries += 1;
        if self.resolved[node as usize] {
            self.stats.memo_hits += 1;
            return QueryVerdict {
                bot: !self.lanes.row_empty(node),
                complete: true,
            };
        }
        let cond = vfg.condensation();
        let mut poller = DeadlinePoller::new();
        self.epoch = self.epoch.wrapping_add(1);

        // Phase 1: backward cone discovery over `deps`, stopping at the
        // resolved frontier. Touched SCCs are recorded once each.
        let mut touched: Vec<u32> = Vec::new();
        let mut stack: Vec<u32> = vec![node];
        self.mark[node as usize] = self.epoch;
        let mut exhausted = false;
        while let Some(v) = stack.pop() {
            if !budget.charge(1) || poller.due(budget) {
                exhausted = true;
                break;
            }
            self.stats.nodes_visited += 1;
            let c = cond.comp[v as usize] as usize;
            if self.comp_mark[c] != self.epoch {
                self.comp_mark[c] = self.epoch;
                touched.push(c as u32);
            }
            for (d, _) in vfg.deps.edges(v) {
                if self.resolved[d as usize] || self.mark[d as usize] == self.epoch {
                    continue;
                }
                self.mark[d as usize] = self.epoch;
                stack.push(d);
            }
        }

        // Phase 2: process touched SCCs source-first (decreasing id).
        if !exhausted {
            touched.sort_unstable_by(|a, b| b.cmp(a));
            'sccs: for &c in &touched {
                let members = cond.members_of(c);
                if !budget.charge(members.len() as u64) || poller.due(budget) {
                    exhausted = true;
                    break 'sccs;
                }
                // Pull inbound lanes: every cross-SCC dependence source is
                // either resolved (final) or in a higher, already-processed
                // touched SCC. An empty source row is a proven Top —
                // refinement prunes the pull.
                for &w in members {
                    for (d, kind) in vfg.deps.edges(w) {
                        if cond.comp[d as usize] == c {
                            continue;
                        }
                        if self.lanes.row_empty(d) {
                            self.stats.refinements += 1;
                            continue;
                        }
                        if !budget.charge(1) || poller.due(budget) {
                            exhausted = true;
                            break 'sccs;
                        }
                        transfer(
                            &mut self.lanes,
                            &mut self.ctxs,
                            &mut self.scratch,
                            d,
                            w,
                            kind,
                        );
                    }
                }
                // Intra-SCC fixpoint, identical to the exhaustive engine.
                for &u in members {
                    if !self.lanes.row_empty(u) && !self.queued[u as usize] {
                        self.queue.push(u);
                        self.queued[u as usize] = true;
                    }
                }
                while let Some(u) = self.queue.pop() {
                    self.queued[u as usize] = false;
                    for (w, kind) in vfg.users.edges(u) {
                        if cond.comp[w as usize] != c {
                            continue;
                        }
                        if !budget.charge(1) || poller.due(budget) {
                            exhausted = true;
                            break 'sccs;
                        }
                        if transfer(
                            &mut self.lanes,
                            &mut self.ctxs,
                            &mut self.scratch,
                            u,
                            w,
                            kind,
                        ) && !self.queued[w as usize]
                        {
                            self.queue.push(w);
                            self.queued[w as usize] = true;
                        }
                    }
                }
                for &u in members {
                    self.resolved[u as usize] = true;
                }
                self.stats.sccs_processed += 1;
            }
        }

        if exhausted {
            // Leave monotone state (lanes, resolved prefixes) for resume,
            // but clear the transient worklist.
            while let Some(u) = self.queue.pop() {
                self.queued[u as usize] = false;
            }
            self.stats.exhausted_queries += 1;
            return QueryVerdict {
                bot: true,
                complete: false,
            };
        }
        debug_assert!(self.resolved[node as usize]);
        QueryVerdict {
            bot: !self.lanes.row_empty(node),
            complete: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{analyze_module, VfgMode};
    use usher_frontend::compile_o0im;

    const SRC: &str = "
        def id(int x) -> int { return x; }
        def pass(int y) -> int { return id(y); }
        def main() -> int {
            int u;
            int a = pass(u);
            int b = pass(3);
            int *p;
            p = malloc(2);
            *p = a;
            return b + *p;
        }";

    fn vfg_for(src: &str) -> Vfg {
        let m = compile_o0im(src).expect("compiles");
        let (_pa, _ms, g) = analyze_module(&m, VfgMode::Full);
        g
    }

    /// Exhaustive oracle: the walk engine's bot vector over `users`.
    fn oracle(vfg: &Vfg, k: usize) -> Vec<bool> {
        // Inline reference reachability (clone of the walk engine's
        // semantics) to avoid a dependency cycle with usher-core.
        let mut eng = DemandEngine::new(vfg, k);
        let b = Budget::unlimited();
        (0..vfg.len() as u32)
            .map(|v| eng.query(vfg, v, &b).bot)
            .collect()
    }

    #[test]
    fn roots_are_memoized_at_birth() {
        let g = vfg_for("def main() { print(1); }");
        let mut eng = DemandEngine::new(&g, 1);
        assert!(eng.is_resolved(g.f_root));
        assert!(eng.is_resolved(g.t_root));
        let b = Budget::unlimited();
        assert!(eng.query(&g, g.f_root, &b).bot, "F is Bot by definition");
        assert!(!eng.query(&g, g.t_root, &b).bot, "T is Top by definition");
        assert_eq!(eng.stats().memo_hits, 2, "roots answer from the memo");
    }

    #[test]
    fn check_queries_match_query_all_order_independence() {
        // Verdicts must not depend on query order: querying checks first
        // then everything, vs everything in node order, must agree.
        for k in [0usize, 1, 2] {
            let g = vfg_for(SRC);
            let all = oracle(&g, k);
            let mut eng = DemandEngine::new(&g, k);
            let b = Budget::unlimited();
            let mut check_nodes: Vec<u32> = g.checks.iter().map(|c| c.node).collect();
            check_nodes.reverse();
            for &c in &check_nodes {
                let v = eng.query(&g, c, &b);
                assert!(v.complete);
                assert_eq!(v.bot, all[c as usize], "check node {c} at k={k}");
            }
            for v in 0..g.len() as u32 {
                assert_eq!(eng.query(&g, v, &b).bot, all[v as usize], "node {v} k={k}");
            }
        }
    }

    #[test]
    fn second_query_is_a_memo_hit_with_no_new_visits() {
        let g = vfg_for(SRC);
        let mut eng = DemandEngine::new(&g, 1);
        let b = Budget::unlimited();
        let target = g.checks.first().expect("program has checks").node;
        let cold = eng.query(&g, target, &b);
        let after_cold = eng.stats();
        assert!(after_cold.nodes_visited > 0);
        assert_eq!(after_cold.memo_hits, 0);
        let warm = eng.query(&g, target, &b);
        let after_warm = eng.stats();
        assert_eq!(warm, cold);
        assert_eq!(after_warm.memo_hits, 1);
        assert_eq!(
            after_warm.nodes_visited, after_cold.nodes_visited,
            "a memo hit must not walk"
        );
    }

    #[test]
    fn exhausted_query_degrades_to_bot_and_resumes() {
        let g = vfg_for(SRC);
        let target = g.checks.last().expect("program has checks").node;
        let mut eng = DemandEngine::new(&g, 1);
        let full = eng.query(&g, target, &Budget::unlimited());
        assert!(full.complete);
        // Every starvation level: exhausted queries are Bot/incomplete,
        // and a follow-up unlimited query still lands on the exact value.
        for steps in 0..60 {
            let mut eng = DemandEngine::new(&g, 1);
            let v = eng.query(&g, target, &Budget::limited(steps));
            if v.complete {
                assert_eq!(v.bot, full.bot, "complete at {steps} must be exact");
            } else {
                assert!(v.bot, "exhausted query must degrade to Bot");
                assert!(!eng.is_resolved(target), "no stale memo after exhaustion");
                assert_eq!(eng.stats().exhausted_queries, 1);
                let resumed = eng.query(&g, target, &Budget::unlimited());
                assert!(resumed.complete);
                assert_eq!(resumed.bot, full.bot, "resume after {steps} steps");
            }
        }
    }

    #[test]
    fn refinement_prunes_proven_top_frontiers() {
        // `b + *p` in SRC depends on values that are partly proven Top;
        // once a query resolves those SCCs, a later overlapping query
        // must record refinements instead of re-pulling empty rows.
        let g = vfg_for(SRC);
        let mut eng = DemandEngine::new(&g, 1);
        let b = Budget::unlimited();
        for v in 0..g.len() as u32 {
            eng.query(&g, v, &b);
        }
        assert!(
            eng.stats().refinements > 0,
            "a program with Top stores must prune at least one pull: {:?}",
            eng.stats()
        );
    }

    #[test]
    fn deadline_poller_fires_on_expired_deadline() {
        let budget = Budget::new(None, Some(std::time::Duration::ZERO));
        let mut p = DeadlinePoller::new();
        let mut fired = false;
        for _ in 0..2 * DeadlinePoller::PERIOD {
            if p.due(&budget) {
                fired = true;
                break;
            }
        }
        assert!(fired, "an expired deadline must be seen within one period");
        let mut p = DeadlinePoller::new();
        let unlimited = Budget::unlimited();
        for _ in 0..2 * DeadlinePoller::PERIOD {
            assert!(!p.due(&unlimited));
        }
    }
}
