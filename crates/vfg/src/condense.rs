//! SCC condensation of a CSR graph (iterative Tarjan).
//!
//! Definedness resolution propagates reachability from the `F` root over
//! the *users* graph. That graph has cycles (loops, recursion, memory
//! phis), so a plain topological sweep is impossible — but its
//! condensation is a DAG, and Tarjan's algorithm emits SCCs in reverse
//! topological order as a by-product. The resolver walks SCC ids from
//! high to low (= topological order of the condensation), running a
//! fixpoint only *inside* the non-trivial components.
//!
//! The condensation is computed once per VFG and shared: Opt II only
//! ever *removes* edges, which can split an SCC into smaller ones but
//! never merge two, so any topological order of the original
//! condensation remains a valid topological order of the filtered graph
//! — the resolver just runs its intra-SCC fixpoint over a component
//! that happens to have become acyclic.

use crate::csr::Csr;

/// The SCC condensation of a graph.
#[derive(Clone, Debug, Default)]
pub struct Condensation {
    /// `comp[v]` = SCC id of node `v`. Tarjan completes sink components
    /// first, so ids increase against the edge direction: an edge
    /// `u -> w` with `comp[u] != comp[w]` implies `comp[u] > comp[w]`.
    pub comp: Vec<u32>,
    /// Number of SCCs.
    pub sccs: usize,
    /// `member_offsets[c]..member_offsets[c + 1]` indexes `members` for
    /// SCC `c`.
    pub member_offsets: Vec<u32>,
    /// Node ids grouped by SCC.
    pub members: Vec<u32>,
    /// SCCs with more than one node or a self-loop — the ones that need
    /// an intra-component fixpoint.
    pub nontrivial: usize,
}

impl Condensation {
    /// Runs iterative Tarjan over `g` and groups nodes by component.
    pub fn compute(g: &Csr) -> Condensation {
        let n = g.len();
        const UNVISITED: u32 = u32::MAX;
        let mut index = vec![UNVISITED; n];
        let mut lowlink = vec![0u32; n];
        let mut on_stack = vec![false; n];
        let mut comp = vec![0u32; n];
        let mut stack: Vec<u32> = Vec::new();
        // (node, next-edge cursor); cursor indexes into g's flat arrays.
        let mut call: Vec<(u32, u32)> = Vec::new();
        let mut next_index = 0u32;
        let mut sccs = 0u32;
        let mut nontrivial = 0usize;

        for root in 0..n as u32 {
            if index[root as usize] != UNVISITED {
                continue;
            }
            call.push((root, g.offsets[root as usize]));
            index[root as usize] = next_index;
            lowlink[root as usize] = next_index;
            next_index += 1;
            stack.push(root);
            on_stack[root as usize] = true;

            while let Some(&mut (v, ref mut cursor)) = call.last_mut() {
                let vi = v as usize;
                if *cursor < g.offsets[vi + 1] {
                    let w = g.targets[*cursor as usize];
                    *cursor += 1;
                    let wi = w as usize;
                    if index[wi] == UNVISITED {
                        index[wi] = next_index;
                        lowlink[wi] = next_index;
                        next_index += 1;
                        stack.push(w);
                        on_stack[wi] = true;
                        call.push((w, g.offsets[wi]));
                    } else if on_stack[wi] {
                        lowlink[vi] = lowlink[vi].min(index[wi]);
                    }
                } else {
                    call.pop();
                    if let Some(&mut (p, _)) = call.last_mut() {
                        let pi = p as usize;
                        lowlink[pi] = lowlink[pi].min(lowlink[vi]);
                    }
                    if lowlink[vi] == index[vi] {
                        // v is an SCC root: pop its component.
                        let mut size = 0usize;
                        loop {
                            let w = stack.pop().expect("tarjan stack underflow");
                            on_stack[w as usize] = false;
                            comp[w as usize] = sccs;
                            size += 1;
                            if w == v {
                                break;
                            }
                        }
                        if size > 1 || g.edges(v).any(|(t, _)| t == v) {
                            nontrivial += 1;
                        }
                        sccs += 1;
                    }
                }
            }
        }

        // Group members by component with a counting sort.
        let nc = sccs as usize;
        let mut member_offsets = vec![0u32; nc + 1];
        for &c in &comp {
            member_offsets[c as usize + 1] += 1;
        }
        for i in 0..nc {
            member_offsets[i + 1] += member_offsets[i];
        }
        let mut members = vec![0u32; n];
        let mut fill: Vec<u32> = member_offsets[..nc].to_vec();
        for (v, &c) in comp.iter().enumerate() {
            let slot = fill[c as usize] as usize;
            members[slot] = v as u32;
            fill[c as usize] += 1;
        }

        Condensation {
            comp,
            sccs: nc,
            member_offsets,
            members,
            nontrivial,
        }
    }

    /// Nodes of SCC `c`.
    pub fn members_of(&self, c: u32) -> &[u32] {
        let lo = self.member_offsets[c as usize] as usize;
        let hi = self.member_offsets[c as usize + 1] as usize;
        &self.members[lo..hi]
    }

    /// SCC ids in topological order of the condensation DAG (Tarjan
    /// emits them reverse-topologically, so this walks ids downward).
    pub fn topo_order(&self) -> impl Iterator<Item = u32> + '_ {
        (0..self.sccs as u32).rev()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::EdgeKind;

    fn csr(adj: &[Vec<u32>]) -> Csr {
        let lists: Vec<Vec<(u32, EdgeKind)>> = adj
            .iter()
            .map(|row| row.iter().map(|&t| (t, EdgeKind::Direct)).collect())
            .collect();
        Csr::from_adjacency(&lists)
    }

    #[test]
    fn chain_is_all_trivial() {
        // 0 -> 1 -> 2
        let c = Condensation::compute(&csr(&[vec![1], vec![2], vec![]]));
        assert_eq!(c.sccs, 3);
        assert_eq!(c.nontrivial, 0);
        // Edge u -> w across SCCs implies comp[u] > comp[w] (sinks are
        // completed, and therefore numbered, first).
        assert!(c.comp[0] > c.comp[1]);
        assert!(c.comp[1] > c.comp[2]);
        // topo_order walks ids high -> low, so the source SCC comes
        // first and the sink SCC last.
        let order: Vec<u32> = c.topo_order().collect();
        assert_eq!(order.first(), Some(&c.comp[0]));
        assert_eq!(order.last(), Some(&c.comp[2]));
    }

    #[test]
    fn cycle_collapses_to_one_scc() {
        // 0 <-> 1, plus 1 -> 2
        let c = Condensation::compute(&csr(&[vec![1], vec![0, 2], vec![]]));
        assert_eq!(c.sccs, 2);
        assert_eq!(c.nontrivial, 1);
        assert_eq!(c.comp[0], c.comp[1]);
        assert_ne!(c.comp[0], c.comp[2]);
        let mut cyc = c.members_of(c.comp[0]).to_vec();
        cyc.sort_unstable();
        assert_eq!(cyc, vec![0, 1]);
    }

    #[test]
    fn self_loop_is_nontrivial() {
        let c = Condensation::compute(&csr(&[vec![0], vec![]]));
        assert_eq!(c.sccs, 2);
        assert_eq!(c.nontrivial, 1);
    }

    #[test]
    fn cross_edges_respect_component_order() {
        // Two cycles with a bridge: {0,1} -> {2,3}
        let c = Condensation::compute(&csr(&[vec![1], vec![0, 2], vec![3], vec![2]]));
        assert_eq!(c.sccs, 2);
        assert_eq!(c.nontrivial, 2);
        assert!(c.comp[0] > c.comp[2], "sink SCC numbered lower");
    }
}
