//! # usher-vfg
//!
//! Memory SSA and the interprocedural value-flow graph (VFG) of the Usher
//! reproduction — Sections 3.1 and 3.2 of the paper.
//!
//! The VFG captures def-use chains for both top-level (SSA registers) and
//! address-taken (memory versions) variables, connected across function
//! boundaries through virtual parameters, with the paper's two flavors of
//! strong updates (strong and semi-strong) applied at stores.

#![warn(missing_docs)]

pub mod build;
pub mod condense;
pub mod csr;
pub mod demand;
pub mod memssa;
pub mod printer;
pub mod reference;

pub use build::{
    build, build_with, build_with_budgeted, build_with_tape, rebuild_with_tape, BuildOpts, Check,
    CheckKind, EdgeKind, NodeKind, Vfg, VfgMode, VfgStats, VfgTape,
};
pub use condense::Condensation;
pub use csr::Csr;
pub use demand::{DemandEngine, DemandStats, QueryVerdict};
pub use memssa::{
    build as build_memssa, build_function_ssa, build_function_ssa_budgeted, modref_summaries,
    modref_summaries_budgeted, ChiDef, FuncMemSsa, MemDef, MemDefKind, MemSsa, MemVerId, ModRef,
    MuUse, RegionPhi,
};
pub use printer::{print_annotated, print_module_annotated};
pub use reference::{build_reference, build_with_reference, RefVfg};

/// Convenience: pointer analysis + memory SSA + VFG in one call.
pub fn analyze_module(
    m: &usher_ir::Module,
    mode: VfgMode,
) -> (usher_pointer::PointerAnalysis, MemSsa, Vfg) {
    let pa = usher_pointer::analyze(m);
    let ms = match mode {
        VfgMode::Full => build_memssa(m, &pa),
        VfgMode::TlOnly => MemSsa::default(),
    };
    let g = build(m, &pa, &ms, mode);
    (pa, ms, g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use usher_frontend::compile_o0im;

    fn vfg_for(src: &str) -> (usher_ir::Module, Vfg) {
        let m = compile_o0im(src).expect("compiles");
        let (_pa, _ms, g) = analyze_module(&m, VfgMode::Full);
        (m, g)
    }

    #[test]
    fn roots_exist_and_graph_nonempty() {
        let (_m, g) = vfg_for("def main() { print(1); }");
        assert!(!g.is_empty());
        assert_eq!(g.nodes[g.t_root as usize], NodeKind::RootT);
        assert_eq!(g.nodes[g.f_root as usize], NodeKind::RootF);
    }

    #[test]
    fn strong_update_at_unique_concrete_target() {
        // g is a global scalar: unique concrete target.
        let (_m, g) = vfg_for(
            "int g;
             def main() { g = 1; print(g); }",
        );
        assert_eq!(g.stats.strong_stores, 1);
        assert_eq!(g.stats.semi_strong_stores, 0);
        assert_eq!(g.stats.multi_target_stores, 0);
    }

    #[test]
    fn semi_strong_update_in_loop_per_figure_6() {
        // A fresh malloc in a loop body, stored through immediately: the
        // allocation dominates the store but the object is abstract.
        let (_m, g) = vfg_for(
            "def main() {
                 int i = 0;
                 while (i < 8) {
                     int *p;
                     p = malloc(1);
                     *p = i;
                     print(*p);
                     i = i + 1;
                 }
             }",
        );
        assert_eq!(g.stats.semi_strong_stores, 1, "{:?}", g.stats);
        assert_eq!(g.stats.strong_stores, 0);
    }

    #[test]
    fn weak_update_for_multi_target_store() {
        let (_m, g) = vfg_for(
            "int a; int b;
             def main(int c) {
                 int *p;
                 if (c) { p = &a; } else { p = &b; }
                 *p = 7;
                 print(a + b);
             }",
        );
        assert_eq!(g.stats.multi_target_stores, 1, "{:?}", g.stats);
    }

    #[test]
    fn array_stores_are_never_strong() {
        let (_m, g) = vfg_for(
            "int buf[16];
             def main() {
                 int i = 0;
                 while (i < 16) { buf[i] = i; i = i + 1; }
                 print(buf[3]);
             }",
        );
        assert_eq!(g.stats.strong_stores, 0, "{:?}", g.stats);
        assert_eq!(g.stats.semi_strong_stores, 0);
        assert_eq!(g.stats.weak_singleton_stores, 1);
    }

    #[test]
    fn checks_are_registered_for_critical_operations() {
        let (_m, g) = vfg_for(
            "int g;
             def main(int c) {
                 int *p = &g;
                 if (c) { *p = 1; }
                 print(*p);
             }",
        );
        let kinds: Vec<CheckKind> = g.checks.iter().map(|c| c.kind).collect();
        assert!(kinds.contains(&CheckKind::StoreAddr));
        assert!(kinds.contains(&CheckKind::LoadAddr));
        assert!(kinds.contains(&CheckKind::BranchCond));
    }

    #[test]
    fn tl_only_mode_has_no_memory_nodes() {
        let m = compile_o0im(
            "int g;
             def main() { g = 1; print(g); }",
        )
        .unwrap();
        let (_pa, _ms, g) = analyze_module(&m, VfgMode::TlOnly);
        assert!(g.nodes.iter().all(|n| !matches!(n, NodeKind::Mem(..))));
    }

    #[test]
    fn interprocedural_edges_are_labelled() {
        let (_m, g) = vfg_for(
            "def id(int x) -> int { return x; }
             def main() { print(id(3)); }",
        );
        let mut has_call = false;
        let mut has_ret = false;
        for k in &g.deps.kinds {
            match k {
                EdgeKind::Call(_) => has_call = true,
                EdgeKind::Ret(_) => has_ret = true,
                EdgeKind::Direct => {}
            }
        }
        assert!(has_call && has_ret);
    }

    #[test]
    fn undef_feeds_f_root() {
        // Reading an uninitialized promoted local produces Undef, which
        // must connect to F.
        let (_m, g) = vfg_for("def main() -> int { int x; return x + 1; }");
        assert!(g.users.degree(g.f_root) > 0, "something must depend on F");
    }

    #[test]
    fn csr_builder_matches_frozen_reference() {
        let src = "int g; int buf[4];
             def f(int x) -> int { if (x) { return x + 1; } return g; }
             def main(int c) {
                 int *p;
                 int i = 0;
                 while (i < 4) {
                     p = malloc(1);
                     *p = f(i);
                     buf[i] = *p;
                     i = i + 1;
                 }
                 if (c) { g = buf[2]; }
                 print(g);
             }";
        let m = compile_o0im(src).expect("compiles");
        for mode in [VfgMode::Full, VfgMode::TlOnly] {
            let pa = usher_pointer::analyze(&m);
            let ms = match mode {
                VfgMode::Full => build_memssa(&m, &pa),
                VfgMode::TlOnly => MemSsa::default(),
            };
            let new = build(&m, &pa, &ms, mode);
            let old = build_reference(&m, &pa, &ms, mode).freeze();
            assert_eq!(new.nodes, old.nodes, "{mode:?}: node interning order");
            assert_eq!(new.deps.offsets, old.deps.offsets, "{mode:?}: dep offsets");
            assert_eq!(new.deps.targets, old.deps.targets, "{mode:?}: dep targets");
            assert_eq!(new.deps.kinds, old.deps.kinds, "{mode:?}: dep kinds");
            assert_eq!(
                new.users.offsets, old.users.offsets,
                "{mode:?}: user offsets"
            );
            assert_eq!(
                new.users.targets, old.users.targets,
                "{mode:?}: user targets"
            );
            assert_eq!(new.users.kinds, old.users.kinds, "{mode:?}: user kinds");
            assert_eq!(new.checks, old.checks, "{mode:?}: checks");
            assert_eq!(new.def_site, old.def_site, "{mode:?}: def sites");
            assert_eq!(new.stats, old.stats, "{mode:?}: stats");
        }
    }

    #[test]
    fn tape_records_and_replays_identically() {
        let src = "int g; int buf[4];
             def f(int x) -> int { if (x) { return x + 1; } return g; }
             def h(int *q) { *q = 9; }
             def main(int c) {
                 int *p;
                 int i = 0;
                 while (i < 4) {
                     p = malloc(1);
                     *p = f(i);
                     h(p);
                     buf[i] = *p;
                     i = i + 1;
                 }
                 if (c) { g = buf[2]; }
                 print(g);
             }";
        let m = compile_o0im(src).expect("compiles");
        let pa = usher_pointer::analyze(&m);
        let ms = build_memssa(&m, &pa);
        let opts = BuildOpts::default();
        let plain = build::build_with(&m, &pa, &ms, opts);
        let (taped, tape) = build_with_tape(&m, &pa, &ms, opts);
        let same = |a: &Vfg, b: &Vfg, tag: &str| {
            assert_eq!(a.nodes, b.nodes, "{tag}: nodes");
            assert_eq!(a.deps.offsets, b.deps.offsets, "{tag}: dep offsets");
            assert_eq!(a.deps.targets, b.deps.targets, "{tag}: dep targets");
            assert_eq!(a.deps.kinds, b.deps.kinds, "{tag}: dep kinds");
            assert_eq!(a.users.targets, b.users.targets, "{tag}: user targets");
            assert_eq!(a.checks, b.checks, "{tag}: checks");
            assert_eq!(a.def_site, b.def_site, "{tag}: def sites");
            assert_eq!(a.stats, b.stats, "{tag}: stats");
        };
        same(&taped, &plain, "taped-vs-plain");
        // Replaying with any single function live must reproduce the
        // graph exactly, because the module has not changed.
        for fid in m.funcs.indices() {
            let (re, tape2) = rebuild_with_tape(&m, &pa, &ms, opts, &tape, fid);
            same(&re, &plain, &format!("rebuild-dirty-{fid:?}"));
            assert_eq!(tape2.num_funcs(), tape.num_funcs());
        }
    }

    #[test]
    fn dot_export_mentions_roots() {
        let (m, g) = vfg_for("def main() { print(1); }");
        let dot = g.to_dot(&m);
        assert!(dot.contains("digraph vfg"));
        assert!(dot.contains("label=\"T\""));
        assert!(dot.contains("label=\"F\""));
    }
}
