//! Front-end robustness properties: on arbitrarily mutated sources the
//! compiler must return a structured result — `Ok` or `Err` — and never
//! panic. This is the property that caught the lexer's UTF-8
//! char-boundary panic (see `tests/corpus/regressions/`).

use std::panic::{catch_unwind, AssertUnwindSafe};

use usher_frontend::compile_o0im;
use usher_fuzz::{mutate, mutate_chars};
use usher_workloads::{generate, GenConfig, Rng};

#[test]
fn compile_never_panics_on_havoc_mutants() {
    for seed in 0..6u64 {
        let base = generate(seed, GenConfig::default());
        let mut rng = Rng::new(seed ^ 0xF0F0);
        for k in 0..80 {
            let src = mutate_chars(&base, &mut rng);
            let r = catch_unwind(AssertUnwindSafe(|| compile_o0im(&src).map(|_| ())));
            assert!(r.is_ok(), "seed {seed} mutant {k}: panic on\n{src}");
        }
    }
}

#[test]
fn compile_never_panics_on_semantic_mutants() {
    for seed in 0..6u64 {
        let base = generate(seed, GenConfig::default());
        let mut rng = Rng::new(seed ^ 0x0E0E);
        for k in 0..40 {
            let (src, op) = mutate(&base, &mut rng);
            let r = catch_unwind(AssertUnwindSafe(|| compile_o0im(&src).map(|_| ())));
            assert!(r.is_ok(), "seed {seed} mutant {k} ({op}): panic on\n{src}");
        }
    }
}

#[test]
fn compile_never_panics_on_adversarial_snippets() {
    // Hand-picked nasties: multi-byte UTF-8 after punctuation (the fixed
    // lexer bug), NUL, truncated operators, absurd array lengths, and
    // deep nesting.
    let cases = [
        "<€".to_string(),
        "€".to_string(),
        "def main() { int x = 1 <\u{20ac} 2; }".to_string(),
        "int g[99999999999999]; def main() {}".to_string(),
        "int g[4294967297]; def main() {}".to_string(),
        "\0".to_string(),
        "def main() { /*".to_string(),
        "def main() { int x = ".to_string(),
        // Unbounded nesting used to abort with a stack overflow; the
        // parser now bounds recursion depth and reports an error.
        format!("def main() {{ return {}1; }}", "(".repeat(50_000)),
        format!("def main() {{ {}", "{".repeat(50_000)),
        format!("def main() {{ return {}x; }}", "!-~".repeat(20_000)),
    ];
    for src in cases {
        let r = catch_unwind(AssertUnwindSafe(|| compile_o0im(&src).map(|_| ())));
        assert!(r.is_ok(), "panic on {src:?}");
    }
}
