//! # usher-fuzz
//!
//! Differential fuzzing across the static/dynamic soundness boundary of
//! the Usher reproduction: the one place where "the guided plan detects
//! exactly what full instrumentation detects, which detects exactly what
//! the ground-truth oracle saw" is attacked instead of assumed.
//!
//! The crate is organized as a pipeline of small pieces:
//!
//! * [`mutate`] — semantic statement-level mutations and character-level
//!   havoc over generated TinyC programs;
//! * [`oracle`] — the shared runner producing native + per-preset runs
//!   (also used by the repository's property-test suites);
//! * [`classify`] — the mismatch taxonomy (missed detection, spurious
//!   detection, semantics/trap divergence, cost inversion, plan
//!   divergence, front-end panic);
//! * [`differ`] — the differential executor with driver cross-checking
//!   (threads × cache) and fault injection (fuel exhaustion, cache
//!   eviction, trap forcing, check dropping);
//! * [`minimize`] — line-granular delta debugging that preserves the
//!   mismatch class while shrinking;
//! * [`campaign`] — deterministic seed-driven orchestration with JSONL
//!   telemetry, used by `usher fuzz` and the CI smoke gate.
//!
//! ```
//! use usher_fuzz::{differential, FaultInjection};
//! use usher_workloads::{generate, GenConfig};
//!
//! let src = generate(1, GenConfig::default());
//! let d = differential(&src, FaultInjection::None, 2, false);
//! assert!(d.mismatches.is_empty());
//! ```

#![warn(missing_docs)]

pub mod campaign;
pub mod classify;
pub mod differ;
pub mod minimize;
pub mod mutate;
pub mod oracle;

pub use campaign::{run_campaign, CampaignConfig, CampaignOutcome, CampaignStats, Failure};
pub use classify::{classify, Mismatch, MismatchKind, Outcome};
pub use differ::{differential, strip_checks, DiffResult, FaultInjection};
pub use minimize::{ddmin_lines, minimize_mismatch};
pub use mutate::{mutate, mutate_chars, OPS};
pub use oracle::{run_module, run_options, run_seed, run_source, OracleRuns};
