//! The differential executor: one program in, a verdict plus classified
//! mismatches out.
//!
//! Per program it runs the native ground-truth oracle, the MSan baseline
//! plan and every guided preset (see [`crate::oracle`]), classifies the
//! results (see [`crate::classify`]), and — for unmutated corpus programs
//! — cross-checks the driver: the same source through [`Pipeline`] at one
//! thread and many, with the artifact cache on and off, must produce
//! byte-identical plan fingerprints, all equal to the core analysis'
//! plan.
//!
//! Fault injection deliberately perturbs a run to prove the harness
//! classifies adversity instead of mislabelling it:
//!
//! * [`FaultInjection::FuelExhaustion`] — a tiny step budget; every run
//!   must trap [`usher_runtime::Trap::FuelExhausted`] at the identical
//!   point, and the outcome is classified, not a mismatch.
//! * [`FaultInjection::CacheEviction`] — evicts the driver's artifact
//!   cache between two otherwise identical runs; rebuilt artifacts must
//!   fingerprint identically (a cache-poisoning probe).
//! * [`FaultInjection::TrapForcing`] — tiny recursion/allocation caps
//!   force trap paths; native and instrumented runs must trap alike.
//! * [`FaultInjection::DropChecks`] — strips every `Check` from the
//!   guided plans, synthesizing unsoundness. The harness must report
//!   `missed-detection` on buggy programs; the minimizer property test
//!   relies on this as its reliable failure source.
//! * [`FaultInjection::CacheCorrupt`] — flips stored artifact digests in
//!   a warmed driver cache; the self-healing lookup must evict the
//!   damage, recompute, and converge on the identical plan while counting
//!   the recovery.
//! * [`FaultInjection::BudgetExhaust`] — starves the driver's analysis
//!   budget at several levels; every degraded plan the anytime pipeline
//!   produces must stay detection-equivalent to the MSan baseline.
//! * [`FaultInjection::StrategyDiverge`] — runs the same program through
//!   the driver once per [`PointerStrategy`]; every strategy's plan must
//!   fingerprint identically to the reference strategy's, and each plan
//!   is additionally run under the native-vs-instrumented oracle. This
//!   is not a synthesized fault but a genuine soundness boundary: the
//!   pointer-stage overhaul claims the prefilter and wave solvers are
//!   observationally invisible, and this mode attacks the claim with
//!   mutated programs rather than assuming it from the unit suites.
//! * [`FaultInjection::DemandDiverge`] — runs the same program through
//!   the driver with the exhaustive definedness resolver and with the
//!   demand-driven query engine; the two plans must fingerprint
//!   identically, and the demand plan must survive the
//!   native-vs-instrumented oracle. Attacks the query engine's
//!   exactness claim with mutated programs.
//! * [`FaultInjection::ServeChaos`] — runs the serve engine with an
//!   injected I/O fault (torn write, ENOSPC, kill-point) armed at each
//!   store/WAL site in turn, kills the engine without shutdown, restarts
//!   it on the same store directory, and requires that every
//!   interleaving either recovers the session byte-identically from the
//!   WAL or degrades with a recorded reason — with zero corrupt store
//!   entries and a restarted engine that still analyzes correctly.

use std::panic::{catch_unwind, AssertUnwindSafe};

use usher_core::{run_config, Config, Plan, ShadowOp};
use usher_driver::{plan_fingerprint, Pipeline, PipelineOptions};
use usher_frontend::compile_o0im;
use usher_runtime::{run, RunOptions};

use crate::classify::{classify, Mismatch, MismatchKind, Outcome};
use crate::oracle::{run_options, OracleRuns};

/// A deliberate perturbation of the differential run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultInjection {
    /// No fault: the plain soundness comparison.
    None,
    /// Run everything under a tiny step budget.
    FuelExhaustion,
    /// Evict the driver's artifact cache between two identical runs and
    /// require identical rebuilt plans.
    CacheEviction,
    /// Tiny call-depth and allocation caps to force trap paths.
    TrapForcing,
    /// Strip every runtime check from the guided plans (synthetic
    /// unsoundness; the harness must catch it).
    DropChecks,
    /// Corrupt the driver's artifact cache in place; the pipeline must
    /// detect the damage, heal, and produce an identical plan.
    CacheCorrupt,
    /// Starve the driver's analysis budget; the degraded plans must stay
    /// detection-equivalent to the MSan baseline.
    BudgetExhaust,
    /// Run the program once per pointer-solver strategy; all plans must
    /// fingerprint identically and each must survive the
    /// native-vs-instrumented oracle.
    StrategyDiverge,
    /// Run the program with the exhaustive resolver and with the
    /// demand-driven query engine; the plans must fingerprint
    /// identically and the demand plan must survive the
    /// native-vs-instrumented oracle.
    DemandDiverge,
    /// Crash-recovery chaos for `usher serve`: run an engine with an
    /// injected I/O fault (torn write, ENOSPC, kill-point) at every
    /// store/WAL site, kill it, restart on the same store, and require
    /// the session either recovered byte-identically or degraded with a
    /// recorded reason — never a corrupt store entry or a wedged engine.
    ServeChaos,
}

impl FaultInjection {
    /// Every mode, for sweeps.
    pub const ALL: [FaultInjection; 10] = [
        FaultInjection::None,
        FaultInjection::FuelExhaustion,
        FaultInjection::CacheEviction,
        FaultInjection::TrapForcing,
        FaultInjection::DropChecks,
        FaultInjection::CacheCorrupt,
        FaultInjection::BudgetExhaust,
        FaultInjection::StrategyDiverge,
        FaultInjection::DemandDiverge,
        FaultInjection::ServeChaos,
    ];

    /// Stable CLI/telemetry tag.
    pub fn name(self) -> &'static str {
        match self {
            FaultInjection::None => "none",
            FaultInjection::FuelExhaustion => "fuel",
            FaultInjection::CacheEviction => "cache-evict",
            FaultInjection::TrapForcing => "trap-force",
            FaultInjection::DropChecks => "drop-checks",
            FaultInjection::CacheCorrupt => "cache-corrupt",
            FaultInjection::BudgetExhaust => "budget-exhaust",
            FaultInjection::StrategyDiverge => "strategy-diverge",
            FaultInjection::DemandDiverge => "demand-diverge",
            FaultInjection::ServeChaos => "serve-chaos",
        }
    }

    /// Parses a CLI tag.
    pub fn parse(s: &str) -> Option<FaultInjection> {
        FaultInjection::ALL.into_iter().find(|f| f.name() == s)
    }

    /// The run options this fault imposes.
    pub fn options(self) -> RunOptions {
        let mut o = run_options();
        match self {
            FaultInjection::FuelExhaustion => o.fuel = 600,
            FaultInjection::TrapForcing => {
                o.max_depth = 6;
                o.max_alloc_cells = 4;
            }
            _ => {}
        }
        o
    }
}

/// The result of one differential execution.
#[derive(Debug)]
pub struct DiffResult {
    /// Whole-program verdict.
    pub outcome: Outcome,
    /// Classified disagreements (empty on a sound run).
    pub mismatches: Vec<Mismatch>,
}

/// Removes every runtime check from a plan, keeping propagation intact —
/// the surgical way to make a guided configuration unsound on purpose.
pub fn strip_checks(plan: &mut Plan) {
    for ops in plan
        .before
        .values_mut()
        .chain(plan.after.values_mut())
        .chain(plan.entry.values_mut())
    {
        ops.retain(|op| !matches!(op, ShadowOp::Check { .. }));
    }
    plan.finalize_stats();
}

/// Runs one source program differentially.
///
/// `driver_check` additionally routes the program through the driver at
/// one thread and `threads`, cache on and off, and compares plan
/// fingerprints (skipped for mutants in hot campaign loops — plan
/// construction is deterministic per source, so checking each corpus
/// program once suffices).
pub fn differential(
    src: &str,
    fault: FaultInjection,
    threads: usize,
    driver_check: bool,
) -> DiffResult {
    // The front end owes every input a structured result; a panic is a
    // finding in its own right.
    let compiled = catch_unwind(AssertUnwindSafe(|| compile_o0im(src)));
    let m = match compiled {
        Err(panic) => {
            return DiffResult {
                outcome: Outcome::CompileError,
                mismatches: vec![Mismatch {
                    kind: MismatchKind::FrontendPanic,
                    config: "frontend".to_string(),
                    detail: format!("compile_o0im panicked: {}", panic_text(&panic)),
                }],
            }
        }
        Ok(Err(_)) => {
            return DiffResult {
                outcome: Outcome::CompileError,
                mismatches: Vec::new(),
            }
        }
        Ok(Ok(m)) => m,
    };
    if !m.is_runnable() {
        // Compiles but has no `main` (delta debugging routinely produces
        // this): nothing to run differentially.
        return DiffResult {
            outcome: Outcome::CompileError,
            mismatches: Vec::new(),
        };
    }

    let opts = fault.options();
    if fault == FaultInjection::BudgetExhaust {
        // Degraded plans legitimately differ from the core analysis' (that
        // is the whole point of graceful degradation), so the usual
        // driver-vs-core cross-check is replaced by a pairwise
        // detection-equivalence oracle against the MSan baseline.
        return budget_exhaust_differential(src, &m, &opts);
    }
    if fault == FaultInjection::StrategyDiverge {
        return strategy_divergence_differential(src, &m, &opts);
    }
    if fault == FaultInjection::DemandDiverge {
        return demand_divergence_differential(src, &m, &opts);
    }
    if fault == FaultInjection::ServeChaos {
        return serve_chaos_differential(src, threads);
    }
    let native = run(&m, None, &opts);
    let mut runs = Vec::with_capacity(Config::ALL.len());
    let mut core_fingerprints = Vec::new();
    for (i, cfg) in Config::ALL.iter().enumerate() {
        let out = run_config(&m, *cfg);
        let mut plan = out.plan;
        core_fingerprints.push((cfg.name, plan_fingerprint(&plan)));
        if fault == FaultInjection::DropChecks && i > 0 {
            strip_checks(&mut plan);
        }
        runs.push((cfg.name.to_string(), run(&m, Some(&plan), &opts)));
    }
    let oracle = OracleRuns {
        src: src.to_string(),
        native,
        runs,
    };
    let (outcome, mut mismatches) = classify(&oracle);

    // Plan construction is independent of run-time faults; under
    // DropChecks the guided plans are intentionally different, so the
    // driver comparison would only report our own sabotage.
    if driver_check && fault != FaultInjection::DropChecks {
        cross_check_driver(src, threads, fault, &core_fingerprints, &mut mismatches);
    }
    DiffResult {
        outcome,
        mismatches,
    }
}

fn panic_text(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Budget-exhaustion differential: the driver's plan under several levels
/// of analysis starvation, each compared pairwise against the MSan
/// baseline via [`classify`]'s rules 1 and 3–5. Budget 0 forces the
/// whole-module fallback, the middle rungs mix per-function fallback with
/// guided functions, and the last rung usually completes cleanly.
fn budget_exhaust_differential(src: &str, m: &usher_ir::Module, opts: &RunOptions) -> DiffResult {
    let msan_plan = run_config(m, Config::MSAN).plan;
    let native = run(m, None, opts);
    let msan_run = run(m, Some(&msan_plan), opts);
    let mut outcome = None;
    let mut mismatches = Vec::new();
    for steps in [0u64, 64, 1024, 16_384] {
        let popts = PipelineOptions::from_config(Config::USHER).with_budget_steps(Some(steps));
        let name = format!("Usher[budget={steps}]");
        match Pipeline::new()
            .without_cache()
            .run_source("fuzz", src, popts)
        {
            Ok(r) => {
                let oracle = OracleRuns {
                    src: src.to_string(),
                    native: native.clone(),
                    runs: vec![
                        ("MSan".to_string(), msan_run.clone()),
                        (name, run(m, Some(&r.plan), opts)),
                    ],
                };
                let (o, ms) = classify(&oracle);
                outcome.get_or_insert(o);
                mismatches.extend(ms);
            }
            Err(e) => mismatches.push(Mismatch {
                kind: MismatchKind::PlanDivergence,
                config: name,
                detail: format!("starved driver errored instead of degrading: {e}"),
            }),
        }
    }
    DiffResult {
        outcome: outcome.unwrap_or(Outcome::CompileError),
        mismatches,
    }
}

/// Cross-strategy divergence differential: the same program through the
/// driver once per [`PointerStrategy`]. The reference strategy's plan is
/// the anchor — every other strategy must fingerprint identically to it
/// (the representation-equivalence contract, attacked with arbitrary
/// mutated programs instead of curated suites), and each strategy's plan
/// is run under the native-vs-instrumented oracle against the MSan
/// baseline so a divergent plan is also judged on what it *detects*,
/// not just that it differs.
fn strategy_divergence_differential(
    src: &str,
    m: &usher_ir::Module,
    opts: &RunOptions,
) -> DiffResult {
    use usher_driver::PointerStrategy;

    let msan_plan = run_config(m, Config::MSAN).plan;
    let native = run(m, None, opts);
    let msan_run = run(m, Some(&msan_plan), opts);
    let mut outcome = None;
    let mut mismatches = Vec::new();
    let mut anchor: Option<String> = None;
    for strategy in PointerStrategy::ALL {
        let popts = PipelineOptions::from_config(Config::USHER).with_pointer_strategy(strategy);
        let name = format!("Usher[strategy={strategy}]");
        match Pipeline::new()
            .without_cache()
            .run_source("fuzz", src, popts)
        {
            Ok(r) => {
                let fp = plan_fingerprint(&r.plan);
                match &anchor {
                    None => anchor = Some(fp),
                    Some(want) if fp != *want => mismatches.push(Mismatch {
                        kind: MismatchKind::PlanDivergence,
                        config: name.clone(),
                        detail: format!(
                            "plan differs from the {} strategy's",
                            PointerStrategy::Reference
                        ),
                    }),
                    Some(_) => {}
                }
                let oracle = OracleRuns {
                    src: src.to_string(),
                    native: native.clone(),
                    runs: vec![
                        ("MSan".to_string(), msan_run.clone()),
                        (name, run(m, Some(&r.plan), opts)),
                    ],
                };
                let (o, ms) = classify(&oracle);
                outcome.get_or_insert(o);
                mismatches.extend(ms);
            }
            Err(e) => mismatches.push(Mismatch {
                kind: MismatchKind::PlanDivergence,
                config: name,
                detail: format!("driver failed on a compilable program: {e}"),
            }),
        }
    }
    DiffResult {
        outcome: outcome.unwrap_or(Outcome::CompileError),
        mismatches,
    }
}

/// Demand-divergence differential: the same program through the driver
/// twice — once with the exhaustive definedness resolver (Opt II off,
/// the configuration demand mode is provably exact against) and once in
/// demand mode, where the planner's consults are answered by the
/// demand-driven query engine walking backward from each check. The two
/// plans must fingerprint identically, the demand run must actually have
/// engaged the engine (telemetry present), and the demand plan is run
/// under the native-vs-instrumented oracle against the MSan baseline so
/// a divergent plan is also judged on what it *detects*.
fn demand_divergence_differential(
    src: &str,
    m: &usher_ir::Module,
    opts: &RunOptions,
) -> DiffResult {
    let msan_plan = run_config(m, Config::MSAN).plan;
    let native = run(m, None, opts);
    let msan_run = run(m, Some(&msan_plan), opts);
    let mut mismatches = Vec::new();
    let pipe = Pipeline::new().without_cache();
    let exhaustive = match pipe.run_source(
        "fuzz",
        src,
        PipelineOptions::from_config(Config::USHER_OPT1),
    ) {
        Ok(r) => r,
        Err(e) => {
            return DiffResult {
                outcome: Outcome::CompileError,
                mismatches: vec![Mismatch {
                    kind: MismatchKind::PlanDivergence,
                    config: "Usher[exhaustive]".to_string(),
                    detail: format!("driver failed on a compilable program: {e}"),
                }],
            }
        }
    };
    let popts = PipelineOptions::from_config(Config::USHER_OPT1).with_demand(true);
    let outcome = match pipe.run_source("fuzz", src, popts) {
        Ok(r) => {
            if plan_fingerprint(&r.plan) != plan_fingerprint(&exhaustive.plan) {
                mismatches.push(Mismatch {
                    kind: MismatchKind::PlanDivergence,
                    config: "Usher[demand]".to_string(),
                    detail: "demand-mode plan differs from the exhaustive resolver's".to_string(),
                });
            }
            match &r.report.demand {
                None => mismatches.push(Mismatch {
                    kind: MismatchKind::PlanDivergence,
                    config: "Usher[demand]".to_string(),
                    detail: "demand mode never engaged the query engine".to_string(),
                }),
                Some(ds) if ds.exhausted_queries > 0 => mismatches.push(Mismatch {
                    kind: MismatchKind::PlanDivergence,
                    config: "Usher[demand]".to_string(),
                    detail: format!(
                        "{} unlimited-budget queries exhausted",
                        ds.exhausted_queries
                    ),
                }),
                Some(_) => {}
            }
            let oracle = OracleRuns {
                src: src.to_string(),
                native,
                runs: vec![
                    ("MSan".to_string(), msan_run),
                    ("Usher[demand]".to_string(), run(m, Some(&r.plan), opts)),
                ],
            };
            let (o, ms) = classify(&oracle);
            mismatches.extend(ms);
            o
        }
        Err(e) => {
            mismatches.push(Mismatch {
                kind: MismatchKind::PlanDivergence,
                config: "Usher[demand]".to_string(),
                detail: format!("driver failed in demand mode: {e}"),
            });
            Outcome::CompileError
        }
    };
    DiffResult {
        outcome,
        mismatches,
    }
}

/// Self-healing probe: warm a private cache, corrupt it in place, rerun,
/// and require an identical plan plus a counted recovery. `undetectable`
/// instead swaps in forged entries whose digests still verify — the probe
/// must then report the divergence, the self-test proving the fingerprint
/// comparison (not luck) is what guards the cache.
fn cache_corruption_probe(
    src: &str,
    popts: &PipelineOptions,
    cfg: &str,
    undetectable: bool,
    mismatches: &mut Vec<Mismatch>,
) {
    let pipe = Pipeline::new();
    let Ok(warm) = pipe.run_source("fuzz", src, popts.clone()) else {
        return; // compile errors are classified elsewhere
    };
    let tampered = if undetectable {
        pipe.corrupt_cache_undetectably()
    } else {
        pipe.corrupt_cache()
    };
    if tampered == 0 {
        return;
    }
    match pipe.run_source("fuzz", src, popts.clone()) {
        Ok(healed) => {
            if plan_fingerprint(&healed.plan) != plan_fingerprint(&warm.plan) {
                mismatches.push(Mismatch {
                    kind: MismatchKind::PlanDivergence,
                    config: cfg.to_string(),
                    detail: "plan changed after in-place cache corruption".to_string(),
                });
            } else if pipe.cache_stats().corrupt_recovered == 0 {
                mismatches.push(Mismatch {
                    kind: MismatchKind::PlanDivergence,
                    config: cfg.to_string(),
                    detail: "cache corruption went unnoticed by the integrity check".to_string(),
                });
            }
        }
        Err(e) => mismatches.push(Mismatch {
            kind: MismatchKind::PlanDivergence,
            config: cfg.to_string(),
            detail: format!("pipeline failed after cache corruption: {e}"),
        }),
    }
}

/// The driver must produce the same plan as the core analysis for every
/// preset, at any thread count, with the cache on, off, evicted
/// mid-sequence, or corrupted in place.
fn cross_check_driver(
    src: &str,
    threads: usize,
    fault: FaultInjection,
    core_fingerprints: &[(&'static str, String)],
    mismatches: &mut Vec<Mismatch>,
) {
    for (cfg, core_fp) in core_fingerprints {
        let popts = PipelineOptions::from_config(
            Config::ALL
                .into_iter()
                .find(|c| c.name == *cfg)
                .expect("fingerprints built from Config::ALL"),
        );
        let variants: [(&str, Pipeline); 3] = [
            ("threads=1", Pipeline::new().with_threads(1)),
            ("threads=N", Pipeline::new().with_threads(threads.max(2))),
            ("no-cache", Pipeline::new().without_cache()),
        ];
        for (label, pipe) in variants {
            match pipe.run_source("fuzz", src, popts.clone()) {
                Ok(r) => {
                    let fp = plan_fingerprint(&r.plan);
                    if fp != *core_fp {
                        mismatches.push(Mismatch {
                            kind: MismatchKind::PlanDivergence,
                            config: (*cfg).to_string(),
                            detail: format!("driver ({label}) plan differs from core analysis"),
                        });
                    }
                }
                Err(e) => mismatches.push(Mismatch {
                    kind: MismatchKind::PlanDivergence,
                    config: (*cfg).to_string(),
                    detail: format!("driver ({label}) failed on a compilable program: {e}"),
                }),
            }
        }
        if fault == FaultInjection::CacheCorrupt {
            cache_corruption_probe(src, &popts, cfg, false, mismatches);
        }
        if fault == FaultInjection::CacheEviction {
            // Cache-poisoning probe: warm the cache, evict it, and require
            // the rebuilt artifacts to fingerprint identically.
            let pipe = Pipeline::new();
            let warm = pipe.run_source("fuzz", src, popts.clone());
            pipe.clear_cache();
            let cold = pipe.run_source("fuzz", src, popts.clone());
            if let (Ok(a), Ok(b)) = (warm, cold) {
                if plan_fingerprint(&a.plan) != plan_fingerprint(&b.plan) {
                    mismatches.push(Mismatch {
                        kind: MismatchKind::PlanDivergence,
                        config: (*cfg).to_string(),
                        detail: "plan changed across a cache eviction".to_string(),
                    });
                }
            }
        }
    }
}

/// Crash-safety torture for the serve engine.
///
/// Ground truth is a never-crashed, storeless engine analyzing (and
/// optionally editing) the same source. Each scenario arms exactly one
/// injected I/O fault — a torn write, an ENOSPC-style error, or a
/// kill-point that wedges all subsequent I/O — at one store/WAL site,
/// runs the workload, drops the engine without any shutdown (the in-
/// process equivalent of SIGKILL, since both the store and the WAL sync
/// on every append), and restarts a clean engine on the same store
/// directory. Every interleaving must then satisfy three invariants:
///
/// 1. no store entry fails its digest check ([`verify_dir`] is empty);
/// 2. if every acknowledged operation reached the WAL durably
///    (`wal_appends_failed == 0`), the session is recovered
///    byte-identically — same plan and gamma fingerprints as the clean
///    engine's; if WAL appends failed, the loss was *recorded*, and any
///    partially recovered session must match some state the clean
///    engine actually passed through;
/// 3. the restarted engine still analyzes the program with fingerprints
///    identical to the clean engine's — never wedged.
fn serve_chaos_differential(src: &str, threads: usize) -> DiffResult {
    use std::sync::atomic::{AtomicU64, Ordering};
    use usher_serve::{
        verify_dir, Engine, EngineConfig, FaultIo, FaultKind, FaultSite, FaultSpec, QueryOutcome,
    };

    static DIR_SEQ: AtomicU64 = AtomicU64::new(0);
    let fp = |q: &QueryOutcome| (q.plan_fingerprint.clone(), q.gamma_fingerprint.clone());

    // Ground truth: a never-crashed engine with no durable state at all.
    let mut oracle = match Engine::new(EngineConfig {
        threads,
        wal_enabled: false,
        ..EngineConfig::default()
    }) {
        Ok(e) => e,
        Err(e) => {
            return DiffResult {
                outcome: Outcome::CompileError,
                mismatches: vec![Mismatch {
                    kind: MismatchKind::ServeDivergence,
                    config: "serve-chaos".to_string(),
                    detail: format!("clean engine failed to start: {e}"),
                }],
            }
        }
    };
    let oracle_sid = match oracle.analyze(src) {
        Ok(out) => out.session_id,
        // Serve rejects what the front end rejects; nothing to torture.
        Err(_) => {
            return DiffResult {
                outcome: Outcome::CompileError,
                mismatches: Vec::new(),
            }
        }
    };
    let fp_base = match oracle.query(oracle_sid) {
        Ok(q) => fp(&q),
        Err(e) => {
            return DiffResult {
                outcome: Outcome::Clean,
                mismatches: vec![Mismatch {
                    kind: MismatchKind::ServeDivergence,
                    config: "serve-chaos".to_string(),
                    detail: format!("clean engine cannot query its own session: {e}"),
                }],
            }
        }
    };
    // Derive one edit (a constant swap inside some function, or an
    // identity re-submission — still a WAL record) and apply it to the
    // oracle so recovered sessions have a post-edit state to match.
    let edit = chaos_edit(src).and_then(|(func, body)| {
        oracle
            .edit(oracle_sid, &func, &body)
            .ok()
            .map(|_| (func, body))
    });
    let fp_edited = match &edit {
        Some(_) => oracle.query(oracle_sid).ok().map(|q| fp(&q)),
        None => None,
    };

    let scenarios: [(FaultSite, FaultKind); 11] = [
        (FaultSite::WalAppend, FaultKind::Error),
        (FaultSite::WalAppend, FaultKind::Torn { keep: 7 }),
        (FaultSite::WalAppend, FaultKind::Kill),
        (FaultSite::WalSync, FaultKind::Kill),
        (FaultSite::StoreTempWrite, FaultKind::Torn { keep: 11 }),
        (FaultSite::StoreTempWrite, FaultKind::Kill),
        (FaultSite::StoreTempSync, FaultKind::Kill),
        (FaultSite::StoreRename, FaultKind::Kill),
        (FaultSite::StoreDirSync, FaultKind::Kill),
        (FaultSite::StoreRead, FaultKind::Error),
        (FaultSite::JournalAppend, FaultKind::Error),
    ];

    let mut mismatches = Vec::new();
    for (site, kind) in scenarios {
        let label = format!("serve-chaos[{}:{:?}]", site.name(), kind);
        let dir = std::env::temp_dir().join(format!(
            "usher-chaos-{}-{}-{}",
            std::process::id(),
            DIR_SEQ.fetch_add(1, Ordering::Relaxed),
            site.name()
        ));
        let _ = std::fs::remove_dir_all(&dir);

        // Phase 1: run the workload with the fault armed, then crash.
        let io = FaultIo::none();
        io.arm(site, FaultSpec { kind, after: 0 });
        let mut acked_sid = None;
        let mut acked_edit = false;
        let mut wal_failed = 0u64;
        match Engine::new(EngineConfig {
            store_dir: Some(dir.clone()),
            threads,
            io: io.clone(),
            ..EngineConfig::default()
        }) {
            Ok(mut e) => {
                if let Ok(out) = e.analyze(src) {
                    acked_sid = Some(out.session_id);
                    if let Some((func, body)) = &edit {
                        acked_edit = e.edit(out.session_id, func, body).is_ok();
                    }
                }
                wal_failed = e.stats().wal_appends_failed;
                // Dropped without shutdown or flush: everything not yet
                // fsynced is exactly what a SIGKILL would lose.
            }
            Err(_) => {
                // Startup refused under the fault — an acceptable,
                // reported degradation as long as the clean restart
                // below succeeds.
            }
        }

        // Invariant 1: the crash may lose entries, never corrupt them.
        for bad in verify_dir(&dir) {
            mismatches.push(Mismatch {
                kind: MismatchKind::StoreCorruption,
                config: label.clone(),
                detail: format!("corrupt store entry survived the crash: {bad}"),
            });
        }

        // Phase 2: clean restart over the same durable state.
        match Engine::new(EngineConfig {
            store_dir: Some(dir.clone()),
            threads,
            ..EngineConfig::default()
        }) {
            Ok(mut e2) => {
                let recovered = e2.replay().sessions_recovered;
                if let Some(sid) = acked_sid {
                    if wal_failed == 0 {
                        // Every ack was durable: recovery is owed in full.
                        let want = match (acked_edit, &fp_edited) {
                            (true, Some(f)) => f.clone(),
                            _ => fp_base.clone(),
                        };
                        if recovered == 0 {
                            mismatches.push(Mismatch {
                                kind: MismatchKind::ServeDivergence,
                                config: label.clone(),
                                detail: "acknowledged session lost across the crash despite \
                                         zero recorded WAL failures"
                                    .to_string(),
                            });
                        } else {
                            match e2.query(sid) {
                                Ok(q) if fp(&q) == want => {}
                                Ok(_) => mismatches.push(Mismatch {
                                    kind: MismatchKind::ServeDivergence,
                                    config: label.clone(),
                                    detail: "recovered session fingerprints differ from the \
                                             never-crashed engine's"
                                        .to_string(),
                                }),
                                Err(err) => mismatches.push(Mismatch {
                                    kind: MismatchKind::ServeDivergence,
                                    config: label.clone(),
                                    detail: format!("recovered session unusable: {err}"),
                                }),
                            }
                        }
                    } else if recovered > 0 {
                        // Loss was recorded, so full recovery is not owed —
                        // but whatever did come back must be a state the
                        // clean engine actually passed through.
                        if let Ok(q) = e2.query(sid) {
                            let got = fp(&q);
                            if got != fp_base && fp_edited.as_ref() != Some(&got) {
                                mismatches.push(Mismatch {
                                    kind: MismatchKind::ServeDivergence,
                                    config: label.clone(),
                                    detail: "partially recovered session matches no state \
                                             the clean engine passed through"
                                        .to_string(),
                                });
                            }
                        }
                    }
                }
                // Invariant 3: the restarted engine is never wedged.
                match e2.analyze(src) {
                    Ok(out) => match e2.query(out.session_id) {
                        Ok(q) if fp(&q) == fp_base => {}
                        Ok(_) => mismatches.push(Mismatch {
                            kind: MismatchKind::ServeDivergence,
                            config: label.clone(),
                            detail: "post-crash analysis diverges from the clean engine"
                                .to_string(),
                        }),
                        Err(err) => mismatches.push(Mismatch {
                            kind: MismatchKind::ServeDivergence,
                            config: label.clone(),
                            detail: format!("post-crash session unusable: {err}"),
                        }),
                    },
                    Err(err) => mismatches.push(Mismatch {
                        kind: MismatchKind::ServeDivergence,
                        config: label.clone(),
                        detail: format!("restarted engine cannot analyze: {err}"),
                    }),
                }
            }
            Err(e) => mismatches.push(Mismatch {
                kind: MismatchKind::ServeDivergence,
                config: label.clone(),
                detail: format!("engine wedged: clean restart failed: {e}"),
            }),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    DiffResult {
        outcome: Outcome::Clean,
        mismatches,
    }
}

/// Derives one edit request from a source program for the chaos
/// workload: picks a top-level function by brace-depth scan, preferring
/// one whose body admits a constant swap (so the edit genuinely changes
/// the analysis); falls back to re-submitting a function body verbatim,
/// which is still an accepted edit and therefore still a WAL record.
fn chaos_edit(src: &str) -> Option<(String, String)> {
    let lines: Vec<&str> = src.lines().collect();
    let mut spans: Vec<(String, usize, usize)> = Vec::new();
    let mut depth = 0i64;
    let mut open: Option<(String, usize)> = None;
    for (i, line) in lines.iter().enumerate() {
        let code = line.split("//").next().unwrap_or("");
        if depth == 0 {
            if let Some(rest) = code.trim_start().strip_prefix("def ") {
                let name: String = rest
                    .chars()
                    .take_while(|c| c.is_alphanumeric() || *c == '_')
                    .collect();
                if !name.is_empty() {
                    open = Some((name, i));
                }
            }
        }
        depth += code.matches('{').count() as i64;
        depth -= code.matches('}').count() as i64;
        if depth == 0 {
            if let Some((name, start)) = open.take() {
                spans.push((name, start, i + 1));
            }
        }
    }
    for (name, start, end) in &spans {
        for (j, line) in lines[*start..*end].iter().enumerate().skip(1) {
            if let Some(swapped) = chaos_const_swap(line) {
                let mut body: Vec<String> =
                    lines[*start..*end].iter().map(|s| s.to_string()).collect();
                body[j] = swapped;
                return Some((name.clone(), body.join("\n")));
            }
        }
    }
    spans
        .first()
        .map(|(name, start, end)| (name.clone(), lines[*start..*end].join("\n")))
}

/// Rewrites `<lhs> = <int literal>;` to a different constant,
/// deterministically derived from the original value.
fn chaos_const_swap(line: &str) -> Option<String> {
    let eq = line.rfind(" = ")?;
    let digits = line[eq + 3..].trim_end().strip_suffix(';')?;
    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    let n: u64 = digits.parse().ok()?;
    Some(format!("{} = {};", &line[..eq], (n + 7) % 97 + 1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use usher_workloads::{generate, GenConfig};

    #[test]
    fn corpus_programs_are_sound_with_driver_cross_check() {
        for seed in 0..4u64 {
            let src = generate(seed, GenConfig::default());
            let d = differential(&src, FaultInjection::None, 4, true);
            assert!(d.mismatches.is_empty(), "seed {seed}: {:?}", d.mismatches);
        }
    }

    #[test]
    fn fuel_fault_is_an_outcome_not_a_mismatch() {
        // A program guaranteed to exceed 600 steps.
        let src = generate(0, GenConfig::default());
        let d = differential(&src, FaultInjection::FuelExhaustion, 2, false);
        assert_eq!(d.outcome, Outcome::FuelExhausted);
        assert!(d.mismatches.is_empty(), "{:?}", d.mismatches);
    }

    #[test]
    fn trap_forcing_keeps_runs_aligned() {
        for seed in 0..4u64 {
            let src = generate(seed, GenConfig::default());
            let d = differential(&src, FaultInjection::TrapForcing, 2, false);
            assert!(d.mismatches.is_empty(), "seed {seed}: {:?}", d.mismatches);
        }
    }

    #[test]
    fn drop_checks_surfaces_missed_detections_on_buggy_programs() {
        // Find a seed whose program is buggy, sabotage the guided plans,
        // and require the harness to classify the unsoundness.
        for seed in 0..64u64 {
            let clean = differential(
                &generate(seed, GenConfig::default()),
                FaultInjection::None,
                2,
                false,
            );
            if let Outcome::Buggy(_) = clean.outcome {
                let d = differential(
                    &generate(seed, GenConfig::default()),
                    FaultInjection::DropChecks,
                    2,
                    false,
                );
                assert!(
                    d.mismatches
                        .iter()
                        .any(|m| m.kind == MismatchKind::MissedDetection),
                    "seed {seed}: sabotage went unnoticed: {:?}",
                    d.mismatches
                );
                return;
            }
        }
        panic!("no buggy seed in 0..64 — generator regressed?");
    }

    #[test]
    fn compile_errors_are_classified_silently() {
        let d = differential("def main( {", FaultInjection::None, 2, true);
        assert_eq!(d.outcome, Outcome::CompileError);
        assert!(d.mismatches.is_empty());
    }

    #[test]
    fn fault_names_round_trip_through_parse() {
        for f in FaultInjection::ALL {
            assert_eq!(FaultInjection::parse(f.name()), Some(f));
        }
        assert_eq!(FaultInjection::parse("bogus"), None);
    }

    #[test]
    fn budget_exhaust_keeps_degraded_plans_sound() {
        for seed in 0..3u64 {
            let src = generate(seed, GenConfig::default());
            let d = differential(&src, FaultInjection::BudgetExhaust, 2, false);
            assert!(d.mismatches.is_empty(), "seed {seed}: {:?}", d.mismatches);
            assert!(matches!(d.outcome, Outcome::Clean | Outcome::Buggy(_)));
        }
    }

    #[test]
    fn budget_exhaust_oracle_catches_sabotaged_degraded_plans() {
        // Drop-checks-style self-test: the degraded-plan oracle is only
        // trustworthy if it can see unsoundness. Strip every check from a
        // fully starved run's plan on a buggy program and require the
        // classifier to report the missed detections.
        for seed in 0..64u64 {
            let src = generate(seed, GenConfig::default());
            let clean = differential(&src, FaultInjection::None, 2, false);
            if !matches!(clean.outcome, Outcome::Buggy(_)) {
                continue;
            }
            let m = compile_o0im(&src).expect("corpus program compiles");
            let opts = run_options();
            let msan_plan = run_config(&m, Config::MSAN).plan;
            let popts = PipelineOptions::from_config(Config::USHER).with_budget_steps(Some(0));
            let r = Pipeline::new()
                .without_cache()
                .run_source("fuzz", &src, popts)
                .expect("starved driver degrades instead of failing");
            let mut sabotaged = (*r.plan).clone();
            strip_checks(&mut sabotaged);
            let oracle = OracleRuns {
                src: src.clone(),
                native: run(&m, None, &opts),
                runs: vec![
                    ("MSan".to_string(), run(&m, Some(&msan_plan), &opts)),
                    (
                        "Usher[degraded,stripped]".to_string(),
                        run(&m, Some(&sabotaged), &opts),
                    ),
                ],
            };
            let (_, mismatches) = classify(&oracle);
            assert!(
                mismatches
                    .iter()
                    .any(|m| m.kind == MismatchKind::MissedDetection),
                "seed {seed}: sabotaged degraded plan went unnoticed: {mismatches:?}"
            );
            return;
        }
        panic!("no buggy seed in 0..64 — generator regressed?");
    }

    #[test]
    fn strategy_divergence_mode_is_clean_on_corpus_programs() {
        for seed in 0..4u64 {
            let src = generate(seed, GenConfig::default());
            let d = differential(&src, FaultInjection::StrategyDiverge, 2, false);
            assert!(d.mismatches.is_empty(), "seed {seed}: {:?}", d.mismatches);
            assert!(matches!(d.outcome, Outcome::Clean | Outcome::Buggy(_)));
        }
    }

    #[test]
    fn demand_divergence_mode_is_clean_on_corpus_programs() {
        for seed in 0..4u64 {
            let src = generate(seed, GenConfig::default());
            let d = differential(&src, FaultInjection::DemandDiverge, 2, false);
            assert!(d.mismatches.is_empty(), "seed {seed}: {:?}", d.mismatches);
            assert!(matches!(d.outcome, Outcome::Clean | Outcome::Buggy(_)));
        }
    }

    #[test]
    fn serve_chaos_recovers_or_degrades_on_corpus_programs() {
        for seed in 0..2u64 {
            let src = generate(seed, GenConfig::default());
            let d = differential(&src, FaultInjection::ServeChaos, 2, false);
            assert_eq!(d.outcome, Outcome::Clean, "seed {seed}");
            assert!(d.mismatches.is_empty(), "seed {seed}: {:?}", d.mismatches);
        }
    }

    #[test]
    fn chaos_edit_derives_a_real_function_body() {
        let src = generate(0, GenConfig::default());
        let (func, body) = chaos_edit(&src).expect("corpus programs have functions");
        assert!(src.contains(&format!("def {func}")));
        assert!(body.starts_with("def "), "{body}");
        assert!(body.trim_end().ends_with('}'), "{body}");
    }

    #[test]
    fn cache_corrupt_fault_heals_on_corpus_programs() {
        let src = generate(1, GenConfig::default());
        let d = differential(&src, FaultInjection::CacheCorrupt, 2, true);
        assert!(d.mismatches.is_empty(), "{:?}", d.mismatches);
    }

    #[test]
    fn undetectable_cache_corruption_is_flagged_as_divergence() {
        let src = generate(1, GenConfig::default());
        let popts = PipelineOptions::from_config(Config::USHER);
        let mut mismatches = Vec::new();
        cache_corruption_probe(&src, &popts, "Usher", true, &mut mismatches);
        assert!(
            mismatches
                .iter()
                .any(|m| m.kind == MismatchKind::PlanDivergence),
            "forged cache entry must surface as plan divergence: {mismatches:?}"
        );
    }
}
