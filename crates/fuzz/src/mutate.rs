//! Mutation engine over generated TinyC sources.
//!
//! Two modes:
//!
//! * [`mutate`] — *semantic* mutations at statement granularity (delete,
//!   duplicate, reorder, init↔uninit flips, aliasing-pattern injection,
//!   call-boundary rewrites). Mutants usually still compile; the ones
//!   that do stress the analysis with value flows the generator alone
//!   never produces.
//! * [`mutate_chars`] — *havoc* mutations at character granularity
//!   (including multi-byte UTF-8 insertion), used by the front-end fuzz
//!   mode whose only assertion is "the compiler returns an error instead
//!   of panicking".
//!
//! Both are driven by the workloads crate's std-only xorshift [`Rng`],
//! so a `(seed, mutant-index)` pair always reproduces the same program.

use usher_workloads::Rng;

/// Names of the semantic mutation operators, for telemetry.
pub const OPS: [&str; 6] = [
    "delete-stmt",
    "duplicate-stmt",
    "swap-adjacent",
    "flip-init",
    "inject-alias",
    "rewrite-call",
];

/// Applies one random semantic mutation. Returns the mutated source and
/// the name of the operator that actually applied; if no operator finds a
/// target (degenerate input) the source is returned unchanged as
/// `"noop"`.
pub fn mutate(src: &str, rng: &mut Rng) -> (String, &'static str) {
    let start = rng.below(OPS.len());
    for i in 0..OPS.len() {
        let op = OPS[(start + i) % OPS.len()];
        let applied = match op {
            "delete-stmt" => delete_stmt(src, rng),
            "duplicate-stmt" => duplicate_stmt(src, rng),
            "swap-adjacent" => swap_adjacent(src, rng),
            "flip-init" => flip_init(src, rng),
            "inject-alias" => inject_alias(src, rng),
            "rewrite-call" => rewrite_call(src, rng),
            _ => unreachable!(),
        };
        if let Some(mutated) = applied {
            return (mutated, op);
        }
    }
    (src.to_string(), "noop")
}

/// Indices of indented single-statement lines (`...;` inside a body) —
/// the safe unit for deletion, duplication and reordering.
fn stmt_lines(lines: &[&str]) -> Vec<usize> {
    lines
        .iter()
        .enumerate()
        .filter(|(_, l)| {
            l.starts_with(' ') && l.trim_end().ends_with(';') && !l.trim_start().starts_with("//")
        })
        .map(|(i, _)| i)
        .collect()
}

fn delete_stmt(src: &str, rng: &mut Rng) -> Option<String> {
    let mut lines: Vec<&str> = src.lines().collect();
    let stmts = stmt_lines(&lines);
    if stmts.is_empty() {
        return None;
    }
    lines.remove(stmts[rng.below(stmts.len())]);
    Some(lines.join("\n"))
}

fn duplicate_stmt(src: &str, rng: &mut Rng) -> Option<String> {
    let mut lines: Vec<&str> = src.lines().collect();
    let stmts = stmt_lines(&lines);
    if stmts.is_empty() {
        return None;
    }
    let i = stmts[rng.below(stmts.len())];
    lines.insert(i, lines[i]);
    Some(lines.join("\n"))
}

fn swap_adjacent(src: &str, rng: &mut Rng) -> Option<String> {
    let mut lines: Vec<&str> = src.lines().collect();
    let stmts = stmt_lines(&lines);
    let pairs: Vec<usize> = stmts
        .iter()
        .copied()
        .filter(|&i| i + 1 < lines.len() && stmts.contains(&(i + 1)))
        .collect();
    if pairs.is_empty() {
        return None;
    }
    let i = pairs[rng.below(pairs.len())];
    lines.swap(i, i + 1);
    Some(lines.join("\n"))
}

/// `int v = e;` ↔ `int v;` — the single most productive operator: it
/// converts initialized locals into fresh undefined-value sources and
/// vice versa, moving the ground truth the analysis must track.
fn flip_init(src: &str, rng: &mut Rng) -> Option<String> {
    let lines: Vec<&str> = src.lines().collect();
    let decls: Vec<usize> = lines
        .iter()
        .enumerate()
        .filter(|(_, l)| decl_name(l).is_some())
        .map(|(i, _)| i)
        .collect();
    if decls.is_empty() {
        return None;
    }
    let i = decls[rng.below(decls.len())];
    let name = decl_name(lines[i]).expect("filtered above");
    let indent = &lines[i][..lines[i].len() - lines[i].trim_start().len()];
    let flipped = if lines[i].contains('=') {
        format!("{indent}int {name};")
    } else {
        format!("{indent}int {name} = {};", rng.below(90) + 1)
    };
    let mut out: Vec<String> = lines.iter().map(|l| l.to_string()).collect();
    out[i] = flipped;
    Some(out.join("\n"))
}

/// The variable of a simple scalar declaration line, if it is one.
fn decl_name(line: &str) -> Option<&str> {
    let t = line.trim_start();
    if !line.starts_with(' ') || !t.starts_with("int ") || t.contains('*') || t.contains('[') {
        return None;
    }
    let rest = &t[4..];
    let end = rest.find(['=', ';'])?;
    let name = rest[..end].trim();
    (!name.is_empty() && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'))
        .then_some(name)
}

/// Inserts a pointer alias to an existing scalar local and either stores
/// or loads through it — value flows through may-alias pointers are where
/// the guided plan has the most room to be wrong.
fn inject_alias(src: &str, rng: &mut Rng) -> Option<String> {
    let lines: Vec<&str> = src.lines().collect();
    let decls: Vec<usize> = lines
        .iter()
        .enumerate()
        .filter(|(_, l)| decl_name(l).is_some())
        .map(|(i, _)| i)
        .collect();
    if decls.is_empty() {
        return None;
    }
    let i = decls[rng.below(decls.len())];
    let name = decl_name(lines[i]).expect("filtered above").to_string();
    let indent = lines[i][..lines[i].len() - lines[i].trim_start().len()].to_string();
    let k = src.matches("__fz").count();
    let use_line = if rng.pct(50) {
        // A load through the alias: a use of whatever definedness the
        // aliased local carries at this point.
        format!("{indent}print(*__fz{k});")
    } else {
        // A store through the alias: defines the local on a path the
        // front end never wrote.
        format!("{indent}*__fz{k} = {};", rng.below(90) + 1)
    };
    let mut out: Vec<String> = lines.iter().map(|l| l.to_string()).collect();
    out.splice(
        i + 1..i + 1,
        [
            format!("{indent}int *__fz{k};"),
            format!("{indent}__fz{k} = &{name};"),
            use_line,
        ],
    );
    Some(out.join("\n"))
}

/// Rewrites one helper-call boundary: swaps the two arguments or retargets
/// the call at a different helper (all helpers share the signature
/// `(int, int) -> int`, so the mutant stays type-correct).
fn rewrite_call(src: &str, rng: &mut Rng) -> Option<String> {
    let lines: Vec<&str> = src.lines().collect();
    let helpers: Vec<String> = lines
        .iter()
        .filter_map(|l| {
            let rest = l.strip_prefix("def helper")?;
            let end = rest.find('(')?;
            Some(format!("helper{}", &rest[..end]))
        })
        .collect();
    let calls: Vec<usize> = lines
        .iter()
        .enumerate()
        .filter(|(_, l)| l.starts_with(' ') && l.contains("helper") && l.contains('('))
        .map(|(i, _)| i)
        .collect();
    if calls.is_empty() {
        return None;
    }
    let i = calls[rng.below(calls.len())];
    let line = lines[i];
    let mutated = if rng.pct(50) && helpers.len() > 1 {
        // Retarget: replace the callee with a different helper.
        let at = line.find("helper")?;
        let end = at + line[at..].find('(')?;
        let other = &helpers[rng.below(helpers.len())];
        format!("{}{}{}", &line[..at], other, &line[end..])
    } else {
        // Swap the two arguments of the call.
        let open = line.find('(')?;
        let close = line.rfind(')')?;
        let inner = &line[open + 1..close];
        let comma = top_level_comma(inner)?;
        let (a, b) = (inner[..comma].trim(), inner[comma + 1..].trim());
        format!("{}({b}, {a}{}", &line[..open], &line[close..])
    };
    let mut out: Vec<String> = lines.iter().map(|l| l.to_string()).collect();
    out[i] = mutated;
    Some(out.join("\n"))
}

/// The byte offset of the first comma at parenthesis depth zero.
fn top_level_comma(s: &str) -> Option<usize> {
    let mut depth = 0i32;
    for (i, c) in s.char_indices() {
        match c {
            '(' => depth += 1,
            ')' => depth -= 1,
            ',' if depth == 0 => return Some(i),
            _ => {}
        }
    }
    None
}

/// Characters the havoc mutator injects: TinyC surface syntax plus
/// multi-byte UTF-8 — the latter is what flushed out the lexer's
/// char-boundary panic.
const HAVOC_CHARS: &[char] = &[
    ';', '{', '}', '(', ')', '[', ']', '=', '<', '>', '&', '*', '-', '0', '9', ' ', '\n', '\0',
    '€', '🦀', '中', 'é', '\u{7f}', '\u{2028}',
];

/// Applies 1–4 random character-level edits. Output is valid UTF-8 (Rust
/// strings always are) but almost never valid TinyC; the only contract
/// the compiler owes it is a structured error.
pub fn mutate_chars(src: &str, rng: &mut Rng) -> String {
    let mut chars: Vec<char> = src.chars().collect();
    for _ in 0..rng.below(4) + 1 {
        if chars.is_empty() {
            chars.push(HAVOC_CHARS[rng.below(HAVOC_CHARS.len())]);
            continue;
        }
        match rng.below(4) {
            0 => {
                let i = rng.below(chars.len() + 1);
                chars.insert(i, HAVOC_CHARS[rng.below(HAVOC_CHARS.len())]);
            }
            1 => {
                let i = rng.below(chars.len());
                chars.remove(i);
            }
            2 => {
                let i = rng.below(chars.len());
                chars[i] = HAVOC_CHARS[rng.below(HAVOC_CHARS.len())];
            }
            _ => {
                // Duplicate a chunk somewhere else.
                let start = rng.below(chars.len());
                let len = (rng.below(24) + 1).min(chars.len() - start);
                let chunk: Vec<char> = chars[start..start + len].to_vec();
                let at = rng.below(chars.len() + 1);
                chars.splice(at..at, chunk);
            }
        }
    }
    chars.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use usher_workloads::{generate, GenConfig};

    #[test]
    fn mutation_is_deterministic_per_seed() {
        let src = generate(5, GenConfig::default());
        let (a, op_a) = mutate(&src, &mut Rng::new(99));
        let (b, op_b) = mutate(&src, &mut Rng::new(99));
        assert_eq!(a, b);
        assert_eq!(op_a, op_b);
    }

    #[test]
    fn every_operator_eventually_applies() {
        let src = generate(2, GenConfig::default());
        let mut seen = std::collections::BTreeSet::new();
        let mut rng = Rng::new(7);
        for _ in 0..400 {
            let (_, op) = mutate(&src, &mut rng);
            seen.insert(op);
        }
        for op in OPS {
            assert!(seen.contains(op), "operator {op} never applied");
        }
    }

    #[test]
    fn flip_init_round_trips_a_declaration() {
        let src = "def main() -> int {\n    int x = 3;\n    return 0;\n}";
        let mut rng = Rng::new(1);
        let (once, op) = mutate_with_op(src, &mut rng, "flip-init");
        assert_eq!(op, "flip-init");
        assert!(once.contains("int x;"), "{once}");
    }

    fn mutate_with_op(src: &str, rng: &mut Rng, want: &str) -> (String, &'static str) {
        for _ in 0..200 {
            let (m, op) = mutate(src, rng);
            if op == want {
                return (m, op);
            }
        }
        panic!("operator {want} never selected");
    }

    #[test]
    fn havoc_handles_multibyte_without_panicking() {
        let src = generate(1, GenConfig::default());
        let mut rng = Rng::new(42);
        for _ in 0..500 {
            let m = mutate_chars(&src, &mut rng);
            assert!(std::str::from_utf8(m.as_bytes()).is_ok());
        }
    }
}
