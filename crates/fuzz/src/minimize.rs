//! Delta-debugging minimizer: shrinks a failing program to a small
//! reproducer that still exhibits the *same* mismatch class against the
//! *same* configuration.
//!
//! Granularity is source lines — the generator emits one statement per
//! line, so line-level ddmin converges quickly and never splits a token.

use crate::classify::MismatchKind;
use crate::differ::{differential, FaultInjection};

/// Classic ddmin over lines: repeatedly removes line chunks while `pred`
/// still holds. `pred` must hold for `src` itself; the result is
/// 1-minimal in the sense that no single remaining chunk at the final
/// granularity can be dropped.
pub fn ddmin_lines(src: &str, pred: &dyn Fn(&str) -> bool) -> String {
    debug_assert!(pred(src), "predicate must hold for the input");
    let mut lines: Vec<String> = src.lines().map(|l| l.to_string()).collect();
    let mut n = 2usize;
    while lines.len() >= 2 {
        let mut reduced = false;
        for i in 0..n {
            let start = i * lines.len() / n;
            let end = (i + 1) * lines.len() / n;
            if start == end {
                continue;
            }
            let candidate: Vec<String> = lines[..start]
                .iter()
                .chain(&lines[end..])
                .cloned()
                .collect();
            if !candidate.is_empty() && pred(&candidate.join("\n")) {
                lines = candidate;
                reduced = true;
                break;
            }
        }
        if reduced {
            n = n.saturating_sub(1).max(2);
        } else {
            if n >= lines.len() {
                break;
            }
            n = (n * 2).min(lines.len());
        }
    }
    lines.join("\n")
}

/// Minimizes a program that produced a `(kind, config)` mismatch under
/// `fault`, preserving that exact mismatch class throughout. Returns the
/// input unchanged if it does not actually exhibit the mismatch (e.g. a
/// flaky report — which itself would be a determinism bug caught by the
/// replay suite).
pub fn minimize_mismatch(
    src: &str,
    fault: FaultInjection,
    kind: MismatchKind,
    config: &str,
) -> String {
    let pred = |s: &str| {
        differential(s, fault, 1, false)
            .mismatches
            .iter()
            .any(|m| m.kind == kind && m.config == config)
    };
    if !pred(src) {
        return src.to_string();
    }
    ddmin_lines(src, &pred)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ddmin_isolates_the_failing_line() {
        let src = (0..40)
            .map(|i| format!("line {i}"))
            .collect::<Vec<_>>()
            .join("\n");
        let out = ddmin_lines(&src, &|s| s.contains("line 23"));
        assert_eq!(out, "line 23");
    }

    #[test]
    fn ddmin_keeps_conjoined_causes() {
        let src = (0..32)
            .map(|i| format!("l{i}"))
            .collect::<Vec<_>>()
            .join("\n");
        let out = ddmin_lines(&src, &|s| s.contains("l3\n") && s.contains("l27"));
        let kept: Vec<&str> = out.lines().collect();
        assert!(kept.contains(&"l3") && kept.contains(&"l27"), "{out}");
        assert!(kept.len() <= 4, "{out}");
    }
}
