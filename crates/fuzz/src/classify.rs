//! Mismatch taxonomy: turns one program's [`OracleRuns`] into a verdict
//! plus a (usually empty) list of classified soundness violations.
//!
//! The rules mirror the paper's claims exactly:
//!
//! 1. MSan detects exactly the ground-truth undefined-value uses;
//! 2. every guided configuration without Opt II detects exactly MSan's
//!    sites;
//! 3. with Opt II, detections are a dominated subset and the program-level
//!    verdict (buggy / clean) is unchanged;
//! 4. instrumentation never changes program semantics or termination;
//! 5. guided shadow cost never exceeds full-instrumentation shadow cost.
//!
//! Fuel exhaustion is **not** a mismatch: the budget is charged once per
//! native step and shadow operations are free, so the native run and every
//! instrumented run execute the identical native prefix before trapping —
//! all comparisons above stay valid on that prefix.

use std::fmt;

use usher_runtime::Trap;

use crate::oracle::OracleRuns;

/// What kind of disagreement a differential run surfaced.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MismatchKind {
    /// A guided configuration missed a detection the baseline made — an
    /// unsoundness, the worst class.
    MissedDetection,
    /// A configuration reported an undefined-value use the ground truth
    /// does not contain.
    SpuriousDetection,
    /// Instrumentation changed the program's observable output.
    SemanticsDivergence,
    /// Instrumentation changed how (or whether) the program trapped.
    TrapDivergence,
    /// A crashed-and-restarted serve store contained an entry that fails
    /// its digest check — fault injection corrupted durable state.
    StoreCorruption,
    /// A serve engine that crashed mid-session failed to recover
    /// byte-identically (or to degrade with a recorded reason).
    ServeDivergence,
    /// The guided plan's shadow cost exceeded full instrumentation's —
    /// the acceleration claim inverted.
    CostInversion,
    /// The driver produced different plans for the same program across
    /// thread counts, caching modes, or versus the core analysis.
    PlanDivergence,
    /// The front end panicked instead of returning a structured error.
    FrontendPanic,
}

impl MismatchKind {
    /// Every kind, severity-ordered (worst first).
    pub const ALL: [MismatchKind; 9] = [
        MismatchKind::MissedDetection,
        MismatchKind::SpuriousDetection,
        MismatchKind::SemanticsDivergence,
        MismatchKind::TrapDivergence,
        MismatchKind::StoreCorruption,
        MismatchKind::ServeDivergence,
        MismatchKind::CostInversion,
        MismatchKind::PlanDivergence,
        MismatchKind::FrontendPanic,
    ];

    /// Stable telemetry tag.
    pub fn name(self) -> &'static str {
        match self {
            MismatchKind::MissedDetection => "missed-detection",
            MismatchKind::SpuriousDetection => "spurious-detection",
            MismatchKind::SemanticsDivergence => "semantics-divergence",
            MismatchKind::TrapDivergence => "trap-divergence",
            MismatchKind::StoreCorruption => "store-corruption",
            MismatchKind::ServeDivergence => "serve-divergence",
            MismatchKind::CostInversion => "cost-inversion",
            MismatchKind::PlanDivergence => "plan-divergence",
            MismatchKind::FrontendPanic => "frontend-panic",
        }
    }
}

impl fmt::Display for MismatchKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One classified disagreement.
#[derive(Clone, Debug)]
pub struct Mismatch {
    /// The taxonomy class.
    pub kind: MismatchKind,
    /// Name of the configuration that disagreed (or `"driver"` /
    /// `"frontend"` for non-config findings).
    pub config: String,
    /// Human-readable evidence.
    pub detail: String,
}

impl fmt::Display for Mismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}: {}", self.kind, self.config, self.detail)
    }
}

/// Whole-program verdict of one differential execution. All variants are
/// *classified* outcomes — none of them is a finding by itself.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// Ran to completion with no undefined-value use.
    Clean,
    /// Ran to completion; the ground truth contains this many distinct
    /// undefined-value use sites.
    Buggy(usize),
    /// The step budget ran out before completion (expected under fuel
    /// fault injection and for mutants with unbounded loops).
    FuelExhausted,
    /// The source did not compile (expected for many mutants).
    CompileError,
}

impl Outcome {
    /// Stable telemetry tag.
    pub fn name(self) -> &'static str {
        match self {
            Outcome::Clean => "clean",
            Outcome::Buggy(_) => "buggy",
            Outcome::FuelExhausted => "fuel-exhausted",
            Outcome::CompileError => "compile-error",
        }
    }
}

/// Classifies one oracle execution into a verdict and its mismatches.
pub fn classify(o: &OracleRuns) -> (Outcome, Vec<Mismatch>) {
    let mut out = Vec::new();
    let truth = o.native.ground_truth_sites();

    let (msan_name, msan) = &o.runs[0];
    let msan_sites = msan.detected_sites();

    // Rule 1: the baseline against the ground truth.
    for site in msan_sites.difference(&truth) {
        out.push(Mismatch {
            kind: MismatchKind::SpuriousDetection,
            config: msan_name.clone(),
            detail: format!("detected {site} which the oracle never saw"),
        });
    }
    for site in truth.difference(&msan_sites) {
        out.push(Mismatch {
            kind: MismatchKind::MissedDetection,
            config: msan_name.clone(),
            detail: format!("oracle saw an undefined use at {site}, baseline missed it"),
        });
    }

    // Rule 2: exact-match configurations (everything between the baseline
    // and full Usher runs without Opt II).
    for (name, r) in &o.runs[1..o.runs.len() - 1] {
        let sites = r.detected_sites();
        for site in sites.difference(&msan_sites) {
            out.push(Mismatch {
                kind: MismatchKind::SpuriousDetection,
                config: name.clone(),
                detail: format!("detected {site}, baseline did not"),
            });
        }
        for site in msan_sites.difference(&sites) {
            out.push(Mismatch {
                kind: MismatchKind::MissedDetection,
                config: name.clone(),
                detail: format!("baseline detected {site}, this configuration missed it"),
            });
        }
    }

    // Rule 3: full Usher (Opt II) is a dominated subset with the same
    // program-level verdict.
    let (usher_name, usher) = &o.runs[o.runs.len() - 1];
    let usher_sites = usher.detected_sites();
    for site in usher_sites.difference(&msan_sites) {
        out.push(Mismatch {
            kind: MismatchKind::SpuriousDetection,
            config: usher_name.clone(),
            detail: format!("invented {site} outside the baseline's detections"),
        });
    }
    if usher.detected.is_empty() && !msan.detected.is_empty() {
        out.push(Mismatch {
            kind: MismatchKind::MissedDetection,
            config: usher_name.clone(),
            detail: format!(
                "verdict flipped: baseline found {} site(s), Opt II reported a clean program",
                msan_sites.len()
            ),
        });
    }

    // Rule 4: semantics and termination, every configuration.
    for (name, r) in &o.runs {
        if r.trace != o.native.trace {
            out.push(Mismatch {
                kind: MismatchKind::SemanticsDivergence,
                config: name.clone(),
                detail: format!(
                    "output diverged after {} common value(s)",
                    r.trace
                        .iter()
                        .zip(&o.native.trace)
                        .take_while(|(a, b)| a == b)
                        .count()
                ),
            });
        }
        if r.trap != o.native.trap {
            out.push(Mismatch {
                kind: MismatchKind::TrapDivergence,
                config: name.clone(),
                detail: format!(
                    "native trapped {:?}, instrumented {:?}",
                    o.native.trap, r.trap
                ),
            });
        }
    }

    // Rule 5: the acceleration direction.
    let full_cost = msan.counters.shadow_cost;
    let usher_cost = usher.counters.shadow_cost;
    if usher_cost > full_cost {
        out.push(Mismatch {
            kind: MismatchKind::CostInversion,
            config: usher_name.clone(),
            detail: format!("guided shadow cost {usher_cost} > full instrumentation {full_cost}"),
        });
    }

    let outcome = if o.native.trap == Some(Trap::FuelExhausted) {
        Outcome::FuelExhausted
    } else if truth.is_empty() {
        Outcome::Clean
    } else {
        Outcome::Buggy(truth.len())
    };
    (outcome, out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::run_seed;
    use usher_workloads::GenConfig;

    #[test]
    fn generated_corpus_classifies_without_mismatches() {
        for seed in 0..12u64 {
            let o = run_seed(seed, GenConfig::default());
            let (outcome, mismatches) = classify(&o);
            assert!(mismatches.is_empty(), "seed {seed}: {mismatches:?}");
            assert!(matches!(outcome, Outcome::Clean | Outcome::Buggy(_)));
        }
    }

    #[test]
    fn kinds_have_unique_stable_names() {
        let names: std::collections::BTreeSet<_> =
            MismatchKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), MismatchKind::ALL.len());
    }
}
