//! The shared oracle runner: one implementation of "run a program natively
//! and under every instrumentation preset" used by the differential
//! executor, the property-test suites and the replay harness.
//!
//! The soundness definition of the whole reproduction lives in the data
//! this module produces: the native run carries the ground-truth
//! undefined-value uses (the interpreter tracks real definedness bits),
//! and each entry of [`OracleRuns::runs`] is the same program under one
//! [`Config::ALL`] preset, in preset order.

use usher_core::{run_config, Config};
use usher_frontend::{compile_o0im, CompileError};
use usher_ir::Module;
use usher_runtime::{run, RunOptions, RunResult};
use usher_workloads::{generate, GenConfig};

/// The standard step budget for differential runs: large enough that every
/// generated program terminates, small enough that a mutant with an
/// accidental unbounded loop is cut off quickly.
pub const DIFF_FUEL: u64 = 2_000_000;

/// Run options shared by every differential comparison.
pub fn run_options() -> RunOptions {
    RunOptions {
        fuel: DIFF_FUEL,
        ..Default::default()
    }
}

/// One program's complete differential evidence.
#[derive(Debug)]
pub struct OracleRuns {
    /// The TinyC source that was executed.
    pub src: String,
    /// The uninstrumented run; its events are the ground truth.
    pub native: RunResult,
    /// `(config name, run)` for every [`Config::ALL`] preset, in order:
    /// `runs[0]` is the MSan baseline, `runs[4]` full Usher.
    pub runs: Vec<(String, RunResult)>,
}

/// Runs a compiled module natively and under every preset.
pub fn run_module(m: &Module, opts: &RunOptions) -> (RunResult, Vec<(String, RunResult)>) {
    let native = run(m, None, opts);
    let runs = Config::ALL
        .iter()
        .map(|cfg| {
            let out = run_config(m, *cfg);
            (cfg.name.to_string(), run(m, Some(&out.plan), opts))
        })
        .collect();
    (native, runs)
}

/// Compiles a source program and runs it through the full oracle.
///
/// # Errors
///
/// Propagates front-end errors; mutated programs routinely fail to
/// compile, and that is a classified outcome rather than a finding.
pub fn run_source(src: &str, opts: &RunOptions) -> Result<OracleRuns, CompileError> {
    let m = compile_o0im(src)?;
    let (native, runs) = run_module(&m, opts);
    Ok(OracleRuns {
        src: src.to_string(),
        native,
        runs,
    })
}

/// Generates the corpus program for `seed` and runs it through the full
/// oracle under the standard options.
///
/// # Panics
///
/// Panics if the generated program fails to compile — generator output is
/// guaranteed well-formed, so that is a generator bug worth a loud stop.
pub fn run_seed(seed: u64, cfg: GenConfig) -> OracleRuns {
    let src = generate(seed, cfg);
    match run_source(&src, &run_options()) {
        Ok(o) => o,
        Err(e) => panic!("seed {seed}: generated program failed to compile: {e}\n{src}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_runs_cover_every_preset_in_order() {
        let o = run_seed(3, GenConfig::default());
        let names: Vec<&str> = o.runs.iter().map(|(n, _)| n.as_str()).collect();
        let want: Vec<&str> = Config::ALL.iter().map(|c| c.name).collect();
        assert_eq!(names, want);
        assert_eq!(names[0], "MSan");
    }

    #[test]
    fn run_source_reports_compile_errors() {
        assert!(run_source("def main( {", &run_options()).is_err());
    }
}
