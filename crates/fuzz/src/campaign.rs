//! Campaign orchestration: seed iteration, mutation, differential
//! execution, minimization of failures, and JSONL telemetry.
//!
//! A campaign is fully determined by its [`CampaignConfig`]: the same
//! config always visits the same programs in the same order and reaches
//! the same verdict, which is what lets CI gate on a fixed smoke
//! campaign.

use std::time::Instant;

use usher_driver::json_escape;
use usher_workloads::{generate, GenConfig, Rng};

use crate::classify::{Mismatch, MismatchKind, Outcome};
use crate::differ::{differential, FaultInjection};
use crate::minimize::minimize_mismatch;
use crate::mutate::{mutate, mutate_chars};

/// Everything that parameterizes one campaign.
#[derive(Clone, Copy, Debug)]
pub struct CampaignConfig {
    /// Number of generator seeds to visit.
    pub seeds: u64,
    /// First seed.
    pub start: u64,
    /// Mutants per seed (the unmutated program always runs too).
    pub mutants: u32,
    /// Front-end mode: character-level havoc whose only assertion is
    /// "the compiler never panics".
    pub frontend: bool,
    /// Fault to inject into every differential run.
    pub fault: FaultInjection,
    /// Thread count for the driver cross-check's parallel variant.
    pub threads: usize,
    /// Generator shape.
    pub gen: GenConfig,
    /// Delta-debug each failure down to a minimal reproducer.
    pub minimize: bool,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            seeds: 25,
            start: 0,
            mutants: 8,
            frontend: false,
            fault: FaultInjection::None,
            threads: 4,
            gen: GenConfig::default(),
            minimize: true,
        }
    }
}

impl CampaignConfig {
    /// The fixed CI smoke campaign: small, deterministic, and expected to
    /// finish in well under a minute with zero mismatches.
    pub fn smoke() -> CampaignConfig {
        CampaignConfig {
            seeds: 12,
            start: 0,
            mutants: 6,
            minimize: false,
            threads: 2,
            gen: GenConfig {
                helpers: 2,
                max_stmts: 6,
                uninit_pct: 45,
            },
            ..Default::default()
        }
    }
}

/// Aggregate counters of one campaign.
#[derive(Clone, Debug, Default)]
pub struct CampaignStats {
    /// Programs executed (bases plus mutants).
    pub programs: u64,
    /// Programs that failed to compile (a classified outcome).
    pub compile_errors: u64,
    /// Programs cut off by the step budget (a classified outcome).
    pub fuel_exhausted: u64,
    /// Total mismatches across all programs.
    pub mismatches: u64,
    /// Mismatch count per taxonomy class, in [`MismatchKind::ALL`] order.
    pub by_kind: [u64; MismatchKind::ALL.len()],
    /// Wall-clock seconds.
    pub seconds: f64,
}

/// One failing program with its evidence.
#[derive(Clone, Debug)]
pub struct Failure {
    /// Generator seed of the base program.
    pub seed: u64,
    /// Mutant index (0 = the unmutated base).
    pub mutant: u32,
    /// Mutation operator that produced the program.
    pub op: String,
    /// The first (most severe) mismatch.
    pub mismatch: Mismatch,
    /// The failing source.
    pub src: String,
    /// Delta-debugged reproducer, when minimization ran.
    pub minimized: Option<String>,
}

/// A finished campaign.
#[derive(Clone, Debug, Default)]
pub struct CampaignOutcome {
    /// Aggregate counters.
    pub stats: CampaignStats,
    /// Every failing program, in discovery order.
    pub failures: Vec<Failure>,
}

impl CampaignOutcome {
    /// Whether the campaign found nothing — the CI gate.
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Runs a campaign. Every telemetry record goes to `emit` as one JSON
/// object on one line (pipe it to a file for `--report`).
pub fn run_campaign(cfg: &CampaignConfig, emit: &mut dyn FnMut(String)) -> CampaignOutcome {
    let t0 = Instant::now();
    let mut out = CampaignOutcome::default();
    emit(format!(
        "{{\"campaign\":{{\"seeds\":{},\"start\":{},\"mutants\":{},\"frontend\":{},\"fault\":\"{}\",\"threads\":{}}}}}",
        cfg.seeds, cfg.start, cfg.mutants, cfg.frontend, cfg.fault.name(), cfg.threads
    ));
    for seed in cfg.start..cfg.start + cfg.seeds {
        let base = generate(seed, cfg.gen);
        // One RNG per seed: mutant k of seed s is reproducible without
        // replaying mutants 0..k-1 of any other seed.
        let mut rng = Rng::new(seed.wrapping_mul(0x9E3779B97F4A7C15) ^ 0xF5A5);
        for mutant in 0..=cfg.mutants {
            let (src, op) = if mutant == 0 {
                (base.clone(), "base")
            } else if cfg.frontend {
                (mutate_chars(&base, &mut rng), "havoc")
            } else {
                mutate(&base, &mut rng)
            };
            // The driver cross-check is deterministic per source, so the
            // unmutated corpus program carries it for the whole seed.
            let driver_check = mutant == 0 && !cfg.frontend;
            let d = differential(&src, cfg.fault, cfg.threads, driver_check);
            record(cfg, seed, mutant, op, &src, d, &mut out, emit);
        }
    }
    out.stats.seconds = t0.elapsed().as_secs_f64();
    let by_kind = MismatchKind::ALL
        .iter()
        .zip(out.stats.by_kind)
        .map(|(k, n)| format!("\"{}\":{n}", k.name()))
        .collect::<Vec<_>>()
        .join(",");
    emit(format!(
        "{{\"summary\":{{\"programs\":{},\"compile_errors\":{},\"fuel_exhausted\":{},\"mismatches\":{},\"by_kind\":{{{by_kind}}},\"seconds\":{:.3},\"programs_per_second\":{:.1}}}}}",
        out.stats.programs,
        out.stats.compile_errors,
        out.stats.fuel_exhausted,
        out.stats.mismatches,
        out.stats.seconds,
        out.stats.programs as f64 / out.stats.seconds.max(1e-9),
    ));
    out
}

#[allow(clippy::too_many_arguments)]
fn record(
    cfg: &CampaignConfig,
    seed: u64,
    mutant: u32,
    op: &str,
    src: &str,
    d: crate::differ::DiffResult,
    out: &mut CampaignOutcome,
    emit: &mut dyn FnMut(String),
) {
    out.stats.programs += 1;
    match d.outcome {
        Outcome::CompileError => out.stats.compile_errors += 1,
        Outcome::FuelExhausted => out.stats.fuel_exhausted += 1,
        _ => {}
    }
    emit(format!(
        "{{\"seed\":{seed},\"mutant\":{mutant},\"op\":\"{}\",\"outcome\":\"{}\",\"mismatches\":{}}}",
        json_escape(op),
        d.outcome.name(),
        d.mismatches.len()
    ));
    if d.mismatches.is_empty() {
        return;
    }
    out.stats.mismatches += d.mismatches.len() as u64;
    for m in &d.mismatches {
        let i = MismatchKind::ALL
            .iter()
            .position(|k| *k == m.kind)
            .expect("kind is in ALL");
        out.stats.by_kind[i] += 1;
        emit(format!(
            "{{\"mismatch\":{{\"seed\":{seed},\"mutant\":{mutant},\"kind\":\"{}\",\"config\":\"{}\",\"detail\":\"{}\"}}}}",
            m.kind.name(),
            json_escape(&m.config),
            json_escape(&m.detail)
        ));
    }
    let first = d.mismatches[0].clone();
    let minimized = (cfg.minimize && first.kind != MismatchKind::FrontendPanic)
        .then(|| minimize_mismatch(src, cfg.fault, first.kind, &first.config));
    out.failures.push(Failure {
        seed,
        mutant,
        op: op.to_string(),
        mismatch: first,
        src: src.to_string(),
        minimized,
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_campaign_is_clean_and_deterministic() {
        let cfg = CampaignConfig {
            seeds: 2,
            mutants: 2,
            ..CampaignConfig::smoke()
        };
        let mut lines_a = Vec::new();
        let a = run_campaign(&cfg, &mut |l| lines_a.push(l));
        let mut lines_b = Vec::new();
        let b = run_campaign(&cfg, &mut |l| lines_b.push(l));
        assert!(a.is_clean(), "{:?}", a.failures);
        assert_eq!(a.stats.programs, b.stats.programs);
        assert_eq!(a.stats.compile_errors, b.stats.compile_errors);
        assert_eq!(a.stats.mismatches, b.stats.mismatches);
        // All records except the timing summary are byte-identical.
        assert_eq!(lines_a.len(), lines_b.len());
        for (x, y) in lines_a.iter().zip(&lines_b).take(lines_a.len() - 1) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn drop_checks_campaign_finds_and_minimizes_unsoundness() {
        // Seeds 4..6 of the smoke generator shape are buggy programs
        // (the sabotage is only observable when there is something to
        // miss).
        let cfg = CampaignConfig {
            seeds: 2,
            start: 4,
            mutants: 0,
            fault: FaultInjection::DropChecks,
            minimize: true,
            ..CampaignConfig::smoke()
        };
        let out = run_campaign(&cfg, &mut |_| {});
        assert!(
            !out.is_clean(),
            "stripping every check must surface missed detections"
        );
        let f = &out.failures[0];
        assert_eq!(f.mismatch.kind, MismatchKind::MissedDetection);
        let min = f.minimized.as_ref().expect("minimization was on");
        assert!(min.lines().count() <= f.src.lines().count());
    }
}
