//! # usher-pointer
//!
//! An inclusion-based (Andersen-style), offset-based field-sensitive
//! pointer analysis with on-the-fly call-graph construction — the
//! "pointer analysis (done a priori)" box of the paper's Figure 3,
//! configured exactly as Section 4.1 describes:
//!
//! * **field-sensitive by offset**: points-to targets are `(object,
//!   field)` pairs; `gep` with a constant offset shifts the field;
//! * **arrays are treated as a whole**: all cells under an array collapse
//!   into one field class, and dynamic indexing stays within the class;
//! * **on-the-fly call graph**: indirect calls are resolved as
//!   function-pointer targets flow in; the call graph, recursion SCCs and
//!   a function-multiplicity analysis (used for strong-update concreteness)
//!   are by-products;
//! * **1-callsite heap cloning for allocation wrappers** happens upstream,
//!   in `usher_ir::inline` (each inlined wrapper copy gets fresh objects).
//!
//! The solver core is a worklist with difference propagation and
//! periodic Tarjan cycle collapsing over the copy-edge graph. Points-to
//! sets are hybrid sparse/dense bitmaps over interned target ids
//! ([`pts`]). Four interchangeable [`strategy`] implementations share
//! that core: the frozen `BTreeSet` baseline ([`reference`]), the plain
//! bitmap worklist ([`andersen`]), a unification-prefiltered worklist
//! ([`unify`](crate::strategy::PointerStrategy::Prefilter) + worklist)
//! and prefiltered parallel wave propagation
//! ([`strategy::PointerStrategy::PrefilterWave`], the default). All of
//! them produce byte-identical results; see `tests/representation_equiv.rs`.

#![warn(missing_docs)]

pub mod andersen;
pub mod callgraph;
pub mod pts;
pub mod reference;
pub mod strategy;
mod unify;
mod wave;

pub use andersen::{Loc, PointerAnalysis, SolverStats};
pub use callgraph::{CallGraph, LoopInfo};
pub use pts::PtsSet;
pub use reference::{analyze_reference, analyze_reference_budgeted};
pub use strategy::{
    analyze, analyze_budgeted, analyze_budgeted_with, analyze_with, AndersenSolver,
    PointerStrategy, PrefilterSolver, ReferenceSolver, Solver, WaveJob, WaveRunner, WaveSolver,
};
