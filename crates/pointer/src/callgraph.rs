//! Call graph, recursion detection, function multiplicity and loop info.
//!
//! These by-products of the pointer analysis feed the strong-update
//! criterion of Section 3.2: a store can strongly update `rho` only if its
//! pointer *uniquely points to a concrete location*. An abstract object is
//! concrete when its allocation site executes at most once per run — which
//! we derive from (a) CFG loop membership of the allocation block and
//! (b) how many times the enclosing function can run (the paper's Figure 6
//! example: `b` is abstract because `foo` may be called multiple times).

use usher_ir::{BlockId, FuncId, Function, FxHashMap, FxHashSet, Idx, Module, Site, Terminator};

/// Per-function loop information: which blocks sit on a CFG cycle.
#[derive(Clone, Debug)]
pub struct LoopInfo {
    in_loop: Vec<bool>,
}

impl LoopInfo {
    /// Computes loop membership for `f` via Tarjan SCCs over the CFG.
    /// Successors are read straight off the block terminators (at most
    /// two each), so no adjacency structure is materialized; starting
    /// the DFS at the entry block visits exactly the reachable blocks,
    /// matching the old reachability filter.
    pub fn compute(f: &Function) -> LoopInfo {
        let n = f.blocks.len();
        let mut info = LoopInfo {
            in_loop: vec![false; n],
        };
        if n == 0 {
            return info;
        }
        let succs_of = |v: usize| -> ([usize; 2], usize) {
            match &f.blocks[BlockId(v as u32)].term {
                Terminator::Jmp(b) => ([b.index(), 0], 1),
                Terminator::Br {
                    then_bb, else_bb, ..
                } => ([then_bb.index(), else_bb.index()], 2),
                _ => ([0, 0], 0),
            }
        };
        // Iterative Tarjan from the entry block.
        let mut index = vec![usize::MAX; n];
        let mut low = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        let mut next_index = 0usize;
        let mut call_stack: Vec<(usize, usize)> = Vec::new();

        let start = f.entry.index();
        call_stack.push((start, 0));
        index[start] = next_index;
        low[start] = next_index;
        next_index += 1;
        stack.push(start);
        on_stack[start] = true;

        while let Some(&mut (v, ref mut ei)) = call_stack.last_mut() {
            let (succs, n_succs) = succs_of(v);
            if *ei < n_succs {
                let w = succs[*ei];
                *ei += 1;
                if index[w] == usize::MAX {
                    index[w] = next_index;
                    low[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    call_stack.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                if low[v] == index[v] {
                    // Root of an SCC.
                    let top = stack
                        .iter()
                        .rposition(|&w| w == v)
                        .expect("tarjan stack holds the SCC root");
                    let comp = &stack[top..];
                    let self_loop = comp.len() == 1 && succs[..n_succs].contains(&v);
                    if comp.len() > 1 || self_loop {
                        for &w in comp {
                            info.in_loop[w] = true;
                        }
                    }
                    for &w in comp {
                        on_stack[w] = false;
                    }
                    stack.truncate(top);
                }
                call_stack.pop();
                if let Some(&(u, _)) = call_stack.last() {
                    low[u] = low[u].min(low[v]);
                }
            }
        }
        info
    }

    /// Whether `bb` lies on a CFG cycle.
    pub fn in_loop(&self, bb: BlockId) -> bool {
        self.in_loop.get(bb.index()).copied().unwrap_or(false)
    }

    /// The ascending list of in-loop block ids — the wire format the
    /// parallel finalization jobs ship loop analyses across threads in.
    pub(crate) fn loop_blocks(&self) -> Vec<u32> {
        (0..self.in_loop.len() as u32)
            .filter(|&b| self.in_loop[b as usize])
            .collect()
    }

    /// Rebuilds a [`LoopInfo`] from [`LoopInfo::loop_blocks`] output.
    pub(crate) fn from_loop_blocks(n_blocks: usize, blocks: &[u32]) -> LoopInfo {
        let mut in_loop = vec![false; n_blocks];
        for &b in blocks {
            in_loop[b as usize] = true;
        }
        LoopInfo { in_loop }
    }
}

/// The resolved call graph, including indirect call targets.
#[derive(Clone, Debug, Default)]
pub struct CallGraph {
    /// Call site -> possible callees.
    pub callees: FxHashMap<Site, Vec<FuncId>>,
    /// Function -> call sites that may invoke it.
    pub callers: FxHashMap<FuncId, Vec<Site>>,
    /// Functions on a call-graph cycle (including self-recursion).
    pub recursive: FxHashSet<FuncId>,
    /// Functions that run at most once per execution.
    pub runs_once: FxHashSet<FuncId>,
    /// Bottom-up SCC order over functions (callees before callers), for
    /// mod/ref summary computation.
    pub bottom_up: Vec<Vec<FuncId>>,
}

impl CallGraph {
    /// Adds a call edge.
    pub fn add_edge(&mut self, site: Site, callee: FuncId) {
        let cs = self.callees.entry(site).or_default();
        if !cs.contains(&callee) {
            cs.push(callee);
            self.callers.entry(callee).or_default().push(site);
        }
    }

    /// Possible callees of a site (empty if unresolved/external).
    pub fn callees_of(&self, site: Site) -> &[FuncId] {
        self.callees.get(&site).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Finalizes derived info: recursion SCCs, bottom-up order and the
    /// multiplicity analysis. Edge lists are canonicalized (sorted) first,
    /// so downstream consumers (VFG node interning, mod/ref order) see the
    /// same graph regardless of the order the solver discovered edges in.
    pub fn finalize(&mut self, m: &Module, loops: &FxHashMap<FuncId, LoopInfo>) {
        for cs in self.callees.values_mut() {
            cs.sort_unstable();
        }
        for ss in self.callers.values_mut() {
            ss.sort_unstable();
        }
        self.compute_sccs(m);
        self.compute_multiplicity(m, loops);
    }

    fn compute_sccs(&mut self, m: &Module) {
        // Tarjan over the function-level graph (successors collected in
        // sorted site order so the bottom-up SCC order is deterministic).
        let n = m.funcs.len();
        let mut edges: Vec<(Site, FuncId)> = Vec::new();
        for (site, cs) in &self.callees {
            for c in cs {
                edges.push((*site, *c));
            }
        }
        edges.sort_unstable();
        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (site, c) in edges {
            let out = &mut succs[site.func.index()];
            if !out.contains(&c.index()) {
                out.push(c.index());
            }
        }

        let mut index = vec![usize::MAX; n];
        let mut low = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut stack = Vec::new();
        let mut next = 0usize;
        let mut call_stack: Vec<(usize, usize)> = Vec::new();
        let mut sccs: Vec<Vec<FuncId>> = Vec::new();

        for start in 0..n {
            if index[start] != usize::MAX {
                continue;
            }
            call_stack.push((start, 0));
            index[start] = next;
            low[start] = next;
            next += 1;
            stack.push(start);
            on_stack[start] = true;
            while let Some(&mut (v, ref mut ei)) = call_stack.last_mut() {
                if *ei < succs[v].len() {
                    let w = succs[v][*ei];
                    *ei += 1;
                    if index[w] == usize::MAX {
                        index[w] = next;
                        low[w] = next;
                        next += 1;
                        stack.push(w);
                        on_stack[w] = true;
                        call_stack.push((w, 0));
                    } else if on_stack[w] {
                        low[v] = low[v].min(index[w]);
                    }
                } else {
                    if low[v] == index[v] {
                        let mut comp = Vec::new();
                        while let Some(w) = stack.pop() {
                            on_stack[w] = false;
                            comp.push(FuncId(w as u32));
                            if w == v {
                                break;
                            }
                        }
                        let self_loop = comp.len() == 1 && succs[v].contains(&v);
                        if comp.len() > 1 || self_loop {
                            for f in &comp {
                                self.recursive.insert(*f);
                            }
                        }
                        sccs.push(comp);
                    }
                    call_stack.pop();
                    if let Some(&(u, _)) = call_stack.last() {
                        low[u] = low[u].min(low[v]);
                    }
                }
            }
        }
        // Tarjan emits SCCs in reverse topological order (callees first
        // when edges point caller -> callee): exactly the bottom-up order.
        self.bottom_up = sccs;
    }

    fn compute_multiplicity(&mut self, m: &Module, loops: &FxHashMap<FuncId, LoopInfo>) {
        // main runs once. f runs once iff it is not recursive, has exactly
        // one (static) call site, that site's block is outside any loop,
        // and the caller itself runs once. Iterate to a fixpoint top-down.
        self.runs_once.clear();
        if let Some(main) = m.main {
            self.runs_once.insert(main);
        }
        let mut changed = true;
        while changed {
            changed = false;
            for f in m.funcs.indices() {
                if self.runs_once.contains(&f) || self.recursive.contains(&f) {
                    continue;
                }
                let Some(sites) = self.callers.get(&f) else {
                    continue;
                };
                if sites.len() != 1 {
                    continue;
                }
                let site = sites[0];
                let caller_once = self.runs_once.contains(&site.func);
                let out_of_loop = loops
                    .get(&site.func)
                    .is_some_and(|li| !li.in_loop(site.block));
                if caller_once && out_of_loop {
                    self.runs_once.insert(f);
                    changed = true;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use usher_ir::{FuncBuilder, Module, Operand, Terminator};

    fn loopy_function() -> Function {
        let mut m = Module::new();
        let fid = m.declare_func("f", None);
        let mut b = FuncBuilder::new(&mut m, fid);
        let header = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        b.jmp(header);
        b.set_block(header);
        b.br(Operand::Const(1), body, exit);
        b.set_block(body);
        b.jmp(header);
        b.set_block(exit);
        b.ret(None);
        b.finish();
        m.funcs[fid].clone()
    }

    #[test]
    fn loop_info_marks_cycle_blocks() {
        let f = loopy_function();
        let li = LoopInfo::compute(&f);
        assert!(!li.in_loop(BlockId(0)), "entry is not in a loop");
        assert!(li.in_loop(BlockId(1)), "header is in a loop");
        assert!(li.in_loop(BlockId(2)), "body is in a loop");
        assert!(!li.in_loop(BlockId(3)), "exit is not in a loop");
    }

    #[test]
    fn straight_line_has_no_loops() {
        let mut m = Module::new();
        let fid = m.declare_func("g", None);
        let mut b = FuncBuilder::new(&mut m, fid);
        let nxt = b.new_block();
        b.jmp(nxt);
        b.set_block(nxt);
        b.ret(None);
        b.finish();
        let li = LoopInfo::compute(&m.funcs[fid]);
        assert!(!li.in_loop(BlockId(0)));
        assert!(!li.in_loop(BlockId(1)));
    }

    #[test]
    fn self_loop_block_detected() {
        let mut m = Module::new();
        let fid = m.declare_func("h", None);
        let mut b = FuncBuilder::new(&mut m, fid);
        let s = b.new_block();
        let exit = b.new_block();
        b.jmp(s);
        b.set_block(s);
        b.br(Operand::Const(0), s, exit);
        b.set_block(exit);
        b.ret(None);
        b.finish();
        // Manually check the self-edge case.
        assert!(matches!(
            m.funcs[fid].blocks[BlockId(1)].term,
            Terminator::Br { .. }
        ));
        let li = LoopInfo::compute(&m.funcs[fid]);
        assert!(li.in_loop(BlockId(1)));
        assert!(!li.in_loop(BlockId(2)));
    }

    #[test]
    fn call_graph_edges_and_recursion() {
        let mut m = Module::new();
        let a = m.declare_func("a", None);
        let b = m.declare_func("b", None);
        let c = m.declare_func("c", None);
        m.main = Some(a);
        let mut cg = CallGraph::default();
        let s_ab = Site::new(a, BlockId(0), 0);
        let s_bc = Site::new(b, BlockId(0), 0);
        let s_cb = Site::new(c, BlockId(0), 0);
        cg.add_edge(s_ab, b);
        cg.add_edge(s_bc, c);
        cg.add_edge(s_cb, b); // b <-> c cycle
        let loops: FxHashMap<FuncId, LoopInfo> = m
            .funcs
            .indices()
            .map(|f| (f, LoopInfo::compute(&m.funcs[f])))
            .collect();
        cg.finalize(&m, &loops);
        assert!(cg.recursive.contains(&b));
        assert!(cg.recursive.contains(&c));
        assert!(!cg.recursive.contains(&a));
        assert_eq!(cg.callees_of(s_ab), &[b]);
    }

    #[test]
    fn multiplicity_single_call_chain_runs_once() {
        let mut m = Module::new();
        let main = m.declare_func("main", None);
        let helper = m.declare_func("helper", None);
        m.main = Some(main);
        // Build trivial bodies so LoopInfo works.
        for fid in [main, helper] {
            let mut b = FuncBuilder::new(&mut m, fid);
            b.ret(None);
            b.finish();
        }
        let mut cg = CallGraph::default();
        cg.add_edge(Site::new(main, BlockId(0), 0), helper);
        let loops: FxHashMap<FuncId, LoopInfo> = m
            .funcs
            .indices()
            .map(|f| (f, LoopInfo::compute(&m.funcs[f])))
            .collect();
        cg.finalize(&m, &loops);
        assert!(cg.runs_once.contains(&main));
        assert!(cg.runs_once.contains(&helper));
    }

    #[test]
    fn multiplicity_loop_call_not_once() {
        let mut m = Module::new();
        let main = m.declare_func("main", None);
        let helper = m.declare_func("helper", None);
        m.main = Some(main);
        {
            // main with a loop calling helper in the body.
            let mut b = FuncBuilder::new(&mut m, main);
            let header = b.new_block();
            let body = b.new_block();
            let exit = b.new_block();
            b.jmp(header);
            b.set_block(header);
            b.br(Operand::Const(1), body, exit);
            b.set_block(body);
            b.call(usher_ir::Callee::Direct(helper), vec![], None);
            b.jmp(header);
            b.set_block(exit);
            b.ret(None);
            b.finish();
        }
        {
            let mut b = FuncBuilder::new(&mut m, helper);
            b.ret(None);
            b.finish();
        }
        let mut cg = CallGraph::default();
        cg.add_edge(Site::new(main, BlockId(2), 0), helper);
        let loops: FxHashMap<FuncId, LoopInfo> = m
            .funcs
            .indices()
            .map(|f| (f, LoopInfo::compute(&m.funcs[f])))
            .collect();
        cg.finalize(&m, &loops);
        assert!(!cg.runs_once.contains(&helper));
    }

    #[test]
    fn bottom_up_order_puts_callees_first() {
        let mut m = Module::new();
        let a = m.declare_func("a", None);
        let b = m.declare_func("b", None);
        m.main = Some(a);
        for fid in [a, b] {
            let mut bd = FuncBuilder::new(&mut m, fid);
            bd.ret(None);
            bd.finish();
        }
        let mut cg = CallGraph::default();
        cg.add_edge(Site::new(a, BlockId(0), 0), b);
        let loops: FxHashMap<FuncId, LoopInfo> = m
            .funcs
            .indices()
            .map(|f| (f, LoopInfo::compute(&m.funcs[f])))
            .collect();
        cg.finalize(&m, &loops);
        let pos = |f: FuncId| {
            cg.bottom_up
                .iter()
                .position(|scc| scc.contains(&f))
                .unwrap()
        };
        assert!(pos(b) < pos(a), "callee b must come before caller a");
    }
}
