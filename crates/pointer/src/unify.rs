//! Unification prefilter: oversharing-safe offline variable substitution.
//!
//! Before the Andersen solver seeds any constraint, this pass builds the
//! *offline* copy graph — the copy/phi/return/direct-call-argument edges
//! between variable and return nodes that are known from the IR text
//! alone — and collapses two kinds of equivalence classes into one
//! representative each:
//!
//! 1. **Offline copy cycles.** Every node of a copy-edge SCC has the same
//!    points-to set at any inclusion fixpoint, so collapsing a cycle is
//!    always precision-preserving (the online cycle collapser would find
//!    the same cycle eventually; doing it offline is free).
//! 2. **Single-predecessor chains** (offline variable substitution). A
//!    class whose *only* inflow is copy edges from one other class, and
//!    none of whose members has any *direct* inflow (allocation results,
//!    load/gep destinations, constant operands, parameters reachable
//!    through indirect calls, …), provably ends with exactly its
//!    predecessor's points-to set — so it is unified into the
//!    predecessor.
//!
//! This is the "no oversharing" discipline: unlike a Steensgaard pass,
//! nothing is ever merged across a *store* or a *join of two different
//! sources*, so the collapsed system has the same least model as the
//! original (see DESIGN.md §12 for the argument). The solver pre-seeds
//! its union-find with the result, shrinking the graph Andersen
//! refinement runs on without changing anything it computes.
//!
//! Anything this pass cannot see offline — edges materialized at solve
//! time by load/store/call constraints — only ever *adds* inflow to nodes
//! marked direct here, which keeps the substitution sound:
//!
//! - load destinations get edges from memory nodes → marked direct;
//! - parameters of address-taken functions may be wired from indirect
//!   call sites → all marked direct (a function is address-taken iff an
//!   `Operand::Func` mentions it anywhere);
//! - indirect-call result variables get edges from unknown return
//!   nodes → marked direct;
//! - store/gep targets are memory nodes, outside this pass's domain
//!   (`0..mem_base`).
//!
//! The pass runs on every solve, so it is built to be allocation-lean:
//! one IR scan collects the edge list and the direct mask, and every
//! adjacency structure after that is a counted-and-filled CSR — no
//! per-node `Vec`s anywhere.

use usher_ir::{Callee, Idx, Inst, Module, Operand, Terminator};

use crate::andersen::NodeLayout;

/// The result of the prefilter: a union-find `parent` vector over the
/// variable/return node prefix (`0..mem_base`) of the solver's id space,
/// fully path-compressed, with deterministic minimum-id representatives.
pub(crate) struct Prefilter {
    /// `parent[n]` is `n`'s class representative (already compressed).
    pub(crate) parent: Vec<u32>,
    /// The offline `(to, from)` copy-edge list the classes were computed
    /// from, in raw (pre-unification) node ids. The wave strategy seeds
    /// its copy graph straight from this list instead of re-deriving the
    /// same edges from a second IR walk.
    pub(crate) edges: Vec<(u32, u32)>,
    /// Number of multi-member classes.
    pub(crate) classes: usize,
    /// Number of nodes collapsed into some other representative.
    pub(crate) collapsed: usize,
}

/// Offline copy graph over `0..mem_base`: a flat `(to, from)` edge list
/// plus the direct-inflow mask.
struct Offline {
    edges: Vec<(u32, u32)>,
    direct: Vec<bool>,
}

impl Offline {
    fn edge(&mut self, from: u32, to: u32) {
        if from != to {
            self.edges.push((to, from));
        }
    }
}

/// Computes the oversharing-safe equivalence classes for `m`.
pub(crate) fn prefilter(m: &Module, layout: &NodeLayout) -> Prefilter {
    let n = layout.mem_base as usize;
    let mut g = Offline {
        // One edge per copy-ish inflow; the node count is a serviceable
        // first guess that spares the growth ladder's early reallocations.
        edges: Vec::with_capacity(n),
        direct: vec![false; n],
    };

    // Single IR scan: offline edges + direct-inflow marks (mirroring
    // exactly the inflow each `Solver::seed_inst` case can generate),
    // interleaved with the address-taken sweep. `Target::Func` values
    // only enter points-to sets through `Operand::Func` constants, so
    // only functions mentioned as an operand can be indirect targets.
    let mut addr_taken = vec![false; m.funcs.len()];
    for (f, func) in m.funcs.iter_enumerated() {
        for block in func.blocks.iter() {
            let mut mark = |op: Operand| {
                if let Operand::Func(g) = op {
                    addr_taken[g.index()] = true;
                }
            };
            for inst in &block.insts {
                inst.for_each_use(&mut mark);
                seed_offline(m, layout, &mut g, f, inst);
            }
            block.term.for_each_use(&mut mark);
            if let Terminator::Ret(Some(op)) = &block.term {
                inflow(layout, &mut g, f, *op, layout.ret_node(f));
            }
        }
    }
    for (f, func) in m.funcs.iter_enumerated() {
        if addr_taken[f.index()] {
            // Indirect wiring can flow any argument into these params.
            for &p in &func.params {
                g.direct[layout.var_node(f, p) as usize] = true;
            }
        }
    }

    // Predecessor CSR keyed by edge target (counted and filled; the fill
    // preserves edge-list order, so neighbor order — and with it every
    // downstream id assignment — is a function of the module alone).
    let mut poff = vec![0u32; n + 1];
    for &(to, _) in &g.edges {
        poff[to as usize + 1] += 1;
    }
    for i in 0..n {
        poff[i + 1] += poff[i];
    }
    let mut preds = vec![0u32; g.edges.len()];
    let mut cursor = poff.clone();
    for &(to, from) in &g.edges {
        let c = &mut cursor[to as usize];
        preds[*c as usize] = from;
        *c += 1;
    }

    // Tarjan SCC over the offline graph (iterative, on the transpose —
    // SCCs of a graph and its transpose coincide), then
    // single-predecessor substitution in topological order.
    let comp = condense(n, &poff, &preds);
    let nc = comp.iter().map(|&c| c as usize + 1).max().unwrap_or(0);

    // Union-find with minimum-id representatives: deterministic and
    // independent of edge discovery order.
    let mut parent: Vec<u32> = (0..n as u32).collect();
    fn find(parent: &mut [u32], mut x: u32) -> u32 {
        while parent[x as usize] != x {
            let gp = parent[parent[x as usize] as usize];
            parent[x as usize] = gp;
            x = gp;
        }
        x
    }
    let union = |parent: &mut Vec<u32>, a: u32, b: u32| {
        let (ra, rb) = (find(parent, a), find(parent, b));
        if ra != rb {
            let (lo, hi) = (ra.min(rb), ra.max(rb));
            parent[hi as usize] = lo;
        }
    };

    // Per-component facts in one ascending node scan: the minimum-id
    // member (scanning ascending, the first one seen), the direct mask,
    // and — 3a — each nontrivial SCC collapsed into that minimum member
    // (always safe).
    const NONE: u32 = u32::MAX;
    let mut first = vec![NONE; nc];
    let mut comp_direct = vec![false; nc];
    for v in 0..n as u32 {
        let c = comp[v as usize] as usize;
        comp_direct[c] |= g.direct[v as usize];
        if first[c] == NONE {
            first[c] = v;
        } else {
            union(&mut parent, first[c], v);
        }
    }

    // Cross-component edge CSR keyed by target component, for the
    // single-predecessor check.
    let mut coff = vec![0u32; nc + 1];
    for &(to, from) in &g.edges {
        if comp[to as usize] != comp[from as usize] {
            coff[comp[to as usize] as usize + 1] += 1;
        }
    }
    for i in 0..nc {
        coff[i + 1] += coff[i];
    }
    let mut cpreds = vec![0u32; coff[nc] as usize];
    let mut ccur = coff.clone();
    for &(to, from) in &g.edges {
        if comp[to as usize] != comp[from as usize] {
            let c = &mut ccur[comp[to as usize] as usize];
            cpreds[*c as usize] = from;
            *c += 1;
        }
    }

    // 3b: offline variable substitution. Tarjan ran over the *transpose*
    // (predecessor lists), so copy-graph predecessors receive smaller
    // component ids; walking ids in increasing order visits predecessors
    // before successors. A component whose distinct predecessor
    // components reduce to one, none of whose members has direct inflow,
    // is unified into that predecessor. The predecessor is resolved
    // through the union-find so chains collapse transitively in one
    // pass; the order is a throughput choice, not a soundness one (a
    // stale representative only makes the single-predecessor check more
    // conservative).
    for c in 0..nc {
        if comp_direct[c] {
            continue;
        }
        let mut pred_rep: Option<u32> = None;
        let mut unifiable = true;
        for &p in &cpreds[coff[c] as usize..coff[c + 1] as usize] {
            let r = find(&mut parent, p);
            match pred_rep {
                None => pred_rep = Some(r),
                Some(prev) if prev == r => {}
                Some(_) => {
                    unifiable = false;
                    break;
                }
            }
        }
        if let (true, Some(r)) = (unifiable, pred_rep) {
            union(&mut parent, r, first[c]);
        }
    }

    // Full compression + stats.
    let mut collapsed = 0usize;
    let mut class_size = vec![0u32; n];
    for i in 0..n as u32 {
        let r = find(&mut parent, i);
        parent[i as usize] = r;
        class_size[r as usize] += 1;
        if r != i {
            collapsed += 1;
        }
    }
    let classes = class_size.iter().filter(|&&s| s > 1).count();
    Prefilter {
        parent,
        edges: g.edges,
        classes,
        collapsed,
    }
}

/// Adds either an offline copy edge `op → dst` (register operand) or a
/// direct-inflow mark on `dst` (pointer constant), matching
/// `Solver::flow_into`.
fn inflow(layout: &NodeLayout, g: &mut Offline, f: usher_ir::FuncId, op: Operand, dst: u32) {
    match op {
        Operand::Var(v) => g.edge(layout.var_node(f, v), dst),
        Operand::Global(_) | Operand::Func(_) => g.direct[dst as usize] = true,
        Operand::Const(_) | Operand::Undef => {}
    }
}

fn seed_offline(
    m: &Module,
    layout: &NodeLayout,
    g: &mut Offline,
    f: usher_ir::FuncId,
    inst: &Inst,
) {
    match inst {
        Inst::Copy { dst, src } => {
            inflow(layout, g, f, *src, layout.var_node(f, *dst));
        }
        Inst::Un { .. } | Inst::Bin { .. } => {}
        // Allocation results, gep shifts and loads inject targets the
        // offline graph cannot express as a copy edge.
        Inst::Alloc { dst, .. } | Inst::Gep { dst, .. } | Inst::Load { dst, .. } => {
            g.direct[layout.var_node(f, *dst) as usize] = true;
        }
        Inst::Store { .. } => {
            // Stores write memory nodes (outside `0..mem_base`); the value
            // operand is outflow, which never blocks substitution.
        }
        Inst::Call { dst, callee, args } => match callee {
            Callee::Direct(gid) => {
                // Mirror `wire_call`: args pair with params up to the
                // shorter list; the return node flows into `dst`.
                for (i, &p) in m.funcs[*gid].params.iter().enumerate().take(args.len()) {
                    inflow(layout, g, f, args[i], layout.var_node(*gid, p));
                }
                if let Some(d) = dst {
                    g.edge(layout.ret_node(*gid), layout.var_node(f, *d));
                }
            }
            Callee::Indirect(op) => {
                // The callee set is a solve-time discovery: the result
                // receives unknown return nodes. (Params of the possible
                // targets are already direct via the address-taken scan;
                // a constant `Operand::Func` callee is also wired through
                // that same conservative path.)
                if let Some(d) = dst {
                    g.direct[layout.var_node(f, *d) as usize] = true;
                }
                let _ = op;
            }
            Callee::External(_) => {}
        },
        Inst::Phi { dst, incomings } => {
            let d = layout.var_node(f, *dst);
            for (_, op) in incomings {
                inflow(layout, g, f, *op, d);
            }
        }
    }
}

/// Condensation of the offline graph: returns `comp`, where `comp[v]` is
/// `v`'s component id. Tarjan runs over the predecessor CSR (the
/// transpose), so a component's copy-graph predecessors are always
/// assigned *smaller* ids — ascending id order is a predecessors-first
/// topological order of the condensation DAG.
fn condense(n: usize, poff: &[u32], preds: &[u32]) -> Vec<u32> {
    const UNVISITED: u32 = u32::MAX;
    let mut index = vec![UNVISITED; n];
    let mut lowlink = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut comp = vec![UNVISITED; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut call_stack: Vec<(u32, u32)> = Vec::new();
    let mut next_index = 0u32;
    let mut next_comp = 0u32;

    // Most variable nodes never appear in the offline copy graph at
    // all; they are singleton components by construction, so the DFS
    // only ever visits nodes with at least one incident edge. Isolated
    // nodes get fresh component ids afterwards — they have no preds and
    // no succs, so their position in the topological id order is
    // irrelevant.
    let mut active = vec![false; n];
    for v in 0..n {
        if poff[v + 1] > poff[v] {
            active[v] = true;
        }
    }
    for &w in preds {
        active[w as usize] = true;
    }

    for root in 0..n as u32 {
        if !active[root as usize] || index[root as usize] != UNVISITED {
            continue;
        }
        call_stack.push((root, poff[root as usize]));
        index[root as usize] = next_index;
        lowlink[root as usize] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root as usize] = true;

        while let Some(&mut (v, ref mut cursor)) = call_stack.last_mut() {
            if *cursor < poff[v as usize + 1] {
                let w = preds[*cursor as usize];
                *cursor += 1;
                if index[w as usize] == UNVISITED {
                    index[w as usize] = next_index;
                    lowlink[w as usize] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w as usize] = true;
                    call_stack.push((w, poff[w as usize]));
                } else if on_stack[w as usize] {
                    lowlink[v as usize] = lowlink[v as usize].min(index[w as usize]);
                }
            } else {
                call_stack.pop();
                if let Some(&mut (p, _)) = call_stack.last_mut() {
                    lowlink[p as usize] = lowlink[p as usize].min(lowlink[v as usize]);
                }
                if lowlink[v as usize] == index[v as usize] {
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w as usize] = false;
                        comp[w as usize] = next_comp;
                        if w == v {
                            break;
                        }
                    }
                    next_comp += 1;
                }
            }
        }
    }
    for c in comp.iter_mut() {
        if *c == UNVISITED {
            *c = next_comp;
            next_comp += 1;
        }
    }
    comp
}
