//! Hybrid sparse/dense points-to sets over interned target ids.
//!
//! Small sets (the overwhelming majority in Andersen's analysis) are a
//! sorted `Vec<u32>` — one cache line, branch-predictable membership by
//! binary search. Past [`SPARSE_MAX`] elements a set spills into a word
//! bitmap (`Vec<u64>` indexed by target id), where union-with-difference
//! — the inner loop of difference propagation and SCC merging — becomes
//! a handful of bitwise operations per 64 targets instead of a tree
//! insert per element.

/// Elements above which a set switches from sorted-vec to bitmap form.
pub const SPARSE_MAX: usize = 48;

#[derive(Clone, Debug)]
enum Repr {
    /// Sorted, deduplicated ids.
    Sparse(Vec<u32>),
    /// Word bitmap indexed by id; `len` caches the population count.
    Dense { words: Vec<u64>, len: usize },
}

/// A set of interned target ids with hybrid representation.
#[derive(Clone, Debug)]
pub struct PtsSet {
    repr: Repr,
}

impl Default for PtsSet {
    fn default() -> Self {
        PtsSet::new()
    }
}

impl PtsSet {
    /// An empty set (sparse, no allocation).
    pub fn new() -> PtsSet {
        PtsSet {
            repr: Repr::Sparse(Vec::new()),
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Sparse(v) => v.len(),
            Repr::Dense { len, .. } => *len,
        }
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Heap footprint in 64-bit words (telemetry: `peak_pts_words`).
    pub fn words(&self) -> usize {
        match &self.repr {
            Repr::Sparse(v) => v.capacity().div_ceil(2),
            Repr::Dense { words, .. } => words.capacity(),
        }
    }

    /// Membership test.
    pub fn contains(&self, id: u32) -> bool {
        match &self.repr {
            Repr::Sparse(v) => v.binary_search(&id).is_ok(),
            Repr::Dense { words, .. } => {
                let w = (id / 64) as usize;
                w < words.len() && words[w] & (1u64 << (id % 64)) != 0
            }
        }
    }

    /// Inserts an id; returns whether it was new.
    pub fn insert(&mut self, id: u32) -> bool {
        match &mut self.repr {
            Repr::Sparse(v) => match v.binary_search(&id) {
                Ok(_) => false,
                Err(pos) => {
                    v.insert(pos, id);
                    if v.len() > SPARSE_MAX {
                        self.densify();
                    }
                    true
                }
            },
            Repr::Dense { words, len } => {
                let w = (id / 64) as usize;
                if w >= words.len() {
                    words.resize(w + 1, 0);
                }
                let mask = 1u64 << (id % 64);
                if words[w] & mask == 0 {
                    words[w] |= mask;
                    *len += 1;
                    true
                } else {
                    false
                }
            }
        }
    }

    fn densify(&mut self) {
        if let Repr::Sparse(v) = &self.repr {
            let top = v.last().copied().unwrap_or(0);
            let mut words = vec![0u64; (top / 64 + 1) as usize];
            for &id in v {
                words[(id / 64) as usize] |= 1u64 << (id % 64);
            }
            let len = v.len();
            self.repr = Repr::Dense { words, len };
        }
    }

    /// Iterates elements in ascending id order.
    pub fn iter(&self) -> PtsIter<'_> {
        match &self.repr {
            Repr::Sparse(v) => PtsIter::Sparse(v.iter()),
            Repr::Dense { words, .. } => PtsIter::Dense {
                words,
                word_idx: 0,
                cur: words.first().copied().unwrap_or(0),
            },
        }
    }

    /// Unions `other` into `self`, appending every genuinely new id to
    /// `fresh` in ascending order. The bitwise union-with-difference that
    /// replaces per-element `BTreeSet` inserts on the propagation path.
    pub fn union_with_diff(&mut self, other: &PtsSet, fresh: &mut Vec<u32>) {
        match &other.repr {
            Repr::Sparse(ov) => {
                for &id in ov {
                    if self.insert(id) {
                        fresh.push(id);
                    }
                }
            }
            Repr::Dense {
                words: ow,
                len: olen,
            } => {
                if self.len() + olen > SPARSE_MAX {
                    self.densify();
                }
                match &mut self.repr {
                    Repr::Dense { words, len } => {
                        if words.len() < ow.len() {
                            words.resize(ow.len(), 0);
                        }
                        for (wi, (&o, s)) in ow.iter().zip(words.iter_mut()).enumerate() {
                            let mut diff = o & !*s;
                            if diff != 0 {
                                *s |= o;
                                while diff != 0 {
                                    let bit = diff.trailing_zeros();
                                    fresh.push(wi as u32 * 64 + bit);
                                    *len += 1;
                                    diff &= diff - 1;
                                }
                            }
                        }
                    }
                    Repr::Sparse(_) => {
                        // len() + olen <= SPARSE_MAX yet other is dense:
                        // fall back to element inserts.
                        for id in other.iter() {
                            if self.insert(id) {
                                fresh.push(id);
                            }
                        }
                    }
                }
            }
        }
    }
}

/// Ascending-order iterator over a [`PtsSet`].
pub enum PtsIter<'a> {
    /// Over a sorted vec.
    Sparse(std::slice::Iter<'a, u32>),
    /// Over a word bitmap.
    Dense {
        /// The words.
        words: &'a [u64],
        /// Current word index.
        word_idx: usize,
        /// Remaining bits of the current word.
        cur: u64,
    },
}

impl Iterator for PtsIter<'_> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        match self {
            PtsIter::Sparse(it) => it.next().copied(),
            PtsIter::Dense {
                words,
                word_idx,
                cur,
            } => loop {
                if *cur != 0 {
                    let bit = cur.trailing_zeros();
                    *cur &= *cur - 1;
                    return Some(*word_idx as u32 * 64 + bit);
                }
                *word_idx += 1;
                if *word_idx >= words.len() {
                    return None;
                }
                *cur = words[*word_idx];
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_iter_sparse() {
        let mut s = PtsSet::new();
        assert!(s.insert(7));
        assert!(s.insert(3));
        assert!(!s.insert(7));
        assert!(s.contains(3) && s.contains(7) && !s.contains(5));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![3, 7]);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn densifies_past_threshold_and_stays_consistent() {
        let mut s = PtsSet::new();
        let ids: Vec<u32> = (0..200).map(|i| i * 3 + 1).collect();
        for &id in &ids {
            assert!(s.insert(id));
        }
        assert!(matches!(s.repr, Repr::Dense { .. }));
        assert_eq!(s.len(), 200);
        assert_eq!(s.iter().collect::<Vec<_>>(), ids);
        for &id in &ids {
            assert!(s.contains(id));
            assert!(!s.insert(id));
        }
        assert!(!s.contains(0));
    }

    #[test]
    fn union_with_diff_reports_exactly_the_new_ids() {
        for (a_n, b_n) in [(10usize, 20usize), (100, 10), (10, 100), (100, 200)] {
            let mut a = PtsSet::new();
            let mut b = PtsSet::new();
            let mut expect_fresh = Vec::new();
            for i in 0..a_n as u32 {
                a.insert(i * 2);
            }
            for i in 0..b_n as u32 {
                let id = i * 3;
                b.insert(id);
                if !a.contains(id) {
                    expect_fresh.push(id);
                }
            }
            let mut fresh = Vec::new();
            a.union_with_diff(&b, &mut fresh);
            assert_eq!(fresh, expect_fresh, "a={a_n} b={b_n}");
            for id in b.iter() {
                assert!(a.contains(id));
            }
            let mut again = Vec::new();
            a.union_with_diff(&b, &mut again);
            assert!(again.is_empty(), "second union adds nothing");
        }
    }

    #[test]
    fn words_tracks_footprint() {
        let mut s = PtsSet::new();
        for i in 0..512 {
            s.insert(i);
        }
        assert!(s.words() >= 8, "512 bits need >= 8 words: {}", s.words());
    }
}
