//! The Andersen-style inclusion solver.

use std::collections::{BTreeSet, HashMap, HashSet, VecDeque};

use usher_ir::{Callee, FuncId, GepOffset, Inst, Module, ObjId, Operand, Site, Terminator, VarId};

use crate::callgraph::{CallGraph, LoopInfo};

/// A points-to target: a field of an abstract object, identified by its
/// canonical (representative) cell — the first cell of its field class.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Loc {
    /// The abstract object.
    pub obj: ObjId,
    /// Canonical cell of the field class.
    pub field: u32,
}

/// Solver node kinds.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
enum Node {
    /// A top-level variable.
    Var(FuncId, VarId),
    /// The contents of an abstract memory field.
    Mem(Loc),
    /// A function's return value.
    Ret(FuncId),
}

/// Points-to targets.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
enum Target {
    Loc(Loc),
    Func(FuncId),
}

/// The result of [`analyze`].
#[derive(Clone, Debug)]
pub struct PointerAnalysis {
    var_pts: HashMap<(FuncId, VarId), Vec<Target>>,
    mem_pts: HashMap<Loc, Vec<Target>>,
    /// The resolved call graph (direct + indirect).
    pub call_graph: CallGraph,
    /// Per-function loop info (reused by VFG construction and Opt II).
    pub loops: HashMap<FuncId, LoopInfo>,
    /// Objects whose allocation site runs at most once (candidates for
    /// strong updates when additionally single-cell).
    pub concrete_objects: HashSet<ObjId>,
    /// Per-object: class representative of every cell.
    reps: HashMap<ObjId, Vec<u32>>,
    /// Per-object: whether each class rep covers exactly one cell.
    single_cell: HashMap<Loc, bool>,
}

impl PointerAnalysis {
    /// Memory locations a variable may point to.
    pub fn pts_var(&self, f: FuncId, v: VarId) -> Vec<Loc> {
        self.var_pts
            .get(&(f, v))
            .map(|ts| {
                ts.iter()
                    .filter_map(|t| match t {
                        Target::Loc(l) => Some(*l),
                        Target::Func(_) => None,
                    })
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Memory locations an address operand may point to.
    pub fn pts_operand(&self, f: FuncId, op: Operand) -> Vec<Loc> {
        match op {
            Operand::Var(v) => self.pts_var(f, v),
            Operand::Global(o) => vec![Loc { obj: o, field: 0 }],
            _ => Vec::new(),
        }
    }

    /// Function targets of a variable (for indirect calls).
    pub fn fn_targets(&self, f: FuncId, v: VarId) -> Vec<FuncId> {
        self.var_pts
            .get(&(f, v))
            .map(|ts| {
                ts.iter()
                    .filter_map(|t| match t {
                        Target::Func(g) => Some(*g),
                        Target::Loc(_) => None,
                    })
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Locations a memory field may point to (for mod/ref of loads of
    /// pointers — not needed by the VFG but useful to clients/tests).
    pub fn pts_mem(&self, loc: Loc) -> Vec<Loc> {
        self.mem_pts
            .get(&loc)
            .map(|ts| {
                ts.iter()
                    .filter_map(|t| match t {
                        Target::Loc(l) => Some(*l),
                        Target::Func(_) => None,
                    })
                    .collect()
            })
            .unwrap_or_default()
    }

    /// The canonical representative of `(obj, cell)`.
    pub fn rep(&self, obj: ObjId, cell: u32) -> Loc {
        let reps = &self.reps[&obj];
        let c = (cell as usize).min(reps.len().saturating_sub(1));
        Loc {
            obj,
            field: reps.get(c).copied().unwrap_or(0),
        }
    }

    /// All field-class representatives of an object.
    pub fn all_fields(&self, obj: ObjId) -> Vec<Loc> {
        let mut out: Vec<u32> = self.reps[&obj].clone();
        out.sort_unstable();
        out.dedup();
        out.into_iter().map(|field| Loc { obj, field }).collect()
    }

    /// Whether a location is *concrete* in the paper's sense: it denotes
    /// exactly one runtime cell (single-cell field class of an object
    /// whose allocation executes at most once). Stores whose pointer
    /// uniquely targets a concrete location may be strongly updated.
    pub fn is_concrete(&self, loc: Loc) -> bool {
        self.concrete_objects.contains(&loc.obj)
            && self.single_cell.get(&loc).copied().unwrap_or(false)
    }

    /// Whether a location's field class covers exactly one cell (stores
    /// to it write the whole abstract location; array classes never do).
    pub fn is_single_cell(&self, loc: Loc) -> bool {
        self.single_cell.get(&loc).copied().unwrap_or(false)
    }

    /// If `addr` (in function `f`) points to exactly one location, returns
    /// it; the VFG uses this for both strong and semi-strong updates.
    pub fn unique_target(&self, f: FuncId, addr: Operand) -> Option<Loc> {
        let ts = self.pts_operand(f, addr);
        match (ts.len(), self.fn_target_count(f, addr)) {
            (1, 0) => Some(ts[0]),
            _ => None,
        }
    }

    fn fn_target_count(&self, f: FuncId, addr: Operand) -> usize {
        match addr {
            Operand::Var(v) => self.fn_targets(f, v).len(),
            _ => 0,
        }
    }
}

/// Runs the analysis over a module.
pub fn analyze(m: &Module) -> PointerAnalysis {
    let mut s = Solver::new(m);
    s.seed();
    s.solve();
    s.finish()
}

#[derive(Clone, Debug)]
enum GepKind {
    Field(u32),
    Dynamic,
}

struct Solver<'m> {
    m: &'m Module,
    node_ids: HashMap<Node, u32>,
    nodes: Vec<Node>,
    parent: Vec<u32>,
    pts: Vec<BTreeSet<Target>>,
    delta: Vec<Vec<Target>>,
    copy_succs: Vec<BTreeSet<u32>>,
    /// On new Loc in pts(n): add copy edge Mem(loc) -> dst.
    load_cons: Vec<Vec<u32>>,
    /// On new Loc in pts(n): add copy edge src -> Mem(loc).
    store_cons: Vec<Vec<StoreSrc>>,
    /// On new Loc in pts(n): add shifted target to dst.
    gep_cons: Vec<Vec<(GepKind, u32)>>,
    /// On new Func in pts(n): wire the call at this site.
    call_cons: Vec<Vec<Site>>,
    /// (site, args, dst) info for indirect wiring.
    site_info: HashMap<Site, (Vec<Operand>, Option<VarId>)>,
    wired: HashSet<(Site, FuncId)>,
    worklist: VecDeque<u32>,
    in_wl: Vec<bool>,
    cg: CallGraph,
    reps: HashMap<ObjId, Vec<u32>>,
    pops: usize,
}

#[derive(Clone, Copy, Debug)]
enum StoreSrc {
    Node(u32),
    Const(Target),
}

impl<'m> Solver<'m> {
    fn new(m: &'m Module) -> Self {
        let mut reps = HashMap::new();
        for (oid, o) in m.objects.iter_enumerated() {
            // rep[cell] = first cell with the same class.
            let mut first: HashMap<u32, u32> = HashMap::new();
            let mut r = Vec::with_capacity(o.field_classes.len());
            for (cell, &class) in o.field_classes.iter().enumerate() {
                let rep = *first.entry(class).or_insert(cell as u32);
                r.push(rep);
            }
            if r.is_empty() {
                r.push(0);
            }
            reps.insert(oid, r);
        }
        Solver {
            m,
            node_ids: HashMap::new(),
            nodes: Vec::new(),
            parent: Vec::new(),
            pts: Vec::new(),
            delta: Vec::new(),
            copy_succs: Vec::new(),
            load_cons: Vec::new(),
            store_cons: Vec::new(),
            gep_cons: Vec::new(),
            call_cons: Vec::new(),
            site_info: HashMap::new(),
            wired: HashSet::new(),
            worklist: VecDeque::new(),
            in_wl: Vec::new(),
            cg: CallGraph::default(),
            reps,
            pops: 0,
        }
    }

    fn node(&mut self, n: Node) -> u32 {
        if let Some(&id) = self.node_ids.get(&n) {
            return self.find(id);
        }
        let id = self.nodes.len() as u32;
        self.nodes.push(n);
        self.parent.push(id);
        self.pts.push(BTreeSet::new());
        self.delta.push(Vec::new());
        self.copy_succs.push(BTreeSet::new());
        self.load_cons.push(Vec::new());
        self.store_cons.push(Vec::new());
        self.gep_cons.push(Vec::new());
        self.call_cons.push(Vec::new());
        self.in_wl.push(false);
        self.node_ids.insert(n, id);
        id
    }

    fn find(&mut self, mut n: u32) -> u32 {
        while self.parent[n as usize] != n {
            let gp = self.parent[self.parent[n as usize] as usize];
            self.parent[n as usize] = gp;
            n = gp;
        }
        n
    }

    fn rep_loc(&self, obj: ObjId, cell: u32) -> Loc {
        let reps = &self.reps[&obj];
        if reps.is_empty() {
            return Loc { obj, field: 0 };
        }
        let c = (cell as usize) % reps.len();
        Loc {
            obj,
            field: reps[c],
        }
    }

    fn enqueue(&mut self, n: u32) {
        let n = self.find(n);
        if !self.in_wl[n as usize] && !self.delta[n as usize].is_empty() {
            self.in_wl[n as usize] = true;
            self.worklist.push_back(n);
        }
    }

    fn add_targets(&mut self, n: u32, ts: impl IntoIterator<Item = Target>) {
        let n = self.find(n);
        let mut added = false;
        for t in ts {
            if self.pts[n as usize].insert(t) {
                self.delta[n as usize].push(t);
                added = true;
            }
        }
        if added {
            self.enqueue(n);
        }
    }

    fn add_copy_edge(&mut self, from: u32, to: u32) {
        let from = self.find(from);
        let to = self.find(to);
        if from == to {
            return;
        }
        if self.copy_succs[from as usize].insert(to) {
            let ts: Vec<Target> = self.pts[from as usize].iter().copied().collect();
            self.add_targets(to, ts);
        }
    }

    fn operand_node(&mut self, f: FuncId, op: Operand) -> Option<u32> {
        match op {
            Operand::Var(v) => Some(self.node(Node::Var(f, v))),
            _ => None,
        }
    }

    /// Targets contributed directly by a constant operand.
    fn operand_const_targets(&self, op: Operand) -> Vec<Target> {
        match op {
            Operand::Global(o) => vec![Target::Loc(Loc { obj: o, field: 0 })],
            Operand::Func(g) => vec![Target::Func(g)],
            _ => Vec::new(),
        }
    }

    /// Flows `op` into node `dst` (edge or direct targets).
    fn flow_into(&mut self, f: FuncId, op: Operand, dst: u32) {
        match self.operand_node(f, op) {
            Some(n) => self.add_copy_edge(n, dst),
            None => {
                let ts = self.operand_const_targets(op);
                self.add_targets(dst, ts);
            }
        }
    }

    // ---- constraint generation -----------------------------------------

    fn seed(&mut self) {
        for (fid, func) in self.m.funcs.iter_enumerated() {
            for (bb, block) in func.blocks.iter_enumerated() {
                for (idx, inst) in block.insts.iter().enumerate() {
                    self.seed_inst(fid, Site::new(fid, bb, idx), inst);
                }
                if let Terminator::Ret(Some(op)) = &block.term {
                    let r = self.node(Node::Ret(fid));
                    self.flow_into(fid, *op, r);
                }
            }
        }
    }

    fn seed_inst(&mut self, f: FuncId, site: Site, inst: &Inst) {
        match inst {
            Inst::Copy { dst, src } => {
                let d = self.node(Node::Var(f, *dst));
                self.flow_into(f, *src, d);
            }
            Inst::Un { .. } | Inst::Bin { .. } => {
                // Arithmetic results are not pointers in TinyC's type
                // discipline (pointer arithmetic is a gep).
            }
            Inst::Alloc { dst, obj, .. } => {
                let d = self.node(Node::Var(f, *dst));
                self.add_targets(
                    d,
                    [Target::Loc(Loc {
                        obj: *obj,
                        field: 0,
                    })],
                );
            }
            Inst::Gep { dst, base, offset } => {
                let d = self.node(Node::Var(f, *dst));
                let kind = match offset {
                    GepOffset::Field(k) => GepKind::Field(*k),
                    GepOffset::Index { .. } => GepKind::Dynamic,
                };
                match self.operand_node(f, *base) {
                    Some(b) => {
                        let b = self.find(b);
                        self.gep_cons[b as usize].push((kind.clone(), d));
                        // Replay existing targets.
                        let existing: Vec<Target> = self.pts[b as usize].iter().copied().collect();
                        for t in existing {
                            if let Target::Loc(l) = t {
                                let shifted = self.shift(l, &kind);
                                self.add_targets(d, shifted.into_iter().map(Target::Loc));
                            }
                        }
                    }
                    None => {
                        for t in self.operand_const_targets(*base) {
                            if let Target::Loc(l) = t {
                                let shifted = self.shift(l, &kind);
                                self.add_targets(d, shifted.into_iter().map(Target::Loc));
                            }
                        }
                    }
                }
            }
            Inst::Load { dst, addr } => {
                let d = self.node(Node::Var(f, *dst));
                match self.operand_node(f, *addr) {
                    Some(a) => {
                        let a = self.find(a);
                        self.load_cons[a as usize].push(d);
                        let existing: Vec<Target> = self.pts[a as usize].iter().copied().collect();
                        for t in existing {
                            if let Target::Loc(l) = t {
                                let mn = self.node(Node::Mem(l));
                                self.add_copy_edge(mn, d);
                            }
                        }
                    }
                    None => {
                        for t in self.operand_const_targets(*addr) {
                            if let Target::Loc(l) = t {
                                let mn = self.node(Node::Mem(l));
                                self.add_copy_edge(mn, d);
                            }
                        }
                    }
                }
            }
            Inst::Store { addr, val } => {
                let src = match self.operand_node(f, *val) {
                    Some(n) => StoreSrc::Node(n),
                    None => match self.operand_const_targets(*val).first() {
                        Some(t) => StoreSrc::Const(*t),
                        None => return, // storing a non-pointer constant
                    },
                };
                match self.operand_node(f, *addr) {
                    Some(a) => {
                        let a = self.find(a);
                        self.store_cons[a as usize].push(src);
                        let existing: Vec<Target> = self.pts[a as usize].iter().copied().collect();
                        for t in existing {
                            if let Target::Loc(l) = t {
                                self.apply_store(src, l);
                            }
                        }
                    }
                    None => {
                        for t in self.operand_const_targets(*addr) {
                            if let Target::Loc(l) = t {
                                self.apply_store(src, l);
                            }
                        }
                    }
                }
            }
            Inst::Call { dst, callee, args } => {
                self.site_info.insert(site, (args.clone(), *dst));
                match callee {
                    Callee::Direct(g) => self.wire_call(site, *g),
                    Callee::Indirect(op) => match self.operand_node(f, *op) {
                        Some(t) => {
                            let t = self.find(t);
                            self.call_cons[t as usize].push(site);
                            let existing: Vec<Target> =
                                self.pts[t as usize].iter().copied().collect();
                            for tg in existing {
                                if let Target::Func(g) = tg {
                                    self.wire_call(site, g);
                                }
                            }
                        }
                        None => {
                            if let Operand::Func(g) = op {
                                self.wire_call(site, *g);
                            }
                        }
                    },
                    Callee::External(_) => {
                        // Modelled externals neither create nor propagate
                        // pointers.
                    }
                }
            }
            Inst::Phi { dst, incomings } => {
                let d = self.node(Node::Var(f, *dst));
                for (_, op) in incomings {
                    self.flow_into(f, *op, d);
                }
            }
        }
    }

    fn apply_store(&mut self, src: StoreSrc, loc: Loc) {
        let mn = self.node(Node::Mem(loc));
        match src {
            StoreSrc::Node(n) => self.add_copy_edge(n, mn),
            StoreSrc::Const(t) => self.add_targets(mn, [t]),
        }
    }

    fn shift(&self, l: Loc, kind: &GepKind) -> Vec<Loc> {
        let obj = &self.m.objects[l.obj];
        match kind {
            GepKind::Field(k) => {
                if obj.is_array {
                    vec![Loc {
                        obj: l.obj,
                        field: 0,
                    }]
                } else {
                    let cell = l.field + k;
                    if (cell as usize) < obj.field_classes.len() {
                        vec![self.rep_loc(l.obj, cell)]
                    } else {
                        // Out-of-layout constant offset (dynamic heap blocks
                        // repeat their element layout).
                        vec![self.rep_loc(l.obj, cell)]
                    }
                }
            }
            GepKind::Dynamic => {
                if obj.is_array {
                    vec![Loc {
                        obj: l.obj,
                        field: 0,
                    }]
                } else {
                    // Pointer arithmetic over a non-array object: be
                    // conservative, hit every field class.
                    let mut out: Vec<u32> = self.reps[&l.obj].clone();
                    out.sort_unstable();
                    out.dedup();
                    out.into_iter()
                        .map(|field| Loc { obj: l.obj, field })
                        .collect()
                }
            }
        }
    }

    fn wire_call(&mut self, site: Site, g: FuncId) {
        if !self.wired.insert((site, g)) {
            return;
        }
        self.cg.add_edge(site, g);
        let (args, dst) = self.site_info[&site].clone();
        let callee = &self.m.funcs[g];
        let params: Vec<VarId> = callee.params.clone();
        for (p, a) in params.iter().zip(args.iter()) {
            let pn = self.node(Node::Var(g, *p));
            self.flow_into(site.func, *a, pn);
        }
        if let Some(d) = dst {
            let dn = self.node(Node::Var(site.func, d));
            let rn = self.node(Node::Ret(g));
            self.add_copy_edge(rn, dn);
        }
    }

    // ---- solving ---------------------------------------------------------

    fn solve(&mut self) {
        while let Some(n) = self.worklist.pop_front() {
            let n = self.find(n);
            self.in_wl[n as usize] = false;
            let delta = std::mem::take(&mut self.delta[n as usize]);
            if delta.is_empty() {
                continue;
            }
            self.pops += 1;
            if self.pops.is_multiple_of(20_000) {
                self.collapse_cycles();
            }

            // Copy successors receive the delta.
            let succs: Vec<u32> = self.copy_succs[n as usize].iter().copied().collect();
            for s in succs {
                self.add_targets(s, delta.iter().copied());
            }
            // Complex constraints react to new targets.
            let loads = self.load_cons[n as usize].clone();
            let stores = self.store_cons[n as usize].clone();
            let geps = self.gep_cons[n as usize].clone();
            let calls = self.call_cons[n as usize].clone();
            for t in &delta {
                match t {
                    Target::Loc(l) => {
                        for &d in &loads {
                            let mn = self.node(Node::Mem(*l));
                            self.add_copy_edge(mn, d);
                        }
                        for &src in &stores {
                            self.apply_store(src, *l);
                        }
                        for (kind, d) in &geps {
                            let shifted = self.shift(*l, kind);
                            self.add_targets(*d, shifted.into_iter().map(Target::Loc));
                        }
                    }
                    Target::Func(g) => {
                        for &site in &calls {
                            self.wire_call(site, *g);
                        }
                    }
                }
            }
        }
    }

    /// Tarjan over copy edges; merges every nontrivial SCC into one node.
    fn collapse_cycles(&mut self) {
        let n = self.nodes.len();
        let mut index = vec![usize::MAX; n];
        let mut low = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<u32> = Vec::new();
        let mut next = 0usize;
        let mut call_stack: Vec<(u32, Vec<u32>, usize)> = Vec::new();
        let mut merges: Vec<Vec<u32>> = Vec::new();

        for start in 0..n as u32 {
            if self.parent[start as usize] != start || index[start as usize] != usize::MAX {
                continue;
            }
            let raw: Vec<u32> = self.copy_succs[start as usize].iter().copied().collect();
            let succs: Vec<u32> = raw.into_iter().map(|s| self.find(s)).collect();
            call_stack.push((start, succs, 0));
            index[start as usize] = next;
            low[start as usize] = next;
            next += 1;
            stack.push(start);
            on_stack[start as usize] = true;

            while let Some((v, succs, ei)) = call_stack.last_mut() {
                let v = *v;
                if *ei < succs.len() {
                    let w = succs[*ei];
                    *ei += 1;
                    if index[w as usize] == usize::MAX {
                        let raw: Vec<u32> = self.copy_succs[w as usize].iter().copied().collect();
                        let wsuccs: Vec<u32> = raw.into_iter().map(|s| self.find(s)).collect();
                        index[w as usize] = next;
                        low[w as usize] = next;
                        next += 1;
                        stack.push(w);
                        on_stack[w as usize] = true;
                        call_stack.push((w, wsuccs, 0));
                    } else if on_stack[w as usize] {
                        low[v as usize] = low[v as usize].min(index[w as usize]);
                    }
                } else {
                    if low[v as usize] == index[v as usize] {
                        let mut comp = Vec::new();
                        while let Some(w) = stack.pop() {
                            on_stack[w as usize] = false;
                            comp.push(w);
                            if w == v {
                                break;
                            }
                        }
                        if comp.len() > 1 {
                            merges.push(comp);
                        }
                    }
                    call_stack.pop();
                    if let Some((u, _, _)) = call_stack.last() {
                        let u = *u;
                        low[u as usize] = low[u as usize].min(low[v as usize]);
                    }
                }
            }
        }

        for comp in merges {
            let root = comp[0];
            for &other in &comp[1..] {
                self.merge(root, other);
            }
        }
    }

    fn merge(&mut self, a: u32, b: u32) {
        let a = self.find(a);
        let b = self.find(b);
        if a == b {
            return;
        }
        self.parent[b as usize] = a;
        let b_pts = std::mem::take(&mut self.pts[b as usize]);
        let b_delta = std::mem::take(&mut self.delta[b as usize]);
        let b_succs = std::mem::take(&mut self.copy_succs[b as usize]);
        let b_loads = std::mem::take(&mut self.load_cons[b as usize]);
        let b_stores = std::mem::take(&mut self.store_cons[b as usize]);
        let b_geps = std::mem::take(&mut self.gep_cons[b as usize]);
        let b_calls = std::mem::take(&mut self.call_cons[b as usize]);

        // New targets for a = b's pts not already in a.
        let mut fresh: Vec<Target> = Vec::new();
        for t in b_pts {
            if self.pts[a as usize].insert(t) {
                fresh.push(t);
            }
        }
        fresh.extend(
            b_delta
                .into_iter()
                .filter(|t| !self.pts[a as usize].contains(t)),
        );
        self.delta[a as usize].extend(fresh);
        for s in b_succs {
            self.copy_succs[a as usize].insert(s);
        }
        self.load_cons[a as usize].extend(b_loads);
        self.store_cons[a as usize].extend(b_stores);
        self.gep_cons[a as usize].extend(b_geps);
        self.call_cons[a as usize].extend(b_calls);
        // Everything already in a's pts must be replayed against b's
        // constraints; simplest sound move: re-add the full set as delta.
        let all: Vec<Target> = self.pts[a as usize].iter().copied().collect();
        self.delta[a as usize] = all;
        self.enqueue(a);
    }

    // ---- finalization ----------------------------------------------------

    fn finish(mut self) -> PointerAnalysis {
        let loops: HashMap<FuncId, LoopInfo> = self
            .m
            .funcs
            .iter_enumerated()
            .map(|(f, func)| (f, LoopInfo::compute(func)))
            .collect();
        self.cg.finalize(self.m, &loops);

        // Concrete objects: allocation executes at most once.
        let mut concrete = HashSet::new();
        for (oid, o) in self.m.objects.iter_enumerated() {
            match o.kind {
                usher_ir::ObjKind::Global => {
                    concrete.insert(oid);
                }
                usher_ir::ObjKind::Stack(f) | usher_ir::ObjKind::Heap(f) => {
                    if !self.cg.runs_once.contains(&f) || self.cg.recursive.contains(&f) {
                        continue;
                    }
                    // Find the allocation block.
                    let func = &self.m.funcs[f];
                    let mut once = false;
                    'outer: for (bb, block) in func.blocks.iter_enumerated() {
                        for inst in &block.insts {
                            if let Inst::Alloc { obj, .. } = inst {
                                if *obj == oid {
                                    once = !loops[&f].in_loop(bb);
                                    break 'outer;
                                }
                            }
                        }
                    }
                    if once {
                        concrete.insert(oid);
                    }
                }
            }
        }

        // Single-cell classes.
        let mut single_cell: HashMap<Loc, bool> = HashMap::new();
        for (oid, o) in self.m.objects.iter_enumerated() {
            let reps = &self.reps[&oid];
            let mut counts: HashMap<u32, u32> = HashMap::new();
            for &r in reps {
                *counts.entry(r).or_insert(0) += 1;
            }
            for (&rep, &count) in &counts {
                let dynamic = o.is_array;
                single_cell.insert(
                    Loc {
                        obj: oid,
                        field: rep,
                    },
                    count == 1 && !dynamic,
                );
            }
        }

        // Extract per-node results (resolving union-find).
        let mut var_pts: HashMap<(FuncId, VarId), Vec<Target>> = HashMap::new();
        let mut mem_pts: HashMap<Loc, Vec<Target>> = HashMap::new();
        let entries: Vec<(Node, u32)> = self.node_ids.iter().map(|(n, id)| (*n, *id)).collect();
        for (nk, id) in entries {
            let rep = self.find(id);
            let ts: Vec<Target> = self.pts[rep as usize].iter().copied().collect();
            match nk {
                Node::Var(f, v) => {
                    var_pts.insert((f, v), ts);
                }
                Node::Mem(l) => {
                    mem_pts.insert(l, ts);
                }
                Node::Ret(_) => {}
            }
        }

        PointerAnalysis {
            var_pts,
            mem_pts,
            call_graph: self.cg,
            loops,
            concrete_objects: concrete,
            reps: self.reps,
            single_cell,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use usher_frontend_shim::compile;
    use usher_ir::{Callee, FuncBuilder, Module, ObjKind, StructDef, Type};

    /// Tests compile tiny programs through a minimal local shim to avoid a
    /// dev-dependency cycle; see the integration tests at the workspace
    /// root for full-pipeline coverage.
    mod usher_frontend_shim {
        pub use test_build::compile;
        mod test_build {
            use usher_ir::*;

            /// Builds: main { a = alloc x; b = alloc y; p = cond ? a : b;
            /// *p = a; q = *p; } — classic Andersen diamond.
            pub fn compile() -> (Module, FuncId, Vec<VarId>, Vec<ObjId>) {
                let mut m = Module::new();
                let int = m.types.int();
                let fid = m.declare_func("main", None);
                m.main = Some(fid);
                let mut b = FuncBuilder::new(&mut m, fid);
                let (a, xo) = b.alloc("x", ObjKind::Stack(fid), int, false, None);
                let pint = b.module.types.ptr_to(int);
                let (bv, yo) = b.alloc("y", ObjKind::Stack(fid), pint, false, None);
                let t = b.new_block();
                let e = b.new_block();
                let j = b.new_block();
                b.br(Operand::Const(1), t, e);
                b.set_block(t);
                b.jmp(j);
                b.set_block(e);
                b.jmp(j);
                b.set_block(j);
                let p = b.phi(pint, vec![(t, a.into()), (e, bv.into())]);
                b.store(p.into(), a.into());
                let q = b.load(p.into(), pint);
                b.ret(None);
                b.finish();
                (m, fid, vec![a, bv, p, q], vec![xo, yo])
            }
        }
    }

    #[test]
    fn phi_merges_points_to_sets() {
        let (m, fid, vars, objs) = compile();
        let pa = analyze(&m);
        let p = vars[2];
        let pts = pa.pts_var(fid, p);
        assert_eq!(pts.len(), 2);
        assert!(pts.contains(&Loc {
            obj: objs[0],
            field: 0
        }));
        assert!(pts.contains(&Loc {
            obj: objs[1],
            field: 0
        }));
    }

    #[test]
    fn store_then_load_propagates_through_memory() {
        let (m, fid, vars, objs) = compile();
        let pa = analyze(&m);
        // q := *p where *p may contain a (which points to x).
        let q = vars[3];
        let pts = pa.pts_var(fid, q);
        assert!(
            pts.contains(&Loc {
                obj: objs[0],
                field: 0
            }),
            "{pts:?}"
        );
    }

    #[test]
    fn concrete_objects_in_main_outside_loops() {
        let (m, _fid, _vars, objs) = compile();
        let pa = analyze(&m);
        assert!(pa.is_concrete(Loc {
            obj: objs[0],
            field: 0
        }));
        assert!(pa.is_concrete(Loc {
            obj: objs[1],
            field: 0
        }));
    }

    #[test]
    fn unique_target_detects_singletons() {
        let (m, fid, vars, objs) = compile();
        let pa = analyze(&m);
        let a = vars[0];
        assert_eq!(
            pa.unique_target(fid, a.into()),
            Some(Loc {
                obj: objs[0],
                field: 0
            })
        );
        let p = vars[2];
        assert_eq!(pa.unique_target(fid, p.into()), None);
    }

    #[test]
    fn gep_field_shifts_target() {
        let mut m = Module::new();
        let int = m.types.int();
        let s = m.types.add_struct(StructDef {
            name: "P".into(),
            fields: vec![("x".into(), int), ("y".into(), int)],
        });
        let sty = m.types.intern(Type::Struct(s));
        let fid = m.declare_func("main", None);
        m.main = Some(fid);
        let mut b = FuncBuilder::new(&mut m, fid);
        let (p, obj) = b.alloc("s", ObjKind::Stack(fid), sty, false, None);
        let pint = b.module.types.ptr_to(int);
        let g = b.gep_field(p.into(), 1, pint);
        b.store(g.into(), Operand::Const(1));
        b.ret(None);
        b.finish();
        let pa = analyze(&m);
        assert_eq!(pa.pts_var(fid, g), vec![Loc { obj, field: 1 }]);
    }

    #[test]
    fn dynamic_gep_on_array_stays_in_class_zero() {
        let mut m = Module::new();
        let int = m.types.int();
        let arr = m.types.intern(Type::Array(int, 8));
        let fid = m.declare_func("main", None);
        m.main = Some(fid);
        let mut b = FuncBuilder::new(&mut m, fid);
        let (p, obj) = b.alloc("a", ObjKind::Stack(fid), arr, false, None);
        let i = b.copy(int, Operand::Const(3));
        let pint = b.module.types.ptr_to(int);
        let g = b.gep_index(p.into(), i.into(), 1, pint);
        b.store(g.into(), Operand::Const(1));
        b.ret(None);
        b.finish();
        let pa = analyze(&m);
        assert_eq!(pa.pts_var(fid, g), vec![Loc { obj, field: 0 }]);
        // Array classes are never concrete for strong updates.
        assert!(!pa.is_concrete(Loc { obj, field: 0 }));
    }

    #[test]
    fn indirect_call_resolved_on_the_fly() {
        let mut m = Module::new();
        let int = m.types.int();
        let fp = m.types.intern(Type::FuncPtr {
            params: 0,
            has_ret: true,
        });
        let gid = m.declare_func("g", Some(int));
        let fid = m.declare_func("main", None);
        m.main = Some(fid);
        {
            let mut b = FuncBuilder::new(&mut m, gid);
            b.ret(Some(Operand::Const(7)));
            b.finish();
        }
        {
            let mut b = FuncBuilder::new(&mut m, fid);
            let t = b.copy(fp, Operand::Func(gid));
            b.call(Callee::Indirect(t.into()), vec![], Some(int));
            b.ret(None);
            b.finish();
        }
        let pa = analyze(&m);
        let sites: Vec<_> = pa.call_graph.callees.keys().collect();
        assert_eq!(sites.len(), 1);
        assert_eq!(pa.call_graph.callees_of(*sites[0]), &[gid]);
    }

    #[test]
    fn interprocedural_flow_through_params_and_ret() {
        let mut m = Module::new();
        let int = m.types.int();
        let pint = m.types.ptr_to(int);
        let gid = m.declare_func("id", Some(pint));
        let fid = m.declare_func("main", None);
        m.main = Some(fid);
        {
            let mut b = FuncBuilder::new(&mut m, gid);
            let p = b.param("p", pint);
            b.ret(Some(p.into()));
            b.finish();
        }
        let (q, obj);
        {
            let mut b = FuncBuilder::new(&mut m, fid);
            let (a, o) = b.alloc("x", ObjKind::Stack(fid), int, false, None);
            obj = o;
            q = b
                .call(Callee::Direct(gid), vec![a.into()], Some(pint))
                .unwrap();
            b.store(q.into(), Operand::Const(1));
            b.ret(None);
            b.finish();
        }
        let pa = analyze(&m);
        assert_eq!(pa.pts_var(fid, q), vec![Loc { obj, field: 0 }]);
    }

    #[test]
    fn global_operand_points_to_global_object() {
        let mut m = Module::new();
        let int = m.types.int();
        let g = m.add_object("g", ObjKind::Global, int, true, false);
        m.globals.push(g);
        let fid = m.declare_func("main", None);
        m.main = Some(fid);
        let mut b = FuncBuilder::new(&mut m, fid);
        let pint = b.module.types.ptr_to(int);
        let p = b.copy(pint, Operand::Global(g));
        b.store(p.into(), Operand::Const(3));
        b.ret(None);
        b.finish();
        let pa = analyze(&m);
        assert_eq!(pa.pts_var(fid, p), vec![Loc { obj: g, field: 0 }]);
        assert!(pa.is_concrete(Loc { obj: g, field: 0 }));
    }

    #[test]
    fn loop_allocation_is_not_concrete() {
        let mut m = Module::new();
        let int = m.types.int();
        let fid = m.declare_func("main", None);
        m.main = Some(fid);
        let mut b = FuncBuilder::new(&mut m, fid);
        let header = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        b.jmp(header);
        b.set_block(header);
        b.br(Operand::Const(1), body, exit);
        b.set_block(body);
        let (_p, obj) = b.alloc("x", ObjKind::Heap(fid), int, false, None);
        b.jmp(header);
        b.set_block(exit);
        b.ret(None);
        b.finish();
        let pa = analyze(&m);
        assert!(!pa.is_concrete(Loc { obj, field: 0 }));
    }
}
