//! The Andersen-style inclusion solver.
//!
//! Points-to targets are interned into a dense `u32` space and each
//! node's set is a hybrid sparse/dense bitmap ([`crate::pts::PtsSet`]),
//! so difference propagation and SCC merges are bitwise
//! union-with-difference instead of per-element `BTreeSet` inserts. The
//! periodic Tarjan cycle collapse runs over a CSR snapshot of the
//! copy-edge graph. The original `BTreeSet`-based solver is retained in
//! [`crate::reference`] as the equivalence/benchmark baseline.

use std::collections::{HashMap, HashSet, VecDeque};

use usher_ir::{
    Budget, Callee, Exhausted, FuncId, FxHashMap, FxHashSet, GepOffset, Idx, Inst, Module, ObjId,
    Operand, Site, Terminator, VarId,
};

use crate::callgraph::{CallGraph, LoopInfo};
use crate::pts::PtsSet;

/// A points-to target: a field of an abstract object, identified by its
/// canonical (representative) cell — the first cell of its field class.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Loc {
    /// The abstract object.
    pub obj: ObjId,
    /// Canonical cell of the field class.
    pub field: u32,
}

/// Points-to targets.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub(crate) enum Target {
    Loc(Loc),
    Func(FuncId),
}

/// Counters from one solver run (threaded into driver telemetry).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Solver nodes created (variables, memory fields, returns).
    pub nodes: usize,
    /// Distinct points-to targets interned.
    pub interned_targets: usize,
    /// Worklist pops until the fixpoint.
    pub pops: usize,
    /// Union-find merges performed by cycle collapsing.
    pub merges: usize,
    /// Peak 64-bit words held by all points-to sets at once.
    pub peak_pts_words: usize,
}

/// The result of [`analyze`].
#[derive(Clone, Debug)]
pub struct PointerAnalysis {
    pub(crate) var_pts: HashMap<(FuncId, VarId), Vec<Target>>,
    pub(crate) mem_pts: HashMap<Loc, Vec<Target>>,
    /// The resolved call graph (direct + indirect).
    pub call_graph: CallGraph,
    /// Per-function loop info (reused by VFG construction and Opt II).
    pub loops: HashMap<FuncId, LoopInfo>,
    /// Objects whose allocation site runs at most once (candidates for
    /// strong updates when additionally single-cell).
    pub concrete_objects: HashSet<ObjId>,
    /// Per-object: class representative of every cell.
    pub(crate) reps: FxHashMap<ObjId, Vec<u32>>,
    /// Per-object: whether each class rep covers exactly one cell.
    pub(crate) single_cell: FxHashMap<Loc, bool>,
    /// Solver counters.
    pub stats: SolverStats,
}

impl PointerAnalysis {
    /// Memory locations a variable may point to.
    pub fn pts_var(&self, f: FuncId, v: VarId) -> Vec<Loc> {
        self.var_pts
            .get(&(f, v))
            .map(|ts| {
                ts.iter()
                    .filter_map(|t| match t {
                        Target::Loc(l) => Some(*l),
                        Target::Func(_) => None,
                    })
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Memory locations an address operand may point to.
    pub fn pts_operand(&self, f: FuncId, op: Operand) -> Vec<Loc> {
        match op {
            Operand::Var(v) => self.pts_var(f, v),
            Operand::Global(o) => vec![Loc { obj: o, field: 0 }],
            _ => Vec::new(),
        }
    }

    /// Function targets of a variable (for indirect calls).
    pub fn fn_targets(&self, f: FuncId, v: VarId) -> Vec<FuncId> {
        self.var_pts
            .get(&(f, v))
            .map(|ts| {
                ts.iter()
                    .filter_map(|t| match t {
                        Target::Func(g) => Some(*g),
                        Target::Loc(_) => None,
                    })
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Locations a memory field may point to (for mod/ref of loads of
    /// pointers — not needed by the VFG but useful to clients/tests).
    pub fn pts_mem(&self, loc: Loc) -> Vec<Loc> {
        self.mem_pts
            .get(&loc)
            .map(|ts| {
                ts.iter()
                    .filter_map(|t| match t {
                        Target::Loc(l) => Some(*l),
                        Target::Func(_) => None,
                    })
                    .collect()
            })
            .unwrap_or_default()
    }

    /// The canonical representative of `(obj, cell)`.
    pub fn rep(&self, obj: ObjId, cell: u32) -> Loc {
        let reps = &self.reps[&obj];
        let c = (cell as usize).min(reps.len().saturating_sub(1));
        Loc {
            obj,
            field: reps.get(c).copied().unwrap_or(0),
        }
    }

    /// All field-class representatives of an object.
    pub fn all_fields(&self, obj: ObjId) -> Vec<Loc> {
        let mut out: Vec<u32> = self.reps[&obj].clone();
        out.sort_unstable();
        out.dedup();
        out.into_iter().map(|field| Loc { obj, field }).collect()
    }

    /// Whether a location is *concrete* in the paper's sense: it denotes
    /// exactly one runtime cell (single-cell field class of an object
    /// whose allocation executes at most once). Stores whose pointer
    /// uniquely targets a concrete location may be strongly updated.
    pub fn is_concrete(&self, loc: Loc) -> bool {
        self.concrete_objects.contains(&loc.obj)
            && self.single_cell.get(&loc).copied().unwrap_or(false)
    }

    /// Whether a location's field class covers exactly one cell (stores
    /// to it write the whole abstract location; array classes never do).
    pub fn is_single_cell(&self, loc: Loc) -> bool {
        self.single_cell.get(&loc).copied().unwrap_or(false)
    }

    /// If `addr` (in function `f`) points to exactly one location, returns
    /// it; the VFG uses this for both strong and semi-strong updates.
    pub fn unique_target(&self, f: FuncId, addr: Operand) -> Option<Loc> {
        let ts = self.pts_operand(f, addr);
        match (ts.len(), self.fn_target_count(f, addr)) {
            (1, 0) => Some(ts[0]),
            _ => None,
        }
    }

    fn fn_target_count(&self, f: FuncId, addr: Operand) -> usize {
        match addr {
            Operand::Var(v) => self.fn_targets(f, v).len(),
            _ => 0,
        }
    }

    /// A stable structural checksum of the analysis result, used by the
    /// driver's self-healing artifact cache to detect corruption. Hash
    /// maps are drained through explicit sorts so the digest never
    /// depends on iteration order.
    pub fn digest(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = usher_ir::FxHasher::default();
        let mut vars: Vec<_> = self.var_pts.iter().collect();
        vars.sort_by_key(|(&k, _)| k);
        for ((f, v), ts) in vars {
            h.write_usize(f.index());
            h.write_usize(v.index());
            ts.hash(&mut h);
        }
        let mut mems: Vec<_> = self.mem_pts.iter().collect();
        mems.sort_by_key(|(&l, _)| l);
        for (l, ts) in mems {
            h.write_usize(l.obj.index());
            h.write_u32(l.field);
            ts.hash(&mut h);
        }
        let mut objs: Vec<usize> = self.concrete_objects.iter().map(|o| o.index()).collect();
        objs.sort_unstable();
        objs.hash(&mut h);
        h.write_usize(self.stats.nodes);
        h.write_usize(self.stats.pops);
        h.write_usize(self.stats.merges);
        h.finish()
    }
}

/// Runs the analysis over a module.
pub fn analyze(m: &Module) -> PointerAnalysis {
    analyze_budgeted(m, &Budget::unlimited()).expect("unlimited budgets never exhaust")
}

/// Runs the analysis under a cooperative step budget: one step per
/// worklist pop. On exhaustion the partial fixpoint is discarded — a
/// partial points-to solution *under*-approximates and must never feed
/// the guided planner — and the caller is expected to degrade to full
/// instrumentation.
///
/// # Errors
///
/// Returns [`Exhausted`] when the budget runs out before the fixpoint.
pub fn analyze_budgeted(m: &Module, budget: &Budget) -> Result<PointerAnalysis, Exhausted> {
    let mut s = Solver::new(m);
    s.seed();
    s.solve(budget)?;
    Ok(s.finish())
}

/// Cell-class representatives per object, shared by both solvers.
pub(crate) fn object_reps(m: &Module) -> FxHashMap<ObjId, Vec<u32>> {
    let mut reps = FxHashMap::default();
    for (oid, o) in m.objects.iter_enumerated() {
        // rep[cell] = first cell with the same class.
        let mut first: HashMap<u32, u32> = HashMap::new();
        let mut r = Vec::with_capacity(o.field_classes.len());
        for (cell, &class) in o.field_classes.iter().enumerate() {
            let rep = *first.entry(class).or_insert(cell as u32);
            r.push(rep);
        }
        if r.is_empty() {
            r.push(0);
        }
        reps.insert(oid, r);
    }
    reps
}

/// Shared finalization: concreteness, single-cell classes, call-graph
/// derived info. Used by both the bitmap solver and the reference one so
/// their outputs agree field for field.
pub(crate) fn finish_analysis(
    m: &Module,
    mut cg: CallGraph,
    reps: FxHashMap<ObjId, Vec<u32>>,
    var_pts: HashMap<(FuncId, VarId), Vec<Target>>,
    mem_pts: HashMap<Loc, Vec<Target>>,
    stats: SolverStats,
) -> PointerAnalysis {
    let loops: HashMap<FuncId, LoopInfo> = m
        .funcs
        .iter_enumerated()
        .map(|(f, func)| (f, LoopInfo::compute(func)))
        .collect();
    cg.finalize(m, &loops);

    // Concrete objects: allocation executes at most once. One pass over
    // the module records each object's first allocation block, then each
    // object is decided in O(1) (the per-object block scan was quadratic
    // in allocation-heavy modules).
    let mut alloc_block: FxHashMap<ObjId, usher_ir::BlockId> = FxHashMap::default();
    for (_f, func) in m.funcs.iter_enumerated() {
        for (bb, block) in func.blocks.iter_enumerated() {
            for inst in &block.insts {
                if let Inst::Alloc { obj, .. } = inst {
                    alloc_block.entry(*obj).or_insert(bb);
                }
            }
        }
    }
    let mut concrete = HashSet::new();
    for (oid, o) in m.objects.iter_enumerated() {
        match o.kind {
            usher_ir::ObjKind::Global => {
                concrete.insert(oid);
            }
            usher_ir::ObjKind::Stack(f) | usher_ir::ObjKind::Heap(f) => {
                if !cg.runs_once.contains(&f) || cg.recursive.contains(&f) {
                    continue;
                }
                if let Some(&bb) = alloc_block.get(&oid) {
                    if !loops[&f].in_loop(bb) {
                        concrete.insert(oid);
                    }
                }
            }
        }
    }

    // Single-cell classes. A rep is always a cell index of its own
    // object, so counting into a dense scratch vector replaces the
    // per-object hash map.
    let mut single_cell: FxHashMap<Loc, bool> = FxHashMap::default();
    let mut counts: Vec<u32> = Vec::new();
    for (oid, o) in m.objects.iter_enumerated() {
        let object_reps = &reps[&oid];
        counts.clear();
        counts.resize(object_reps.len(), 0);
        for &r in object_reps {
            counts[r as usize] += 1;
        }
        let dynamic = o.is_array;
        for (cell, &count) in counts.iter().enumerate() {
            if count > 0 {
                single_cell.insert(
                    Loc {
                        obj: oid,
                        field: cell as u32,
                    },
                    count == 1 && !dynamic,
                );
            }
        }
    }

    PointerAnalysis {
        var_pts,
        mem_pts,
        call_graph: cg,
        loops,
        concrete_objects: concrete,
        reps,
        single_cell,
        stats,
    }
}

#[derive(Clone, Copy, Debug)]
enum GepKind {
    Field(u32),
    Dynamic,
}

struct Solver<'m> {
    m: &'m Module,
    /// Dense node layout: `[vars per function | returns | memory cells]`.
    /// Every possible node has a precomputed id, so node resolution is
    /// pure arithmetic and all per-node tables are allocated exactly once.
    var_base: Vec<u32>,
    ret_base: u32,
    mem_base: u32,
    obj_base: Vec<u32>,
    n_nodes: usize,
    parent: Vec<u32>,
    /// Interned targets: id -> payload.
    targets: Vec<Target>,
    target_ids: FxHashMap<Target, u32>,
    /// Points-to sets over interned target ids.
    pts: Vec<PtsSet>,
    /// Pending difference per node (unique ids, each also in `pts`).
    delta: Vec<Vec<u32>>,
    /// Copy successors as sorted id vectors.
    copy_succs: Vec<Vec<u32>>,
    /// On new Loc in pts(n): add copy edge Mem(loc) -> dst.
    load_cons: ConsArena<u32>,
    /// On new Loc in pts(n): add copy edge src -> Mem(loc).
    store_cons: ConsArena<StoreSrc>,
    /// On new Loc in pts(n): add shifted target to dst.
    gep_cons: ConsArena<(GepKind, u32)>,
    /// On new Func in pts(n): wire the call at this site.
    call_cons: ConsArena<Site>,
    /// Flat arena of call-site argument operands; sites store ranges.
    call_args: Vec<Operand>,
    /// (args range, dst) per call site, for (indirect) wiring.
    site_info: FxHashMap<Site, (u32, u32, Option<VarId>)>,
    wired: FxHashSet<(Site, FuncId)>,
    worklist: VecDeque<u32>,
    in_wl: Vec<bool>,
    cg: CallGraph,
    reps: FxHashMap<ObjId, Vec<u32>>,
    /// Reusable snapshot buffer (cuts transient allocations on the
    /// constraint-replay paths).
    scratch: Vec<u32>,
    /// Reusable union-difference buffer.
    fresh_buf: Vec<u32>,
    pops: usize,
    merges: usize,
    cur_words: usize,
    peak_words: usize,
}

#[derive(Clone, Copy, Debug)]
enum StoreSrc {
    Node(u32),
    Const(Target),
}

/// List terminator sentinel for [`ConsArena`].
const NIL: u32 = u32::MAX;

/// Per-node constraint lists stored as singly linked chains in one flat
/// arena. Compared to a `Vec<Vec<T>>` over every node this needs three
/// allocations total (instead of one per non-empty node), appends and
/// SCC-merge concatenations are O(1), and teardown frees three blocks.
/// Lists preserve append order; `concat(a, b)` appends b's chain to a's.
struct ConsArena<T> {
    head: Vec<u32>,
    tail: Vec<u32>,
    /// `(payload, next-index)`; `NIL` terminates a chain.
    items: Vec<(T, u32)>,
}

impl<T: Copy> ConsArena<T> {
    fn new(n: usize) -> Self {
        ConsArena {
            head: vec![NIL; n],
            tail: vec![NIL; n],
            items: Vec::new(),
        }
    }

    #[inline]
    fn push(&mut self, n: u32, item: T) {
        let id = self.items.len() as u32;
        self.items.push((item, NIL));
        let n = n as usize;
        if self.head[n] == NIL {
            self.head[n] = id;
        } else {
            self.items[self.tail[n] as usize].1 = id;
        }
        self.tail[n] = id;
    }

    #[inline]
    fn first(&self, n: u32) -> u32 {
        self.head[n as usize]
    }

    #[inline]
    fn get(&self, cursor: u32) -> (T, u32) {
        self.items[cursor as usize]
    }

    /// Moves b's list onto the end of a's; b becomes empty.
    fn concat(&mut self, a: u32, b: u32) {
        let (a, b) = (a as usize, b as usize);
        if self.head[b] == NIL {
            return;
        }
        if self.head[a] == NIL {
            self.head[a] = self.head[b];
        } else {
            self.items[self.tail[a] as usize].1 = self.head[b];
        }
        self.tail[a] = self.tail[b];
        self.head[b] = NIL;
        self.tail[b] = NIL;
    }
}

/// Distinct mutable borrows of two slots of one slice.
fn two_mut<T>(v: &mut [T], i: usize, j: usize) -> (&mut T, &mut T) {
    debug_assert_ne!(i, j);
    if i < j {
        let (l, r) = v.split_at_mut(j);
        (&mut l[i], &mut r[0])
    } else {
        let (l, r) = v.split_at_mut(i);
        (&mut r[0], &mut l[j])
    }
}

impl<'m> Solver<'m> {
    fn new(m: &'m Module) -> Self {
        let reps = object_reps(m);
        let mut var_base = Vec::with_capacity(m.funcs.len());
        let mut next = 0u32;
        for (_f, func) in m.funcs.iter_enumerated() {
            var_base.push(next);
            next += func.vars.len() as u32;
        }
        let ret_base = next;
        next += m.funcs.len() as u32;
        let mem_base = next;
        let mut obj_base = Vec::with_capacity(m.objects.len());
        let mut mem_off = 0u32;
        for (oid, _o) in m.objects.iter_enumerated() {
            obj_base.push(mem_off);
            mem_off += reps[&oid].len() as u32;
        }
        let n_nodes = (mem_base + mem_off) as usize;
        Solver {
            m,
            var_base,
            ret_base,
            mem_base,
            obj_base,
            n_nodes,
            parent: (0..n_nodes as u32).collect(),
            targets: Vec::new(),
            target_ids: FxHashMap::default(),
            pts: vec![PtsSet::new(); n_nodes],
            delta: vec![Vec::new(); n_nodes],
            copy_succs: vec![Vec::new(); n_nodes],
            load_cons: ConsArena::new(n_nodes),
            store_cons: ConsArena::new(n_nodes),
            gep_cons: ConsArena::new(n_nodes),
            call_cons: ConsArena::new(n_nodes),
            call_args: Vec::new(),
            site_info: FxHashMap::default(),
            wired: FxHashSet::default(),
            worklist: VecDeque::new(),
            in_wl: vec![false; n_nodes],
            cg: CallGraph::default(),
            reps,
            scratch: Vec::new(),
            fresh_buf: Vec::new(),
            pops: 0,
            merges: 0,
            cur_words: 0,
            peak_words: 0,
        }
    }

    #[inline]
    fn var_node(&self, f: FuncId, v: VarId) -> u32 {
        self.var_base[f.index()] + v.index() as u32
    }

    #[inline]
    fn ret_node(&self, f: FuncId) -> u32 {
        self.ret_base + f.index() as u32
    }

    /// The memory node of a Loc (whose field is always one of its
    /// object's cell indices).
    #[inline]
    fn mem_node(&self, l: Loc) -> u32 {
        self.mem_base + self.obj_base[l.obj.index()] + l.field
    }

    fn tid(&mut self, t: Target) -> u32 {
        if let Some(&id) = self.target_ids.get(&t) {
            return id;
        }
        let id = self.targets.len() as u32;
        self.targets.push(t);
        self.target_ids.insert(t, id);
        id
    }

    fn find(&mut self, mut n: u32) -> u32 {
        while self.parent[n as usize] != n {
            let gp = self.parent[self.parent[n as usize] as usize];
            self.parent[n as usize] = gp;
            n = gp;
        }
        n
    }

    fn rep_loc(&self, obj: ObjId, cell: u32) -> Loc {
        let reps = &self.reps[&obj];
        if reps.is_empty() {
            return Loc { obj, field: 0 };
        }
        let c = (cell as usize) % reps.len();
        Loc {
            obj,
            field: reps[c],
        }
    }

    fn enqueue(&mut self, n: u32) {
        let n = self.find(n);
        if !self.in_wl[n as usize] && !self.delta[n as usize].is_empty() {
            self.in_wl[n as usize] = true;
            self.worklist.push_back(n);
        }
    }

    fn track_words(&mut self, before: usize, after: usize) {
        self.cur_words = self.cur_words + after - before;
        self.peak_words = self.peak_words.max(self.cur_words);
    }

    /// Inserts interned ids into `pts(n)`, queueing the genuinely new.
    fn add_target_ids(&mut self, n: u32, ids: &[u32]) {
        let n = self.find(n) as usize;
        let before = self.pts[n].words();
        let mut added = false;
        for &id in ids {
            if self.pts[n].insert(id) {
                self.delta[n].push(id);
                added = true;
            }
        }
        let after = self.pts[n].words();
        self.track_words(before, after);
        if added {
            self.enqueue(n as u32);
        }
    }

    fn add_targets(&mut self, n: u32, ts: impl IntoIterator<Item = Target>) {
        let n = self.find(n) as usize;
        let before = self.pts[n].words();
        let mut added = false;
        for t in ts {
            let id = self.tid(t);
            if self.pts[n].insert(id) {
                self.delta[n].push(id);
                added = true;
            }
        }
        let after = self.pts[n].words();
        self.track_words(before, after);
        if added {
            self.enqueue(n as u32);
        }
    }

    /// Unions `pts(from)` into `pts(to)` by bitwise union-with-difference,
    /// queueing `to` when it gained targets. `from != to` (resolved).
    fn flow_full_pts(&mut self, from: u32, to: u32) {
        let mut fresh = std::mem::take(&mut self.fresh_buf);
        fresh.clear();
        let (src, dst) = two_mut(&mut self.pts, from as usize, to as usize);
        let before = dst.words();
        dst.union_with_diff(src, &mut fresh);
        let after = dst.words();
        self.track_words(before, after);
        if !fresh.is_empty() {
            self.delta[to as usize].extend(fresh.iter().copied());
            self.enqueue(to);
        }
        self.fresh_buf = fresh;
    }

    fn add_copy_edge(&mut self, from: u32, to: u32) {
        let from = self.find(from);
        let to = self.find(to);
        if from == to {
            return;
        }
        let succs = &mut self.copy_succs[from as usize];
        if let Err(pos) = succs.binary_search(&to) {
            succs.insert(pos, to);
            self.flow_full_pts(from, to);
        }
    }

    /// Runs `f` over a snapshot of `pts(n)` through a reusable buffer —
    /// the borrow-friendly replacement for the collect-into-fresh-`Vec`
    /// pattern the seeding and replay paths previously repeated.
    fn with_pts_snapshot<R>(&mut self, n: u32, f: impl FnOnce(&mut Self, &[u32]) -> R) -> R {
        let mut buf = std::mem::take(&mut self.scratch);
        buf.clear();
        buf.extend(self.pts[n as usize].iter());
        let r = f(self, &buf);
        self.scratch = buf;
        r
    }

    fn operand_node(&mut self, f: FuncId, op: Operand) -> Option<u32> {
        match op {
            Operand::Var(v) => Some(self.var_node(f, v)),
            _ => None,
        }
    }

    /// Targets contributed directly by a constant operand.
    fn operand_const_targets(&self, op: Operand) -> Vec<Target> {
        match op {
            Operand::Global(o) => vec![Target::Loc(Loc { obj: o, field: 0 })],
            Operand::Func(g) => vec![Target::Func(g)],
            _ => Vec::new(),
        }
    }

    /// Flows `op` into node `dst` (edge or direct targets).
    fn flow_into(&mut self, f: FuncId, op: Operand, dst: u32) {
        match self.operand_node(f, op) {
            Some(n) => self.add_copy_edge(n, dst),
            None => {
                let ts = self.operand_const_targets(op);
                self.add_targets(dst, ts);
            }
        }
    }

    // ---- constraint generation -----------------------------------------

    fn seed(&mut self) {
        for (fid, func) in self.m.funcs.iter_enumerated() {
            for (bb, block) in func.blocks.iter_enumerated() {
                for (idx, inst) in block.insts.iter().enumerate() {
                    self.seed_inst(fid, Site::new(fid, bb, idx), inst);
                }
                if let Terminator::Ret(Some(op)) = &block.term {
                    let r = self.ret_node(fid);
                    self.flow_into(fid, *op, r);
                }
            }
        }
    }

    /// Replays one existing Loc target against a gep constraint.
    fn apply_gep(&mut self, l: Loc, kind: &GepKind, dst: u32) {
        let shifted = self.shift(l, kind);
        self.add_targets(dst, shifted.into_iter().map(Target::Loc));
    }

    fn seed_inst(&mut self, f: FuncId, site: Site, inst: &Inst) {
        match inst {
            Inst::Copy { dst, src } => {
                let d = self.var_node(f, *dst);
                self.flow_into(f, *src, d);
            }
            Inst::Un { .. } | Inst::Bin { .. } => {
                // Arithmetic results are not pointers in TinyC's type
                // discipline (pointer arithmetic is a gep).
            }
            Inst::Alloc { dst, obj, .. } => {
                let d = self.var_node(f, *dst);
                self.add_targets(
                    d,
                    [Target::Loc(Loc {
                        obj: *obj,
                        field: 0,
                    })],
                );
            }
            Inst::Gep { dst, base, offset } => {
                let d = self.var_node(f, *dst);
                let kind = match offset {
                    GepOffset::Field(k) => GepKind::Field(*k),
                    GepOffset::Index { .. } => GepKind::Dynamic,
                };
                match self.operand_node(f, *base) {
                    Some(b) => {
                        let b = self.find(b);
                        self.gep_cons.push(b, (kind, d));
                        // Replay existing targets.
                        self.with_pts_snapshot(b, |s, ids| {
                            for &id in ids {
                                if let Target::Loc(l) = s.targets[id as usize] {
                                    s.apply_gep(l, &kind, d);
                                }
                            }
                        });
                    }
                    None => {
                        for t in self.operand_const_targets(*base) {
                            if let Target::Loc(l) = t {
                                self.apply_gep(l, &kind, d);
                            }
                        }
                    }
                }
            }
            Inst::Load { dst, addr } => {
                let d = self.var_node(f, *dst);
                match self.operand_node(f, *addr) {
                    Some(a) => {
                        let a = self.find(a);
                        self.load_cons.push(a, d);
                        self.with_pts_snapshot(a, |s, ids| {
                            for &id in ids {
                                if let Target::Loc(l) = s.targets[id as usize] {
                                    let mn = s.mem_node(l);
                                    s.add_copy_edge(mn, d);
                                }
                            }
                        });
                    }
                    None => {
                        for t in self.operand_const_targets(*addr) {
                            if let Target::Loc(l) = t {
                                let mn = self.mem_node(l);
                                self.add_copy_edge(mn, d);
                            }
                        }
                    }
                }
            }
            Inst::Store { addr, val } => {
                let src = match self.operand_node(f, *val) {
                    Some(n) => StoreSrc::Node(n),
                    None => match self.operand_const_targets(*val).first() {
                        Some(t) => StoreSrc::Const(*t),
                        None => return, // storing a non-pointer constant
                    },
                };
                match self.operand_node(f, *addr) {
                    Some(a) => {
                        let a = self.find(a);
                        self.store_cons.push(a, src);
                        self.with_pts_snapshot(a, |s, ids| {
                            for &id in ids {
                                if let Target::Loc(l) = s.targets[id as usize] {
                                    s.apply_store(src, l);
                                }
                            }
                        });
                    }
                    None => {
                        for t in self.operand_const_targets(*addr) {
                            if let Target::Loc(l) = t {
                                self.apply_store(src, l);
                            }
                        }
                    }
                }
            }
            Inst::Call { dst, callee, args } => {
                let start = self.call_args.len() as u32;
                self.call_args.extend_from_slice(args);
                self.site_info
                    .insert(site, (start, args.len() as u32, *dst));
                match callee {
                    Callee::Direct(g) => self.wire_call(site, *g),
                    Callee::Indirect(op) => match self.operand_node(f, *op) {
                        Some(t) => {
                            let t = self.find(t);
                            self.call_cons.push(t, site);
                            self.with_pts_snapshot(t, |s, ids| {
                                for &id in ids {
                                    if let Target::Func(g) = s.targets[id as usize] {
                                        s.wire_call(site, g);
                                    }
                                }
                            });
                        }
                        None => {
                            if let Operand::Func(g) = op {
                                self.wire_call(site, *g);
                            }
                        }
                    },
                    Callee::External(_) => {
                        // Modelled externals neither create nor propagate
                        // pointers.
                    }
                }
            }
            Inst::Phi { dst, incomings } => {
                let d = self.var_node(f, *dst);
                for (_, op) in incomings {
                    self.flow_into(f, *op, d);
                }
            }
        }
    }

    fn apply_store(&mut self, src: StoreSrc, loc: Loc) {
        let mn = self.mem_node(loc);
        match src {
            StoreSrc::Node(n) => self.add_copy_edge(n, mn),
            StoreSrc::Const(t) => self.add_targets(mn, [t]),
        }
    }

    fn shift(&self, l: Loc, kind: &GepKind) -> Vec<Loc> {
        let obj = &self.m.objects[l.obj];
        match kind {
            GepKind::Field(k) => {
                if obj.is_array {
                    vec![Loc {
                        obj: l.obj,
                        field: 0,
                    }]
                } else {
                    // In-layout and out-of-layout constant offsets both map
                    // through the repeated element layout.
                    let cell = l.field + k;
                    vec![self.rep_loc(l.obj, cell)]
                }
            }
            GepKind::Dynamic => {
                if obj.is_array {
                    vec![Loc {
                        obj: l.obj,
                        field: 0,
                    }]
                } else {
                    // Pointer arithmetic over a non-array object: be
                    // conservative, hit every field class.
                    let mut out: Vec<u32> = self.reps[&l.obj].clone();
                    out.sort_unstable();
                    out.dedup();
                    out.into_iter()
                        .map(|field| Loc { obj: l.obj, field })
                        .collect()
                }
            }
        }
    }

    fn wire_call(&mut self, site: Site, g: FuncId) {
        if !self.wired.insert((site, g)) {
            return;
        }
        self.cg.add_edge(site, g);
        let m = self.m;
        let (start, len, dst) = self.site_info[&site];
        for (i, &p) in m.funcs[g].params.iter().enumerate().take(len as usize) {
            let a = self.call_args[start as usize + i];
            let pn = self.var_node(g, p);
            self.flow_into(site.func, a, pn);
        }
        if let Some(d) = dst {
            let dn = self.var_node(site.func, d);
            let rn = self.ret_node(g);
            self.add_copy_edge(rn, dn);
        }
    }

    // ---- solving ---------------------------------------------------------

    fn solve(&mut self, budget: &Budget) -> Result<(), Exhausted> {
        while let Some(n) = self.worklist.pop_front() {
            budget.try_charge(1)?;
            let n = self.find(n);
            self.in_wl[n as usize] = false;
            let delta = std::mem::take(&mut self.delta[n as usize]);
            if delta.is_empty() {
                continue;
            }
            self.pops += 1;
            if self.pops.is_multiple_of(20_000) {
                self.collapse_cycles();
            }

            // Copy successors receive the delta. The list is taken out
            // rather than cloned; any edge out of `n` added while it is
            // out flows its points-to set at insertion, so merging the
            // two sorted lists afterwards loses nothing.
            let succs = std::mem::take(&mut self.copy_succs[n as usize]);
            for &s in &succs {
                self.add_target_ids(s, &delta);
            }
            let added = std::mem::replace(&mut self.copy_succs[n as usize], succs);
            for a in added {
                let v = &mut self.copy_succs[n as usize];
                if let Err(pos) = v.binary_search(&a) {
                    v.insert(pos, a);
                }
            }
            // Complex constraints react to new targets. The arena chains
            // only grow during seeding and SCC merges, never inside this
            // scan, so cursor walks see a frozen list without cloning.
            for &t in &delta {
                match self.targets[t as usize] {
                    Target::Loc(l) => {
                        let mut cur = self.load_cons.first(n);
                        if cur != NIL {
                            let mn = self.mem_node(l);
                            while cur != NIL {
                                let (d, next) = self.load_cons.get(cur);
                                self.add_copy_edge(mn, d);
                                cur = next;
                            }
                        }
                        let mut cur = self.store_cons.first(n);
                        while cur != NIL {
                            let (src, next) = self.store_cons.get(cur);
                            self.apply_store(src, l);
                            cur = next;
                        }
                        let mut cur = self.gep_cons.first(n);
                        while cur != NIL {
                            let ((kind, d), next) = self.gep_cons.get(cur);
                            self.apply_gep(l, &kind, d);
                            cur = next;
                        }
                    }
                    Target::Func(g) => {
                        let mut cur = self.call_cons.first(n);
                        while cur != NIL {
                            let (site, next) = self.call_cons.get(cur);
                            self.wire_call(site, g);
                            cur = next;
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Tarjan over a CSR snapshot of the (representative-resolved)
    /// copy-edge graph; merges every nontrivial SCC into one node.
    fn collapse_cycles(&mut self) {
        let n = self.n_nodes;
        // Resolve every node's representative once, then freeze the copy
        // graph into offsets + edges arrays (struct-of-arrays CSR).
        let node_rep: Vec<u32> = (0..n as u32).map(|i| self.find(i)).collect();
        let mut offsets = vec![0u32; n + 1];
        for v in 0..n {
            if node_rep[v] == v as u32 {
                offsets[v + 1] = self.copy_succs[v].len() as u32;
            }
        }
        for v in 0..n {
            offsets[v + 1] += offsets[v];
        }
        let mut edges = vec![0u32; offsets[n] as usize];
        for v in 0..n {
            if node_rep[v] != v as u32 {
                continue;
            }
            let base = offsets[v] as usize;
            for (i, &s) in self.copy_succs[v].iter().enumerate() {
                edges[base + i] = node_rep[s as usize];
            }
        }

        let mut index = vec![u32::MAX; n];
        let mut low = vec![0u32; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<u32> = Vec::new();
        let mut next = 0u32;
        // (node, next edge cursor into `edges`)
        let mut call_stack: Vec<(u32, u32)> = Vec::new();
        let mut merges: Vec<Vec<u32>> = Vec::new();

        for start in 0..n as u32 {
            if node_rep[start as usize] != start || index[start as usize] != u32::MAX {
                continue;
            }
            call_stack.push((start, offsets[start as usize]));
            index[start as usize] = next;
            low[start as usize] = next;
            next += 1;
            stack.push(start);
            on_stack[start as usize] = true;

            while let Some((v, cursor)) = call_stack.last_mut() {
                let v = *v;
                if *cursor < offsets[v as usize + 1] {
                    let w = edges[*cursor as usize];
                    *cursor += 1;
                    if index[w as usize] == u32::MAX {
                        index[w as usize] = next;
                        low[w as usize] = next;
                        next += 1;
                        stack.push(w);
                        on_stack[w as usize] = true;
                        call_stack.push((w, offsets[w as usize]));
                    } else if on_stack[w as usize] {
                        low[v as usize] = low[v as usize].min(index[w as usize]);
                    }
                } else {
                    if low[v as usize] == index[v as usize] {
                        let mut comp = Vec::new();
                        while let Some(w) = stack.pop() {
                            on_stack[w as usize] = false;
                            comp.push(w);
                            if w == v {
                                break;
                            }
                        }
                        if comp.len() > 1 {
                            merges.push(comp);
                        }
                    }
                    call_stack.pop();
                    if let Some((u, _)) = call_stack.last() {
                        let u = *u;
                        low[u as usize] = low[u as usize].min(low[v as usize]);
                    }
                }
            }
        }

        for comp in merges {
            let root = comp[0];
            for &other in &comp[1..] {
                self.merge(root, other);
            }
        }
    }

    /// Merges `b` into `a`. Only the genuinely fresh targets (b's pts
    /// minus a's) enter `delta[a]`; b's inherited constraints and copy
    /// successors are replayed against a's full set directly — instead of
    /// the previous full-points-to replay on every merge, which was
    /// quadratic across SCC chains.
    fn merge(&mut self, a: u32, b: u32) {
        let a = self.find(a);
        let b = self.find(b);
        if a == b {
            return;
        }
        self.merges += 1;
        self.parent[b as usize] = a;
        let b_pts = std::mem::take(&mut self.pts[b as usize]);
        // Pending entries of b are a subset of b_pts: the union below and
        // the constraint replay cover them.
        let _b_delta = std::mem::take(&mut self.delta[b as usize]);
        let b_succs = std::mem::take(&mut self.copy_succs[b as usize]);
        self.track_words(b_pts.words(), 0);

        // 1. Union b's targets into a; only the difference becomes delta
        //    (a's own constraints and successors see it on the next pop).
        let mut fresh = std::mem::take(&mut self.fresh_buf);
        fresh.clear();
        let before = self.pts[a as usize].words();
        self.pts[a as usize].union_with_diff(&b_pts, &mut fresh);
        let after = self.pts[a as usize].words();
        self.track_words(before, after);
        self.delta[a as usize].extend(fresh.iter().copied());
        self.fresh_buf = fresh;

        // 2. b's constraints have only seen b's targets: replay them
        //    against the merged set once (idempotent for the overlap),
        //    then splice b's chains onto a's.
        self.with_pts_snapshot(a, |s, ids| {
            for &id in ids {
                match s.targets[id as usize] {
                    Target::Loc(l) => {
                        let mut cur = s.load_cons.first(b);
                        while cur != NIL {
                            let (d, next) = s.load_cons.get(cur);
                            let mn = s.mem_node(l);
                            s.add_copy_edge(mn, d);
                            cur = next;
                        }
                        let mut cur = s.store_cons.first(b);
                        while cur != NIL {
                            let (src, next) = s.store_cons.get(cur);
                            s.apply_store(src, l);
                            cur = next;
                        }
                        let mut cur = s.gep_cons.first(b);
                        while cur != NIL {
                            let ((kind, d), next) = s.gep_cons.get(cur);
                            s.apply_gep(l, &kind, d);
                            cur = next;
                        }
                    }
                    Target::Func(g) => {
                        let mut cur = s.call_cons.first(b);
                        while cur != NIL {
                            let (site, next) = s.call_cons.get(cur);
                            s.wire_call(site, g);
                            cur = next;
                        }
                    }
                }
            }
        });
        self.load_cons.concat(a, b);
        self.store_cons.concat(a, b);
        self.gep_cons.concat(a, b);
        self.call_cons.concat(a, b);

        // 3. b's copy successors are fresh edges out of a: flow the full
        //    merged set to each (deduplicated against a's existing edges).
        for s in b_succs {
            self.add_copy_edge(a, s);
        }
        self.enqueue(a);
    }

    // ---- finalization ----------------------------------------------------

    fn finish(mut self) -> PointerAnalysis {
        // Extract per-node results (resolving union-find). Target order in
        // the output is the payload (`Target`) order, matching the
        // reference solver's `BTreeSet` iteration: interned ids are mapped
        // to payload-order ranks once, so per-node ordering is a plain
        // `u32` sort. Nodes with empty sets are not materialized (the
        // accessors default to empty).
        let mut order: Vec<u32> = (0..self.targets.len() as u32).collect();
        order.sort_unstable_by_key(|&i| self.targets[i as usize]);
        let mut rank_of = vec![0u32; self.targets.len()];
        for (rank, &id) in order.iter().enumerate() {
            rank_of[id as usize] = rank as u32;
        }
        // Paired vectors first, then exact-size collects: the map
        // allocates once instead of rehashing through its growth ladder.
        let mut var_rows: Vec<((FuncId, VarId), Vec<Target>)> = Vec::new();
        let mut mem_rows: Vec<(Loc, Vec<Target>)> = Vec::new();
        let mut ranks: Vec<u32> = Vec::new();
        let extract = |slf: &mut Self, id: u32, ranks: &mut Vec<u32>| -> Option<Vec<Target>> {
            let rep = slf.find(id);
            if slf.pts[rep as usize].is_empty() {
                return None;
            }
            ranks.clear();
            ranks.extend(slf.pts[rep as usize].iter().map(|id| rank_of[id as usize]));
            ranks.sort_unstable();
            Some(
                ranks
                    .iter()
                    .map(|&r| slf.targets[order[r as usize] as usize])
                    .collect(),
            )
        };
        for (f, func) in self.m.funcs.iter_enumerated() {
            for (v, _) in func.vars.iter_enumerated() {
                let id = self.var_node(f, v);
                if let Some(ts) = extract(&mut self, id, &mut ranks) {
                    var_rows.push(((f, v), ts));
                }
            }
        }
        for (oid, _o) in self.m.objects.iter_enumerated() {
            let cells = self.reps[&oid].len() as u32;
            for field in 0..cells {
                let l = Loc { obj: oid, field };
                let id = self.mem_node(l);
                if let Some(ts) = extract(&mut self, id, &mut ranks) {
                    mem_rows.push((l, ts));
                }
            }
        }

        let var_pts: HashMap<(FuncId, VarId), Vec<Target>> = var_rows.into_iter().collect();
        let mem_pts: HashMap<Loc, Vec<Target>> = mem_rows.into_iter().collect();
        let stats = SolverStats {
            nodes: self.n_nodes,
            interned_targets: self.targets.len(),
            pops: self.pops,
            merges: self.merges,
            peak_pts_words: self.peak_words,
        };
        finish_analysis(self.m, self.cg, self.reps, var_pts, mem_pts, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use usher_frontend_shim::compile;
    use usher_ir::{Callee, FuncBuilder, Module, ObjKind, StructDef, Type};

    /// Tests compile tiny programs through a minimal local shim to avoid a
    /// dev-dependency cycle; see the integration tests at the workspace
    /// root for full-pipeline coverage.
    mod usher_frontend_shim {
        pub use test_build::compile;
        mod test_build {
            use usher_ir::*;

            /// Builds: main { a = alloc x; b = alloc y; p = cond ? a : b;
            /// *p = a; q = *p; } — classic Andersen diamond.
            pub fn compile() -> (Module, FuncId, Vec<VarId>, Vec<ObjId>) {
                let mut m = Module::new();
                let int = m.types.int();
                let fid = m.declare_func("main", None);
                m.main = Some(fid);
                let mut b = FuncBuilder::new(&mut m, fid);
                let (a, xo) = b.alloc("x", ObjKind::Stack(fid), int, false, None);
                let pint = b.module.types.ptr_to(int);
                let (bv, yo) = b.alloc("y", ObjKind::Stack(fid), pint, false, None);
                let t = b.new_block();
                let e = b.new_block();
                let j = b.new_block();
                b.br(Operand::Const(1), t, e);
                b.set_block(t);
                b.jmp(j);
                b.set_block(e);
                b.jmp(j);
                b.set_block(j);
                let p = b.phi(pint, vec![(t, a.into()), (e, bv.into())]);
                b.store(p.into(), a.into());
                let q = b.load(p.into(), pint);
                b.ret(None);
                b.finish();
                (m, fid, vec![a, bv, p, q], vec![xo, yo])
            }
        }
    }

    #[test]
    fn phi_merges_points_to_sets() {
        let (m, fid, vars, objs) = compile();
        let pa = analyze(&m);
        let p = vars[2];
        let pts = pa.pts_var(fid, p);
        assert_eq!(pts.len(), 2);
        assert!(pts.contains(&Loc {
            obj: objs[0],
            field: 0
        }));
        assert!(pts.contains(&Loc {
            obj: objs[1],
            field: 0
        }));
    }

    #[test]
    fn store_then_load_propagates_through_memory() {
        let (m, fid, vars, objs) = compile();
        let pa = analyze(&m);
        // q := *p where *p may contain a (which points to x).
        let q = vars[3];
        let pts = pa.pts_var(fid, q);
        assert!(
            pts.contains(&Loc {
                obj: objs[0],
                field: 0
            }),
            "{pts:?}"
        );
    }

    #[test]
    fn concrete_objects_in_main_outside_loops() {
        let (m, _fid, _vars, objs) = compile();
        let pa = analyze(&m);
        assert!(pa.is_concrete(Loc {
            obj: objs[0],
            field: 0
        }));
        assert!(pa.is_concrete(Loc {
            obj: objs[1],
            field: 0
        }));
    }

    #[test]
    fn unique_target_detects_singletons() {
        let (m, fid, vars, objs) = compile();
        let pa = analyze(&m);
        let a = vars[0];
        assert_eq!(
            pa.unique_target(fid, a.into()),
            Some(Loc {
                obj: objs[0],
                field: 0
            })
        );
        let p = vars[2];
        assert_eq!(pa.unique_target(fid, p.into()), None);
    }

    #[test]
    fn gep_field_shifts_target() {
        let mut m = Module::new();
        let int = m.types.int();
        let s = m.types.add_struct(StructDef {
            name: "P".into(),
            fields: vec![("x".into(), int), ("y".into(), int)],
        });
        let sty = m.types.intern(Type::Struct(s));
        let fid = m.declare_func("main", None);
        m.main = Some(fid);
        let mut b = FuncBuilder::new(&mut m, fid);
        let (p, obj) = b.alloc("s", ObjKind::Stack(fid), sty, false, None);
        let pint = b.module.types.ptr_to(int);
        let g = b.gep_field(p.into(), 1, pint);
        b.store(g.into(), Operand::Const(1));
        b.ret(None);
        b.finish();
        let pa = analyze(&m);
        assert_eq!(pa.pts_var(fid, g), vec![Loc { obj, field: 1 }]);
    }

    #[test]
    fn dynamic_gep_on_array_stays_in_class_zero() {
        let mut m = Module::new();
        let int = m.types.int();
        let arr = m.types.intern(Type::Array(int, 8));
        let fid = m.declare_func("main", None);
        m.main = Some(fid);
        let mut b = FuncBuilder::new(&mut m, fid);
        let (p, obj) = b.alloc("a", ObjKind::Stack(fid), arr, false, None);
        let i = b.copy(int, Operand::Const(3));
        let pint = b.module.types.ptr_to(int);
        let g = b.gep_index(p.into(), i.into(), 1, pint);
        b.store(g.into(), Operand::Const(1));
        b.ret(None);
        b.finish();
        let pa = analyze(&m);
        assert_eq!(pa.pts_var(fid, g), vec![Loc { obj, field: 0 }]);
        // Array classes are never concrete for strong updates.
        assert!(!pa.is_concrete(Loc { obj, field: 0 }));
    }

    #[test]
    fn indirect_call_resolved_on_the_fly() {
        let mut m = Module::new();
        let int = m.types.int();
        let fp = m.types.intern(Type::FuncPtr {
            params: 0,
            has_ret: true,
        });
        let gid = m.declare_func("g", Some(int));
        let fid = m.declare_func("main", None);
        m.main = Some(fid);
        {
            let mut b = FuncBuilder::new(&mut m, gid);
            b.ret(Some(Operand::Const(7)));
            b.finish();
        }
        {
            let mut b = FuncBuilder::new(&mut m, fid);
            let t = b.copy(fp, Operand::Func(gid));
            b.call(Callee::Indirect(t.into()), vec![], Some(int));
            b.ret(None);
            b.finish();
        }
        let pa = analyze(&m);
        let sites: Vec<_> = pa.call_graph.callees.keys().collect();
        assert_eq!(sites.len(), 1);
        assert_eq!(pa.call_graph.callees_of(*sites[0]), &[gid]);
    }

    #[test]
    fn interprocedural_flow_through_params_and_ret() {
        let mut m = Module::new();
        let int = m.types.int();
        let pint = m.types.ptr_to(int);
        let gid = m.declare_func("id", Some(pint));
        let fid = m.declare_func("main", None);
        m.main = Some(fid);
        {
            let mut b = FuncBuilder::new(&mut m, gid);
            let p = b.param("p", pint);
            b.ret(Some(p.into()));
            b.finish();
        }
        let (q, obj);
        {
            let mut b = FuncBuilder::new(&mut m, fid);
            let (a, o) = b.alloc("x", ObjKind::Stack(fid), int, false, None);
            obj = o;
            q = b
                .call(Callee::Direct(gid), vec![a.into()], Some(pint))
                .unwrap();
            b.store(q.into(), Operand::Const(1));
            b.ret(None);
            b.finish();
        }
        let pa = analyze(&m);
        assert_eq!(pa.pts_var(fid, q), vec![Loc { obj, field: 0 }]);
    }

    #[test]
    fn global_operand_points_to_global_object() {
        let mut m = Module::new();
        let int = m.types.int();
        let g = m.add_object("g", ObjKind::Global, int, true, false);
        m.globals.push(g);
        let fid = m.declare_func("main", None);
        m.main = Some(fid);
        let mut b = FuncBuilder::new(&mut m, fid);
        let pint = b.module.types.ptr_to(int);
        let p = b.copy(pint, Operand::Global(g));
        b.store(p.into(), Operand::Const(3));
        b.ret(None);
        b.finish();
        let pa = analyze(&m);
        assert_eq!(pa.pts_var(fid, p), vec![Loc { obj: g, field: 0 }]);
        assert!(pa.is_concrete(Loc { obj: g, field: 0 }));
    }

    #[test]
    fn loop_allocation_is_not_concrete() {
        let mut m = Module::new();
        let int = m.types.int();
        let fid = m.declare_func("main", None);
        m.main = Some(fid);
        let mut b = FuncBuilder::new(&mut m, fid);
        let header = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        b.jmp(header);
        b.set_block(header);
        b.br(Operand::Const(1), body, exit);
        b.set_block(body);
        let (_p, obj) = b.alloc("x", ObjKind::Heap(fid), int, false, None);
        b.jmp(header);
        b.set_block(exit);
        b.ret(None);
        b.finish();
        let pa = analyze(&m);
        assert!(!pa.is_concrete(Loc { obj, field: 0 }));
    }

    #[test]
    fn solver_stats_are_populated() {
        let (m, _fid, _vars, _objs) = compile();
        let pa = analyze(&m);
        assert!(pa.stats.nodes > 0);
        assert!(pa.stats.interned_targets >= 2);
        assert!(pa.stats.pops > 0);
    }
}
