//! The Andersen-style inclusion solver.
//!
//! Points-to targets are interned into a dense `u32` space and each
//! node's set is a hybrid sparse/dense bitmap ([`crate::pts::PtsSet`]),
//! so difference propagation and SCC merges are bitwise
//! union-with-difference instead of per-element `BTreeSet` inserts. The
//! periodic Tarjan cycle collapse runs over a CSR snapshot of the
//! copy-edge graph. The original `BTreeSet`-based solver is retained in
//! [`crate::reference`] as the equivalence/benchmark baseline.

use std::collections::VecDeque;

use usher_ir::{
    Budget, Callee, Exhausted, FuncId, FxHashMap, FxHashSet, GepOffset, Idx, Inst, Module, ObjId,
    Operand, Site, Terminator, VarId,
};

use crate::callgraph::{CallGraph, LoopInfo};
use crate::pts::PtsSet;
use crate::strategy::WaveRunner;

/// A points-to target: a field of an abstract object, identified by its
/// canonical (representative) cell — the first cell of its field class.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Loc {
    /// The abstract object.
    pub obj: ObjId,
    /// Canonical cell of the field class.
    pub field: u32,
}

/// Points-to targets.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub(crate) enum Target {
    Loc(Loc),
    Func(FuncId),
}

/// Counters from one solver run (threaded into driver telemetry).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Solver nodes created (variables, memory fields, returns).
    pub nodes: usize,
    /// Distinct points-to targets interned.
    pub interned_targets: usize,
    /// Worklist pops (or wave constraint replays) until the fixpoint.
    pub pops: usize,
    /// Union-find merges performed by cycle collapsing.
    pub merges: usize,
    /// Peak 64-bit words held by all points-to sets at once.
    pub peak_pts_words: usize,
    /// Multi-member equivalence classes found by the unification
    /// prefilter (0 when the strategy runs without one).
    pub unify_classes: usize,
    /// Nodes the prefilter collapsed into a class representative.
    pub unify_collapsed: usize,
    /// Wall time spent in the unification prefilter, in microseconds.
    /// The only scheduling-dependent counter; it is excluded from
    /// [`PointerAnalysis::digest`].
    pub prefilter_us: usize,
    /// Topological batches executed by wave propagation (0 for the
    /// worklist strategies).
    pub wave_batches: usize,
    /// Target ids propagated across wave batch boundaries.
    pub wave_propagated: usize,
    /// Widest single wave batch — the per-batch parallelism available
    /// to an injected [`crate::strategy::WaveRunner`].
    pub wave_max_width: usize,
}

/// The result of [`analyze`].
#[derive(Clone, Debug)]
pub struct PointerAnalysis {
    /// Per-variable target ranges into [`PointerAnalysis::pool`]. One
    /// shared arena replaces a `Vec<Target>` per row: building and
    /// dropping the result is a handful of allocations instead of one
    /// per non-empty points-to set.
    pub(crate) var_pts: FxHashMap<(FuncId, VarId), (u32, u32)>,
    /// Per-location target ranges into [`PointerAnalysis::pool`].
    pub(crate) mem_pts: FxHashMap<Loc, (u32, u32)>,
    /// Target arena backing `var_pts` / `mem_pts` ranges.
    pub(crate) pool: Vec<Target>,
    /// The resolved call graph (direct + indirect).
    pub call_graph: CallGraph,
    /// Per-function loop info (reused by VFG construction and Opt II).
    pub loops: FxHashMap<FuncId, LoopInfo>,
    /// Objects whose allocation site runs at most once (candidates for
    /// strong updates when additionally single-cell).
    pub concrete_objects: FxHashSet<ObjId>,
    /// Per-object: class representative of every cell.
    pub(crate) reps: FxHashMap<ObjId, Vec<u32>>,
    /// Per-object: whether each class rep covers exactly one cell.
    pub(crate) single_cell: FxHashMap<Loc, bool>,
    /// Solver counters.
    pub stats: SolverStats,
}

impl PointerAnalysis {
    /// The pool slice a stored range denotes.
    #[inline]
    fn row(&self, range: Option<&(u32, u32)>) -> &[Target] {
        match range {
            Some(&(s, e)) => &self.pool[s as usize..e as usize],
            None => &[],
        }
    }

    /// Memory locations a variable may point to.
    pub fn pts_var(&self, f: FuncId, v: VarId) -> Vec<Loc> {
        self.row(self.var_pts.get(&(f, v)))
            .iter()
            .filter_map(|t| match t {
                Target::Loc(l) => Some(*l),
                Target::Func(_) => None,
            })
            .collect()
    }

    /// Memory locations an address operand may point to.
    pub fn pts_operand(&self, f: FuncId, op: Operand) -> Vec<Loc> {
        match op {
            Operand::Var(v) => self.pts_var(f, v),
            Operand::Global(o) => vec![Loc { obj: o, field: 0 }],
            _ => Vec::new(),
        }
    }

    /// Function targets of a variable (for indirect calls).
    pub fn fn_targets(&self, f: FuncId, v: VarId) -> Vec<FuncId> {
        self.row(self.var_pts.get(&(f, v)))
            .iter()
            .filter_map(|t| match t {
                Target::Func(g) => Some(*g),
                Target::Loc(_) => None,
            })
            .collect()
    }

    /// Locations a memory field may point to (for mod/ref of loads of
    /// pointers — not needed by the VFG but useful to clients/tests).
    pub fn pts_mem(&self, loc: Loc) -> Vec<Loc> {
        self.row(self.mem_pts.get(&loc))
            .iter()
            .filter_map(|t| match t {
                Target::Loc(l) => Some(*l),
                Target::Func(_) => None,
            })
            .collect()
    }

    /// The canonical representative of `(obj, cell)`.
    pub fn rep(&self, obj: ObjId, cell: u32) -> Loc {
        let reps = &self.reps[&obj];
        let c = (cell as usize).min(reps.len().saturating_sub(1));
        Loc {
            obj,
            field: reps.get(c).copied().unwrap_or(0),
        }
    }

    /// All field-class representatives of an object.
    pub fn all_fields(&self, obj: ObjId) -> Vec<Loc> {
        let mut out: Vec<u32> = self.reps[&obj].clone();
        out.sort_unstable();
        out.dedup();
        out.into_iter().map(|field| Loc { obj, field }).collect()
    }

    /// Whether a location is *concrete* in the paper's sense: it denotes
    /// exactly one runtime cell (single-cell field class of an object
    /// whose allocation executes at most once). Stores whose pointer
    /// uniquely targets a concrete location may be strongly updated.
    pub fn is_concrete(&self, loc: Loc) -> bool {
        self.concrete_objects.contains(&loc.obj)
            && self.single_cell.get(&loc).copied().unwrap_or(false)
    }

    /// Whether a location's field class covers exactly one cell (stores
    /// to it write the whole abstract location; array classes never do).
    pub fn is_single_cell(&self, loc: Loc) -> bool {
        self.single_cell.get(&loc).copied().unwrap_or(false)
    }

    /// If `addr` (in function `f`) points to exactly one location, returns
    /// it; the VFG uses this for both strong and semi-strong updates.
    pub fn unique_target(&self, f: FuncId, addr: Operand) -> Option<Loc> {
        let ts = self.pts_operand(f, addr);
        match (ts.len(), self.fn_target_count(f, addr)) {
            (1, 0) => Some(ts[0]),
            _ => None,
        }
    }

    fn fn_target_count(&self, f: FuncId, addr: Operand) -> usize {
        match addr {
            Operand::Var(v) => self.fn_targets(f, v).len(),
            _ => 0,
        }
    }

    /// A stable structural checksum of the analysis result, used by the
    /// driver's self-healing artifact cache to detect corruption. Hash
    /// maps are drained through explicit sorts so the digest never
    /// depends on iteration order.
    pub fn digest(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = usher_ir::FxHasher::default();
        let mut vars: Vec<_> = self.var_pts.iter().collect();
        vars.sort_by_key(|(&k, _)| k);
        for ((f, v), &(st, en)) in vars {
            h.write_usize(f.index());
            h.write_usize(v.index());
            self.pool[st as usize..en as usize].hash(&mut h);
        }
        let mut mems: Vec<_> = self.mem_pts.iter().collect();
        mems.sort_by_key(|(&l, _)| l);
        for (l, &(st, en)) in mems {
            h.write_usize(l.obj.index());
            h.write_u32(l.field);
            self.pool[st as usize..en as usize].hash(&mut h);
        }
        let mut objs: Vec<usize> = self.concrete_objects.iter().map(|o| o.index()).collect();
        objs.sort_unstable();
        objs.hash(&mut h);
        h.write_usize(self.stats.nodes);
        h.write_usize(self.stats.pops);
        h.write_usize(self.stats.merges);
        h.finish()
    }
}

/// Runs the plain Andersen worklist solver (no prefilter, no waves)
/// under a cooperative step budget: one step per worklist pop. On
/// exhaustion the partial fixpoint is discarded — a partial points-to
/// solution *under*-approximates and must never feed the guided planner
/// — and the caller is expected to degrade to full instrumentation.
///
/// The strategy-dispatching entry points live in [`crate::strategy`];
/// this is the `PointerStrategy::Andersen` implementation.
///
/// # Errors
///
/// Returns [`Exhausted`] when the budget runs out before the fixpoint.
pub(crate) fn analyze_andersen(
    m: &Module,
    budget: &Budget,
    prefilter: bool,
) -> Result<PointerAnalysis, Exhausted> {
    let mut s = Solver::new(m);
    if prefilter {
        s.apply_prefilter();
    }
    s.seed();
    s.solve(budget)?;
    Ok(s.finish())
}

/// Cell-class representatives per object, shared by both solvers.
pub(crate) fn object_reps(m: &Module) -> FxHashMap<ObjId, Vec<u32>> {
    let mut reps = FxHashMap::with_capacity_and_hasher(m.objects.len(), Default::default());
    // rep[cell] = first cell with the same class. Objects have a handful
    // of field classes, so one reused scratch list with a linear scan
    // beats a per-object hash map by a wide margin.
    let mut first: Vec<(u32, u32)> = Vec::new();
    for (oid, o) in m.objects.iter_enumerated() {
        first.clear();
        let mut r = Vec::with_capacity(o.field_classes.len());
        for (cell, &class) in o.field_classes.iter().enumerate() {
            let rep = match first.iter().find(|&&(c, _)| c == class) {
                Some(&(_, rep)) => rep,
                None => {
                    first.push((class, cell as u32));
                    cell as u32
                }
            };
            r.push(rep);
        }
        if r.is_empty() {
            r.push(0);
        }
        reps.insert(oid, r);
    }
    reps
}

/// A solver's decoded fixpoint — the pooled points-to rows plus the run
/// counters — on its way into [`finish_analysis`].
pub(crate) struct Solution {
    pub(crate) var_pts: FxHashMap<(FuncId, VarId), (u32, u32)>,
    pub(crate) mem_pts: FxHashMap<Loc, (u32, u32)>,
    pub(crate) pool: Vec<Target>,
    pub(crate) stats: SolverStats,
}

/// Shared finalization: concreteness, single-cell classes, call-graph
/// derived info. Used by both the bitmap solver and the reference one so
/// their outputs agree field for field.
pub(crate) fn finish_analysis(
    m: &Module,
    cg: CallGraph,
    reps: FxHashMap<ObjId, Vec<u32>>,
    solution: Solution,
) -> PointerAnalysis {
    finish_analysis_with(m, cg, reps, solution, None, None)
}

/// [`finish_analysis`] with an optional parallel runner: per-function
/// loop analysis is independent across functions, so it is dispatched as
/// read-only jobs (one per function, encoded as the list of in-loop
/// block ids) when a runner is available. Output is runner-independent.
pub(crate) fn finish_analysis_with(
    m: &Module,
    mut cg: CallGraph,
    reps: FxHashMap<ObjId, Vec<u32>>,
    solution: Solution,
    runner: Option<crate::strategy::WaveRunner<'_>>,
    alloc_block: Option<Vec<u32>>,
) -> PointerAnalysis {
    let Solution {
        var_pts,
        mem_pts,
        pool,
        stats,
    } = solution;
    let loops: FxHashMap<FuncId, LoopInfo> = match runner {
        Some(run) if m.funcs.len() > 1 => {
            let job = |i: usize| -> Vec<u32> {
                let f = FuncId::from_usize(i);
                LoopInfo::compute(&m.funcs[f]).loop_blocks()
            };
            run(m.funcs.len(), &job)
                .into_iter()
                .enumerate()
                .map(|(i, blocks)| {
                    let f = FuncId::from_usize(i);
                    (
                        f,
                        LoopInfo::from_loop_blocks(m.funcs[f].blocks.len(), &blocks),
                    )
                })
                .collect()
        }
        _ => m
            .funcs
            .iter_enumerated()
            .map(|(f, func)| (f, LoopInfo::compute(func)))
            .collect(),
    };
    cg.finalize(m, &loops);

    // Concrete objects: allocation executes at most once. Each object's
    // first allocation block makes the decision O(1); the bitmap solver
    // records it while seeding, the reference path rescans the module
    // here (`u32::MAX` = never allocated).
    let alloc_block: Vec<u32> = alloc_block.unwrap_or_else(|| {
        let mut ab = vec![u32::MAX; m.objects.len()];
        for (_f, func) in m.funcs.iter_enumerated() {
            for (bb, block) in func.blocks.iter_enumerated() {
                for inst in &block.insts {
                    if let Inst::Alloc { obj, .. } = inst {
                        if ab[obj.index()] == u32::MAX {
                            ab[obj.index()] = bb.index() as u32;
                        }
                    }
                }
            }
        }
        ab
    });
    let mut concrete = FxHashSet::with_capacity_and_hasher(m.objects.len(), Default::default());
    for (oid, o) in m.objects.iter_enumerated() {
        match o.kind {
            usher_ir::ObjKind::Global => {
                concrete.insert(oid);
            }
            usher_ir::ObjKind::Stack(f) | usher_ir::ObjKind::Heap(f) => {
                if !cg.runs_once.contains(&f) || cg.recursive.contains(&f) {
                    continue;
                }
                let bb = alloc_block[oid.index()];
                if bb != u32::MAX && !loops[&f].in_loop(usher_ir::BlockId(bb)) {
                    concrete.insert(oid);
                }
            }
        }
    }

    // Single-cell classes. A rep is always a cell index of its own
    // object, so counting into a dense scratch vector replaces the
    // per-object hash map.
    let total_cells: usize = reps.values().map(Vec::len).sum();
    let mut single_cell: FxHashMap<Loc, bool> =
        FxHashMap::with_capacity_and_hasher(total_cells, Default::default());
    let mut counts: Vec<u32> = Vec::new();
    for (oid, o) in m.objects.iter_enumerated() {
        let object_reps = &reps[&oid];
        counts.clear();
        counts.resize(object_reps.len(), 0);
        for &r in object_reps {
            counts[r as usize] += 1;
        }
        let dynamic = o.is_array;
        for (cell, &count) in counts.iter().enumerate() {
            if count > 0 {
                single_cell.insert(
                    Loc {
                        obj: oid,
                        field: cell as u32,
                    },
                    count == 1 && !dynamic,
                );
            }
        }
    }

    PointerAnalysis {
        var_pts,
        mem_pts,
        pool,
        call_graph: cg,
        loops,
        concrete_objects: concrete,
        reps,
        single_cell,
        stats,
    }
}

#[derive(Clone, Copy, Debug)]
enum GepKind {
    Field(u32),
    Dynamic,
}

/// Dense node layout: `[vars per function | returns | memory cells]`.
/// Every possible node has a precomputed id, so node resolution is pure
/// arithmetic and all per-node tables are allocated exactly once. Shared
/// with the unification prefilter ([`crate::unify`]), which works on the
/// variable/return prefix (`0..mem_base`) of this id space.
pub(crate) struct NodeLayout {
    pub(crate) var_base: Vec<u32>,
    pub(crate) ret_base: u32,
    pub(crate) mem_base: u32,
    pub(crate) obj_base: Vec<u32>,
    pub(crate) n_nodes: usize,
}

impl NodeLayout {
    pub(crate) fn new(m: &Module, reps: &FxHashMap<ObjId, Vec<u32>>) -> NodeLayout {
        let mut var_base = Vec::with_capacity(m.funcs.len());
        let mut next = 0u32;
        for (_f, func) in m.funcs.iter_enumerated() {
            var_base.push(next);
            next += func.vars.len() as u32;
        }
        let ret_base = next;
        next += m.funcs.len() as u32;
        let mem_base = next;
        let mut obj_base = Vec::with_capacity(m.objects.len());
        let mut mem_off = 0u32;
        for (oid, _o) in m.objects.iter_enumerated() {
            obj_base.push(mem_off);
            mem_off += reps[&oid].len() as u32;
        }
        NodeLayout {
            var_base,
            ret_base,
            mem_base,
            obj_base,
            n_nodes: (mem_base + mem_off) as usize,
        }
    }

    #[inline]
    pub(crate) fn var_node(&self, f: FuncId, v: VarId) -> u32 {
        self.var_base[f.index()] + v.index() as u32
    }

    #[inline]
    pub(crate) fn ret_node(&self, f: FuncId) -> u32 {
        self.ret_base + f.index() as u32
    }

    /// The memory node of a Loc (whose field is always one of its
    /// object's cell indices).
    #[inline]
    pub(crate) fn mem_node(&self, l: Loc) -> u32 {
        self.mem_base + self.obj_base[l.obj.index()] + l.field
    }
}

pub(crate) struct Solver<'m> {
    pub(crate) m: &'m Module,
    pub(crate) layout: NodeLayout,
    pub(crate) parent: Vec<u32>,
    /// Interned targets: id -> payload.
    pub(crate) targets: Vec<Target>,
    target_ids: FxHashMap<Target, u32>,
    /// Points-to sets over interned target ids.
    pub(crate) pts: Vec<PtsSet>,
    /// Pending difference per node (unique ids, each also in `pts`).
    pub(crate) delta: Vec<Vec<u32>>,
    /// Copy successors as sorted id vectors.
    pub(crate) copy_succs: Vec<Vec<u32>>,
    /// Copy edges accumulated as a flat list during a lazy seeding pass
    /// (`lazy_seed`), bulk-distributed into exact-capacity `copy_succs`
    /// lists by [`Solver::finalize_lazy_edges`] — one growth-free arena
    /// push per edge instead of one per-node `Vec` growth ladder.
    pub(crate) lazy_edges: Vec<(u32, u32)>,
    /// Offline `(to, from)` copy edges handed over by the prefilter.
    /// [`Solver::import_offline_edges`] drains this; when it has run,
    /// the seeding pass skips re-deriving the same copy/phi/return/
    /// direct-call edges from the IR.
    offline_copy_edges: Vec<(u32, u32)>,
    /// Set once [`Solver::import_offline_edges`] has seeded the offline
    /// copy edges (only meaningful while `lazy_seed` is on).
    offline_imported: bool,
    /// On new Loc in pts(n): add copy edge Mem(loc) -> dst.
    load_cons: ConsArena<u32>,
    /// On new Loc in pts(n): add copy edge src -> Mem(loc).
    store_cons: ConsArena<StoreSrc>,
    /// On new Loc in pts(n): add shifted target to dst.
    gep_cons: ConsArena<(GepKind, u32)>,
    /// On new Func in pts(n): wire the call at this site.
    call_cons: ConsArena<Site>,
    /// Flat arena of call-site argument operands; sites store ranges.
    call_args: Vec<Operand>,
    /// (args range, dst) per call site, for (indirect) wiring.
    site_info: FxHashMap<Site, (u32, u32, Option<VarId>)>,
    wired: FxHashSet<(Site, FuncId)>,
    pub(crate) worklist: VecDeque<u32>,
    pub(crate) in_wl: Vec<bool>,
    cg: CallGraph,
    reps: FxHashMap<ObjId, Vec<u32>>,
    /// Reusable snapshot buffer (cuts transient allocations on the
    /// constraint-replay paths).
    scratch: Vec<u32>,
    /// Reusable union-difference buffer.
    fresh_buf: Vec<u32>,
    /// Reusable gep-shift buffer.
    loc_buf: Vec<Loc>,
    pub(crate) pops: usize,
    pub(crate) merges: usize,
    cur_words: usize,
    peak_words: usize,
    /// Prefilter counters (0 when no prefilter ran).
    unify_classes: usize,
    unify_collapsed: usize,
    prefilter_us: usize,
    /// Wave counters (0 for worklist solves); written by `solve_wave`.
    pub(crate) wave_batches: usize,
    pub(crate) wave_propagated: usize,
    pub(crate) wave_max_width: usize,
    /// When set (the wave strategy's seeding phase), new copy edges do
    /// not eagerly flow `pts(from)` into `pts(to)`; the source is left
    /// enqueued with its full set pending in `delta`, and the first wave
    /// performs the whole transitive propagation in level-parallel
    /// batches. Must be cleared before constraint replay begins: edges
    /// materialized mid-solve rely on the eager flush.
    pub(crate) lazy_seed: bool,
    /// First allocation block per object (`u32::MAX` = never allocated),
    /// recorded while seeding so finalization skips a full IR rescan.
    alloc_block: Vec<u32>,
}

#[derive(Clone, Copy, Debug)]
enum StoreSrc {
    Node(u32),
    Const(Target),
}

/// List terminator sentinel for [`ConsArena`].
const NIL: u32 = u32::MAX;

/// Per-node constraint lists stored as singly linked chains in one flat
/// arena. Compared to a `Vec<Vec<T>>` over every node this needs three
/// allocations total (instead of one per non-empty node), appends and
/// SCC-merge concatenations are O(1), and teardown frees three blocks.
/// Lists preserve append order; `concat(a, b)` appends b's chain to a's.
struct ConsArena<T> {
    head: Vec<u32>,
    tail: Vec<u32>,
    /// `(payload, next-index)`; `NIL` terminates a chain.
    items: Vec<(T, u32)>,
}

impl<T: Copy> ConsArena<T> {
    fn new(n: usize) -> Self {
        ConsArena {
            head: vec![NIL; n],
            tail: vec![NIL; n],
            items: Vec::new(),
        }
    }

    #[inline]
    fn push(&mut self, n: u32, item: T) {
        let id = self.items.len() as u32;
        self.items.push((item, NIL));
        let n = n as usize;
        if self.head[n] == NIL {
            self.head[n] = id;
        } else {
            self.items[self.tail[n] as usize].1 = id;
        }
        self.tail[n] = id;
    }

    #[inline]
    fn first(&self, n: u32) -> u32 {
        self.head[n as usize]
    }

    #[inline]
    fn get(&self, cursor: u32) -> (T, u32) {
        self.items[cursor as usize]
    }

    /// Moves b's list onto the end of a's; b becomes empty.
    fn concat(&mut self, a: u32, b: u32) {
        let (a, b) = (a as usize, b as usize);
        if self.head[b] == NIL {
            return;
        }
        if self.head[a] == NIL {
            self.head[a] = self.head[b];
        } else {
            self.items[self.tail[a] as usize].1 = self.head[b];
        }
        self.tail[a] = self.tail[b];
        self.head[b] = NIL;
        self.tail[b] = NIL;
    }
}

/// Distinct mutable borrows of two slots of one slice.
fn two_mut<T>(v: &mut [T], i: usize, j: usize) -> (&mut T, &mut T) {
    debug_assert_ne!(i, j);
    if i < j {
        let (l, r) = v.split_at_mut(j);
        (&mut l[i], &mut r[0])
    } else {
        let (l, r) = v.split_at_mut(i);
        (&mut r[0], &mut l[j])
    }
}

impl<'m> Solver<'m> {
    pub(crate) fn new(m: &'m Module) -> Self {
        let reps = object_reps(m);
        let layout = NodeLayout::new(m, &reps);
        let n_nodes = layout.n_nodes;
        Solver {
            m,
            layout,
            parent: (0..n_nodes as u32).collect(),
            targets: Vec::with_capacity(m.objects.len() + m.funcs.len()),
            target_ids: FxHashMap::with_capacity_and_hasher(
                m.objects.len() + m.funcs.len(),
                Default::default(),
            ),
            pts: vec![PtsSet::new(); n_nodes],
            delta: vec![Vec::new(); n_nodes],
            copy_succs: vec![Vec::new(); n_nodes],
            lazy_edges: Vec::new(),
            offline_copy_edges: Vec::new(),
            offline_imported: false,
            load_cons: ConsArena::new(n_nodes),
            store_cons: ConsArena::new(n_nodes),
            gep_cons: ConsArena::new(n_nodes),
            call_cons: ConsArena::new(n_nodes),
            call_args: Vec::new(),
            site_info: FxHashMap::default(),
            wired: FxHashSet::default(),
            worklist: VecDeque::new(),
            in_wl: vec![false; n_nodes],
            cg: CallGraph::default(),
            reps,
            scratch: Vec::new(),
            fresh_buf: Vec::new(),
            loc_buf: Vec::new(),
            pops: 0,
            merges: 0,
            cur_words: 0,
            peak_words: 0,
            unify_classes: 0,
            unify_collapsed: 0,
            prefilter_us: 0,
            wave_batches: 0,
            wave_propagated: 0,
            wave_max_width: 0,
            lazy_seed: false,
            alloc_block: vec![u32::MAX; m.objects.len()],
        }
    }

    /// Runs the unification prefilter ([`crate::unify`]) and pre-seeds
    /// the union-find with its oversharing-safe equivalence classes, so
    /// every class is solved on one representative node. Must run before
    /// [`Solver::seed`].
    pub(crate) fn apply_prefilter(&mut self) {
        let t0 = std::time::Instant::now();
        let pf = crate::unify::prefilter(self.m, &self.layout);
        debug_assert_eq!(pf.parent.len() as u32, self.layout.mem_base);
        for (n, &rep) in pf.parent.iter().enumerate() {
            self.parent[n] = rep;
        }
        self.unify_classes = pf.classes;
        self.unify_collapsed = pf.collapsed;
        self.offline_copy_edges = pf.edges;
        self.prefilter_us = t0.elapsed().as_micros() as usize;
    }

    /// Seeds the copy graph from the prefilter's offline edge list (in
    /// bulk, before any points-to targets exist, so no enqueues are
    /// needed) and marks the IR's copy-shaped flows as already wired.
    /// Only valid under `lazy_seed` after [`Solver::apply_prefilter`];
    /// the subsequent [`Solver::seed`] walk then skips the
    /// copy/phi/return/direct-call edges the prefilter already saw,
    /// turning two IR-wide edge derivations into one.
    pub(crate) fn import_offline_edges(&mut self) {
        debug_assert!(self.lazy_seed, "bulk import is a lazy-seeding step");
        let edges = std::mem::take(&mut self.offline_copy_edges);
        for &(to, from) in &edges {
            self.add_copy_edge(from, to);
        }
        self.offline_imported = true;
    }

    #[inline]
    fn var_node(&self, f: FuncId, v: VarId) -> u32 {
        self.layout.var_node(f, v)
    }

    #[inline]
    fn ret_node(&self, f: FuncId) -> u32 {
        self.layout.ret_node(f)
    }

    /// The memory node of a Loc (whose field is always one of its
    /// object's cell indices).
    #[inline]
    fn mem_node(&self, l: Loc) -> u32 {
        self.layout.mem_node(l)
    }

    fn tid(&mut self, t: Target) -> u32 {
        if let Some(&id) = self.target_ids.get(&t) {
            return id;
        }
        let id = self.targets.len() as u32;
        self.targets.push(t);
        self.target_ids.insert(t, id);
        id
    }

    pub(crate) fn find(&mut self, mut n: u32) -> u32 {
        while self.parent[n as usize] != n {
            let gp = self.parent[self.parent[n as usize] as usize];
            self.parent[n as usize] = gp;
            n = gp;
        }
        n
    }

    fn rep_loc(&self, obj: ObjId, cell: u32) -> Loc {
        let reps = &self.reps[&obj];
        if reps.is_empty() {
            return Loc { obj, field: 0 };
        }
        let c = (cell as usize) % reps.len();
        Loc {
            obj,
            field: reps[c],
        }
    }

    pub(crate) fn enqueue(&mut self, n: u32) {
        let n = self.find(n);
        if !self.in_wl[n as usize] && !self.delta[n as usize].is_empty() {
            self.in_wl[n as usize] = true;
            self.worklist.push_back(n);
        }
    }

    /// Read-only representative lookup (no path compression), for code
    /// that walks shared state — the wave closure scan and the parallel
    /// extraction jobs.
    pub(crate) fn find_ro(&self, mut n: u32) -> u32 {
        while self.parent[n as usize] != n {
            n = self.parent[n as usize];
        }
        n
    }

    pub(crate) fn track_words(&mut self, before: usize, after: usize) {
        self.cur_words = self.cur_words + after - before;
        self.peak_words = self.peak_words.max(self.cur_words);
    }

    /// Inserts interned ids into `pts(n)`, queueing the genuinely new.
    fn add_target_ids(&mut self, n: u32, ids: &[u32]) {
        let n = self.find(n) as usize;
        let before = self.pts[n].words();
        let mut added = false;
        for &id in ids {
            if self.pts[n].insert(id) {
                self.delta[n].push(id);
                added = true;
            }
        }
        let after = self.pts[n].words();
        self.track_words(before, after);
        if added {
            self.enqueue(n as u32);
        }
    }

    fn add_targets(&mut self, n: u32, ts: impl IntoIterator<Item = Target>) {
        let n = self.find(n) as usize;
        let before = self.pts[n].words();
        let mut added = false;
        for t in ts {
            let id = self.tid(t);
            if self.pts[n].insert(id) {
                self.delta[n].push(id);
                added = true;
            }
        }
        let after = self.pts[n].words();
        self.track_words(before, after);
        if added {
            self.enqueue(n as u32);
        }
    }

    /// Unions `pts(from)` into `pts(to)` by bitwise union-with-difference,
    /// queueing `to` when it gained targets. `from != to` (resolved).
    fn flow_full_pts(&mut self, from: u32, to: u32) {
        let mut fresh = std::mem::take(&mut self.fresh_buf);
        fresh.clear();
        let (src, dst) = two_mut(&mut self.pts, from as usize, to as usize);
        let before = dst.words();
        dst.union_with_diff(src, &mut fresh);
        let after = dst.words();
        self.track_words(before, after);
        if !fresh.is_empty() {
            self.delta[to as usize].extend(fresh.iter().copied());
            self.enqueue(to);
        }
        self.fresh_buf = fresh;
    }

    fn add_copy_edge(&mut self, from: u32, to: u32) {
        let from = self.find(from);
        let to = self.find(to);
        if from == to {
            return;
        }
        if self.lazy_seed {
            // Seeding under the wave strategy: during seeding `delta`
            // always holds the node's full points-to set, so leaving the
            // source enqueued is enough — the first wave flows it. Edges
            // are appended unsorted (duplicates included) and normalized
            // once in [`Solver::finalize_lazy_edges`], replacing the
            // per-insert binary search + memmove with one bulk sort.
            // `from` is already resolved, so the enqueue check is inlined
            // without a second union-find walk.
            self.lazy_edges.push((from, to));
            if !self.in_wl[from as usize] && !self.delta[from as usize].is_empty() {
                self.in_wl[from as usize] = true;
                self.worklist.push_back(from);
            }
            return;
        }
        let succs = &mut self.copy_succs[from as usize];
        if let Err(pos) = succs.binary_search(&to) {
            succs.insert(pos, to);
            self.flow_full_pts(from, to);
        }
    }

    /// Distributes the flat lazy edge list into per-node successor
    /// lists (allocated at exact capacity) and restores the
    /// sorted/deduplicated invariant. Must run before the solve phase
    /// (mid-solve `add_copy_edge` relies on binary search).
    pub(crate) fn finalize_lazy_edges(&mut self) {
        let edges = std::mem::take(&mut self.lazy_edges);
        let mut deg = vec![0u32; self.layout.n_nodes];
        for &(from, _) in &edges {
            deg[from as usize] += 1;
        }
        for &(from, to) in &edges {
            let succs = &mut self.copy_succs[from as usize];
            if succs.capacity() == 0 {
                succs.reserve_exact(deg[from as usize] as usize);
            }
            succs.push(to);
        }
        for (node, &d) in deg.iter().enumerate() {
            if d > 1 {
                let succs = &mut self.copy_succs[node];
                succs.sort_unstable();
                succs.dedup();
            }
        }
    }

    /// Runs `f` over a snapshot of `pts(n)` through a reusable buffer —
    /// the borrow-friendly replacement for the collect-into-fresh-`Vec`
    /// pattern the seeding and replay paths previously repeated.
    fn with_pts_snapshot<R>(&mut self, n: u32, f: impl FnOnce(&mut Self, &[u32]) -> R) -> R {
        let mut buf = std::mem::take(&mut self.scratch);
        buf.clear();
        buf.extend(self.pts[n as usize].iter());
        let r = f(self, &buf);
        self.scratch = buf;
        r
    }

    fn operand_node(&mut self, f: FuncId, op: Operand) -> Option<u32> {
        match op {
            Operand::Var(v) => Some(self.var_node(f, v)),
            _ => None,
        }
    }

    /// Targets contributed directly by a constant operand.
    fn operand_const_targets(&self, op: Operand) -> Vec<Target> {
        match op {
            Operand::Global(o) => vec![Target::Loc(Loc { obj: o, field: 0 })],
            Operand::Func(g) => vec![Target::Func(g)],
            _ => Vec::new(),
        }
    }

    /// Flows `op` into node `dst` (edge or direct targets).
    fn flow_into(&mut self, f: FuncId, op: Operand, dst: u32) {
        match op {
            Operand::Var(v) => {
                // Offline-visible edge: already imported in bulk when the
                // wave strategy pre-seeded from the prefilter's edge list.
                if self.offline_imported && self.lazy_seed {
                    return;
                }
                let n = self.var_node(f, v);
                self.add_copy_edge(n, dst);
            }
            Operand::Global(o) => {
                self.add_targets(dst, [Target::Loc(Loc { obj: o, field: 0 })]);
            }
            Operand::Func(g) => self.add_targets(dst, [Target::Func(g)]),
            Operand::Const(_) | Operand::Undef => {}
        }
    }

    // ---- constraint generation -----------------------------------------

    pub(crate) fn seed(&mut self) {
        for (fid, func) in self.m.funcs.iter_enumerated() {
            for (bb, block) in func.blocks.iter_enumerated() {
                for (idx, inst) in block.insts.iter().enumerate() {
                    self.seed_inst(fid, Site::new(fid, bb, idx), inst);
                }
                if let Terminator::Ret(Some(op)) = &block.term {
                    let r = self.ret_node(fid);
                    self.flow_into(fid, *op, r);
                }
            }
        }
    }

    /// Replays one existing Loc target against a gep constraint. The
    /// shifted locations go through a reusable buffer — geps are hot on
    /// both the seeding and replay paths, and `shift` used to allocate a
    /// fresh `Vec` per application.
    fn apply_gep(&mut self, l: Loc, kind: &GepKind, dst: u32) {
        let mut buf = std::mem::take(&mut self.loc_buf);
        buf.clear();
        self.shift_into(l, kind, &mut buf);
        self.add_targets(dst, buf.iter().copied().map(Target::Loc));
        self.loc_buf = buf;
    }

    fn seed_inst(&mut self, f: FuncId, site: Site, inst: &Inst) {
        match inst {
            Inst::Copy { dst, src } => {
                let d = self.var_node(f, *dst);
                self.flow_into(f, *src, d);
            }
            Inst::Un { .. } | Inst::Bin { .. } => {
                // Arithmetic results are not pointers in TinyC's type
                // discipline (pointer arithmetic is a gep).
            }
            Inst::Alloc { dst, obj, .. } => {
                if self.alloc_block[obj.index()] == u32::MAX {
                    self.alloc_block[obj.index()] = site.block.index() as u32;
                }
                let d = self.var_node(f, *dst);
                self.add_targets(
                    d,
                    [Target::Loc(Loc {
                        obj: *obj,
                        field: 0,
                    })],
                );
            }
            Inst::Gep { dst, base, offset } => {
                let d = self.var_node(f, *dst);
                let kind = match offset {
                    GepOffset::Field(k) => GepKind::Field(*k),
                    GepOffset::Index { .. } => GepKind::Dynamic,
                };
                match self.operand_node(f, *base) {
                    Some(b) => {
                        let b = self.find(b);
                        self.gep_cons.push(b, (kind, d));
                        // Replay existing targets.
                        self.with_pts_snapshot(b, |s, ids| {
                            for &id in ids {
                                if let Target::Loc(l) = s.targets[id as usize] {
                                    s.apply_gep(l, &kind, d);
                                }
                            }
                        });
                    }
                    None => {
                        for t in self.operand_const_targets(*base) {
                            if let Target::Loc(l) = t {
                                self.apply_gep(l, &kind, d);
                            }
                        }
                    }
                }
            }
            Inst::Load { dst, addr } => {
                let d = self.var_node(f, *dst);
                match self.operand_node(f, *addr) {
                    Some(a) => {
                        let a = self.find(a);
                        self.load_cons.push(a, d);
                        self.with_pts_snapshot(a, |s, ids| {
                            for &id in ids {
                                if let Target::Loc(l) = s.targets[id as usize] {
                                    let mn = s.mem_node(l);
                                    s.add_copy_edge(mn, d);
                                }
                            }
                        });
                    }
                    None => {
                        for t in self.operand_const_targets(*addr) {
                            if let Target::Loc(l) = t {
                                let mn = self.mem_node(l);
                                self.add_copy_edge(mn, d);
                            }
                        }
                    }
                }
            }
            Inst::Store { addr, val } => {
                let src = match self.operand_node(f, *val) {
                    Some(n) => StoreSrc::Node(n),
                    None => match self.operand_const_targets(*val).first() {
                        Some(t) => StoreSrc::Const(*t),
                        None => return, // storing a non-pointer constant
                    },
                };
                match self.operand_node(f, *addr) {
                    Some(a) => {
                        let a = self.find(a);
                        self.store_cons.push(a, src);
                        self.with_pts_snapshot(a, |s, ids| {
                            for &id in ids {
                                if let Target::Loc(l) = s.targets[id as usize] {
                                    s.apply_store(src, l);
                                }
                            }
                        });
                    }
                    None => {
                        for t in self.operand_const_targets(*addr) {
                            if let Target::Loc(l) = t {
                                self.apply_store(src, l);
                            }
                        }
                    }
                }
            }
            Inst::Call { dst, callee, args } => {
                let start = self.call_args.len() as u32;
                self.call_args.extend_from_slice(args);
                match callee {
                    // A direct site never goes through `wire_call` (only
                    // indirect sites register `call_cons`), so it needs
                    // neither a `site_info` entry nor `wired` dedup.
                    Callee::Direct(g) => {
                        self.wire_call_unchecked(site, *g, start, args.len() as u32, *dst)
                    }
                    Callee::Indirect(op) => {
                        self.site_info
                            .insert(site, (start, args.len() as u32, *dst));
                        match self.operand_node(f, *op) {
                            Some(t) => {
                                let t = self.find(t);
                                self.call_cons.push(t, site);
                                self.with_pts_snapshot(t, |s, ids| {
                                    for &id in ids {
                                        if let Target::Func(g) = s.targets[id as usize] {
                                            s.wire_call(site, g);
                                        }
                                    }
                                });
                            }
                            None => {
                                if let Operand::Func(g) = op {
                                    self.wire_call(site, *g);
                                }
                            }
                        }
                    }
                    Callee::External(_) => {
                        // Modelled externals neither create nor propagate
                        // pointers.
                    }
                }
            }
            Inst::Phi { dst, incomings } => {
                let d = self.var_node(f, *dst);
                for (_, op) in incomings {
                    self.flow_into(f, *op, d);
                }
            }
        }
    }

    fn apply_store(&mut self, src: StoreSrc, loc: Loc) {
        let mn = self.mem_node(loc);
        match src {
            StoreSrc::Node(n) => self.add_copy_edge(n, mn),
            StoreSrc::Const(t) => self.add_targets(mn, [t]),
        }
    }

    fn shift_into(&self, l: Loc, kind: &GepKind, out: &mut Vec<Loc>) {
        let obj = &self.m.objects[l.obj];
        match kind {
            GepKind::Field(k) => {
                if obj.is_array {
                    out.push(Loc {
                        obj: l.obj,
                        field: 0,
                    });
                } else {
                    // In-layout and out-of-layout constant offsets both map
                    // through the repeated element layout.
                    let cell = l.field + k;
                    out.push(self.rep_loc(l.obj, cell));
                }
            }
            GepKind::Dynamic => {
                if obj.is_array {
                    out.push(Loc {
                        obj: l.obj,
                        field: 0,
                    });
                } else {
                    // Pointer arithmetic over a non-array object: be
                    // conservative, hit every field class (ascending,
                    // deduplicated — `out` is cleared by the caller).
                    out.extend(
                        self.reps[&l.obj]
                            .iter()
                            .map(|&field| Loc { obj: l.obj, field }),
                    );
                    out.sort_unstable();
                    out.dedup();
                }
            }
        }
    }

    fn wire_call(&mut self, site: Site, g: FuncId) {
        let (start, len, dst) = self.site_info[&site];
        self.wire_call_at(site, g, start, len, dst);
    }

    /// [`Solver::wire_call`] with the site record already in hand — the
    /// direct-call seeding path just recorded it and skips the re-lookup.
    fn wire_call_at(&mut self, site: Site, g: FuncId, start: u32, len: u32, dst: Option<VarId>) {
        if !self.wired.insert((site, g)) {
            return;
        }
        self.wire_call_unchecked(site, g, start, len, dst);
    }

    /// [`Solver::wire_call_at`] minus the `(site, callee)` dedup — for
    /// direct call sites, which are wired exactly once during seeding.
    fn wire_call_unchecked(
        &mut self,
        site: Site,
        g: FuncId,
        start: u32,
        len: u32,
        dst: Option<VarId>,
    ) {
        self.cg.add_edge(site, g);
        let m = self.m;
        for (i, &p) in m.funcs[g].params.iter().enumerate().take(len as usize) {
            let a = self.call_args[start as usize + i];
            let pn = self.var_node(g, p);
            self.flow_into(site.func, a, pn);
        }
        if let Some(d) = dst {
            if self.offline_imported && self.lazy_seed {
                return;
            }
            let dn = self.var_node(site.func, d);
            let rn = self.ret_node(g);
            self.add_copy_edge(rn, dn);
        }
    }

    // ---- solving ---------------------------------------------------------

    pub(crate) fn solve(&mut self, budget: &Budget) -> Result<(), Exhausted> {
        while let Some(n) = self.worklist.pop_front() {
            budget.try_charge(1)?;
            let n = self.find(n);
            self.in_wl[n as usize] = false;
            let delta = std::mem::take(&mut self.delta[n as usize]);
            if delta.is_empty() {
                continue;
            }
            self.pops += 1;
            if self.pops.is_multiple_of(20_000) {
                self.collapse_cycles();
            }
            self.propagate_to_succs(n, &delta);
            self.replay_constraints(n, &delta);
        }
        Ok(())
    }

    /// Pushes a delta to `n`'s copy successors. The list is taken out
    /// rather than cloned; any edge out of `n` added while it is out
    /// flows its points-to set at insertion, so merging the two sorted
    /// lists afterwards loses nothing.
    pub(crate) fn propagate_to_succs(&mut self, n: u32, delta: &[u32]) {
        let succs = std::mem::take(&mut self.copy_succs[n as usize]);
        for &s in &succs {
            self.add_target_ids(s, delta);
        }
        let added = std::mem::replace(&mut self.copy_succs[n as usize], succs);
        for a in added {
            let v = &mut self.copy_succs[n as usize];
            if let Err(pos) = v.binary_search(&a) {
                v.insert(pos, a);
            }
        }
    }

    /// Reacts `n`'s complex constraints to new targets. The arena chains
    /// only grow during seeding and SCC merges, never inside this scan,
    /// so cursor walks see a frozen list without cloning. Shared between
    /// the worklist pop body and the wave solver's replay phase.
    pub(crate) fn replay_constraints(&mut self, n: u32, delta: &[u32]) {
        for &t in delta {
            match self.targets[t as usize] {
                Target::Loc(l) => {
                    let mut cur = self.load_cons.first(n);
                    if cur != NIL {
                        let mn = self.mem_node(l);
                        while cur != NIL {
                            let (d, next) = self.load_cons.get(cur);
                            self.add_copy_edge(mn, d);
                            cur = next;
                        }
                    }
                    let mut cur = self.store_cons.first(n);
                    while cur != NIL {
                        let (src, next) = self.store_cons.get(cur);
                        self.apply_store(src, l);
                        cur = next;
                    }
                    let mut cur = self.gep_cons.first(n);
                    while cur != NIL {
                        let ((kind, d), next) = self.gep_cons.get(cur);
                        self.apply_gep(l, &kind, d);
                        cur = next;
                    }
                }
                Target::Func(g) => {
                    let mut cur = self.call_cons.first(n);
                    while cur != NIL {
                        let (site, next) = self.call_cons.get(cur);
                        self.wire_call(site, g);
                        cur = next;
                    }
                }
            }
        }
    }

    /// Tarjan over a CSR snapshot of the (representative-resolved)
    /// copy-edge graph; merges every nontrivial SCC into one node.
    pub(crate) fn collapse_cycles(&mut self) {
        let n = self.layout.n_nodes;
        // Resolve every node's representative once, then freeze the copy
        // graph into offsets + edges arrays (struct-of-arrays CSR).
        let node_rep: Vec<u32> = (0..n as u32).map(|i| self.find(i)).collect();
        let mut offsets = vec![0u32; n + 1];
        for v in 0..n {
            if node_rep[v] == v as u32 {
                offsets[v + 1] = self.copy_succs[v].len() as u32;
            }
        }
        for v in 0..n {
            offsets[v + 1] += offsets[v];
        }
        let mut edges = vec![0u32; offsets[n] as usize];
        for v in 0..n {
            if node_rep[v] != v as u32 {
                continue;
            }
            let base = offsets[v] as usize;
            for (i, &s) in self.copy_succs[v].iter().enumerate() {
                edges[base + i] = node_rep[s as usize];
            }
        }

        let mut index = vec![u32::MAX; n];
        let mut low = vec![0u32; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<u32> = Vec::new();
        let mut next = 0u32;
        // (node, next edge cursor into `edges`)
        let mut call_stack: Vec<(u32, u32)> = Vec::new();
        let mut merges: Vec<Vec<u32>> = Vec::new();

        for start in 0..n as u32 {
            if node_rep[start as usize] != start || index[start as usize] != u32::MAX {
                continue;
            }
            call_stack.push((start, offsets[start as usize]));
            index[start as usize] = next;
            low[start as usize] = next;
            next += 1;
            stack.push(start);
            on_stack[start as usize] = true;

            while let Some((v, cursor)) = call_stack.last_mut() {
                let v = *v;
                if *cursor < offsets[v as usize + 1] {
                    let w = edges[*cursor as usize];
                    *cursor += 1;
                    if index[w as usize] == u32::MAX {
                        index[w as usize] = next;
                        low[w as usize] = next;
                        next += 1;
                        stack.push(w);
                        on_stack[w as usize] = true;
                        call_stack.push((w, offsets[w as usize]));
                    } else if on_stack[w as usize] {
                        low[v as usize] = low[v as usize].min(index[w as usize]);
                    }
                } else {
                    if low[v as usize] == index[v as usize] {
                        let mut comp = Vec::new();
                        while let Some(w) = stack.pop() {
                            on_stack[w as usize] = false;
                            comp.push(w);
                            if w == v {
                                break;
                            }
                        }
                        if comp.len() > 1 {
                            merges.push(comp);
                        }
                    }
                    call_stack.pop();
                    if let Some((u, _)) = call_stack.last() {
                        let u = *u;
                        low[u as usize] = low[u as usize].min(low[v as usize]);
                    }
                }
            }
        }

        for comp in merges {
            let root = comp[0];
            for &other in &comp[1..] {
                self.merge(root, other);
            }
        }
    }

    /// Merges `b` into `a`. Only the genuinely fresh targets (b's pts
    /// minus a's) enter `delta[a]`; b's inherited constraints and copy
    /// successors are replayed against a's full set directly — instead of
    /// the previous full-points-to replay on every merge, which was
    /// quadratic across SCC chains.
    fn merge(&mut self, a: u32, b: u32) {
        let a = self.find(a);
        let b = self.find(b);
        if a == b {
            return;
        }
        self.merges += 1;
        self.parent[b as usize] = a;
        let b_pts = std::mem::take(&mut self.pts[b as usize]);
        // Pending entries of b are a subset of b_pts: the union below and
        // the constraint replay cover them.
        let _b_delta = std::mem::take(&mut self.delta[b as usize]);
        let b_succs = std::mem::take(&mut self.copy_succs[b as usize]);
        self.track_words(b_pts.words(), 0);

        // 1. Union b's targets into a; only the difference becomes delta
        //    (a's own constraints and successors see it on the next pop).
        let mut fresh = std::mem::take(&mut self.fresh_buf);
        fresh.clear();
        let before = self.pts[a as usize].words();
        self.pts[a as usize].union_with_diff(&b_pts, &mut fresh);
        let after = self.pts[a as usize].words();
        self.track_words(before, after);
        self.delta[a as usize].extend(fresh.iter().copied());
        self.fresh_buf = fresh;

        // 2. b's constraints have only seen b's targets: replay them
        //    against the merged set once (idempotent for the overlap),
        //    then splice b's chains onto a's.
        self.with_pts_snapshot(a, |s, ids| {
            for &id in ids {
                match s.targets[id as usize] {
                    Target::Loc(l) => {
                        let mut cur = s.load_cons.first(b);
                        while cur != NIL {
                            let (d, next) = s.load_cons.get(cur);
                            let mn = s.mem_node(l);
                            s.add_copy_edge(mn, d);
                            cur = next;
                        }
                        let mut cur = s.store_cons.first(b);
                        while cur != NIL {
                            let (src, next) = s.store_cons.get(cur);
                            s.apply_store(src, l);
                            cur = next;
                        }
                        let mut cur = s.gep_cons.first(b);
                        while cur != NIL {
                            let ((kind, d), next) = s.gep_cons.get(cur);
                            s.apply_gep(l, &kind, d);
                            cur = next;
                        }
                    }
                    Target::Func(g) => {
                        let mut cur = s.call_cons.first(b);
                        while cur != NIL {
                            let (site, next) = s.call_cons.get(cur);
                            s.wire_call(site, g);
                            cur = next;
                        }
                    }
                }
            }
        });
        self.load_cons.concat(a, b);
        self.store_cons.concat(a, b);
        self.gep_cons.concat(a, b);
        self.call_cons.concat(a, b);

        // 3. b's copy successors are fresh edges out of a: flow the full
        //    merged set to each (deduplicated against a's existing edges).
        for s in b_succs {
            self.add_copy_edge(a, s);
        }
        self.enqueue(a);
    }

    // ---- finalization ----------------------------------------------------

    pub(crate) fn finish(self) -> PointerAnalysis {
        self.finish_with(None)
    }

    /// Like [`Solver::finish`], but with an optional parallel runner:
    /// result extraction (per-node rank sorting) and per-function loop
    /// analysis are chunked into read-only jobs and dispatched on it.
    /// Results are assembled in chunk order, so the output is identical
    /// with or without a runner, at any thread count.
    pub(crate) fn finish_with(mut self, runner: Option<WaveRunner<'_>>) -> PointerAnalysis {
        // Extract per-node results (resolving union-find). Target order in
        // the output is the payload (`Target`) order, matching the
        // reference solver's `BTreeSet` iteration: interned ids are mapped
        // to payload-order ranks once, so per-node ordering is a plain
        // `u32` sort. Nodes with empty sets are not materialized (the
        // accessors default to empty).
        let mut order: Vec<u32> = (0..self.targets.len() as u32).collect();
        order.sort_unstable_by_key(|&i| self.targets[i as usize]);
        let mut rank_of = vec![0u32; self.targets.len()];
        for (rank, &id) in order.iter().enumerate() {
            rank_of[id as usize] = rank as u32;
        }

        // Fully compress the union-find so the read-only lookups inside
        // the (possibly parallel) extraction jobs are O(1).
        for n in 0..self.layout.n_nodes as u32 {
            let r = self.find(n);
            self.parent[n as usize] = r;
        }

        // Row keys in output order, with their solver node ids.
        enum RowKey {
            Var(FuncId, VarId),
            Mem(Loc),
        }
        let mut keys: Vec<RowKey> = Vec::new();
        let mut ids: Vec<u32> = Vec::new();
        for (f, func) in self.m.funcs.iter_enumerated() {
            for (v, _) in func.vars.iter_enumerated() {
                keys.push(RowKey::Var(f, v));
                ids.push(self.var_node(f, v));
            }
        }
        let n_var_rows = ids.len();
        for (oid, _o) in self.m.objects.iter_enumerated() {
            let cells = self.reps[&oid].len() as u32;
            for field in 0..cells {
                let l = Loc { obj: oid, field };
                keys.push(RowKey::Mem(l));
                ids.push(self.mem_node(l));
            }
        }

        // Chunked extraction: each job encodes its rows as a flat
        // `[len, sorted ranks...]*` word stream. Chunk boundaries depend
        // only on the row count, never on the thread count.
        const EXTRACT_CHUNK: usize = 1024;
        let count = ids.len().div_ceil(EXTRACT_CHUNK);
        let encode = |j: usize| -> Vec<u32> {
            let lo = j * EXTRACT_CHUNK;
            let hi = (lo + EXTRACT_CHUNK).min(ids.len());
            let mut out: Vec<u32> = Vec::new();
            let mut ranks: Vec<u32> = Vec::new();
            for &id in &ids[lo..hi] {
                let rep = self.find_ro(id);
                ranks.clear();
                ranks.extend(self.pts[rep as usize].iter().map(|id| rank_of[id as usize]));
                ranks.sort_unstable();
                out.push(ranks.len() as u32);
                out.extend_from_slice(&ranks);
            }
            out
        };
        let encoded: Vec<Vec<u32>> = match runner {
            Some(run) if count > 1 => run(count, &encode),
            _ => (0..count).map(encode).collect(),
        };

        // Count non-empty rows per section so each map allocates exactly
        // once, then decode straight into the maps — keys are regenerated
        // in the same order the ids were emitted.
        let mut var_nonempty = 0usize;
        let mut mem_nonempty = 0usize;
        let mut total_targets = 0usize;
        {
            let mut row = 0usize;
            for chunk in &encoded {
                let mut pos = 0usize;
                while pos < chunk.len() {
                    let len = chunk[pos] as usize;
                    if len > 0 {
                        if row < n_var_rows {
                            var_nonempty += 1;
                        } else {
                            mem_nonempty += 1;
                        }
                        total_targets += len;
                    }
                    pos += 1 + len;
                    row += 1;
                }
            }
        }
        let mut var_pts: FxHashMap<(FuncId, VarId), (u32, u32)> =
            FxHashMap::with_capacity_and_hasher(var_nonempty, Default::default());
        let mut mem_pts: FxHashMap<Loc, (u32, u32)> =
            FxHashMap::with_capacity_and_hasher(mem_nonempty, Default::default());
        let mut pool: Vec<Target> = Vec::with_capacity(total_targets);
        let target_by_rank: Vec<Target> =
            order.iter().map(|&id| self.targets[id as usize]).collect();
        let mut key_it = keys.iter();
        for chunk in &encoded {
            let mut pos = 0usize;
            while pos < chunk.len() {
                let key = key_it.next().expect("one key per encoded row");
                let len = chunk[pos] as usize;
                pos += 1;
                if len > 0 {
                    let start = pool.len() as u32;
                    pool.extend(
                        chunk[pos..pos + len]
                            .iter()
                            .map(|&r| target_by_rank[r as usize]),
                    );
                    let range = (start, pool.len() as u32);
                    match *key {
                        RowKey::Var(f, v) => {
                            var_pts.insert((f, v), range);
                        }
                        RowKey::Mem(l) => {
                            mem_pts.insert(l, range);
                        }
                    }
                }
                pos += len;
            }
        }

        let stats = SolverStats {
            nodes: self.layout.n_nodes,
            interned_targets: self.targets.len(),
            pops: self.pops,
            merges: self.merges,
            peak_pts_words: self.peak_words,
            unify_classes: self.unify_classes,
            unify_collapsed: self.unify_collapsed,
            prefilter_us: self.prefilter_us,
            wave_batches: self.wave_batches,
            wave_propagated: self.wave_propagated,
            wave_max_width: self.wave_max_width,
        };
        let alloc_block = std::mem::take(&mut self.alloc_block);
        finish_analysis_with(
            self.m,
            self.cg,
            self.reps,
            Solution {
                var_pts,
                mem_pts,
                pool,
                stats,
            },
            runner,
            Some(alloc_block),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze;
    use usher_frontend_shim::compile;
    use usher_ir::{Callee, FuncBuilder, Module, ObjKind, StructDef, Type};

    /// Tests compile tiny programs through a minimal local shim to avoid a
    /// dev-dependency cycle; see the integration tests at the workspace
    /// root for full-pipeline coverage.
    mod usher_frontend_shim {
        pub use test_build::compile;
        mod test_build {
            use usher_ir::*;

            /// Builds: main { a = alloc x; b = alloc y; p = cond ? a : b;
            /// *p = a; q = *p; } — classic Andersen diamond.
            pub fn compile() -> (Module, FuncId, Vec<VarId>, Vec<ObjId>) {
                let mut m = Module::new();
                let int = m.types.int();
                let fid = m.declare_func("main", None);
                m.main = Some(fid);
                let mut b = FuncBuilder::new(&mut m, fid);
                let (a, xo) = b.alloc("x", ObjKind::Stack(fid), int, false, None);
                let pint = b.module.types.ptr_to(int);
                let (bv, yo) = b.alloc("y", ObjKind::Stack(fid), pint, false, None);
                let t = b.new_block();
                let e = b.new_block();
                let j = b.new_block();
                b.br(Operand::Const(1), t, e);
                b.set_block(t);
                b.jmp(j);
                b.set_block(e);
                b.jmp(j);
                b.set_block(j);
                let p = b.phi(pint, vec![(t, a.into()), (e, bv.into())]);
                b.store(p.into(), a.into());
                let q = b.load(p.into(), pint);
                b.ret(None);
                b.finish();
                (m, fid, vec![a, bv, p, q], vec![xo, yo])
            }
        }
    }

    #[test]
    fn phi_merges_points_to_sets() {
        let (m, fid, vars, objs) = compile();
        let pa = analyze(&m);
        let p = vars[2];
        let pts = pa.pts_var(fid, p);
        assert_eq!(pts.len(), 2);
        assert!(pts.contains(&Loc {
            obj: objs[0],
            field: 0
        }));
        assert!(pts.contains(&Loc {
            obj: objs[1],
            field: 0
        }));
    }

    #[test]
    fn store_then_load_propagates_through_memory() {
        let (m, fid, vars, objs) = compile();
        let pa = analyze(&m);
        // q := *p where *p may contain a (which points to x).
        let q = vars[3];
        let pts = pa.pts_var(fid, q);
        assert!(
            pts.contains(&Loc {
                obj: objs[0],
                field: 0
            }),
            "{pts:?}"
        );
    }

    #[test]
    fn concrete_objects_in_main_outside_loops() {
        let (m, _fid, _vars, objs) = compile();
        let pa = analyze(&m);
        assert!(pa.is_concrete(Loc {
            obj: objs[0],
            field: 0
        }));
        assert!(pa.is_concrete(Loc {
            obj: objs[1],
            field: 0
        }));
    }

    #[test]
    fn unique_target_detects_singletons() {
        let (m, fid, vars, objs) = compile();
        let pa = analyze(&m);
        let a = vars[0];
        assert_eq!(
            pa.unique_target(fid, a.into()),
            Some(Loc {
                obj: objs[0],
                field: 0
            })
        );
        let p = vars[2];
        assert_eq!(pa.unique_target(fid, p.into()), None);
    }

    #[test]
    fn gep_field_shifts_target() {
        let mut m = Module::new();
        let int = m.types.int();
        let s = m.types.add_struct(StructDef {
            name: "P".into(),
            fields: vec![("x".into(), int), ("y".into(), int)],
        });
        let sty = m.types.intern(Type::Struct(s));
        let fid = m.declare_func("main", None);
        m.main = Some(fid);
        let mut b = FuncBuilder::new(&mut m, fid);
        let (p, obj) = b.alloc("s", ObjKind::Stack(fid), sty, false, None);
        let pint = b.module.types.ptr_to(int);
        let g = b.gep_field(p.into(), 1, pint);
        b.store(g.into(), Operand::Const(1));
        b.ret(None);
        b.finish();
        let pa = analyze(&m);
        assert_eq!(pa.pts_var(fid, g), vec![Loc { obj, field: 1 }]);
    }

    #[test]
    fn dynamic_gep_on_array_stays_in_class_zero() {
        let mut m = Module::new();
        let int = m.types.int();
        let arr = m.types.intern(Type::Array(int, 8));
        let fid = m.declare_func("main", None);
        m.main = Some(fid);
        let mut b = FuncBuilder::new(&mut m, fid);
        let (p, obj) = b.alloc("a", ObjKind::Stack(fid), arr, false, None);
        let i = b.copy(int, Operand::Const(3));
        let pint = b.module.types.ptr_to(int);
        let g = b.gep_index(p.into(), i.into(), 1, pint);
        b.store(g.into(), Operand::Const(1));
        b.ret(None);
        b.finish();
        let pa = analyze(&m);
        assert_eq!(pa.pts_var(fid, g), vec![Loc { obj, field: 0 }]);
        // Array classes are never concrete for strong updates.
        assert!(!pa.is_concrete(Loc { obj, field: 0 }));
    }

    #[test]
    fn indirect_call_resolved_on_the_fly() {
        let mut m = Module::new();
        let int = m.types.int();
        let fp = m.types.intern(Type::FuncPtr {
            params: 0,
            has_ret: true,
        });
        let gid = m.declare_func("g", Some(int));
        let fid = m.declare_func("main", None);
        m.main = Some(fid);
        {
            let mut b = FuncBuilder::new(&mut m, gid);
            b.ret(Some(Operand::Const(7)));
            b.finish();
        }
        {
            let mut b = FuncBuilder::new(&mut m, fid);
            let t = b.copy(fp, Operand::Func(gid));
            b.call(Callee::Indirect(t.into()), vec![], Some(int));
            b.ret(None);
            b.finish();
        }
        let pa = analyze(&m);
        let sites: Vec<_> = pa.call_graph.callees.keys().collect();
        assert_eq!(sites.len(), 1);
        assert_eq!(pa.call_graph.callees_of(*sites[0]), &[gid]);
    }

    #[test]
    fn interprocedural_flow_through_params_and_ret() {
        let mut m = Module::new();
        let int = m.types.int();
        let pint = m.types.ptr_to(int);
        let gid = m.declare_func("id", Some(pint));
        let fid = m.declare_func("main", None);
        m.main = Some(fid);
        {
            let mut b = FuncBuilder::new(&mut m, gid);
            let p = b.param("p", pint);
            b.ret(Some(p.into()));
            b.finish();
        }
        let (q, obj);
        {
            let mut b = FuncBuilder::new(&mut m, fid);
            let (a, o) = b.alloc("x", ObjKind::Stack(fid), int, false, None);
            obj = o;
            q = b
                .call(Callee::Direct(gid), vec![a.into()], Some(pint))
                .unwrap();
            b.store(q.into(), Operand::Const(1));
            b.ret(None);
            b.finish();
        }
        let pa = analyze(&m);
        assert_eq!(pa.pts_var(fid, q), vec![Loc { obj, field: 0 }]);
    }

    #[test]
    fn global_operand_points_to_global_object() {
        let mut m = Module::new();
        let int = m.types.int();
        let g = m.add_object("g", ObjKind::Global, int, true, false);
        m.globals.push(g);
        let fid = m.declare_func("main", None);
        m.main = Some(fid);
        let mut b = FuncBuilder::new(&mut m, fid);
        let pint = b.module.types.ptr_to(int);
        let p = b.copy(pint, Operand::Global(g));
        b.store(p.into(), Operand::Const(3));
        b.ret(None);
        b.finish();
        let pa = analyze(&m);
        assert_eq!(pa.pts_var(fid, p), vec![Loc { obj: g, field: 0 }]);
        assert!(pa.is_concrete(Loc { obj: g, field: 0 }));
    }

    #[test]
    fn loop_allocation_is_not_concrete() {
        let mut m = Module::new();
        let int = m.types.int();
        let fid = m.declare_func("main", None);
        m.main = Some(fid);
        let mut b = FuncBuilder::new(&mut m, fid);
        let header = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        b.jmp(header);
        b.set_block(header);
        b.br(Operand::Const(1), body, exit);
        b.set_block(body);
        let (_p, obj) = b.alloc("x", ObjKind::Heap(fid), int, false, None);
        b.jmp(header);
        b.set_block(exit);
        b.ret(None);
        b.finish();
        let pa = analyze(&m);
        assert!(!pa.is_concrete(Loc { obj, field: 0 }));
    }

    #[test]
    fn solver_stats_are_populated() {
        let (m, _fid, _vars, _objs) = compile();
        let pa = analyze(&m);
        assert!(pa.stats.nodes > 0);
        assert!(pa.stats.interned_targets >= 2);
        assert!(pa.stats.pops > 0);
    }
}
