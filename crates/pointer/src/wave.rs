//! Parallel wave propagation over the online constraint graph.
//!
//! Instead of popping one node at a time, each *round* condenses the
//! current copy graph (reusing the solver's Tarjan collapse, so the
//! representative-resolved graph is a DAG), takes the forward closure of
//! every dirty node, layers it into topological *levels* (longest path
//! from a dirty source), and then pulls points-to deltas level by level:
//! a node's fresh targets are exactly the union of its predecessors'
//! outgoing deltas minus what it already has. Within a level no node
//! reads another's state, so the per-node pulls are embarrassingly
//! parallel — they run on an injected [`WaveRunner`] (the driver's thread
//! pool; the analysis crate itself stays free of threading) and the
//! results are applied sequentially in ascending node-id order.
//! Everything the round computes — levels, batch membership, fresh sets,
//! every counter — is a function of the graph state alone, never of
//! scheduling, so results are byte-identical at any thread count.
//!
//! Complex constraints (loads, stores, geps, indirect calls) are replayed
//! after the pull phase from each node's accumulated round delta, in
//! ascending node-id order; edges and targets they materialize enqueue
//! work for the next round. The fixpoint is reached when a round starts
//! with an empty worklist.
//!
//! [`WaveRunner`]: crate::strategy::WaveRunner

use usher_ir::{Budget, Exhausted};

use crate::andersen::Solver;
use crate::strategy::WaveRunner;

/// Batches smaller than this run inline even when a runner is injected:
/// the pull closure is cheap and fork/join bookkeeping would dominate.
/// Purely a latency knob — inline and dispatched execution are
/// byte-identical by construction.
const INLINE_BATCH: usize = 64;

impl<'m> Solver<'m> {
    /// Runs wave propagation to the fixpoint (or budget exhaustion).
    /// With `runner: None` every batch runs inline; the solution is
    /// identical either way.
    pub(crate) fn solve_wave(
        &mut self,
        budget: &Budget,
        runner: Option<WaveRunner<'_>>,
    ) -> Result<(), Exhausted> {
        // Dense node → closure-index map, reused across rounds (cleared
        // through the closure list, so clearing is O(closure)).
        const UNSEEN: u32 = u32::MAX;
        let mut slot: Vec<u32> = vec![UNSEEN; self.layout.n_nodes];
        'round: loop {
            // Drain the worklist into a deduplicated, resolved root set.
            let mut roots: Vec<u32> = Vec::new();
            while let Some(n) = self.worklist.pop_front() {
                let n = self.find(n);
                self.in_wl[n as usize] = false;
                if !self.delta[n as usize].is_empty() {
                    roots.push(n);
                }
            }
            roots.sort_unstable();
            roots.dedup();
            if roots.is_empty() {
                return Ok(());
            }

            // Forward closure of the roots over the resolved copy graph,
            // in deterministic BFS order; per-node successor lists are
            // resolved, deduplicated and self-loop-free.
            let mut closure: Vec<u32> = Vec::new();
            for &r in &roots {
                slot[r as usize] = closure.len() as u32;
                closure.push(r);
            }
            let mut succs_of: Vec<Vec<u32>> = Vec::new();
            let mut qi = 0usize;
            while qi < closure.len() {
                let n = closure[qi];
                qi += 1;
                let mut succs: Vec<u32> = self.copy_succs[n as usize]
                    .iter()
                    .map(|&s| self.find_ro(s))
                    .filter(|&s| s != n)
                    .collect();
                succs.sort_unstable();
                succs.dedup();
                let idxs = succs
                    .iter()
                    .map(|&s| {
                        if slot[s as usize] == UNSEEN {
                            slot[s as usize] = closure.len() as u32;
                            closure.push(s);
                        }
                        slot[s as usize]
                    })
                    .collect();
                succs_of.push(idxs);
            }
            for &n in &closure {
                slot[n as usize] = UNSEEN;
            }

            // Longest-path levels via Kahn's algorithm. The graph was
            // collapsed at the end of the previous round's cycle check,
            // but constraint replay may have closed new cycles since;
            // when Kahn stalls, collapse and retry the round (the merge
            // re-enqueues everything it touches).
            let nc = closure.len();
            let mut indeg = vec![0u32; nc];
            for succs in &succs_of {
                for &s in succs {
                    indeg[s as usize] += 1;
                }
            }
            let mut level = vec![0u32; nc];
            let mut ready: Vec<u32> = (0..nc as u32).filter(|&i| indeg[i as usize] == 0).collect();
            let mut done = 0usize;
            while let Some(i) = ready.pop() {
                done += 1;
                for &s in &succs_of[i as usize] {
                    let l = level[i as usize] + 1;
                    if l > level[s as usize] {
                        level[s as usize] = l;
                    }
                    indeg[s as usize] -= 1;
                    if indeg[s as usize] == 0 {
                        ready.push(s);
                    }
                }
            }
            if done < nc {
                self.collapse_cycles();
                for r in roots {
                    self.enqueue(r);
                }
                continue 'round;
            }

            // The closure is a DAG; commit the round. Take every root's
            // pending delta as the seed of its outgoing round delta.
            let mut out_delta: Vec<Vec<u32>> = vec![Vec::new(); nc];
            for (i, &r) in roots.iter().enumerate() {
                out_delta[i] = std::mem::take(&mut self.delta[r as usize]);
            }
            let preds_of = transpose(&succs_of);
            let n_levels = level.iter().map(|&l| l as usize + 1).max().unwrap_or(0);
            let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); n_levels];
            for (i, &l) in level.iter().enumerate() {
                buckets[l as usize].push(i as u32);
            }
            for b in &mut buckets {
                b.sort_unstable_by_key(|&i| closure[i as usize]);
            }

            // Pull phase: level by level, each node unions its
            // predecessors' round deltas and keeps what it lacks. Level 0
            // is exactly the nodes with no in-closure predecessors — a
            // pull there is a no-op, so the first bucket is skipped.
            for batch in buckets.iter().skip(1) {
                budget.try_charge(batch.len() as u64)?;
                self.wave_batches += 1;
                self.wave_max_width = self.wave_max_width.max(batch.len());
                let results: Vec<Vec<u32>> = {
                    let pts = &self.pts;
                    let job = |j: usize| -> Vec<u32> {
                        let i = batch[j] as usize;
                        let n = closure[i] as usize;
                        let mut fresh: Vec<u32> = Vec::new();
                        for &p in &preds_of[i] {
                            fresh.extend_from_slice(&out_delta[p as usize]);
                        }
                        fresh.sort_unstable();
                        fresh.dedup();
                        fresh.retain(|&id| !pts[n].contains(id));
                        fresh
                    };
                    match runner {
                        Some(run) if batch.len() >= INLINE_BATCH => run(batch.len(), &job),
                        _ => (0..batch.len()).map(job).collect(),
                    }
                };
                for (j, &i) in batch.iter().enumerate() {
                    let fresh = &results[j];
                    if fresh.is_empty() {
                        continue;
                    }
                    let n = closure[i as usize] as usize;
                    let before = self.pts[n].words();
                    for &id in fresh {
                        self.pts[n].insert(id);
                    }
                    let after = self.pts[n].words();
                    self.track_words(before, after);
                    self.wave_propagated += fresh.len();
                    out_delta[i as usize].extend_from_slice(fresh);
                }
            }

            // Replay phase: complex constraints react to the round's
            // deltas in ascending node-id order; whatever they materialize
            // (new edges flow full sets immediately, new targets enqueue)
            // becomes the next round's roots.
            let mut order: Vec<u32> = (0..nc as u32).collect();
            order.sort_unstable_by_key(|&i| closure[i as usize]);
            for i in order {
                let od = std::mem::take(&mut out_delta[i as usize]);
                if od.is_empty() {
                    continue;
                }
                budget.try_charge(1)?;
                self.pops += 1;
                self.replay_constraints(closure[i as usize], &od);
            }
        }
    }
}

/// Transposes closure-index adjacency lists; preds inherit the sorted
/// order of the forward scan, so every downstream union is deterministic.
fn transpose(succs_of: &[Vec<u32>]) -> Vec<Vec<u32>> {
    let mut preds: Vec<Vec<u32>> = vec![Vec::new(); succs_of.len()];
    for (i, succs) in succs_of.iter().enumerate() {
        for &s in succs {
            preds[s as usize].push(i as u32);
        }
    }
    preds
}
