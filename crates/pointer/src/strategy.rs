//! Strategy-pluggable solver entry points.
//!
//! Every pointer-analysis variant in this crate — the frozen reference
//! solver, the bitmap Andersen worklist, the unification-prefiltered
//! worklist and prefiltered parallel wave propagation — implements the
//! [`Solver`] trait and is addressable by a [`PointerStrategy`] value.
//! All strategies produce byte-identical [`PointerAnalysis`] results
//! (enforced by `tests/representation_equiv.rs`); they differ only in
//! how fast they reach the fixpoint and in which
//! [`SolverStats`](crate::SolverStats) counters they populate, which is
//! why the driver keys cached pointer artifacts on the strategy name.
//!
//! Threading stays out of this crate: the wave strategy accepts an
//! injected [`WaveRunner`] — the driver passes a thunk built on its
//! thread pool — and falls back to inline execution (identical results)
//! when none is given.

use usher_ir::{Budget, Exhausted, Module};

use crate::andersen::{analyze_andersen, PointerAnalysis};
use crate::reference::analyze_reference_budgeted;

/// One parallel pull job: maps a batch index to the node's freshly
/// gained target ids. Jobs only read state finalized before the batch
/// started, so any execution order gives the same results.
pub type WaveJob<'a> = &'a (dyn Fn(usize) -> Vec<u32> + Sync);

/// Executes `count` [`WaveJob`] invocations (indices `0..count`) and
/// returns their results **in index order**. The driver implements this
/// on its thread pool; `usher-pointer` itself never spawns threads.
pub type WaveRunner<'a> = &'a (dyn Fn(usize, WaveJob<'_>) -> Vec<Vec<u32>> + Sync);

/// Selects which solver implementation runs the pointer stage.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum PointerStrategy {
    /// The frozen pre-overhaul `BTreeSet` solver (`reference.rs`) —
    /// the equivalence oracle and benchmark baseline.
    Reference,
    /// The bitmap Andersen worklist solver, no prefilter.
    Andersen,
    /// Unification prefilter (offline variable substitution) followed
    /// by the Andersen worklist on the collapsed graph.
    Prefilter,
    /// Unification prefilter followed by parallel wave propagation in
    /// topological batches over the condensed constraint graph.
    #[default]
    PrefilterWave,
}

impl PointerStrategy {
    /// Every strategy, in benchmark order (baseline first).
    pub const ALL: [PointerStrategy; 4] = [
        PointerStrategy::Reference,
        PointerStrategy::Andersen,
        PointerStrategy::Prefilter,
        PointerStrategy::PrefilterWave,
    ];

    /// The stable name used by `--pointer-strategy`, cache keys,
    /// telemetry and bench JSON.
    pub fn name(self) -> &'static str {
        match self {
            PointerStrategy::Reference => "reference",
            PointerStrategy::Andersen => "andersen",
            PointerStrategy::Prefilter => "prefilter",
            PointerStrategy::PrefilterWave => "prefilter-wave",
        }
    }

    /// Parses a strategy name as accepted by `--pointer-strategy`.
    pub fn parse(s: &str) -> Option<PointerStrategy> {
        PointerStrategy::ALL.into_iter().find(|st| st.name() == s)
    }
}

impl std::fmt::Display for PointerStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A pluggable pointer-analysis implementation. All implementations
/// compute the same [`PointerAnalysis`]; the contract is checked by the
/// representation-equivalence suite.
pub trait Solver {
    /// The strategy's stable name (matches [`PointerStrategy::name`]).
    fn name(&self) -> &'static str;

    /// Runs the analysis under a cooperative step budget. On
    /// [`Exhausted`] the partial result is discarded — a partial
    /// points-to solution under-approximates and must never feed the
    /// guided planner — and the driver degrades to full instrumentation.
    ///
    /// # Errors
    ///
    /// Returns [`Exhausted`] when the budget runs out before the
    /// fixpoint.
    fn analyze_budgeted(&self, m: &Module, budget: &Budget) -> Result<PointerAnalysis, Exhausted>;

    /// Runs the analysis to completion.
    fn analyze(&self, m: &Module) -> PointerAnalysis {
        self.analyze_budgeted(m, &Budget::unlimited())
            .expect("unlimited budget cannot exhaust")
    }
}

/// [`PointerStrategy::Reference`]: the frozen baseline.
pub struct ReferenceSolver;

impl Solver for ReferenceSolver {
    fn name(&self) -> &'static str {
        PointerStrategy::Reference.name()
    }

    fn analyze_budgeted(&self, m: &Module, budget: &Budget) -> Result<PointerAnalysis, Exhausted> {
        analyze_reference_budgeted(m, budget)
    }
}

/// [`PointerStrategy::Andersen`]: the bitmap worklist solver.
pub struct AndersenSolver;

impl Solver for AndersenSolver {
    fn name(&self) -> &'static str {
        PointerStrategy::Andersen.name()
    }

    fn analyze_budgeted(&self, m: &Module, budget: &Budget) -> Result<PointerAnalysis, Exhausted> {
        analyze_andersen(m, budget, false)
    }
}

/// [`PointerStrategy::Prefilter`]: unification prefilter + worklist.
pub struct PrefilterSolver;

impl Solver for PrefilterSolver {
    fn name(&self) -> &'static str {
        PointerStrategy::Prefilter.name()
    }

    fn analyze_budgeted(&self, m: &Module, budget: &Budget) -> Result<PointerAnalysis, Exhausted> {
        analyze_andersen(m, budget, true)
    }
}

/// [`PointerStrategy::PrefilterWave`]: unification prefilter + parallel
/// wave propagation, optionally on an injected runner.
pub struct WaveSolver<'r> {
    /// Parallel batch executor; `None` runs every batch inline
    /// (byte-identical results).
    pub runner: Option<WaveRunner<'r>>,
}

impl Solver for WaveSolver<'_> {
    fn name(&self) -> &'static str {
        PointerStrategy::PrefilterWave.name()
    }

    fn analyze_budgeted(&self, m: &Module, budget: &Budget) -> Result<PointerAnalysis, Exhausted> {
        let mut s = crate::andersen::Solver::new(m);
        s.apply_prefilter();
        s.lazy_seed = true;
        s.import_offline_edges();
        s.seed();
        s.lazy_seed = false;
        s.finalize_lazy_edges();
        s.solve_wave(budget, self.runner)?;
        Ok(s.finish_with(self.runner))
    }
}

/// Runs `strategy` to completion; `runner` feeds the wave strategy's
/// parallel batches (ignored by the worklist strategies).
pub fn analyze_with(
    m: &Module,
    strategy: PointerStrategy,
    runner: Option<WaveRunner<'_>>,
) -> PointerAnalysis {
    analyze_budgeted_with(m, strategy, &Budget::unlimited(), runner)
        .expect("unlimited budget cannot exhaust")
}

/// Runs `strategy` under a cooperative step budget. See
/// [`Solver::analyze_budgeted`] for the degradation contract.
///
/// # Errors
///
/// Returns [`Exhausted`] when the budget runs out before the fixpoint.
pub fn analyze_budgeted_with(
    m: &Module,
    strategy: PointerStrategy,
    budget: &Budget,
    runner: Option<WaveRunner<'_>>,
) -> Result<PointerAnalysis, Exhausted> {
    match strategy {
        PointerStrategy::Reference => ReferenceSolver.analyze_budgeted(m, budget),
        PointerStrategy::Andersen => AndersenSolver.analyze_budgeted(m, budget),
        PointerStrategy::Prefilter => PrefilterSolver.analyze_budgeted(m, budget),
        PointerStrategy::PrefilterWave => WaveSolver { runner }.analyze_budgeted(m, budget),
    }
}

/// Analyzes a module with the default strategy
/// ([`PointerStrategy::PrefilterWave`], inline batches). This is the
/// crate's plain entry point; strategy- and thread-aware callers go
/// through [`analyze_with`] or the driver.
pub fn analyze(m: &Module) -> PointerAnalysis {
    analyze_with(m, PointerStrategy::default(), None)
}

/// Budgeted analysis with the default strategy.
///
/// # Errors
///
/// Returns [`Exhausted`] when the budget runs out before the fixpoint.
pub fn analyze_budgeted(m: &Module, budget: &Budget) -> Result<PointerAnalysis, Exhausted> {
    analyze_budgeted_with(m, PointerStrategy::default(), budget, None)
}
