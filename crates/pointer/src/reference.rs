//! The original `BTreeSet`-based Andersen solver, retained verbatim as
//! the equivalence baseline for the bitmap solver in [`crate::andersen`].
//!
//! It is the "before" side of `scripts/bench.sh` and the oracle for the
//! representation-equivalence property tests: both solvers must produce
//! identical [`PointerAnalysis`] tables (up to the shared finalization in
//! `andersen::finish_analysis`). Keep its semantics frozen — fixes and
//! optimizations go into the bitmap solver only.

use std::collections::{BTreeSet, HashMap, HashSet, VecDeque};

use usher_ir::{
    Budget, Callee, Exhausted, FuncId, GepOffset, Inst, Module, ObjId, Operand, Site, Terminator,
    VarId,
};

use crate::andersen::{finish_analysis, object_reps, Loc, PointerAnalysis, SolverStats, Target};
use crate::callgraph::CallGraph;

/// Runs the reference (pre-overhaul) analysis over a module.
pub fn analyze_reference(m: &Module) -> PointerAnalysis {
    analyze_reference_budgeted(m, &Budget::unlimited()).expect("unlimited budget cannot exhaust")
}

/// The reference analysis under a cooperative step budget (one step per
/// worklist pop, matching the bitmap solver's charging granularity).
/// With [`Budget::unlimited`] this is byte-identical to the frozen
/// [`analyze_reference`] semantics — the only addition is the counter.
///
/// # Errors
///
/// Returns [`Exhausted`] when the budget runs out before the fixpoint.
pub fn analyze_reference_budgeted(
    m: &Module,
    budget: &Budget,
) -> Result<PointerAnalysis, Exhausted> {
    let mut s = Solver::new(m);
    s.seed();
    s.solve(budget)?;
    Ok(s.finish())
}

/// Solver node kinds.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
enum Node {
    Var(FuncId, VarId),
    Mem(Loc),
    Ret(FuncId),
}

#[derive(Clone, Debug)]
enum GepKind {
    Field(u32),
    Dynamic,
}

#[derive(Clone, Copy, Debug)]
enum StoreSrc {
    Node(u32),
    Const(Target),
}

struct Solver<'m> {
    m: &'m Module,
    node_ids: HashMap<Node, u32>,
    nodes: Vec<Node>,
    parent: Vec<u32>,
    pts: Vec<BTreeSet<Target>>,
    delta: Vec<Vec<Target>>,
    copy_succs: Vec<BTreeSet<u32>>,
    load_cons: Vec<Vec<u32>>,
    store_cons: Vec<Vec<StoreSrc>>,
    gep_cons: Vec<Vec<(GepKind, u32)>>,
    call_cons: Vec<Vec<Site>>,
    site_info: HashMap<Site, (Vec<Operand>, Option<VarId>)>,
    wired: HashSet<(Site, FuncId)>,
    worklist: VecDeque<u32>,
    in_wl: Vec<bool>,
    cg: CallGraph,
    reps: usher_ir::FxHashMap<ObjId, Vec<u32>>,
    pops: usize,
    merges: usize,
}

impl<'m> Solver<'m> {
    fn new(m: &'m Module) -> Self {
        Solver {
            m,
            node_ids: HashMap::new(),
            nodes: Vec::new(),
            parent: Vec::new(),
            pts: Vec::new(),
            delta: Vec::new(),
            copy_succs: Vec::new(),
            load_cons: Vec::new(),
            store_cons: Vec::new(),
            gep_cons: Vec::new(),
            call_cons: Vec::new(),
            site_info: HashMap::new(),
            wired: HashSet::new(),
            worklist: VecDeque::new(),
            in_wl: Vec::new(),
            cg: CallGraph::default(),
            reps: object_reps(m),
            pops: 0,
            merges: 0,
        }
    }

    fn node(&mut self, n: Node) -> u32 {
        if let Some(&id) = self.node_ids.get(&n) {
            return self.find(id);
        }
        let id = self.nodes.len() as u32;
        self.nodes.push(n);
        self.parent.push(id);
        self.pts.push(BTreeSet::new());
        self.delta.push(Vec::new());
        self.copy_succs.push(BTreeSet::new());
        self.load_cons.push(Vec::new());
        self.store_cons.push(Vec::new());
        self.gep_cons.push(Vec::new());
        self.call_cons.push(Vec::new());
        self.in_wl.push(false);
        self.node_ids.insert(n, id);
        id
    }

    fn find(&mut self, mut n: u32) -> u32 {
        while self.parent[n as usize] != n {
            let gp = self.parent[self.parent[n as usize] as usize];
            self.parent[n as usize] = gp;
            n = gp;
        }
        n
    }

    fn rep_loc(&self, obj: ObjId, cell: u32) -> Loc {
        let reps = &self.reps[&obj];
        if reps.is_empty() {
            return Loc { obj, field: 0 };
        }
        let c = (cell as usize) % reps.len();
        Loc {
            obj,
            field: reps[c],
        }
    }

    fn enqueue(&mut self, n: u32) {
        let n = self.find(n);
        if !self.in_wl[n as usize] && !self.delta[n as usize].is_empty() {
            self.in_wl[n as usize] = true;
            self.worklist.push_back(n);
        }
    }

    fn add_targets(&mut self, n: u32, ts: impl IntoIterator<Item = Target>) {
        let n = self.find(n);
        let mut added = false;
        for t in ts {
            if self.pts[n as usize].insert(t) {
                self.delta[n as usize].push(t);
                added = true;
            }
        }
        if added {
            self.enqueue(n);
        }
    }

    fn add_copy_edge(&mut self, from: u32, to: u32) {
        let from = self.find(from);
        let to = self.find(to);
        if from == to {
            return;
        }
        if self.copy_succs[from as usize].insert(to) {
            let ts: Vec<Target> = self.pts[from as usize].iter().copied().collect();
            self.add_targets(to, ts);
        }
    }

    fn operand_node(&mut self, f: FuncId, op: Operand) -> Option<u32> {
        match op {
            Operand::Var(v) => Some(self.node(Node::Var(f, v))),
            _ => None,
        }
    }

    fn operand_const_targets(&self, op: Operand) -> Vec<Target> {
        match op {
            Operand::Global(o) => vec![Target::Loc(Loc { obj: o, field: 0 })],
            Operand::Func(g) => vec![Target::Func(g)],
            _ => Vec::new(),
        }
    }

    fn flow_into(&mut self, f: FuncId, op: Operand, dst: u32) {
        match self.operand_node(f, op) {
            Some(n) => self.add_copy_edge(n, dst),
            None => {
                let ts = self.operand_const_targets(op);
                self.add_targets(dst, ts);
            }
        }
    }

    fn seed(&mut self) {
        for (fid, func) in self.m.funcs.iter_enumerated() {
            for (bb, block) in func.blocks.iter_enumerated() {
                for (idx, inst) in block.insts.iter().enumerate() {
                    self.seed_inst(fid, Site::new(fid, bb, idx), inst);
                }
                if let Terminator::Ret(Some(op)) = &block.term {
                    let r = self.node(Node::Ret(fid));
                    self.flow_into(fid, *op, r);
                }
            }
        }
    }

    fn seed_inst(&mut self, f: FuncId, site: Site, inst: &Inst) {
        match inst {
            Inst::Copy { dst, src } => {
                let d = self.node(Node::Var(f, *dst));
                self.flow_into(f, *src, d);
            }
            Inst::Un { .. } | Inst::Bin { .. } => {}
            Inst::Alloc { dst, obj, .. } => {
                let d = self.node(Node::Var(f, *dst));
                self.add_targets(
                    d,
                    [Target::Loc(Loc {
                        obj: *obj,
                        field: 0,
                    })],
                );
            }
            Inst::Gep { dst, base, offset } => {
                let d = self.node(Node::Var(f, *dst));
                let kind = match offset {
                    GepOffset::Field(k) => GepKind::Field(*k),
                    GepOffset::Index { .. } => GepKind::Dynamic,
                };
                match self.operand_node(f, *base) {
                    Some(b) => {
                        let b = self.find(b);
                        self.gep_cons[b as usize].push((kind.clone(), d));
                        let existing: Vec<Target> = self.pts[b as usize].iter().copied().collect();
                        for t in existing {
                            if let Target::Loc(l) = t {
                                let shifted = self.shift(l, &kind);
                                self.add_targets(d, shifted.into_iter().map(Target::Loc));
                            }
                        }
                    }
                    None => {
                        for t in self.operand_const_targets(*base) {
                            if let Target::Loc(l) = t {
                                let shifted = self.shift(l, &kind);
                                self.add_targets(d, shifted.into_iter().map(Target::Loc));
                            }
                        }
                    }
                }
            }
            Inst::Load { dst, addr } => {
                let d = self.node(Node::Var(f, *dst));
                match self.operand_node(f, *addr) {
                    Some(a) => {
                        let a = self.find(a);
                        self.load_cons[a as usize].push(d);
                        let existing: Vec<Target> = self.pts[a as usize].iter().copied().collect();
                        for t in existing {
                            if let Target::Loc(l) = t {
                                let mn = self.node(Node::Mem(l));
                                self.add_copy_edge(mn, d);
                            }
                        }
                    }
                    None => {
                        for t in self.operand_const_targets(*addr) {
                            if let Target::Loc(l) = t {
                                let mn = self.node(Node::Mem(l));
                                self.add_copy_edge(mn, d);
                            }
                        }
                    }
                }
            }
            Inst::Store { addr, val } => {
                let src = match self.operand_node(f, *val) {
                    Some(n) => StoreSrc::Node(n),
                    None => match self.operand_const_targets(*val).first() {
                        Some(t) => StoreSrc::Const(*t),
                        None => return,
                    },
                };
                match self.operand_node(f, *addr) {
                    Some(a) => {
                        let a = self.find(a);
                        self.store_cons[a as usize].push(src);
                        let existing: Vec<Target> = self.pts[a as usize].iter().copied().collect();
                        for t in existing {
                            if let Target::Loc(l) = t {
                                self.apply_store(src, l);
                            }
                        }
                    }
                    None => {
                        for t in self.operand_const_targets(*addr) {
                            if let Target::Loc(l) = t {
                                self.apply_store(src, l);
                            }
                        }
                    }
                }
            }
            Inst::Call { dst, callee, args } => {
                self.site_info.insert(site, (args.clone(), *dst));
                match callee {
                    Callee::Direct(g) => self.wire_call(site, *g),
                    Callee::Indirect(op) => match self.operand_node(f, *op) {
                        Some(t) => {
                            let t = self.find(t);
                            self.call_cons[t as usize].push(site);
                            let existing: Vec<Target> =
                                self.pts[t as usize].iter().copied().collect();
                            for tg in existing {
                                if let Target::Func(g) = tg {
                                    self.wire_call(site, g);
                                }
                            }
                        }
                        None => {
                            if let Operand::Func(g) = op {
                                self.wire_call(site, *g);
                            }
                        }
                    },
                    Callee::External(_) => {}
                }
            }
            Inst::Phi { dst, incomings } => {
                let d = self.node(Node::Var(f, *dst));
                for (_, op) in incomings {
                    self.flow_into(f, *op, d);
                }
            }
        }
    }

    fn apply_store(&mut self, src: StoreSrc, loc: Loc) {
        let mn = self.node(Node::Mem(loc));
        match src {
            StoreSrc::Node(n) => self.add_copy_edge(n, mn),
            StoreSrc::Const(t) => self.add_targets(mn, [t]),
        }
    }

    fn shift(&self, l: Loc, kind: &GepKind) -> Vec<Loc> {
        let obj = &self.m.objects[l.obj];
        match kind {
            GepKind::Field(k) => {
                if obj.is_array {
                    vec![Loc {
                        obj: l.obj,
                        field: 0,
                    }]
                } else {
                    let cell = l.field + k;
                    vec![self.rep_loc(l.obj, cell)]
                }
            }
            GepKind::Dynamic => {
                if obj.is_array {
                    vec![Loc {
                        obj: l.obj,
                        field: 0,
                    }]
                } else {
                    let mut out: Vec<u32> = self.reps[&l.obj].clone();
                    out.sort_unstable();
                    out.dedup();
                    out.into_iter()
                        .map(|field| Loc { obj: l.obj, field })
                        .collect()
                }
            }
        }
    }

    fn wire_call(&mut self, site: Site, g: FuncId) {
        if !self.wired.insert((site, g)) {
            return;
        }
        self.cg.add_edge(site, g);
        let (args, dst) = self.site_info[&site].clone();
        let callee = &self.m.funcs[g];
        let params: Vec<VarId> = callee.params.clone();
        for (p, a) in params.iter().zip(args.iter()) {
            let pn = self.node(Node::Var(g, *p));
            self.flow_into(site.func, *a, pn);
        }
        if let Some(d) = dst {
            let dn = self.node(Node::Var(site.func, d));
            let rn = self.node(Node::Ret(g));
            self.add_copy_edge(rn, dn);
        }
    }

    fn solve(&mut self, budget: &Budget) -> Result<(), Exhausted> {
        while let Some(n) = self.worklist.pop_front() {
            budget.try_charge(1)?;
            let n = self.find(n);
            self.in_wl[n as usize] = false;
            let delta = std::mem::take(&mut self.delta[n as usize]);
            if delta.is_empty() {
                continue;
            }
            self.pops += 1;
            if self.pops.is_multiple_of(20_000) {
                self.collapse_cycles();
            }

            let succs: Vec<u32> = self.copy_succs[n as usize].iter().copied().collect();
            for s in succs {
                self.add_targets(s, delta.iter().copied());
            }
            let loads = self.load_cons[n as usize].clone();
            let stores = self.store_cons[n as usize].clone();
            let geps = self.gep_cons[n as usize].clone();
            let calls = self.call_cons[n as usize].clone();
            for t in &delta {
                match t {
                    Target::Loc(l) => {
                        for &d in &loads {
                            let mn = self.node(Node::Mem(*l));
                            self.add_copy_edge(mn, d);
                        }
                        for &src in &stores {
                            self.apply_store(src, *l);
                        }
                        for (kind, d) in &geps {
                            let shifted = self.shift(*l, kind);
                            self.add_targets(*d, shifted.into_iter().map(Target::Loc));
                        }
                    }
                    Target::Func(g) => {
                        for &site in &calls {
                            self.wire_call(site, *g);
                        }
                    }
                }
            }
        }
        Ok(())
    }

    fn collapse_cycles(&mut self) {
        let n = self.nodes.len();
        let mut index = vec![usize::MAX; n];
        let mut low = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<u32> = Vec::new();
        let mut next = 0usize;
        let mut call_stack: Vec<(u32, Vec<u32>, usize)> = Vec::new();
        let mut merges: Vec<Vec<u32>> = Vec::new();

        for start in 0..n as u32 {
            if self.parent[start as usize] != start || index[start as usize] != usize::MAX {
                continue;
            }
            let raw: Vec<u32> = self.copy_succs[start as usize].iter().copied().collect();
            let succs: Vec<u32> = raw.into_iter().map(|s| self.find(s)).collect();
            call_stack.push((start, succs, 0));
            index[start as usize] = next;
            low[start as usize] = next;
            next += 1;
            stack.push(start);
            on_stack[start as usize] = true;

            while let Some((v, succs, ei)) = call_stack.last_mut() {
                let v = *v;
                if *ei < succs.len() {
                    let w = succs[*ei];
                    *ei += 1;
                    if index[w as usize] == usize::MAX {
                        let raw: Vec<u32> = self.copy_succs[w as usize].iter().copied().collect();
                        let wsuccs: Vec<u32> = raw.into_iter().map(|s| self.find(s)).collect();
                        index[w as usize] = next;
                        low[w as usize] = next;
                        next += 1;
                        stack.push(w);
                        on_stack[w as usize] = true;
                        call_stack.push((w, wsuccs, 0));
                    } else if on_stack[w as usize] {
                        low[v as usize] = low[v as usize].min(index[w as usize]);
                    }
                } else {
                    if low[v as usize] == index[v as usize] {
                        let mut comp = Vec::new();
                        while let Some(w) = stack.pop() {
                            on_stack[w as usize] = false;
                            comp.push(w);
                            if w == v {
                                break;
                            }
                        }
                        if comp.len() > 1 {
                            merges.push(comp);
                        }
                    }
                    call_stack.pop();
                    if let Some((u, _, _)) = call_stack.last() {
                        let u = *u;
                        low[u as usize] = low[u as usize].min(low[v as usize]);
                    }
                }
            }
        }

        for comp in merges {
            let root = comp[0];
            for &other in &comp[1..] {
                self.merge(root, other);
            }
        }
    }

    fn merge(&mut self, a: u32, b: u32) {
        let a = self.find(a);
        let b = self.find(b);
        if a == b {
            return;
        }
        self.merges += 1;
        self.parent[b as usize] = a;
        let b_pts = std::mem::take(&mut self.pts[b as usize]);
        let b_delta = std::mem::take(&mut self.delta[b as usize]);
        let b_succs = std::mem::take(&mut self.copy_succs[b as usize]);
        let b_loads = std::mem::take(&mut self.load_cons[b as usize]);
        let b_stores = std::mem::take(&mut self.store_cons[b as usize]);
        let b_geps = std::mem::take(&mut self.gep_cons[b as usize]);
        let b_calls = std::mem::take(&mut self.call_cons[b as usize]);

        // New targets for a = b's pts not already in a.
        let mut fresh: Vec<Target> = Vec::new();
        for t in b_pts {
            if self.pts[a as usize].insert(t) {
                fresh.push(t);
            }
        }
        fresh.extend(
            b_delta
                .into_iter()
                .filter(|t| !self.pts[a as usize].contains(t)),
        );
        self.delta[a as usize].extend(fresh);
        for s in b_succs {
            self.copy_succs[a as usize].insert(s);
        }
        self.load_cons[a as usize].extend(b_loads);
        self.store_cons[a as usize].extend(b_stores);
        self.gep_cons[a as usize].extend(b_geps);
        self.call_cons[a as usize].extend(b_calls);
        // Everything already in a's pts must be replayed against b's
        // constraints; simplest sound move: re-add the full set as delta.
        // (This is the quadratic full replay the bitmap solver fixes.)
        let all: Vec<Target> = self.pts[a as usize].iter().copied().collect();
        self.delta[a as usize] = all;
        self.enqueue(a);
    }

    fn finish(mut self) -> PointerAnalysis {
        let mut var_pts: usher_ir::FxHashMap<(FuncId, VarId), (u32, u32)> =
            usher_ir::FxHashMap::default();
        let mut mem_pts: usher_ir::FxHashMap<Loc, (u32, u32)> = usher_ir::FxHashMap::default();
        let mut pool: Vec<Target> = Vec::new();
        let entries: Vec<(Node, u32)> = self.node_ids.iter().map(|(n, id)| (*n, *id)).collect();
        for (nk, id) in entries {
            let rep = self.find(id);
            let start = pool.len() as u32;
            pool.extend(self.pts[rep as usize].iter().copied());
            let range = (start, pool.len() as u32);
            match nk {
                Node::Var(f, v) => {
                    var_pts.insert((f, v), range);
                }
                Node::Mem(l) => {
                    mem_pts.insert(l, range);
                }
                Node::Ret(_) => {
                    pool.truncate(start as usize);
                }
            }
        }

        let stats = SolverStats {
            nodes: self.nodes.len(),
            interned_targets: 0, // the reference solver does not intern
            pops: self.pops,
            merges: self.merges,
            ..SolverStats::default()
        };
        finish_analysis(
            self.m,
            self.cg,
            self.reps,
            crate::andersen::Solution {
                var_pts,
                mem_pts,
                pool,
                stats,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use usher_ir::{FuncBuilder, ObjKind};

    #[test]
    fn reference_matches_bitmap_solver_on_a_diamond() {
        let mut m = Module::new();
        let int = m.types.int();
        let fid = m.declare_func("main", None);
        m.main = Some(fid);
        let mut b = FuncBuilder::new(&mut m, fid);
        let (a, _xo) = b.alloc("x", ObjKind::Stack(fid), int, false, None);
        let pint = b.module.types.ptr_to(int);
        let (bv, _yo) = b.alloc("y", ObjKind::Stack(fid), pint, false, None);
        let t = b.new_block();
        let e = b.new_block();
        let j = b.new_block();
        b.br(Operand::Const(1), t, e);
        b.set_block(t);
        b.jmp(j);
        b.set_block(e);
        b.jmp(j);
        b.set_block(j);
        let p = b.phi(pint, vec![(t, a.into()), (e, bv.into())]);
        b.store(p.into(), a.into());
        let _q = b.load(p.into(), pint);
        b.ret(None);
        b.finish();

        let new = crate::analyze(&m);
        let old = analyze_reference(&m);
        // The bitmap solver does not materialize empty rows; compare the
        // non-empty subsets (the accessors default to empty either way).
        let row = |pa: &PointerAnalysis, r: Option<&(u32, u32)>| -> Vec<Target> {
            r.map_or_else(Vec::new, |&(s, e)| pa.pool[s as usize..e as usize].to_vec())
        };
        for (k, v) in &old.var_pts {
            assert_eq!(row(&new, new.var_pts.get(k)), row(&old, Some(v)), "{k:?}");
        }
        for (k, v) in &old.mem_pts {
            assert_eq!(row(&new, new.mem_pts.get(k)), row(&old, Some(v)), "{k:?}");
        }
        for (k, v) in &new.var_pts {
            assert_eq!(
                row(&old, old.var_pts.get(k)),
                row(&new, Some(v)),
                "{k:?} only in new"
            );
        }
        assert_eq!(new.call_graph.callees, old.call_graph.callees);
        assert_eq!(new.concrete_objects, old.concrete_objects);
    }
}
