//! Precision and soundness coverage for the Andersen analysis, driven
//! through real TinyC programs (dev-dependency on the frontend).

use usher_frontend::compile_o0im;
use usher_ir::{FuncId, Inst, Module, ObjKind, Operand};
use usher_pointer::{analyze, PointerAnalysis};

fn analyzed(src: &str) -> (Module, PointerAnalysis) {
    let m = compile_o0im(src).expect("compiles");
    let pa = analyze(&m);
    (m, pa)
}

/// Points-to set of the address operand of the first store in `fname`.
fn first_store_pts(m: &Module, pa: &PointerAnalysis, fname: &str) -> Vec<usher_pointer::Loc> {
    let fid = m.func_by_name(fname).expect("function exists");
    for block in m.funcs[fid].blocks.iter() {
        for inst in &block.insts {
            if let Inst::Store { addr, .. } = inst {
                return pa.pts_operand(fid, *addr);
            }
        }
    }
    panic!("no store in {fname}");
}

#[test]
fn field_sensitivity_separates_struct_fields() {
    let (m, pa) = analyzed(
        "struct P { int x; int y; };
         def main() {
             struct P p;
             int *px = &p.x;
             int *py = &p.y;
             *px = 1;
             *py = 2;
         }",
    );
    let fid = m.main.unwrap();
    // Find the two gep results.
    let mut pts = Vec::new();
    for block in m.funcs[fid].blocks.iter() {
        for inst in &block.insts {
            if let Inst::Store {
                addr: Operand::Var(v),
                ..
            } = inst
            {
                pts.push(pa.pts_var(fid, *v));
            }
        }
    }
    assert_eq!(pts.len(), 2);
    assert_eq!(pts[0].len(), 1);
    assert_eq!(pts[1].len(), 1);
    assert_ne!(pts[0][0], pts[1][0], "x and y must be distinct locations");
    assert_eq!(
        pts[0][0].obj, pts[1][0].obj,
        "same object, different fields"
    );
}

#[test]
fn array_collapse_merges_element_accesses() {
    let (m, pa) = analyzed(
        "def main() {
             int a[8];
             int *p0 = &a[0];
             int *p5 = &a[5];
             *p0 = 1;
             *p5 = 2;
         }",
    );
    let fid = m.main.unwrap();
    let mut pts = Vec::new();
    for block in m.funcs[fid].blocks.iter() {
        for inst in &block.insts {
            if let Inst::Store {
                addr: Operand::Var(v),
                ..
            } = inst
            {
                pts.push(pa.pts_var(fid, *v));
            }
        }
    }
    assert_eq!(pts[0], pts[1], "array elements share one class");
}

#[test]
fn linked_structures_chase_through_memory() {
    let (m, pa) = analyzed(
        "struct N { int v; struct N *next; };
         def main() -> int {
             struct N a; struct N b;
             a.next = &b;
             struct N *p = a.next;
             p->v = 3;
             return 0;
         }",
    );
    let pts = first_store_pts(&m, &pa, "main");
    // The first store is `a.next = &b`; make sure *some* store reaches b.v.
    let fid = m.main.unwrap();
    let mut all_store_targets = Vec::new();
    for block in m.funcs[fid].blocks.iter() {
        for inst in &block.insts {
            if let Inst::Store { addr, .. } = inst {
                all_store_targets.extend(pa.pts_operand(fid, *addr));
            }
        }
    }
    let b_obj = m
        .objects
        .iter_enumerated()
        .find(|(_, o)| o.name == "b" && matches!(o.kind, ObjKind::Stack(_)))
        .map(|(i, _)| i)
        .expect("b exists");
    assert!(
        all_store_targets
            .iter()
            .any(|l| l.obj == b_obj && l.field == 0),
        "p->v must reach b.v: {all_store_targets:?}"
    );
    let _ = pts;
}

#[test]
fn indirect_call_through_stored_function_pointer() {
    let (m, pa) = analyzed(
        "struct Ops { fn(int) -> int apply; };
         def double_it(int x) -> int { return x * 2; }
         def main() -> int {
             struct Ops ops;
             ops.apply = double_it;
             fn(int) -> int f = ops.apply;
             return f(21);
         }",
    );
    // The indirect call must resolve to double_it.
    let target = m.func_by_name("double_it").unwrap();
    let resolved: Vec<FuncId> = pa.call_graph.callees.values().flatten().copied().collect();
    assert!(resolved.contains(&target), "{resolved:?}");
}

#[test]
fn distinct_heap_sites_stay_distinct() {
    let (m, pa) = analyzed(
        "def main() {
             int *p; int *q;
             p = malloc(2);
             q = malloc(2);
             *p = 1;
             *q = 2;
         }",
    );
    let fid = m.main.unwrap();
    let mut pts = Vec::new();
    for block in m.funcs[fid].blocks.iter() {
        for inst in &block.insts {
            if let Inst::Store {
                addr: Operand::Var(v),
                ..
            } = inst
            {
                pts.push(pa.pts_var(fid, *v));
            }
        }
    }
    assert_eq!(pts[0].len(), 1);
    assert_eq!(pts[1].len(), 1);
    assert_ne!(pts[0][0].obj, pts[1][0].obj, "per-site heap abstraction");
}

#[test]
fn wrapper_inlining_gives_per_callsite_heap_objects() {
    // Without the inliner both pointers would share one abstract object.
    let (m, pa) = analyzed(
        "def mk() -> int* {
             int *p;
             p = malloc(1);
             return p;
         }
         def main() {
             int *a; int *b;
             a = mk();
             b = mk();
             *a = 1;
             *b = 2;
         }",
    );
    let fid = m.main.unwrap();
    let mut pts = Vec::new();
    for block in m.funcs[fid].blocks.iter() {
        for inst in &block.insts {
            if let Inst::Store {
                addr: Operand::Var(v),
                ..
            } = inst
            {
                pts.push(pa.pts_var(fid, *v));
            }
        }
    }
    assert_eq!(pts.len(), 2);
    assert_eq!(pts[0].len(), 1, "{pts:?}");
    assert_eq!(pts[1].len(), 1, "{pts:?}");
    assert_ne!(pts[0][0].obj, pts[1][0].obj, "1-callsite heap cloning");
}

#[test]
fn recursive_list_build_is_sound() {
    let (m, pa) = analyzed(
        "struct N { int v; struct N *next; };
         def build(int n) -> struct N* {
             if (n == 0) { return 0; }
             struct N *node;
             node = malloc(1);
             node->v = n;
             node->next = build(n - 1);
             return node;
         }
         def main() -> int {
             struct N *l = build(4);
             int s = 0;
             while (l != 0) { s = s + l->v; l = l->next; }
             return s;
         }",
    );
    // The loop's load of l->v must see the heap object from build.
    let fid = m.main.unwrap();
    let mut load_targets = Vec::new();
    for block in m.funcs[fid].blocks.iter() {
        for inst in &block.insts {
            if let Inst::Load { addr, .. } = inst {
                load_targets.extend(pa.pts_operand(fid, *addr));
            }
        }
    }
    assert!(
        load_targets
            .iter()
            .any(|l| matches!(m.objects[l.obj].kind, ObjKind::Heap(_))),
        "main must read the heap list: {load_targets:?}"
    );
    // build is recursive: its objects are not concrete.
    for l in &load_targets {
        if matches!(m.objects[l.obj].kind, ObjKind::Heap(_)) {
            assert!(
                !pa.is_concrete(*l),
                "recursive allocation cannot be concrete"
            );
        }
    }
}

#[test]
fn globals_remain_concrete_under_aliasing() {
    let (m, pa) = analyzed(
        "int g;
         def main() {
             int *p = &g;
             int *q = p;
             *q = 5;
         }",
    );
    let pts = first_store_pts(&m, &pa, "main");
    assert_eq!(pts.len(), 1);
    assert!(pa.is_concrete(pts[0]));
}

#[test]
fn unique_target_rejects_fn_pointer_mixtures() {
    let (m, pa) = analyzed(
        "def f() -> int { return 1; }
         def main() {
             fn() -> int h = f;
             h();
         }",
    );
    let fid = m.main.unwrap();
    // h holds only a function target: no memory location.
    for block in m.funcs[fid].blocks.iter() {
        for inst in &block.insts {
            if let Inst::Call {
                callee: usher_ir::Callee::Indirect(Operand::Var(v)),
                ..
            } = inst
            {
                assert!(pa.pts_var(fid, *v).is_empty());
                assert_eq!(pa.fn_targets(fid, *v).len(), 1);
                assert_eq!(pa.unique_target(fid, Operand::Var(*v)), None);
            }
        }
    }
}
