//! Abstract syntax tree for TinyC.
//!
//! TinyC here is the paper's Section 2 language extended with just enough
//! surface syntax to write realistic workloads: structs (for offset-based
//! field sensitivity), fixed arrays (treated as a whole by the analysis),
//! function pointers (for indirect calls), loops and globals. There is no
//! address-of restriction at the surface — `&x` is allowed and simply
//! keeps `x`'s stack slot address-taken, exactly like Clang at `-O0`.

/// A parsed type expression.
#[allow(missing_docs)]
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TypeExpr {
    /// `int`
    Int,
    /// `struct Name`
    Struct(String),
    /// `T*`
    Ptr(Box<TypeExpr>),
    /// `fn(T, ...) -> int` / `fn(T, ...)`
    FuncPtr {
        params: Vec<TypeExpr>,
        has_ret: bool,
    },
}

/// Binary operators at the AST level (no short-circuit forms here;
/// `&&`/`||` become [`ExprKind::Logic`]).
#[allow(missing_docs)]
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AstBinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    BitAnd,
    BitOr,
    BitXor,
    Shl,
    Shr,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

/// Unary operators.
#[allow(missing_docs)]
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AstUnOp {
    Neg,
    Not,
    BitNot,
}

/// Short-circuit logical operators.
#[allow(missing_docs)]
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LogicOp {
    And,
    Or,
}

/// An expression, with its source line for diagnostics.
#[derive(Clone, Debug, PartialEq)]
pub struct Expr {
    /// Node payload.
    pub kind: ExprKind,
    /// 1-based source line.
    pub line: u32,
}

/// Expression payloads.
#[allow(missing_docs)]
#[derive(Clone, Debug, PartialEq)]
pub enum ExprKind {
    /// Integer literal.
    Int(i64),
    /// Variable, global or function reference.
    Ident(String),
    /// `op e`
    Unary(AstUnOp, Box<Expr>),
    /// `*e`
    Deref(Box<Expr>),
    /// `&lvalue`
    AddrOf(Box<Expr>),
    /// `a op b`
    Binary(AstBinOp, Box<Expr>, Box<Expr>),
    /// `a && b` / `a || b` (short-circuit)
    Logic(LogicOp, Box<Expr>, Box<Expr>),
    /// `base[index]`
    Index(Box<Expr>, Box<Expr>),
    /// `base.field`
    Field(Box<Expr>, String),
    /// `base->field`
    Arrow(Box<Expr>, String),
    /// `callee(args)` — callee may be a name or a fnptr expression.
    Call(Box<Expr>, Vec<Expr>),
    /// `malloc(n)` — element type inferred from the assignment context.
    Malloc(Box<Expr>),
    /// `calloc(n)` — zero-initialized.
    Calloc(Box<Expr>),
    /// `input()`
    Input,
}

/// A statement.
#[derive(Clone, Debug, PartialEq)]
pub struct Stmt {
    /// Node payload.
    pub kind: StmtKind,
    /// 1-based source line.
    pub line: u32,
}

/// Statement payloads.
#[allow(missing_docs)]
#[derive(Clone, Debug, PartialEq)]
pub enum StmtKind {
    /// `T name;` / `T name = init;` / `T name[n];`
    Decl {
        ty: TypeExpr,
        name: String,
        array: Option<u32>,
        init: Option<Expr>,
    },
    /// `lvalue = value;`
    Assign { lvalue: Expr, value: Expr },
    /// Expression statement (calls).
    Expr(Expr),
    /// `if (cond) { .. } else { .. }`
    If {
        cond: Expr,
        then_body: Vec<Stmt>,
        else_body: Vec<Stmt>,
    },
    /// `while (cond) { .. }`
    While { cond: Expr, body: Vec<Stmt> },
    /// `return e?;`
    Return(Option<Expr>),
    /// `break;`
    Break,
    /// `continue;`
    Continue,
    /// `{ .. }`
    Block(Vec<Stmt>),
}

/// A function definition.
#[derive(Clone, Debug, PartialEq)]
pub struct FuncDef {
    /// Name.
    pub name: String,
    /// `(type, name)` parameter list.
    pub params: Vec<(TypeExpr, String)>,
    /// Return type, if any (`-> int` style or omitted for void).
    pub ret: Option<TypeExpr>,
    /// Body.
    pub body: Vec<Stmt>,
    /// 1-based source line of the header.
    pub line: u32,
}

/// A struct definition.
#[derive(Clone, Debug, PartialEq)]
pub struct StructItem {
    /// Name.
    pub name: String,
    /// `(type, name, optional array length)` fields.
    pub fields: Vec<(TypeExpr, String, Option<u32>)>,
    /// 1-based source line.
    pub line: u32,
}

/// A global variable declaration (zero-initialized, hence defined).
#[derive(Clone, Debug, PartialEq)]
pub struct GlobalItem {
    /// Declared type.
    pub ty: TypeExpr,
    /// Name.
    pub name: String,
    /// Optional array length.
    pub array: Option<u32>,
    /// 1-based source line.
    pub line: u32,
}

/// A whole TinyC translation unit.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Program {
    /// Struct definitions.
    pub structs: Vec<StructItem>,
    /// Globals.
    pub globals: Vec<GlobalItem>,
    /// Functions.
    pub funcs: Vec<FuncDef>,
}
