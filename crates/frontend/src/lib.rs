//! # usher-frontend
//!
//! The TinyC front-end of the Usher reproduction: lexer, parser and
//! lowering to the [`usher_ir`] module form, plus the pre-analysis
//! pipeline (`O0+IM` = inlining + `mem2reg`, or `-O1`/`-O2` on top).
//!
//! TinyC is the paper's Section 2 language extended with structs, arrays,
//! function pointers and loops — just enough surface area to write
//! realistic benchmark workloads while keeping the core shape the paper
//! formalizes: addresses only arise from allocation sites; top-level
//! variables become SSA registers after `mem2reg`; everything else is
//! address-taken and reached through loads/stores.
//!
//! ```
//! let m = usher_frontend::compile_o0im("
//!     def main() -> int {
//!         int x = 2;
//!         int y = x * 21;
//!         print(y);
//!         return 0;
//!     }
//! ").unwrap();
//! assert!(m.is_runnable());
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod lower;
pub mod parser;
pub mod token;

use std::fmt;

use usher_ir::{mem2reg, optimize, run_inline, InlinePolicy, Module, OptLevel};

pub use lower::{
    lower_program, relower_function, LowerEnv, LowerError, RelowerBlocked, RelowerError,
};
pub use parser::ParseError;

/// Any front-end failure: lexing, parsing or lowering.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CompileError {
    /// Syntax error.
    Parse(ParseError),
    /// Semantic error.
    Lower(LowerError),
    /// The lowered module failed IR verification (an internal bug; kept as
    /// an error so fuzzing surfaces it instead of panicking).
    Verify(String),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Parse(e) => write!(f, "{e}"),
            CompileError::Lower(e) => write!(f, "{e}"),
            CompileError::Verify(e) => write!(f, "internal verification failure: {e}"),
        }
    }
}

impl std::error::Error for CompileError {}

impl From<ParseError> for CompileError {
    fn from(e: ParseError) -> Self {
        CompileError::Parse(e)
    }
}

impl From<LowerError> for CompileError {
    fn from(e: LowerError) -> Self {
        CompileError::Lower(e)
    }
}

/// Compiles TinyC source to raw (pre-`mem2reg`) IR.
///
/// # Errors
///
/// Returns the first lexical, syntactic or semantic error.
pub fn compile(src: &str) -> Result<Module, CompileError> {
    let prog = parser::parse(src)?;
    let m = lower::lower(&prog)?;
    if let Err(errs) = usher_ir::verify(&m) {
        return Err(CompileError::Verify(format!("{errs:?}")));
    }
    Ok(m)
}

/// Compiles under the paper's `O0+IM` configuration: lower, inline
/// (function-pointer-parameter functions and allocation wrappers, giving
/// 1-callsite heap cloning), then `mem2reg`.
///
/// # Errors
///
/// Returns the first front-end error.
pub fn compile_o0im(src: &str) -> Result<Module, CompileError> {
    compile_with(src, OptLevel::O0Im)
}

/// Compiles under a given optimization level (Section 4.6): `O0+IM` plus,
/// for `O1`/`O2`, the scalar optimization pipeline.
///
/// # Errors
///
/// Returns the first front-end error.
pub fn compile_with(src: &str, level: OptLevel) -> Result<Module, CompileError> {
    let mut m = compile(src)?;
    run_inline(&mut m, InlinePolicy::default());
    mem2reg(&mut m);
    optimize(&mut m, level);
    if let Err(errs) = usher_ir::verify(&m) {
        return Err(CompileError::Verify(format!("{errs:?}")));
    }
    Ok(m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use usher_ir::{Callee, Inst, ObjKind, Operand};

    #[test]
    fn compiles_quickstart() {
        let m =
            compile_o0im("def main() -> int { int x = 2; int y = x * 21; print(y); return 0; }")
                .unwrap();
        assert!(m.is_runnable());
    }

    #[test]
    fn mem2reg_promotes_simple_locals() {
        let m = compile_o0im("def f() -> int { int a = 1; int b = a + 2; return b; }").unwrap();
        let f = &m.funcs[m.func_by_name("f").unwrap()];
        // All scalar locals promoted: no loads/stores/allocs remain.
        for block in f.blocks.iter() {
            for inst in &block.insts {
                assert!(!matches!(
                    inst,
                    Inst::Load { .. } | Inst::Store { .. } | Inst::Alloc { .. }
                ));
            }
        }
    }

    #[test]
    fn address_taken_local_stays_in_memory() {
        let m =
            compile_o0im("def f() -> int { int a = 1; int *p = &a; *p = 2; return a; }").unwrap();
        let f = &m.funcs[m.func_by_name("f").unwrap()];
        // `a`'s slot must survive (its address escapes into p). p itself
        // is promoted.
        let allocs = f
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .filter(|i| matches!(i, Inst::Alloc { .. }))
            .count();
        assert_eq!(allocs, 1);
    }

    #[test]
    fn globals_are_zero_init_objects() {
        let m = compile("int g; int table[8]; def main() { g = 1; }").unwrap();
        assert_eq!(m.globals.len(), 2);
        assert!(m.objects[m.globals[0]].zero_init);
        assert!(m.objects[m.globals[1]].is_array);
        assert_eq!(m.objects[m.globals[1]].size, 8);
    }

    #[test]
    fn malloc_const_one_is_field_sensitive_heap_object() {
        let m = compile(
            "struct P { int x; int y; };
             def main() { struct P *p; p = malloc(1); p->x = 3; }",
        )
        .unwrap();
        let heap: Vec<_> = m
            .objects
            .iter()
            .filter(|o| matches!(o.kind, ObjKind::Heap(_)))
            .collect();
        assert_eq!(heap.len(), 1);
        assert_eq!(heap[0].num_classes, 2);
        assert!(!heap[0].zero_init);
    }

    #[test]
    fn calloc_is_zero_init_and_dynamic_malloc_collapses() {
        let m =
            compile("def main(int n) { int *p; int *q; p = calloc(16); q = malloc(n); *p = *q; }")
                .unwrap();
        let heap: Vec<_> = m
            .objects
            .iter()
            .filter(|o| matches!(o.kind, ObjKind::Heap(_)))
            .collect();
        assert_eq!(heap.len(), 2);
        let calloc = heap.iter().find(|o| o.zero_init).unwrap();
        let malloc = heap.iter().find(|o| !o.zero_init).unwrap();
        assert!(calloc.is_array);
        assert!(malloc.is_array);
    }

    #[test]
    fn missing_return_yields_undef() {
        let m = compile("def f(int c) -> int { if (c) { return 1; } }").unwrap();
        let f = &m.funcs[m.func_by_name("f").unwrap()];
        let has_undef_ret = f
            .blocks
            .iter()
            .any(|b| matches!(b.term, usher_ir::Terminator::Ret(Some(Operand::Undef))));
        assert!(has_undef_ret);
    }

    #[test]
    fn function_pointer_call_lowers_to_indirect() {
        let m = compile(
            "def inc(int x) -> int { return x + 1; }
             def main() -> int { fn(int) -> int f; f = inc; return f(41); }",
        )
        .unwrap();
        let main = &m.funcs[m.main.unwrap()];
        assert!(main.blocks.iter().flat_map(|b| &b.insts).any(|i| matches!(
            i,
            Inst::Call {
                callee: Callee::Indirect(_),
                ..
            }
        )));
    }

    #[test]
    fn struct_field_access_uses_gep_field() {
        let m = compile(
            "struct V { int a; int b; };
             def main() { struct V v; v.b = 3; print(v.b); }",
        )
        .unwrap();
        let main = &m.funcs[m.main.unwrap()];
        let has_field_gep = main.blocks.iter().flat_map(|b| &b.insts).any(|i| {
            matches!(
                i,
                Inst::Gep {
                    offset: usher_ir::GepOffset::Field(1),
                    ..
                }
            )
        });
        assert!(has_field_gep);
    }

    #[test]
    fn array_index_uses_dynamic_gep() {
        let m = compile("def main() { int a[4]; int i = 1; a[i] = 2; }").unwrap();
        let main = &m.funcs[m.main.unwrap()];
        assert!(main.blocks.iter().flat_map(|b| &b.insts).any(|i| {
            matches!(
                i,
                Inst::Gep {
                    offset: usher_ir::GepOffset::Index { .. },
                    ..
                }
            )
        }));
    }

    #[test]
    fn error_unknown_name() {
        let e = compile("def main() { x = 1; }").unwrap_err();
        assert!(matches!(e, CompileError::Lower(_)), "{e}");
        assert!(e.to_string().contains("unknown"));
    }

    #[test]
    fn error_type_mismatch_on_assignment() {
        let e = compile("def main() { int x; int *p; x = p; }").unwrap_err();
        assert!(e.to_string().contains("type mismatch"));
    }

    #[test]
    fn error_deref_non_pointer() {
        let e = compile("def main() { int x; *x = 1; }").unwrap_err();
        assert!(e.to_string().contains("non-pointer"));
    }

    #[test]
    fn error_arity_mismatch() {
        let e =
            compile("def f(int a, int b) -> int { return a + b; } def main() { int x = f(1); }")
                .unwrap_err();
        assert!(e.to_string().contains("arguments"));
    }

    #[test]
    fn error_break_outside_loop() {
        let e = compile("def main() { break; }").unwrap_err();
        assert!(e.to_string().contains("break"));
    }

    #[test]
    fn null_pointer_literal_allowed() {
        let m = compile("def main() { int *p; p = 0; if (p == 0) { print(1); } }");
        assert!(m.is_ok(), "{m:?}");
    }

    #[test]
    fn short_circuit_becomes_control_flow() {
        let m = compile_o0im(
            "def f(int a, int b) -> int { if (a > 0 && b > 0) { return 1; } return 0; }",
        )
        .unwrap();
        let f = &m.funcs[m.func_by_name("f").unwrap()];
        assert!(
            f.blocks.len() >= 4,
            "short-circuit needs extra blocks, got {}",
            f.blocks.len()
        );
    }

    #[test]
    fn recursive_struct_via_pointer_ok_by_value_rejected() {
        assert!(compile("struct N { int v; struct N *next; }; def main() {}").is_ok());
        let e = compile("struct N { int v; struct N inner; }; def main() {}").unwrap_err();
        assert!(e.to_string().contains("incomplete"));
    }

    #[test]
    fn pointer_arithmetic_lowered_as_gep() {
        let m = compile("def f(int *p, int i) -> int { return *(p + i); }").unwrap();
        let f = &m.funcs[m.func_by_name("f").unwrap()];
        assert!(f.blocks.iter().flat_map(|b| &b.insts).any(|i| matches!(
            i,
            Inst::Gep {
                offset: usher_ir::GepOffset::Index { .. },
                ..
            }
        )));
    }
}
