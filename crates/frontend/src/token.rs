//! Lexer for TinyC.

use std::fmt;

/// A lexical token. Variants mirror the surface syntax one-to-one.
#[allow(missing_docs)]
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Tok {
    // Literals and identifiers
    Int(i64),
    Ident(String),
    // Keywords
    KwInt,
    KwStruct,
    KwDef,
    KwIf,
    KwElse,
    KwWhile,
    KwFor,
    KwReturn,
    KwBreak,
    KwContinue,
    KwFn,
    // Punctuation
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Comma,
    Semi,
    Arrow, // ->
    Dot,
    Assign, // =
    // Operators
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Amp,   // &
    Pipe,  // |
    Caret, // ^
    Tilde, // ~
    Bang,  // !
    Shl,   // <<
    Shr,   // >>
    EqEq,
    NotEq,
    Lt,
    Le,
    Gt,
    Ge,
    AndAnd,
    OrOr,
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Int(n) => write!(f, "{n}"),
            Tok::Ident(s) => write!(f, "{s}"),
            other => write!(f, "{other:?}"),
        }
    }
}

/// A token with its source line (1-based).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Spanned {
    /// The token.
    pub tok: Tok,
    /// 1-based source line.
    pub line: u32,
}

/// A lexical error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LexError {
    /// Offending character.
    pub ch: char,
    /// 1-based source line.
    pub line: u32,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unexpected character {:?} on line {}",
            self.ch, self.line
        )
    }
}

impl std::error::Error for LexError {}

/// Tokenizes TinyC source.
///
/// # Errors
///
/// Returns a [`LexError`] on the first unrecognized character.
pub fn lex(src: &str) -> Result<Vec<Spanned>, LexError> {
    let mut out = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0;
    let mut line = 1u32;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            ' ' | '\t' | '\r' => i += 1,
            '/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '/' if i + 1 < bytes.len() && bytes[i + 1] == b'*' => {
                i += 2;
                while i + 1 < bytes.len() && !(bytes[i] == b'*' && bytes[i + 1] == b'/') {
                    if bytes[i] == b'\n' {
                        line += 1;
                    }
                    i += 1;
                }
                i = (i + 2).min(bytes.len());
            }
            '0'..='9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let n: i64 = src[start..i].parse().unwrap_or(i64::MAX);
                out.push(Spanned {
                    tok: Tok::Int(n),
                    line,
                });
            }
            'a'..='z' | 'A'..='Z' | '_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                let word = &src[start..i];
                let tok = match word {
                    "int" => Tok::KwInt,
                    "struct" => Tok::KwStruct,
                    "def" => Tok::KwDef,
                    "if" => Tok::KwIf,
                    "else" => Tok::KwElse,
                    "while" => Tok::KwWhile,
                    "for" => Tok::KwFor,
                    "return" => Tok::KwReturn,
                    "break" => Tok::KwBreak,
                    "continue" => Tok::KwContinue,
                    "fn" => Tok::KwFn,
                    _ => Tok::Ident(word.to_string()),
                };
                out.push(Spanned { tok, line });
            }
            _ if !c.is_ascii() => {
                // Non-ASCII input: decode the real scalar value for the
                // error instead of slicing (a byte-offset slice inside a
                // multi-byte character would panic).
                let ch = src[i..].chars().next().unwrap_or('\u{fffd}');
                return Err(LexError { ch, line });
            }
            _ => {
                // `i` is on an ASCII character; `i + 1` is a char boundary,
                // but `i + 2` may fall inside a following multi-byte
                // character — `get` declines the slice instead of panicking.
                let two = src.get(i..i + 2).unwrap_or("");
                let (tok, len) = match two {
                    "->" => (Tok::Arrow, 2),
                    "<<" => (Tok::Shl, 2),
                    ">>" => (Tok::Shr, 2),
                    "==" => (Tok::EqEq, 2),
                    "!=" => (Tok::NotEq, 2),
                    "<=" => (Tok::Le, 2),
                    ">=" => (Tok::Ge, 2),
                    "&&" => (Tok::AndAnd, 2),
                    "||" => (Tok::OrOr, 2),
                    _ => {
                        let t = match c {
                            '(' => Tok::LParen,
                            ')' => Tok::RParen,
                            '{' => Tok::LBrace,
                            '}' => Tok::RBrace,
                            '[' => Tok::LBracket,
                            ']' => Tok::RBracket,
                            ',' => Tok::Comma,
                            ';' => Tok::Semi,
                            '.' => Tok::Dot,
                            '=' => Tok::Assign,
                            '+' => Tok::Plus,
                            '-' => Tok::Minus,
                            '*' => Tok::Star,
                            '/' => Tok::Slash,
                            '%' => Tok::Percent,
                            '&' => Tok::Amp,
                            '|' => Tok::Pipe,
                            '^' => Tok::Caret,
                            '~' => Tok::Tilde,
                            '!' => Tok::Bang,
                            '<' => Tok::Lt,
                            '>' => Tok::Gt,
                            _ => return Err(LexError { ch: c, line }),
                        };
                        (t, 1)
                    }
                };
                out.push(Spanned { tok, line });
                i += len;
            }
        }
    }
    out.push(Spanned {
        tok: Tok::Eof,
        line,
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn lexes_keywords_and_idents() {
        assert_eq!(
            toks("def foo int x"),
            vec![
                Tok::KwDef,
                Tok::Ident("foo".into()),
                Tok::KwInt,
                Tok::Ident("x".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn lexes_two_char_operators() {
        assert_eq!(
            toks("-> == != <= >= << >> && ||"),
            vec![
                Tok::Arrow,
                Tok::EqEq,
                Tok::NotEq,
                Tok::Le,
                Tok::Ge,
                Tok::Shl,
                Tok::Shr,
                Tok::AndAnd,
                Tok::OrOr,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn distinguishes_assign_from_eq() {
        assert_eq!(toks("= =="), vec![Tok::Assign, Tok::EqEq, Tok::Eof]);
    }

    #[test]
    fn skips_line_and_block_comments() {
        let src = "a // comment\n/* multi\nline */ b";
        assert_eq!(
            toks(src),
            vec![Tok::Ident("a".into()), Tok::Ident("b".into()), Tok::Eof]
        );
    }

    #[test]
    fn tracks_lines() {
        let ts = lex("a\nb\n\nc").unwrap();
        let lines: Vec<u32> = ts.iter().map(|s| s.line).collect();
        assert_eq!(lines, vec![1, 2, 4, 4]);
    }

    #[test]
    fn rejects_unknown_character() {
        let e = lex("a $ b").unwrap_err();
        assert_eq!(e.ch, '$');
        assert_eq!(e.line, 1);
    }

    #[test]
    fn lexes_numbers() {
        assert_eq!(
            toks("0 42 1000000"),
            vec![Tok::Int(0), Tok::Int(42), Tok::Int(1000000), Tok::Eof]
        );
    }
}
